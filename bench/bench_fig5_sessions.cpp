// Fig. 5 — Histogram of video session durations in the dataset: 4,761 live
// sessions from 1,566 channels, 5-minute sampling, <= 10 hours.
#include <cstdio>

#include "lpvs/trace/trace.hpp"

int main() {
  using namespace lpvs;

  const trace::Trace twitch = trace::TwitchLikeGenerator().generate(2014);

  std::printf("=== Fig. 5: session duration histogram ===\n\n");
  std::printf("channels: %zu (paper: 1,566)\n", twitch.channels().size());
  std::printf("sessions: %zu (paper: 4,761)\n\n", twitch.sessions().size());

  const common::Histogram hist = twitch.duration_histogram(12);
  std::printf("duration (minutes), 50-minute bins:\n%s\n",
              hist.ascii(48).c_str());

  const common::RunningStats stats = twitch.duration_stats();
  std::printf("duration stats: mean %.1f min, sd %.1f, min %.0f, max %.0f\n",
              stats.mean(), stats.stddev(), stats.min(), stats.max());
  std::printf("all sessions <= 600 minutes (10-hour filter): %s\n",
              stats.max() <= 600.0 ? "yes" : "NO");
  return 0;
}

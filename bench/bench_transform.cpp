// Micro-benchmarks (google-benchmark): per-chunk transform throughput and
// the per-slot gamma computation — the work LPVS offloads from phones to
// the edge, and why offloading it matters.
#include <benchmark/benchmark.h>

#include "lpvs/media/video.hpp"
#include "lpvs/transform/transform.hpp"

namespace {

const lpvs::media::Video& test_video() {
  static const lpvs::media::Video video = [] {
    lpvs::media::ContentGenerator generator(5);
    return generator.generate(lpvs::common::VideoId{1},
                              lpvs::media::Genre::kMovie, 30, 3.0);
  }();
  return video;
}

void BM_TransformChunkLcd(benchmark::State& state) {
  const lpvs::transform::TransformEngine engine;
  const lpvs::display::DisplaySpec spec{lpvs::display::DisplayType::kLcd,
                                        6.1, 1080, 2340, 500.0, 0.8};
  const auto& chunk = test_video().chunks[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.transform_chunk(spec, chunk));
  }
}
BENCHMARK(BM_TransformChunkLcd);

void BM_TransformChunkOled(benchmark::State& state) {
  const lpvs::transform::TransformEngine engine;
  const lpvs::display::DisplaySpec spec{lpvs::display::DisplayType::kOled,
                                        6.1, 1080, 2340, 700.0, 0.8};
  const auto& chunk = test_video().chunks[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.transform_chunk(spec, chunk));
  }
}
BENCHMARK(BM_TransformChunkOled);

void BM_VideoGammaPerSlot(benchmark::State& state) {
  const lpvs::transform::TransformEngine engine;
  const lpvs::display::DisplaySpec spec{lpvs::display::DisplayType::kOled,
                                        6.4, 1440, 3040, 800.0, 0.8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.video_gamma(spec, test_video()));
  }
}
BENCHMARK(BM_VideoGammaPerSlot);

void BM_ContentGeneration(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    lpvs::media::ContentGenerator generator(++seed);
    benchmark::DoNotOptimize(generator.generate(
        lpvs::common::VideoId{1}, lpvs::media::Genre::kSports, 30, 3.0));
  }
}
BENCHMARK(BM_ContentGeneration);

}  // namespace

BENCHMARK_MAIN();

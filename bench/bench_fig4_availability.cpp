// Fig. 4 — "Illustration of power rate estimating with the available video
// chunks": chunk availability at the scheduling point varies per user with
// the edge prefetch window, and LPVS prices only what is available.
// Part 1 renders availability patterns like the figure; part 2 sweeps the
// prefetch window through the emulator to quantify how partial windows
// affect the realized energy saving.
#include <cstdio>
#include <string>

#include "lpvs/common/rng.hpp"
#include "lpvs/common/table.hpp"
#include "lpvs/emu/emulator.hpp"
#include "lpvs/media/video.hpp"
#include "lpvs/streaming/streaming.hpp"

int main() {
  using namespace lpvs;

  // --- Part 1: the Fig. 4 picture — per-user available chunk windows.
  std::printf("=== Fig. 4: chunk availability at the scheduling point ===\n\n");
  streaming::CdnServer cdn;
  streaming::EdgeCache cache(64.0);  // deliberately small: creates gaps
  common::Rng rng(4);
  media::ContentGenerator generator(4);
  const int kChunks = 30;
  for (int user = 1; user <= 3; ++user) {
    const auto vid = common::VideoId{static_cast<std::uint32_t>(user)};
    const media::Video video = generator.generate(
        vid, media::Genre::kIrlChat, kChunks, 2.5);
    cdn.publish(video);
    const int window = static_cast<int>(rng.uniform_int(10, kChunks));
    streaming::Prefetcher(window).prefetch(cdn, cache, vid, 0);
    const streaming::ChunkRequest request =
        streaming::available_request(cdn, cache, vid, 0, kChunks);
    std::string row(kChunks, '.');
    for (const auto chunk : request.chunks) {
      row[chunk.value] = '#';
    }
    std::printf("user %d  [%s]  %2zu/%d chunks available\n", user,
                row.c_str(), request.chunk_count(), kChunks);
  }
  std::printf("('#' = cached at the edge and usable for power-rate "
              "estimation)\n\n");

  // --- Part 2: how the prefetch window changes LPVS outcomes.
  std::printf("=== prefetch window sweep (emulated) ===\n\n");
  const survey::AnxietyModel anxiety = survey::AnxietyModel::reference();
  const core::RunContext context(anxiety);
  const core::LpvsScheduler scheduler;
  common::Table table({"window (chunks)", "energy saving %",
                       "anxiety reduction %", "served/slot"});
  for (int window : {6, 12, 18, 30}) {
    emu::EmulatorConfig config;
    config.group_size = 80;
    config.slots = 12;
    config.chunks_per_slot = 30;
    config.prefetch_window_min = window;
    config.prefetch_window_max = window;
    config.compute_capacity = 25.0;  // scarce: estimation quality matters
    config.enable_giveup = false;
    config.seed = 4000 + static_cast<std::uint64_t>(window);
    const emu::PairedMetrics paired =
        emu::run_paired(config, scheduler, context);
    table.add_row(
        {std::to_string(window),
         common::Table::num(100.0 * paired.energy_saving_ratio(), 2),
         common::Table::num(100.0 * paired.anxiety_reduction_ratio(), 2),
         common::Table::num(static_cast<double>(
                                paired.with_lpvs.total_selected) /
                                paired.with_lpvs.slots_run,
                            1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shorter windows = fewer chunks priced per user; the paper's\n"
              "design (estimate on whatever is available) degrades "
              "gracefully.\n");
  return 0;
}

// Solver shoot-out (reproduction extension): the four ways this repo can
// solve Phase-1-shaped selection problems — LP-based branch-and-bound
// (default), Lagrangian relaxation + knapsack DP, density greedy, and
// (single-row cases) the exact DP — compared on solution quality and wall
// time across instance sizes.  This is the ablation behind choosing B&B
// as the scheduler's default.
#include <chrono>
#include <cstdio>

#include "lpvs/common/rng.hpp"
#include "lpvs/common/table.hpp"
#include "lpvs/solver/lagrangian.hpp"

namespace {

lpvs::solver::BinaryProgram make_instance(lpvs::common::Rng& rng,
                                          std::size_t n) {
  lpvs::solver::BinaryProgram p;
  p.objective.resize(n);
  p.rows.assign(2, std::vector<double>(n));
  double c_total = 0.0;
  double s_total = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    p.objective[j] = rng.uniform(5.0, 60.0);
    p.rows[0][j] = rng.uniform(0.3, 0.9);
    p.rows[1][j] = rng.uniform(40.0, 160.0);
    c_total += p.rows[0][j];
    s_total += p.rows[1][j];
  }
  p.rhs = {0.4 * c_total, 0.5 * s_total};
  return p;
}

template <class F>
std::pair<double, double> timed(F&& solve) {
  const auto t0 = std::chrono::steady_clock::now();
  const double objective = solve();
  const auto t1 = std::chrono::steady_clock::now();
  return {objective,
          std::chrono::duration<double, std::milli>(t1 - t0).count()};
}

}  // namespace

int main() {
  using namespace lpvs;
  using namespace lpvs::solver;

  std::printf("=== solver comparison on Phase-1-shaped instances ===\n\n");
  common::Table table({"n", "greedy obj", "lagrangian obj", "b&b obj",
                       "lagr. bound", "greedy ms", "lagr ms", "b&b ms"});
  common::Rng rng(12);
  for (std::size_t n : {50, 100, 200, 400, 800}) {
    const BinaryProgram p = make_instance(rng, n);

    const auto [greedy_obj, greedy_ms] =
        timed([&] { return GreedySolver().solve(p).objective; });

    LagrangianSolver::Options lag_options;
    lag_options.iterations = 40;
    lag_options.dp.resolution = 20000;
    double lag_bound = 0.0;
    const auto [lag_obj, lag_ms] = timed([&] {
      const LagrangianSolution s = LagrangianSolver(lag_options).solve(p);
      lag_bound = s.upper_bound;
      return s.incumbent.objective;
    });

    BranchAndBoundSolver::Options bnb_options;
    bnb_options.max_nodes = 200;
    bnb_options.relative_gap = 1e-4;
    const auto [bnb_obj, bnb_ms] = timed(
        [&] { return BranchAndBoundSolver(bnb_options).solve(p).objective; });

    table.add_row({std::to_string(n), common::Table::num(greedy_obj, 1),
                   common::Table::num(lag_obj, 1),
                   common::Table::num(bnb_obj, 1),
                   common::Table::num(lag_bound, 1),
                   common::Table::num(greedy_ms, 2),
                   common::Table::num(lag_ms, 1),
                   common::Table::num(bnb_ms, 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("the Lagrangian dual value upper-bounds every solver's\n"
              "objective, certifying how close to optimal each one lands.\n");
  return 0;
}

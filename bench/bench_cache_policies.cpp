// Edge caching strategy comparison (reproduction extension of SIV-A's
// "depending on different caching strategies, the edge server might not
// have the whole video chunks"): LRU vs LFU hit ratios under the trace's
// Zipf-skewed channel demand, across cache sizes — and the resulting chunk
// availability LPVS sees.
#include <cstdio>

#include "lpvs/common/rng.hpp"
#include "lpvs/common/table.hpp"
#include "lpvs/streaming/cache_policy.hpp"
#include "lpvs/trace/trace.hpp"

int main() {
  using namespace lpvs;

  // Demand stream: chunks of live channels requested proportionally to
  // the trace's viewer counts at a busy slot.
  const trace::Trace twitch = trace::TwitchLikeGenerator().generate(17);
  const int slot = twitch.horizon_slots() / 2;
  std::vector<const trace::Session*> live = twitch.live_sessions(slot);
  std::vector<double> weights;
  weights.reserve(live.size());
  for (const trace::Session* s : live) {
    weights.push_back(static_cast<double>(s->viewers_at(slot)));
  }
  double total_weight = 0.0;
  for (double w : weights) total_weight += w;

  common::Rng rng(4);
  auto sample_session = [&]() -> std::size_t {
    double draw = rng.uniform(0.0, total_weight);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      draw -= weights[i];
      if (draw <= 0.0) return i;
    }
    return weights.size() - 1;
  };

  std::printf("=== edge caching strategies under trace demand ===\n\n");
  std::printf("live sessions at slot %d: %zu, total viewers %ld\n\n", slot,
              live.size(), twitch.total_viewers(slot));

  common::Table table({"cache (MB)", "lru hit %", "lfu hit %",
                       "lru evictions", "lfu evictions"});
  for (double capacity_mb : {256.0, 1024.0, 4096.0, 16384.0}) {
    auto lru = streaming::make_cache("lru", capacity_mb);
    auto lfu = streaming::make_cache("lfu", capacity_mb);
    const int kRequests = 120000;
    for (int i = 0; i < kRequests; ++i) {
      const std::size_t session_idx = sample_session();
      const trace::Session* session = live[session_idx];
      const auto& channel = twitch.channel(session->channel);
      // Viewers request one of the channel's 30 current chunks, biased
      // toward the live edge.
      const auto chunk_idx = static_cast<std::uint32_t>(
          29 - std::min<std::int64_t>(29, rng.zipf(30, 1.3) - 1));
      media::VideoChunk chunk;
      chunk.id = common::ChunkId{chunk_idx};
      chunk.bitrate_mbps = channel.bitrate_mbps;
      chunk.duration = common::Seconds{10.0};
      const auto video = common::VideoId{session->channel.value};
      for (streaming::ChunkCache* cache : {lru.get(), lfu.get()}) {
        if (!cache->lookup(video, chunk.id)) cache->insert(video, chunk);
      }
    }
    table.add_row({common::Table::num(capacity_mb, 0),
                   common::Table::num(100.0 * lru->stats().hit_ratio(), 2),
                   common::Table::num(100.0 * lfu->stats().hit_ratio(), 2),
                   std::to_string(lru->stats().evictions),
                   std::to_string(lfu->stats().evictions)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("higher hit ratio = more chunks available at the scheduling\n"
              "point = better power-rate estimates for LPVS (Fig. 4).\n");
  return 0;
}

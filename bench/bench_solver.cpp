// Micro-benchmarks (google-benchmark): the from-scratch LP / ILP solver
// substrate — the replacement for the paper's CPLEX/Gurobi calls — across
// Phase-1-shaped instance sizes.
#include <benchmark/benchmark.h>

#include "lpvs/common/rng.hpp"
#include "lpvs/solver/ilp.hpp"
#include "lpvs/solver/lp.hpp"

namespace {

lpvs::solver::BinaryProgram phase1_shaped(std::size_t n,
                                          std::uint64_t seed) {
  lpvs::common::Rng rng(seed);
  lpvs::solver::BinaryProgram p;
  p.objective.resize(n);
  p.rows.assign(2, std::vector<double>(n));
  for (std::size_t j = 0; j < n; ++j) {
    p.objective[j] = rng.uniform(5.0, 60.0);     // mWh saved
    p.rows[0][j] = rng.uniform(0.3, 0.8);        // compute units
    p.rows[1][j] = rng.uniform(50.0, 150.0);     // MB
  }
  p.rhs = {45.0, 32.0 * 1024.0};
  return p;
}

void BM_LpRelaxation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const lpvs::solver::BinaryProgram bin = phase1_shaped(n, 1);
  lpvs::solver::LpProblem lp;
  lp.objective = bin.objective;
  lp.rows = bin.rows;
  lp.rhs = bin.rhs;
  lp.upper.assign(n, 1.0);
  const lpvs::solver::LpSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(lp));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LpRelaxation)->RangeMultiplier(2)->Range(64, 4096)->Complexity();

void BM_BranchAndBound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const lpvs::solver::BinaryProgram p = phase1_shaped(n, 2);
  const lpvs::solver::BranchAndBoundSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(p));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BranchAndBound)->RangeMultiplier(2)->Range(64, 2048)->Complexity();

void BM_GreedyBaseline(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const lpvs::solver::BinaryProgram p = phase1_shaped(n, 3);
  const lpvs::solver::GreedySolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(p));
  }
}
BENCHMARK(BM_GreedyBaseline)->RangeMultiplier(4)->Range(64, 4096);

}  // namespace

BENCHMARK_MAIN();

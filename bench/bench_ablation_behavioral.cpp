// Ablation — behavioral vs questionnaire LBA modelling (the future work
// the paper sketches in SIII-C): simulate plug-in behavior for the survey
// population and compare the curve recovered from behavior logs against
// the questionnaire-extracted Fig. 2 curve, across contamination levels
// and estimator quantiles.
#include <cstdio>

#include "lpvs/common/rng.hpp"
#include "lpvs/common/table.hpp"
#include "lpvs/survey/behavioral.hpp"
#include "lpvs/survey/population.hpp"

int main() {
  using namespace lpvs;
  using namespace lpvs::survey;

  common::Rng rng(303);
  const auto population =
      SyntheticPopulation().generate_paper_population(rng);
  LbaCurveExtractor questionnaire;
  questionnaire.add_population(population);
  const auto reference = questionnaire.extract();

  std::printf("=== Ablation: behavior-driven LBA curve (SIII-C future "
              "work) ===\n\n");
  std::printf("distance = mean |behavioral - questionnaire| anxiety over "
              "battery levels 1..100\n\n");

  common::Table table({"opportunistic rate", "days/user",
                       "robust q=0.15", "naive q=0.50"});
  for (double contamination : {0.2, 0.45, 0.7}) {
    for (int days : {14, 60}) {
      BehaviorSimulator::Config config;
      config.opportunistic_rate = contamination;
      const BehaviorSimulator simulator(config);
      BehavioralLbaEstimator estimator;
      for (const Participant& p : population) {
        estimator.add_user_log(simulator.simulate(p, days, rng));
      }
      const double robust = BehavioralLbaEstimator::curve_distance(
          reference, estimator.extract(0.15));
      const double naive = BehavioralLbaEstimator::curve_distance(
          reference, estimator.extract(0.5));
      table.add_row({common::Table::num(contamination, 2),
                     std::to_string(days), common::Table::num(robust, 4),
                     common::Table::num(naive, 4)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("takeaway: a low-quantile threshold estimator recovers the\n"
              "questionnaire curve from behavior alone even under heavy\n"
              "opportunistic-charging contamination, where the naive\n"
              "median estimator drifts badly — supporting the paper's\n"
              "proposed future direction.\n");
  return 0;
}

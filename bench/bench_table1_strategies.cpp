// Table I — Review of the state-of-the-art power-saving strategies for LCD
// and OLED: the published bands, their average row (13%-49%, from which the
// Bayesian prior mu = 0.31), and the savings our own implemented transforms
// actually realize on synthetic content across the device catalog.
#include <cstdio>

#include "lpvs/common/stats.hpp"
#include "lpvs/common/table.hpp"
#include "lpvs/media/video.hpp"
#include "lpvs/transform/transform.hpp"

int main() {
  using namespace lpvs;

  const transform::StrategyRegistry& registry =
      transform::StrategyRegistry::table1();

  std::printf("=== Table I: published power-saving strategy bands ===\n\n");
  common::Table table({"type", "strategy", "power saving"});
  for (const transform::StrategyEntry& e : registry.entries()) {
    table.add_row(
        {display::to_string(e.display_type), e.name,
         common::Table::num(100.0 * e.min_saving, 0) + "%-" +
             common::Table::num(100.0 * e.max_saving, 0) + "%"});
  }
  table.add_row({"", "Average",
                 common::Table::num(100.0 * registry.average_min(), 0) +
                     "%-" +
                     common::Table::num(100.0 * registry.average_max(), 0) +
                     "%"});
  std::printf("%s\n", table.render().c_str());
  std::printf("Bayesian prior from the average row: mu = %.2f "
              "(paper: 0.31)\n\n",
              registry.prior_mean());

  // What our implemented transforms (backlight scaling for LCD, color
  // transform for OLED) actually achieve, display-level and device-level.
  std::printf("=== realized savings of the implemented transforms ===\n\n");
  const transform::TransformEngine engine;
  common::Table measured({"panel", "genre", "display saving %",
                          "device gamma %"});
  const display::DeviceCatalog& catalog = display::DeviceCatalog::standard();
  common::RunningStats all_gammas;
  for (int g = 0; g < media::kGenreCount; ++g) {
    common::RunningStats lcd_display;
    common::RunningStats lcd_gamma;
    common::RunningStats oled_display;
    common::RunningStats oled_gamma;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      media::ContentGenerator generator(seed * 17 + g);
      const media::Video video = generator.generate(
          common::VideoId{static_cast<std::uint32_t>(g)},
          static_cast<media::Genre>(g), 30, 3.0);
      for (std::size_t i = 0; i < catalog.size(); ++i) {
        const auto& spec = catalog.at(i).spec;
        common::RunningStats display_saving;
        for (const auto& chunk : video.chunks) {
          display_saving.add(
              engine.transform_chunk(spec, chunk).display_saving_fraction());
        }
        const double gamma = engine.video_gamma(spec, video);
        all_gammas.add(gamma);
        if (spec.type == display::DisplayType::kLcd) {
          lcd_display.add(display_saving.mean());
          lcd_gamma.add(gamma);
        } else {
          oled_display.add(display_saving.mean());
          oled_gamma.add(gamma);
        }
      }
    }
    measured.add_row({"LCD", media::to_string(static_cast<media::Genre>(g)),
                      common::Table::num(100.0 * lcd_display.mean(), 1),
                      common::Table::num(100.0 * lcd_gamma.mean(), 1)});
    measured.add_row({"OLED", media::to_string(static_cast<media::Genre>(g)),
                      common::Table::num(100.0 * oled_display.mean(), 1),
                      common::Table::num(100.0 * oled_gamma.mean(), 1)});
  }
  std::printf("%s\n", measured.render().c_str());
  std::printf("device-level gamma across catalog x genres: mean %.1f%%, "
              "range [%.1f%%, %.1f%%]\n",
              100.0 * all_gammas.mean(), 100.0 * all_gammas.min(),
              100.0 * all_gammas.max());
  std::printf("(the Table I average band is 13%%-49%%)\n");
  return 0;
}

// Ablation — user-selection policy (SIII-C's insight): under limited edge
// capacity, compare LPVS's exact selection against random admission and the
// two greedy baselines, on both energy saving and anxiety reduction.
// "Following a random user selection strategy cannot be optimal."
#include <cstdio>

#include "lpvs/common/stats.hpp"
#include "lpvs/common/table.hpp"
#include "lpvs/emu/emulator.hpp"

int main() {
  using namespace lpvs;

  const survey::AnxietyModel anxiety = survey::AnxietyModel::reference();
  const core::RunContext context(anxiety);

  const core::LpvsScheduler lpvs_scheduler;
  const core::RandomScheduler random_scheduler(99);
  const core::GreedyEnergyScheduler greedy_energy;
  const core::GreedyAnxietyScheduler greedy_anxiety;
  const struct {
    const core::Scheduler* scheduler;
    const char* name;
  } entries[] = {
      {&lpvs_scheduler, "lpvs (two-phase)"},
      {&greedy_energy, "greedy-energy"},
      {&greedy_anxiety, "greedy-anxiety"},
      {&random_scheduler, "random"},
  };

  std::printf("=== Ablation: selection policy under limited capacity ===\n\n");
  common::Table table({"policy", "energy saving %", "anxiety reduction %"});
  for (const auto& entry : entries) {
    common::RunningStats saving;
    common::RunningStats reduction;
    for (std::uint64_t seed : {11u, 12u, 13u, 14u}) {
      emu::EmulatorConfig config;
      config.group_size = 200;
      config.slots = 18;
      config.chunks_per_slot = 20;
      config.compute_capacity = 30.0;  // ~65 devices' worth
      config.lambda = 10000.0;
      config.enable_giveup = false;
      config.initial_battery_std = 0.22;
      config.seed = 60000 + seed;
      const emu::PairedMetrics paired =
          emu::run_paired(config, *entry.scheduler, context);
      saving.add(100.0 * paired.energy_saving_ratio());
      reduction.add(100.0 * paired.anxiety_reduction_ratio());
    }
    table.add_row({entry.name, common::Table::num(saving.mean(), 2),
                   common::Table::num(reduction.mean(), 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected: lpvs dominates random on both axes; greedy-energy\n"
              "matches on energy but loses on anxiety; greedy-anxiety the\n"
              "reverse.\n");
  return 0;
}

// Fig. 1 — Energy consumption of different hardware components of a
// smartphone during video playback, for an LCD phone and an OLED phone.
//
// Prints the per-component power split produced by the device power model
// for a representative mid-luminance stream, matching the figure's message:
// the display is the primary energy guzzler on both panel types.
#include <cstdio>

#include "lpvs/common/table.hpp"
#include "lpvs/display/display.hpp"
#include "lpvs/media/video.hpp"

int main() {
  using namespace lpvs;

  const display::DevicePowerModel model;
  const double bitrate_mbps = 3.0;

  // Representative playback content: mid-luminance mixed stream, averaged
  // over the content generator's genres.
  media::ContentGenerator generator(1);
  display::FrameStats content;
  {
    double lum = 0.0;
    double r = 0.0;
    double g = 0.0;
    double b = 0.0;
    int count = 0;
    for (int genre = 0; genre < media::kGenreCount; ++genre) {
      const media::Video video = generator.generate(
          common::VideoId{static_cast<std::uint32_t>(genre)},
          static_cast<media::Genre>(genre), 50, bitrate_mbps);
      for (const auto& chunk : video.chunks) {
        lum += chunk.stats.mean_luminance;
        r += chunk.stats.mean_r;
        g += chunk.stats.mean_g;
        b += chunk.stats.mean_b;
        ++count;
      }
    }
    content.mean_luminance = lum / count;
    content.mean_r = r / count;
    content.mean_g = g / count;
    content.mean_b = b / count;
    content.peak_luminance = content.mean_luminance + 0.3;
  }

  const display::DisplaySpec lcd{display::DisplayType::kLcd, 6.1, 1080,
                                 2340, 500.0, 0.8};
  const display::DisplaySpec oled{display::DisplayType::kOled, 6.1, 1080,
                                  2340, 700.0, 0.8};

  std::printf("=== Fig. 1: component power during video playback ===\n\n");
  common::Table table({"component", "LCD phone (mW)", "LCD %",
                       "OLED phone (mW)", "OLED %"});
  const auto lcd_split = model.breakdown(lcd, content, bitrate_mbps);
  const auto oled_split = model.breakdown(oled, content, bitrate_mbps);
  auto pct = [](double part, double total) {
    return common::Table::num(100.0 * part / total, 1);
  };
  const double lt = lcd_split.total().value;
  const double ot = oled_split.total().value;
  table.add_row({"display", common::Table::num(lcd_split.display.value, 1),
                 pct(lcd_split.display.value, lt),
                 common::Table::num(oled_split.display.value, 1),
                 pct(oled_split.display.value, ot)});
  table.add_row({"cpu/decode", common::Table::num(lcd_split.cpu.value, 1),
                 pct(lcd_split.cpu.value, lt),
                 common::Table::num(oled_split.cpu.value, 1),
                 pct(oled_split.cpu.value, ot)});
  table.add_row({"radio", common::Table::num(lcd_split.radio.value, 1),
                 pct(lcd_split.radio.value, lt),
                 common::Table::num(oled_split.radio.value, 1),
                 pct(oled_split.radio.value, ot)});
  table.add_row({"base/other", common::Table::num(lcd_split.base.value, 1),
                 pct(lcd_split.base.value, lt),
                 common::Table::num(oled_split.base.value, 1),
                 pct(oled_split.base.value, ot)});
  table.add_row({"total", common::Table::num(lt, 1), "100.0",
                 common::Table::num(ot, 1), "100.0"});
  std::printf("%s\n", table.render().c_str());

  std::printf("paper's claim: display is the primary energy guzzler.\n");
  std::printf("measured: LCD display fraction %.1f%%, OLED %.1f%% -> %s\n",
              100.0 * lcd_split.display_fraction(),
              100.0 * oled_split.display_fraction(),
              (lcd_split.display_fraction() > 0.4 &&
               oled_split.display_fraction() > 0.4)
                  ? "REPRODUCED"
                  : "NOT reproduced");
  return 0;
}

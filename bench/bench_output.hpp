// Machine-readable bench output: benches that back a performance claim
// write a BENCH_<name>.json next to their stdout tables, so CI and
// regression tooling can diff runs without scraping text.
//
// Schema v2: every file carries the same envelope, so tooling can diff any
// bench without per-bench knowledge of the payload:
//
//   {
//     "schema": 2,
//     "bench": "<name>",
//     "pass": true,
//     "meta":    { compiler, build flavor, core count, unix time },
//     "knobs":   { the fixed/swept configuration of this run },
//     "metrics": [ one object per measured configuration ]
//   }
//
// `knobs` answers "what was asked for", `metrics` "what was measured";
// regression tooling joins runs on (bench, knobs) and diffs metrics.
#pragma once

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "lpvs/common/json.hpp"

namespace lpvs::bench {

/// Run metadata stamped into every schema-v2 document: enough to tell two
/// archived runs apart (toolchain, build flavor, machine width, when).
inline common::Json run_meta() {
  common::Json meta = common::Json::object();
  meta.set("compiler", std::string(__VERSION__));
  meta.set("cplusplus", static_cast<long>(__cplusplus));
#ifdef NDEBUG
  meta.set("build", "release");
#else
  meta.set("build", "debug");
#endif
  meta.set("hardware_concurrency",
           static_cast<long>(std::thread::hardware_concurrency()));
  meta.set("unix_time_s", static_cast<long>(std::time(nullptr)));
  return meta;
}

/// Assembles the schema-v2 envelope around a bench's knobs and metrics.
inline common::Json bench_doc(const std::string& name, bool pass,
                              common::Json knobs, common::Json metrics) {
  common::Json doc = common::Json::object();
  doc.set("schema", 2);
  doc.set("bench", name);
  doc.set("pass", pass);
  doc.set("meta", run_meta());
  doc.set("knobs", std::move(knobs));
  doc.set("metrics", std::move(metrics));
  return doc;
}

/// Writes `doc` to BENCH_<name>.json in the working directory.
inline bool write_bench_json(const std::string& name,
                             const common::Json& doc) {
  const std::string path = "BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << doc.dump(2) << '\n';
  out.flush();
  if (!out) return false;
  std::printf("wrote %s\n", path.c_str());
  return true;
}

/// Exact q-th percentile of the samples (nearest-rank on a sorted copy);
/// 0 when there are no samples.
inline double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

}  // namespace lpvs::bench

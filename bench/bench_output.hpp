// Machine-readable bench output: benches that back a performance claim
// write a BENCH_<name>.json next to their stdout tables, so CI and
// regression tooling can diff runs without scraping text.
#pragma once

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "lpvs/common/json.hpp"

namespace lpvs::bench {

/// Writes `doc` to BENCH_<name>.json in the working directory.
inline bool write_bench_json(const std::string& name,
                             const common::Json& doc) {
  const std::string path = "BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << doc.dump(2) << '\n';
  out.flush();
  if (!out) return false;
  std::printf("wrote %s\n", path.c_str());
  return true;
}

/// Exact q-th percentile of the samples (nearest-rank on a sorted copy);
/// 0 when there are no samples.
inline double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

}  // namespace lpvs::bench

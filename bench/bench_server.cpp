// Serving front-end throughput/latency: the multi-reactor EdgeServerDaemon
// under the open-loop load generator, over loopback, sweeping the worker
// count at increasing fleet sizes.
//
// Reports sustained sessions/sec and slots/sec plus the client-observed
// request→schedule latency (p50 / p99, which includes the cluster barrier
// and the scheduler's solve) — the numbers a capacity plan for the paper's
// edge deployment (§V) starts from, and the data behind the worker-count
// sizing guidance in docs/server.md.  Emits BENCH_server.json.
#include <cstdio>

#include "bench_output.hpp"
#include "lpvs/common/table.hpp"
#include "lpvs/core/scheduler.hpp"
#include "lpvs/loadgen/loadgen.hpp"
#include "lpvs/obs/metrics.hpp"
#include "lpvs/server/server.hpp"
#include "lpvs/survey/lba_curve.hpp"

namespace {

using namespace lpvs;

struct FleetShape {
  std::uint32_t clusters;
  std::uint32_t cluster_size;
  std::uint32_t slots;
};

}  // namespace

int main() {
  std::printf(
      "=== Edge-server daemon under open-loop load (loopback), worker sweep "
      "===\n\n");

  const survey::AnxietyModel anxiety = survey::AnxietyModel::reference();
  const core::LpvsScheduler scheduler;

  const FleetShape shapes[] = {
      {8, 4, 100},   // 32 sessions
      {16, 8, 100},  // 128 sessions
      {32, 8, 100},  // 256 sessions
  };
  const std::uint32_t worker_counts[] = {1, 2, 4, 8};

  common::Table table({"workers", "sessions", "slots", "elapsed s",
                       "sessions/s", "slots/s", "p50 ms", "p99 ms"});
  common::Json rows = common::Json::array();
  bool all_clean = true;

  for (const std::uint32_t workers : worker_counts) {
    for (const FleetShape& shape : shapes) {
      obs::MetricsRegistry registry;
      const server::ServerConfig server_config =
          server::ServerConfig{}.with_seed(7).with_workers(workers);
      server::EdgeServerDaemon daemon(
          server_config, scheduler,
          core::RunContext(anxiety).with_metrics(&registry));
      if (!daemon.start().ok()) {
        std::fprintf(stderr, "daemon failed to start\n");
        return 1;
      }

      loadgen::LoadGenConfig load;
      load.port = daemon.port();
      load.clusters = shape.clusters;
      load.cluster_size = shape.cluster_size;
      load.slots = shape.slots;
      load.threads = 8;
      load.seed = 7;
      load.metrics = &registry;

      auto report = loadgen::run_load(load);
      if (!report.ok()) {
        std::fprintf(stderr, "loadgen: %s\n",
                     report.status().to_string().c_str());
        return 1;
      }
      if (!daemon.drain(30000).ok()) all_clean = false;
      const server::ServerStats stats = daemon.stats();

      const long sessions = report->sessions;
      const double sessions_per_s =
          report->elapsed_s > 0.0
              ? static_cast<double>(sessions) / report->elapsed_s
              : 0.0;
      const double slots_per_s =
          report->elapsed_s > 0.0
              ? static_cast<double>(report->slots_driven) / report->elapsed_s
              : 0.0;
      if (report->completed != sessions || report->transport_errors != 0 ||
          stats.forced_closes != 0) {
        all_clean = false;
      }

      table.add_row({std::to_string(workers), std::to_string(sessions),
                     std::to_string(report->slots_driven),
                     common::Table::num(report->elapsed_s, 2),
                     common::Table::num(sessions_per_s, 1),
                     common::Table::num(slots_per_s, 1),
                     common::Table::num(report->latency_p50_ms, 3),
                     common::Table::num(report->latency_p99_ms, 3)});

      common::Json row = common::Json::object();
      row.set("workers", static_cast<long>(workers));
      row.set("sessions", sessions);
      row.set("clusters", static_cast<long>(shape.clusters));
      row.set("cluster_size", static_cast<long>(shape.cluster_size));
      row.set("slots_per_session", static_cast<long>(shape.slots));
      row.set("slots_driven", report->slots_driven);
      row.set("elapsed_s", report->elapsed_s);
      row.set("sessions_per_sec", sessions_per_s);
      row.set("slots_per_sec", slots_per_s);
      row.set("request_schedule_p50_ms", report->latency_p50_ms);
      row.set("request_schedule_p99_ms", report->latency_p99_ms);
      row.set("server_slots_scheduled", stats.slots_scheduled);
      row.set("server_sessions_completed", stats.sessions_completed);
      rows.push(std::move(row));
    }
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("clean run (all sessions orderly, zero errors): %s\n",
              all_clean ? "PASS" : "FAIL");

  common::Json knobs = common::Json::object();
  knobs.set("seed", 7);
  knobs.set("loadgen_threads", 8);
  common::Json worker_sweep = common::Json::array();
  for (const std::uint32_t workers : worker_counts) {
    worker_sweep.push(static_cast<long>(workers));
  }
  knobs.set("workers", std::move(worker_sweep));
  common::Json fleet_sweep = common::Json::array();
  for (const FleetShape& shape : shapes) {
    common::Json fleet = common::Json::object();
    fleet.set("clusters", static_cast<long>(shape.clusters));
    fleet.set("cluster_size", static_cast<long>(shape.cluster_size));
    fleet.set("slots_per_session", static_cast<long>(shape.slots));
    fleet_sweep.push(std::move(fleet));
  }
  knobs.set("fleets", std::move(fleet_sweep));

  const bool wrote = lpvs::bench::write_bench_json(
      "server",
      lpvs::bench::bench_doc("server", all_clean, std::move(knobs),
                             std::move(rows)));
  return all_clean && wrote ? 0 : 1;
}

// Serving front-end throughput/latency and the data-path syscall budget:
// the multi-reactor EdgeServerDaemon under the open-loop load generator,
// over loopback, sweeping the I/O backend (epoll / poll / io_uring when
// the kernel has it) x worker count with burst coalescing on, plus
// per-frame and per-member flush baselines so the coalescing win is
// measured against like-for-like traffic.
//
// Reports, per cell: sustained sessions/sec, client-observed
// request→schedule latency (p50 / p99 — includes the cluster barrier and
// the scheduler's solve), and the daemon's own lpvs_io_* syscall ledger
// normalized per session (total / read / write / io_uring_enter).  The
// self-check gates the headline claims: burst coalescing must cut write
// syscalls >= 30% against its baseline (uring burst vs epoll per-member
// when the kernel has uring; epoll burst vs epoll per-frame always), and
// uring's p99 must stay within tolerance of epoll's.  Emits
// BENCH_server.json (schema v2).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_output.hpp"
#include "lpvs/common/table.hpp"
#include "lpvs/core/scheduler.hpp"
#include "lpvs/loadgen/loadgen.hpp"
#include "lpvs/obs/metrics.hpp"
#include "lpvs/server/server.hpp"
#include "lpvs/survey/lba_curve.hpp"

namespace {

using namespace lpvs;
using Backend = server::EventLoop::Backend;
using server::FlushMode;

constexpr std::uint32_t kClusters = 16;
constexpr std::uint32_t kClusterSize = 8;  // 128 sessions
constexpr std::uint32_t kSlots = 100;

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kEpoll:
      return "epoll";
    case Backend::kPoll:
      return "poll";
    case Backend::kUring:
      return "uring";
    default:
      return "auto";
  }
}

const char* mode_name(FlushMode mode) {
  switch (mode) {
    case FlushMode::kPerFrame:
      return "per_frame";
    case FlushMode::kPerMember:
      return "per_member";
    case FlushMode::kBurst:
      return "burst";
  }
  return "?";
}

struct Cell {
  Backend backend;
  std::uint32_t workers;
  FlushMode mode;

  // Measured.
  long sessions = 0;
  double sessions_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double syscalls_per_session = 0.0;
  double read_syscalls_per_session = 0.0;
  double write_syscalls_per_session = 0.0;
  double enters_per_session = 0.0;
  long fallbacks = 0;
  bool clean = false;
};

bool run_cell(const survey::AnxietyModel& anxiety,
              const core::LpvsScheduler& scheduler, Cell& cell) {
  obs::MetricsRegistry registry;
  const server::ServerConfig server_config = server::ServerConfig{}
                                                 .with_seed(7)
                                                 .with_workers(cell.workers)
                                                 .with_backend(cell.backend)
                                                 .with_flush_mode(cell.mode);
  server::EdgeServerDaemon daemon(
      server_config, scheduler,
      core::RunContext(anxiety).with_metrics(&registry));
  if (!daemon.start().ok()) {
    std::fprintf(stderr, "daemon failed to start\n");
    return false;
  }

  loadgen::LoadGenConfig load;
  load.port = daemon.port();
  load.clusters = kClusters;
  load.cluster_size = kClusterSize;
  load.slots = kSlots;
  load.threads = 8;
  load.seed = 7;
  load.metrics = &registry;

  auto report = loadgen::run_load(load);
  if (!report.ok()) {
    std::fprintf(stderr, "loadgen: %s\n", report.status().to_string().c_str());
    return false;
  }
  const bool drained = daemon.drain(30000).ok();
  const server::ServerStats stats = daemon.stats();

  cell.sessions = report->sessions;
  cell.sessions_per_s =
      report->elapsed_s > 0.0
          ? static_cast<double>(report->sessions) / report->elapsed_s
          : 0.0;
  cell.p50_ms = report->latency_p50_ms;
  cell.p99_ms = report->latency_p99_ms;
  const double sessions = cell.sessions > 0 ? cell.sessions : 1.0;
  cell.syscalls_per_session = static_cast<double>(stats.io_syscalls) / sessions;
  cell.read_syscalls_per_session =
      static_cast<double>(stats.io_read_syscalls) / sessions;
  cell.write_syscalls_per_session =
      static_cast<double>(stats.io_write_syscalls) / sessions;
  cell.enters_per_session =
      static_cast<double>(stats.io_uring_enters) / sessions;
  cell.fallbacks = stats.backend_fallbacks;
  cell.clean = drained && report->completed == report->sessions &&
               report->transport_errors == 0 && stats.forced_closes == 0 &&
               stats.backend_fallbacks == 0;
  return true;
}

const Cell* find(const std::vector<Cell>& cells, Backend backend,
                 std::uint32_t workers, FlushMode mode) {
  for (const Cell& cell : cells) {
    if (cell.backend == backend && cell.workers == workers &&
        cell.mode == mode) {
      return &cell;
    }
  }
  return nullptr;
}

}  // namespace

int main() {
  const bool uring = server::EventLoop::uring_supported();
  std::printf(
      "=== Edge-server daemon: I/O backend x worker sweep, syscall budget "
      "(loopback, %u sessions x %u slots) ===\n"
      "io_uring: %s\n\n",
      kClusters * kClusterSize, kSlots,
      uring ? "SUPPORTED" : "UNSUPPORTED (uring cells skipped)");

  const survey::AnxietyModel anxiety = survey::AnxietyModel::reference();
  const core::LpvsScheduler scheduler;

  std::vector<Backend> backends = {Backend::kEpoll, Backend::kPoll};
  if (uring) backends.push_back(Backend::kUring);

  // The sweep: every backend x {1,2,8} workers with burst coalescing on
  // (the production configuration), plus per-frame and per-member flush
  // baselines at 2 workers per backend — the denominators of the
  // coalescing claim.
  std::vector<Cell> cells;
  for (const Backend backend : backends) {
    for (const std::uint32_t workers : {1u, 2u, 8u}) {
      cells.push_back(Cell{backend, workers, FlushMode::kBurst});
    }
    cells.push_back(Cell{backend, 2, FlushMode::kPerFrame});
    cells.push_back(Cell{backend, 2, FlushMode::kPerMember});
  }

  bool all_clean = true;
  for (Cell& cell : cells) {
    if (!run_cell(anxiety, scheduler, cell)) return 1;
    all_clean = all_clean && cell.clean;
  }

  common::Table table({"backend", "workers", "flush", "sessions/s", "p50 ms",
                       "p99 ms", "sys/sess", "rd/sess", "wr/sess",
                       "enter/sess"});
  common::Json rows = common::Json::array();
  for (const Cell& cell : cells) {
    table.add_row({backend_name(cell.backend), std::to_string(cell.workers),
                   mode_name(cell.mode),
                   common::Table::num(cell.sessions_per_s, 1),
                   common::Table::num(cell.p50_ms, 3),
                   common::Table::num(cell.p99_ms, 3),
                   common::Table::num(cell.syscalls_per_session, 1),
                   common::Table::num(cell.read_syscalls_per_session, 1),
                   common::Table::num(cell.write_syscalls_per_session, 1),
                   common::Table::num(cell.enters_per_session, 1)});

    common::Json row = common::Json::object();
    row.set("backend", backend_name(cell.backend));
    row.set("workers", static_cast<long>(cell.workers));
    row.set("flush_mode", mode_name(cell.mode));
    row.set("sessions", cell.sessions);
    row.set("sessions_per_sec", cell.sessions_per_s);
    row.set("request_schedule_p50_ms", cell.p50_ms);
    row.set("request_schedule_p99_ms", cell.p99_ms);
    row.set("io_syscalls_per_session", cell.syscalls_per_session);
    row.set("io_read_syscalls_per_session", cell.read_syscalls_per_session);
    row.set("io_write_syscalls_per_session", cell.write_syscalls_per_session);
    row.set("io_uring_enters_per_session", cell.enters_per_session);
    row.set("backend_fallbacks", cell.fallbacks);
    row.set("clean", cell.clean);
    rows.push(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());

  // --- Self-check: the claims this bench exists to defend ------------------
  bool gates_pass = all_clean;
  std::printf("clean run (all sessions orderly, zero errors, no fallbacks): "
              "%s\n",
              all_clean ? "PASS" : "FAIL");

  // Gate 1 (always available): cross-member burst coalescing on epoll cuts
  // write syscalls >= 30% vs the one-write-per-frame baseline.
  const Cell* epoll_frame = find(cells, Backend::kEpoll, 2,
                                 FlushMode::kPerFrame);
  const Cell* epoll_member = find(cells, Backend::kEpoll, 2,
                                  FlushMode::kPerMember);
  const Cell* epoll_burst = find(cells, Backend::kEpoll, 2, FlushMode::kBurst);
  if (epoll_frame && epoll_burst &&
      epoll_frame->write_syscalls_per_session > 0.0) {
    const double reduction = 1.0 - epoll_burst->write_syscalls_per_session /
                                       epoll_frame->write_syscalls_per_session;
    const bool ok = reduction >= 0.30;
    gates_pass = gates_pass && ok;
    std::printf("write-syscall reduction, epoll burst vs per_frame: %.1f%% "
                "(>= 30%%): %s\n",
                reduction * 100.0, ok ? "PASS" : "FAIL");
  } else {
    gates_pass = false;
  }

  // Gate 2 (uring hosts): one io_uring_enter per burst beats epoll's
  // one-writev-per-member floor by >= 30%.
  const Cell* uring_burst =
      uring ? find(cells, Backend::kUring, 2, FlushMode::kBurst) : nullptr;
  if (uring_burst && epoll_member &&
      epoll_member->write_syscalls_per_session > 0.0) {
    const double reduction =
        1.0 - uring_burst->write_syscalls_per_session /
                  epoll_member->write_syscalls_per_session;
    const bool ok = reduction >= 0.30;
    gates_pass = gates_pass && ok;
    std::printf("write-syscall reduction, uring burst vs epoll per_member: "
                "%.1f%% (>= 30%%): %s\n",
                reduction * 100.0, ok ? "PASS" : "FAIL");
  } else if (uring) {
    gates_pass = false;
  }

  // Gate 3 (uring hosts): batching must not cost latency — uring p99 within
  // tolerance of the epoll baseline (loopback p99 is noisy; allow 1.3x plus
  // half a millisecond of absolute slack).
  if (uring_burst && epoll_burst) {
    const double limit = epoll_burst->p99_ms * 1.3 + 0.5;
    const bool ok = uring_burst->p99_ms <= limit;
    gates_pass = gates_pass && ok;
    std::printf("request->schedule p99, uring %.3f ms vs epoll %.3f ms "
                "(limit %.3f ms): %s\n",
                uring_burst->p99_ms, epoll_burst->p99_ms, limit,
                ok ? "PASS" : "FAIL");
  }

  common::Json knobs = common::Json::object();
  knobs.set("seed", 7);
  knobs.set("loadgen_threads", 8);
  knobs.set("clusters", static_cast<long>(kClusters));
  knobs.set("cluster_size", static_cast<long>(kClusterSize));
  knobs.set("slots_per_session", static_cast<long>(kSlots));
  knobs.set("uring_supported", uring);
  common::Json backend_sweep = common::Json::array();
  for (const Backend backend : backends) {
    backend_sweep.push(std::string(backend_name(backend)));
  }
  knobs.set("backends", std::move(backend_sweep));

  const bool wrote = lpvs::bench::write_bench_json(
      "server", lpvs::bench::bench_doc("server", gates_pass, std::move(knobs),
                                       std::move(rows)));
  return gates_pass && wrote ? 0 : 1;
}

// The paper's motivating comparison (SI/SII-B): display savings from
// content transforms vs the cost of computing those transforms on the
// phone, across the device catalog — "the expected energy saving on
// mobile devices can be offset or even negated", while edge offload keeps
// the full saving.  Includes per-pixel pipeline throughput via the real
// frame path.
#include <chrono>
#include <cstdio>

#include "lpvs/common/table.hpp"
#include "lpvs/transform/offload.hpp"
#include "lpvs/transform/pixel_pipeline.hpp"

int main() {
  using namespace lpvs;

  const transform::TransformEngine engine;
  const transform::OnDeviceCostModel cost_model;
  media::ContentGenerator generator(8);
  const media::Video video = generator.generate(
      common::VideoId{1}, media::Genre::kMovie, 30, 3.0);

  std::printf("=== on-device vs edge transform: net power saving ===\n\n");
  common::Table table({"device", "panel", "display saving mW",
                       "on-device cost mW", "net on-device mW",
                       "net w/ edge mW", "verdict"});
  const auto& catalog = display::DeviceCatalog::standard();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const auto& profile = catalog.at(i);
    const transform::OffloadAnalysis a = transform::analyze_offload(
        engine, cost_model, profile.spec, video);
    table.add_row({profile.name, display::to_string(profile.spec.type),
                   common::Table::num(a.display_saving.value, 0),
                   common::Table::num(a.on_device_cost.value, 0),
                   common::Table::num(a.net_on_device_saving.value, 0),
                   common::Table::num(a.net_edge_saving.value, 0),
                   a.on_device_negated() ? "NEGATED locally"
                                         : "reduced locally"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper's claim: per-pixel transforming on the device offsets\n"
              "or negates the saving, especially at high resolution; the\n"
              "edge keeps it whole.  (SII-B, motivation for LPVS.)\n\n");

  // Per-pixel pipeline throughput on the real frame path: what one edge
  // compute unit actually has to sustain.
  std::printf("=== per-pixel pipeline throughput (real frames) ===\n\n");
  const transform::PixelPipeline pipeline;
  media::FrameSynthesizer synth(3);
  struct Resolution {
    int w;
    int h;
    const char* label;
  };
  for (const Resolution& r : {Resolution{320, 180, "180p proxy"},
                              Resolution{640, 360, "360p"},
                              Resolution{1280, 720, "720p"}}) {
    const int w = r.w;
    const int h = r.h;
    const char* label = r.label;
    const media::Frame frame =
        synth.render_genre(media::Genre::kBrightGame, w, h);
    const display::DisplaySpec spec{display::DisplayType::kOled, 6.1,
                                    w, h, 700.0, 0.8};
    const auto t0 = std::chrono::steady_clock::now();
    int frames = 0;
    double saving = 0.0;
    while (frames < 40) {
      const auto report = pipeline.transform_frame(spec, frame);
      saving = report.display_saving_fraction();
      ++frames;
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double ms_per_frame =
        std::chrono::duration<double, std::milli>(t1 - t0).count() / frames;
    std::printf("%-11s %4dx%-4d  %6.2f ms/frame (%5.1f fps), display "
                "saving %4.1f%%\n",
                label, w, h, ms_per_frame, 1000.0 / ms_per_frame,
                100.0 * saving);
  }
  return 0;
}

// Micro-benchmarks (google-benchmark) for the end-to-end machinery: survey
// extraction throughput, trace synthesis, one emulated slot at different
// VC sizes, and the signaling cost arithmetic.
#include <benchmark/benchmark.h>

#include "lpvs/common/rng.hpp"
#include "lpvs/core/signaling.hpp"
#include "lpvs/emu/emulator.hpp"
#include "lpvs/obs/event_trace.hpp"
#include "lpvs/obs/metrics.hpp"
#include "lpvs/survey/lba_curve.hpp"
#include "lpvs/survey/population.hpp"
#include "lpvs/trace/trace.hpp"

namespace {

void BM_SurveyExtraction(benchmark::State& state) {
  lpvs::common::Rng rng(1);
  const auto population =
      lpvs::survey::SyntheticPopulation().generate_paper_population(rng);
  for (auto _ : state) {
    lpvs::survey::LbaCurveExtractor extractor;
    extractor.add_population(population);
    benchmark::DoNotOptimize(extractor.extract());
  }
}
BENCHMARK(BM_SurveyExtraction);

void BM_PopulationGeneration(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    lpvs::common::Rng rng(++seed);
    benchmark::DoNotOptimize(
        lpvs::survey::SyntheticPopulation().generate(
            static_cast<int>(state.range(0)), rng));
  }
}
BENCHMARK(BM_PopulationGeneration)->Arg(500)->Arg(2032);

void BM_TraceSynthesis(benchmark::State& state) {
  lpvs::trace::TraceConfig config;
  config.channel_count = static_cast<int>(state.range(0));
  config.session_count = config.channel_count * 3;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lpvs::trace::TwitchLikeGenerator(config).generate(++seed));
  }
}
BENCHMARK(BM_TraceSynthesis)->Arg(100)->Arg(1566);

void BM_EmulatedRun(benchmark::State& state) {
  const lpvs::survey::AnxietyModel anxiety =
      lpvs::survey::AnxietyModel::reference();
  const lpvs::core::LpvsScheduler scheduler;
  lpvs::emu::EmulatorConfig config;
  config.group_size = static_cast<int>(state.range(0));
  config.slots = 4;
  config.chunks_per_slot = 15;
  config.enable_giveup = false;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    config.seed = ++seed;
    lpvs::emu::Emulator emulator(config, scheduler,
                                 lpvs::core::RunContext(anxiety));
    benchmark::DoNotOptimize(emulator.run());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EmulatedRun)->Arg(25)->Arg(50)->Arg(100)->Complexity();

// Same run with a live MetricsRegistry + EventTrace attached; the
// acceptance bar for the observability layer is <= 5% over BM_EmulatedRun
// at the same group size.
void BM_EmulatedRunObserved(benchmark::State& state) {
  const lpvs::survey::AnxietyModel anxiety =
      lpvs::survey::AnxietyModel::reference();
  const lpvs::core::LpvsScheduler scheduler;
  lpvs::emu::EmulatorConfig config;
  config.group_size = static_cast<int>(state.range(0));
  config.slots = 4;
  config.chunks_per_slot = 15;
  config.enable_giveup = false;
  lpvs::obs::MetricsRegistry registry;
  lpvs::obs::EventTrace trace;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    config.seed = ++seed;
    lpvs::emu::Emulator emulator(
        config, scheduler,
        lpvs::core::RunContext(anxiety, &registry, &trace));
    benchmark::DoNotOptimize(emulator.run());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EmulatedRunObserved)->Arg(25)->Arg(50)->Arg(100)->Complexity();

void BM_SignalingCost(benchmark::State& state) {
  const lpvs::core::SignalingCostModel model;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.report_power(lpvs::core::ReportSchema{}, 30,
                           lpvs::common::kSlotLength));
  }
}
BENCHMARK(BM_SignalingCost);

}  // namespace

BENCHMARK_MAIN();

// Ablation — Bayesian gamma tracking (SV-D): how much does learning the
// per-device power-reduction ratio matter?  Compares scheduling with (a)
// the conjugate Bayesian posterior, (b) the fixed Table I prior mean, and
// (c) an oracle that knows each slot's true gamma, under scarce capacity
// where mis-ranking devices costs real energy.
#include <cstdio>

#include "lpvs/common/stats.hpp"
#include "lpvs/common/table.hpp"
#include "lpvs/emu/emulator.hpp"

int main() {
  using namespace lpvs;

  const survey::AnxietyModel anxiety = survey::AnxietyModel::reference();
  const core::RunContext context(anxiety);
  const core::LpvsScheduler scheduler;

  std::printf("=== Ablation: gamma knowledge (Bayesian vs fixed vs oracle) "
              "===\n\n");
  common::Table table({"gamma mode", "energy saving %", "est. error",
                       "selected/slot"});
  const struct {
    emu::GammaMode mode;
    const char* name;
  } modes[] = {
      {emu::GammaMode::kFixedPrior, "fixed prior (mu=0.31)"},
      {emu::GammaMode::kBayesian, "bayesian (paper)"},
      {emu::GammaMode::kNigBayesian, "NIG bayesian (extension)"},
      {emu::GammaMode::kOracle, "oracle (true gamma)"},
  };
  for (const auto& m : modes) {
    common::RunningStats saving;
    common::RunningStats error;
    common::RunningStats selected;
    for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
      emu::EmulatorConfig config;
      config.group_size = 120;
      config.slots = 24;
      config.chunks_per_slot = 20;
      config.compute_capacity = 18.0;  // ~40 devices' worth: scarce
      config.gamma_mode = m.mode;
      config.enable_giveup = false;
      config.seed = 31000 + seed;
      const emu::PairedMetrics paired =
          emu::run_paired(config, scheduler, context);
      saving.add(100.0 * paired.energy_saving_ratio());
      selected.add(static_cast<double>(paired.with_lpvs.total_selected) /
                   paired.with_lpvs.slots_run);
      for (std::size_t n = 0; n < paired.with_lpvs.served.size(); ++n) {
        if (!paired.with_lpvs.served[n]) continue;
        error.add(std::abs(paired.with_lpvs.last_gamma_estimate[n] -
                           paired.with_lpvs.mean_true_gamma[n]));
      }
    }
    table.add_row({m.name, common::Table::num(saving.mean(), 2),
                   common::Table::num(error.mean(), 3),
                   common::Table::num(selected.mean(), 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected ordering: oracle >= bayesian >= fixed prior, with\n"
              "bayesian recovering most of the oracle's advantage after a\n"
              "few observed slots.\n");
  return 0;
}

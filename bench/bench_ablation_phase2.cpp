// Ablation — the two-phase heuristic (SV-C): Phase-1 only (energy ILP) vs
// Phase-1 + Phase-2 (anxiety swaps) vs the exact joint optimum (possible in
// the reproduction because objective (13) is separable across devices).
// Validates that the paper's cheap swap phase recovers nearly all of the
// anxiety benefit the full nonlinear program would.
#include <cstdio>

#include "lpvs/common/rng.hpp"
#include "lpvs/common/table.hpp"
#include "lpvs/core/scheduler.hpp"

namespace {

lpvs::core::SlotProblem make_problem(lpvs::common::Rng& rng, int devices,
                                     double lambda) {
  lpvs::core::SlotProblem problem;
  problem.lambda = lambda;
  problem.compute_capacity = 45.0;
  problem.storage_capacity = 32.0 * 1024.0;
  for (int n = 0; n < devices; ++n) {
    lpvs::core::DeviceSlotInput device;
    device.id = lpvs::common::DeviceId{static_cast<std::uint32_t>(n)};
    device.power_rates_mw.resize(30);
    device.chunk_durations_s.assign(30, 10.0);
    for (auto& p : device.power_rates_mw) p = rng.uniform(400.0, 1100.0);
    device.battery_capacity_mwh = rng.uniform(2500.0, 4500.0);
    device.initial_energy_mwh =
        device.battery_capacity_mwh * rng.uniform(0.08, 0.95);
    device.gamma = rng.uniform(0.13, 0.49);
    device.compute_cost = rng.uniform(0.3, 0.8);
    device.storage_cost = rng.uniform(50.0, 150.0);
    problem.devices.push_back(std::move(device));
  }
  return problem;
}

}  // namespace

int main() {
  using namespace lpvs;

  const survey::AnxietyModel anxiety = survey::AnxietyModel::reference();
  const core::RunContext context(anxiety);
  const core::LpvsScheduler lpvs_scheduler;
  const core::JointOptimalScheduler joint(core::scheduler_ilp_defaults());

  std::printf("=== Ablation: Phase-2 anxiety swapping ===\n");
  std::printf("(limited capacity, lambda sweeps; objective (13), lower is "
              "better; gap vs exact joint optimum)\n\n");
  common::Table table({"lambda", "phase1 obj", "phase1+2 obj", "joint obj",
                       "p1 gap %", "p1+2 gap %", "swaps"});
  common::Rng rng(42);
  for (double lambda : {0.0, 2000.0, 10000.0, 50000.0}) {
    const core::SlotProblem problem = make_problem(rng, 250, lambda);
    const core::Schedule p1 =
        lpvs_scheduler.schedule_phase1_only(problem, context);
    const core::Schedule p12 = lpvs_scheduler.schedule(problem, context);
    const core::Schedule opt = joint.schedule(problem, context);
    const double base = p1.baseline_objective;
    auto gap = [&](const core::Schedule& s) {
      // Fraction of the achievable objective reduction left on the table.
      const double achievable = base - opt.objective;
      return achievable > 0.0
                 ? 100.0 * (s.objective - opt.objective) / achievable
                 : 0.0;
    };
    table.add_row({common::Table::num(lambda, 0),
                   common::Table::num(p1.objective, 0),
                   common::Table::num(p12.objective, 0),
                   common::Table::num(opt.objective, 0),
                   common::Table::num(gap(p1), 2),
                   common::Table::num(gap(p12), 2),
                   std::to_string(p12.phase2_swaps +
                                  p12.phase2_additions)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected: with lambda = 0 Phase-1 is already optimal; as\n"
              "lambda grows Phase-1 leaves a gap that Phase-2 closes almost\n"
              "entirely at a fraction of the joint solve's cost.\n");
  return 0;
}

// City-scale trace replay (reproduction extension): the full synthetic
// Twitch trace, one virtual cluster + edge server per major live session,
// paired with/without-LPVS emulation, aggregated city-wide — what a
// provider deploying LPVS across a metro's base stations would see.
#include <chrono>
#include <cstdio>

#include "bench_output.hpp"
#include "lpvs/common/table.hpp"
#include "lpvs/emu/replay.hpp"
#include "lpvs/obs/metrics.hpp"

int main() {
  using namespace lpvs;

  const trace::Trace twitch = trace::TwitchLikeGenerator().generate(77);
  const survey::AnxietyModel anxiety = survey::AnxietyModel::reference();
  obs::MetricsRegistry registry;
  const core::RunContext context =
      core::RunContext(anxiety).with_metrics(&registry);
  const core::LpvsScheduler scheduler;

  emu::ReplayConfig config;
  config.start_slot = twitch.horizon_slots() / 2;
  config.min_viewers = 40;
  config.max_clusters = 12;
  config.max_slots = 18;
  config.enable_giveup = true;
  config.seed = 99;

  const auto t0 = std::chrono::steady_clock::now();
  const emu::ReplayReport report =
      emu::replay_city(twitch, scheduler, context, config);
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  std::printf("=== city-scale LPVS replay ===\n\n");
  std::printf("clusters: %zu, devices: %ld, slot horizon: <= %d\n\n",
              report.clusters.size(), report.total_devices,
              config.max_slots);

  common::Table table({"channel", "devices", "slots", "energy saved %",
                       "anxiety red. %", "served slots"});
  for (const emu::ClusterOutcome& cluster : report.clusters) {
    table.add_row(
        {"ch-" + std::to_string(cluster.channel.value),
         std::to_string(cluster.group_size), std::to_string(cluster.slots),
         common::Table::num(100.0 * cluster.metrics.energy_saving_ratio(),
                            1),
         common::Table::num(
             100.0 * cluster.metrics.anxiety_reduction_ratio(), 2),
         std::to_string(cluster.metrics.with_lpvs.total_selected)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("city-wide energy saving:     %.2f%%\n",
              100.0 * report.energy_saving_ratio());
  std::printf("city-wide anxiety reduction: %.2f%% (viewer-weighted)\n",
              100.0 * report.anxiety_reduction_ratio());
  std::printf("low-battery TPV:             %.1f min -> %.1f min\n",
              report.mean_low_battery_tpv(false),
              report.mean_low_battery_tpv(true));
  std::printf("mean scheduler time/slot:    %.2f ms\n",
              report.mean_scheduler_ms);

  // Machine-readable contract: throughput, slot-solve latency quantiles
  // (from the scheduler's own solve-time histogram), and search effort.
  long cluster_slots = 0;
  for (const emu::ClusterOutcome& cluster : report.clusters) {
    cluster_slots += cluster.slots;
  }
  const obs::Histogram& solve_ms =
      registry.histogram("lpvs_scheduler_solve_ms",
                         obs::MetricsRegistry::time_buckets_ms());
  common::Json knobs = common::Json::object();
  knobs.set("seed", static_cast<long>(config.seed));
  knobs.set("trace_seed", 77);
  knobs.set("min_viewers", config.min_viewers);
  knobs.set("max_clusters", config.max_clusters);
  knobs.set("max_slots", config.max_slots);

  common::Json row = common::Json::object();
  row.set("clusters", static_cast<long>(report.clusters.size()));
  row.set("devices", report.total_devices);
  row.set("cluster_slots", cluster_slots);
  row.set("wall_ms", wall_ms);
  row.set("slots_per_sec",
          wall_ms > 0.0 ? 1000.0 * static_cast<double>(cluster_slots) /
                              wall_ms
                        : 0.0);
  common::Json latency = common::Json::object();
  latency.set("mean_ms", report.mean_scheduler_ms);
  latency.set("p50_ms", solve_ms.quantile(0.5));
  latency.set("p99_ms", solve_ms.quantile(0.99));
  row.set("slot_latency", std::move(latency));
  row.set("ilp_nodes_total",
          static_cast<long>(
              registry.counter("lpvs_scheduler_ilp_nodes_total").value()));
  row.set("energy_saving_ratio", report.energy_saving_ratio());
  row.set("anxiety_reduction_ratio", report.anxiety_reduction_ratio());
  common::Json metrics = common::Json::array();
  metrics.push(std::move(row));
  return lpvs::bench::write_bench_json(
             "trace_replay", lpvs::bench::bench_doc("trace_replay", true,
                                                    std::move(knobs),
                                                    std::move(metrics)))
             ? 0
             : 1;
}

// City-scale trace replay (reproduction extension): the full synthetic
// Twitch trace, one virtual cluster + edge server per major live session,
// paired with/without-LPVS emulation, aggregated city-wide — what a
// provider deploying LPVS across a metro's base stations would see.
#include <cstdio>

#include "lpvs/common/table.hpp"
#include "lpvs/emu/replay.hpp"

int main() {
  using namespace lpvs;

  const trace::Trace twitch = trace::TwitchLikeGenerator().generate(77);
  const survey::AnxietyModel anxiety = survey::AnxietyModel::reference();
  const core::RunContext context(anxiety);
  const core::LpvsScheduler scheduler;

  emu::ReplayConfig config;
  config.start_slot = twitch.horizon_slots() / 2;
  config.min_viewers = 40;
  config.max_clusters = 12;
  config.max_slots = 18;
  config.enable_giveup = true;
  config.seed = 99;

  const emu::ReplayReport report =
      emu::replay_city(twitch, scheduler, context, config);

  std::printf("=== city-scale LPVS replay ===\n\n");
  std::printf("clusters: %zu, devices: %ld, slot horizon: <= %d\n\n",
              report.clusters.size(), report.total_devices,
              config.max_slots);

  common::Table table({"channel", "devices", "slots", "energy saved %",
                       "anxiety red. %", "served slots"});
  for (const emu::ClusterOutcome& cluster : report.clusters) {
    table.add_row(
        {"ch-" + std::to_string(cluster.channel.value),
         std::to_string(cluster.group_size), std::to_string(cluster.slots),
         common::Table::num(100.0 * cluster.metrics.energy_saving_ratio(),
                            1),
         common::Table::num(
             100.0 * cluster.metrics.anxiety_reduction_ratio(), 2),
         std::to_string(cluster.metrics.with_lpvs.total_selected)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("city-wide energy saving:     %.2f%%\n",
              100.0 * report.energy_saving_ratio());
  std::printf("city-wide anxiety reduction: %.2f%% (viewer-weighted)\n",
              100.0 * report.anxiety_reduction_ratio());
  std::printf("low-battery TPV:             %.1f min -> %.1f min\n",
              report.mean_low_battery_tpv(false),
              report.mean_low_battery_tpv(true));
  std::printf("mean scheduler time/slot:    %.2f ms\n",
              report.mean_scheduler_ms);
  return 0;
}

// Fig. 8 — LPVS with limited edge resource: VC sizes 100-500 under one
// ~100-stream edge server, swept over the regularization parameter lambda.
//
// Expected shapes: (a) energy saving decreases with group size (a smaller
// fraction can be served) and decreases with lambda (weight shifts away
// from energy); (b) anxiety reduction decreases with group size but
// increases with lambda.
#include <cstdio>

#include "lpvs/common/table.hpp"
#include "lpvs/emu/emulator.hpp"

int main() {
  using namespace lpvs;

  const survey::AnxietyModel anxiety = survey::AnxietyModel::reference();
  const core::RunContext context(anxiety);
  const core::LpvsScheduler scheduler;
  const double lambdas[] = {0.0, 2000.0, 10000.0, 50000.0};

  std::printf("=== Fig. 8(a): energy saving under limited edge resource ===\n");
  std::printf("=== Fig. 8(b): anxiety reduction, same runs ===\n\n");

  common::Table energy_table({"group size", "lambda=0", "lambda=2e3",
                              "lambda=1e4", "lambda=5e4"});
  common::Table anxiety_table({"group size", "lambda=0", "lambda=2e3",
                               "lambda=1e4", "lambda=5e4"});
  for (int group = 100; group <= 500; group += 100) {
    std::vector<std::string> energy_row = {std::to_string(group)};
    std::vector<std::string> anxiety_row = {std::to_string(group)};
    for (const double lambda : lambdas) {
      emu::EmulatorConfig config;
      config.group_size = group;
      config.slots = 12;
      config.chunks_per_slot = 30;
      config.compute_capacity = 45.0;  // fixed server, growing demand
      config.lambda = lambda;
      config.enable_giveup = false;
      config.initial_battery_std = 0.22;
      config.seed = 8000 + static_cast<std::uint64_t>(group);
      const emu::PairedMetrics paired =
          emu::run_paired(config, scheduler, context);
      energy_row.push_back(
          common::Table::num(100.0 * paired.energy_saving_ratio(), 2));
      anxiety_row.push_back(
          common::Table::num(100.0 * paired.anxiety_reduction_ratio(), 2));
    }
    energy_table.add_row(std::move(energy_row));
    anxiety_table.add_row(std::move(anxiety_row));
  }
  std::printf("energy saving %% (Fig. 8a):\n%s\n",
              energy_table.render().c_str());
  std::printf("anxiety reduction %% (Fig. 8b):\n%s\n",
              anxiety_table.render().c_str());
  std::printf("expected shapes: both decrease with group size; energy\n"
              "saving decreases with lambda while anxiety reduction "
              "increases.\n");
  return 0;
}

// QoE x energy x anxiety frontier of the rung policies (joint subsystem's
// headline experiment).
//
// One fleet — 12 users on the committed bench/traces mix (urban LTE, HSDPA
// commute, evening Wi-Fi), identical devices, batteries, and edge
// capacities — streamed under five rung policies:
//
//   fixed-rate    always the top rung (the "just give me quality" client)
//   rate-based    client-side: highest rung under 0.85x the estimate
//   buffer-based  client-side BBA: rung linear in the buffer level
//   bola          client-side BOLA: Lyapunov rung choice, buffer only
//   joint-ilp     server-side: rungs co-optimized with the display
//                 transform in the slot ILP (abr::JointAbrScheduler)
//
// Every policy gets the *same* display-transform scheduling (LPVS Phase
// 1+2) so the frontier isolates the rung decision; only joint-ilp folds
// the rung into the same solve.  Per policy the bench reports mean MPC-
// style QoE score, total energy (display + receive/decode via the ladder's
// affine model), mean anxiety phi(battery), and rebuffer totals.
//
// Acceptance claim (BENCH_abr_frontier.json `pass`): joint-ilp dominates
// fixed-rate AND at least one client-side baseline — QoE no worse and
// energy no higher, strictly better on at least one axis.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_output.hpp"
#include "lpvs/abr/joint.hpp"
#include "lpvs/common/rng.hpp"
#include "lpvs/common/table.hpp"
#include "lpvs/core/run_context.hpp"
#include "lpvs/core/scheduler.hpp"
#include "lpvs/streaming/abr.hpp"
#include "lpvs/streaming/network.hpp"
#include "lpvs/survey/lba_curve.hpp"

namespace {

using namespace lpvs;

constexpr int kUsers = 12;
constexpr int kSlots = 40;
constexpr int kChunksPerSlot = 3;
constexpr double kChunkSeconds = 10.0;
constexpr double kSlotSeconds = kChunksPerSlot * kChunkSeconds;
constexpr double kBufferCapacityS = 60.0;
constexpr double kStartupThresholdS = 10.0;
constexpr double kJointThroughputSafety = 0.35;

const char* kTraceFiles[] = {"lte_urban.txt", "hsdpa_commute.txt",
                             "wifi_tail.txt"};

/// Loads a committed trace whether the bench runs from the repo root or
/// from build/bench.
streaming::ThroughputModel load_trace(const std::string& name, bool& ok) {
  for (const char* prefix :
       {"bench/traces/", "../bench/traces/", "../../bench/traces/"}) {
    auto model = streaming::ThroughputModel::from_trace_file(prefix + name);
    if (model.ok()) return *model;
  }
  std::fprintf(stderr, "cannot load bench/traces/%s\n", name.c_str());
  ok = false;
  return streaming::ThroughputModel{};
}

/// One viewer: device state, its trace-replayed last hop, playout buffer,
/// and the per-session QoE/energy accounting.
struct User {
  core::DeviceSlotInput device;
  streaming::ThroughputModel net;
  double buffer_s = 0.0;
  double estimate_mbps = 3.0;  ///< previous slot's realized throughput
  std::size_t last_rung = 0;
  bool started = false;

  streaming::SessionQoe qoe;
  double bitrate_sum_mbps = 0.0;
  double display_energy_mwh = 0.0;
  double receive_energy_mwh = 0.0;
  double anxiety_sum = 0.0;
};

/// The fleet at slot 0 — identical across policies (regenerated from the
/// same seed, traces phase-shifted per user).
std::vector<User> make_fleet(
    const std::vector<streaming::ThroughputModel>& traces) {
  common::Rng rng(2026);
  std::vector<User> fleet;
  for (int u = 0; u < kUsers; ++u) {
    User user;
    user.device.id = common::DeviceId{static_cast<std::uint32_t>(u + 1)};
    user.device.power_rates_mw.resize(kChunksPerSlot);
    user.device.chunk_durations_s.assign(kChunksPerSlot, kChunkSeconds);
    for (auto& p : user.device.power_rates_mw) p = rng.uniform(550.0, 1100.0);
    user.device.battery_capacity_mwh = rng.uniform(2500.0, 4500.0);
    user.device.initial_energy_mwh =
        user.device.battery_capacity_mwh * rng.uniform(0.15, 0.55);
    user.device.gamma = rng.uniform(0.18, 0.45);
    user.device.compute_cost = rng.uniform(0.3, 0.8);
    user.device.storage_cost = rng.uniform(50.0, 150.0);
    user.net = traces[static_cast<std::size_t>(u) % 3];
    user.net.set_trace_position(static_cast<std::size_t>(5 * u));
    fleet.push_back(std::move(user));
  }
  return fleet;
}

core::SlotProblem display_problem(const std::vector<User>& fleet) {
  core::SlotProblem problem;
  problem.lambda = 2000.0;
  problem.compute_capacity = 0.5 * 0.55 * kUsers;
  problem.storage_capacity = 0.6 * 100.0 * kUsers;
  for (const User& user : fleet) problem.devices.push_back(user.device);
  return problem;
}

/// Plays one slot's chunks at the granted rung against the realized
/// throughput, updating the buffer and QoE accounting.
void play_slot(User& user, double granted_mbps, double realized_mbps) {
  const double link = std::max(realized_mbps, 0.05);
  for (int k = 0; k < kChunksPerSlot; ++k) {
    const double download_s = granted_mbps * kChunkSeconds / link;
    if (!user.started) {
      user.qoe.startup_delay_s += download_s;
      user.buffer_s += kChunkSeconds;
      if (user.buffer_s >= kStartupThresholdS) user.started = true;
    } else {
      if (download_s > user.buffer_s) {
        user.qoe.rebuffer_time_s += download_s - user.buffer_s;
        ++user.qoe.rebuffer_events;
        user.buffer_s = 0.0;
      } else {
        user.buffer_s -= download_s;
      }
      user.buffer_s = std::min(user.buffer_s + kChunkSeconds,
                               kBufferCapacityS);
    }
    user.bitrate_sum_mbps += granted_mbps;
    ++user.qoe.chunks_played;
  }
}

enum class Policy { kFixedRate, kRateBased, kBufferBased, kBola, kJointIlp };

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kFixedRate: return "fixed-rate";
    case Policy::kRateBased: return "rate-based";
    case Policy::kBufferBased: return "buffer-based";
    case Policy::kBola: return "bola";
    case Policy::kJointIlp: return "joint-ilp";
  }
  return "?";
}

struct PolicyResult {
  std::string policy;
  double qoe_score_mean = 0.0;
  double energy_total_mwh = 0.0;
  double display_energy_mwh = 0.0;
  double receive_energy_mwh = 0.0;
  double anxiety_mean = 0.0;
  double mean_bitrate_mbps = 0.0;
  double rebuffer_time_s = 0.0;
  long rebuffer_events = 0;
  long ilp_nodes = 0;
};

PolicyResult run_policy(Policy policy,
                        const std::vector<streaming::ThroughputModel>& traces,
                        const abr::LadderModel& ladder,
                        const survey::AnxietyModel& anxiety) {
  std::vector<User> fleet = make_fleet(traces);
  const std::vector<double>& rungs = ladder.config().rungs_mbps;
  const std::span<const double> ladder_span(rungs);

  std::unique_ptr<streaming::AbrController> controller;
  switch (policy) {
    case Policy::kRateBased:
      controller = std::make_unique<streaming::RateBasedAbr>();
      break;
    case Policy::kBufferBased:
      controller = std::make_unique<streaming::BufferBasedAbr>();
      break;
    case Policy::kBola:
      controller = std::make_unique<streaming::BolaAbr>(
          5.0, kChunkSeconds, kBufferCapacityS);
      break;
    default:
      break;
  }

  const core::LpvsScheduler display_scheduler;
  const abr::JointAbrScheduler joint_scheduler;
  const core::RunContext ctx(anxiety);
  common::Rng net_rng(7);  // trace replay draws nothing from it

  PolicyResult result;
  result.policy = policy_name(policy);

  for (int slot = 0; slot < kSlots; ++slot) {
    // 1. Rung decisions from last slot's state (buffer, stale estimate).
    std::vector<std::size_t> rung(kUsers, 0);
    core::Schedule display;
    if (policy == Policy::kJointIlp) {
      abr::JointSlotProblem joint;
      joint.base = display_problem(fleet);
      for (const User& user : fleet) {
        abr::DeviceStreamState stream;
        stream.buffer_s = user.buffer_s;
        stream.throughput_mbps = user.estimate_mbps;
        joint.streams.push_back(stream);
      }
      joint.ladder = ladder;
      // The admissibility gate is safety * estimate * (1 + buffer/slot);
      // with a 60 s buffer and 30 s slots the relaxation factor reaches 3,
      // so scale safety down so the *fully relaxed* gate sits at ~1.05x
      // the (stale, volatile) estimate — deep buffers may ride through an
      // overshoot, empty buffers get a hard margin.
      joint.throughput_safety = kJointThroughputSafety;
      const abr::JointSchedule schedule = joint_scheduler.schedule(joint, ctx);
      rung = schedule.rung;
      display = schedule.display;
      result.ilp_nodes += schedule.ilp_nodes;
    } else {
      for (int u = 0; u < kUsers; ++u) {
        switch (policy) {
          case Policy::kFixedRate:
            rung[static_cast<std::size_t>(u)] = rungs.size() - 1;
            break;
          default:
            rung[static_cast<std::size_t>(u)] = controller->pick_rung(
                ladder_span, fleet[static_cast<std::size_t>(u)].buffer_s,
                fleet[static_cast<std::size_t>(u)].estimate_mbps);
            break;
        }
      }
      display = display_scheduler.schedule(display_problem(fleet), ctx);
      result.ilp_nodes += display.ilp_nodes;
    }

    // 2. Play the slot and account energy/anxiety per user.
    for (int u = 0; u < kUsers; ++u) {
      User& user = fleet[static_cast<std::size_t>(u)];
      const std::size_t m = rung[static_cast<std::size_t>(u)];
      const double granted = ladder.bitrate_mbps(m);
      const double realized = user.net.sample_mbps(net_rng);

      if (user.started && m != user.last_rung) ++user.qoe.bitrate_switches;
      user.last_rung = m;
      play_slot(user, granted, realized);
      user.estimate_mbps = realized;

      double display_mwh = 0.0;
      for (std::size_t k = 0; k < user.device.power_rates_mw.size(); ++k) {
        display_mwh += user.device.power_rates_mw[k] *
                       user.device.chunk_durations_s[k] / 3600.0;
      }
      if (display.x[static_cast<std::size_t>(u)] != 0) {
        display_mwh *= 1.0 - user.device.gamma;
      }
      const double rx_mwh = ladder.receive_energy_mwh(m, kSlotSeconds);
      user.display_energy_mwh += display_mwh;
      user.receive_energy_mwh += rx_mwh;
      user.device.initial_energy_mwh = std::max(
          0.0, user.device.initial_energy_mwh - display_mwh - rx_mwh);
      user.anxiety_sum += anxiety(user.device.initial_energy_mwh /
                                  user.device.battery_capacity_mwh);
    }
  }

  for (User& user : fleet) {
    user.qoe.mean_bitrate_mbps =
        user.bitrate_sum_mbps / std::max(user.qoe.chunks_played, 1);
    result.qoe_score_mean +=
        user.qoe.score(4.3, 0.5, kChunkSeconds) / kUsers;
    result.display_energy_mwh += user.display_energy_mwh;
    result.receive_energy_mwh += user.receive_energy_mwh;
    result.anxiety_mean += user.anxiety_sum / (kUsers * kSlots);
    result.mean_bitrate_mbps += user.qoe.mean_bitrate_mbps / kUsers;
    result.rebuffer_time_s += user.qoe.rebuffer_time_s;
    result.rebuffer_events += user.qoe.rebuffer_events;
  }
  result.energy_total_mwh =
      result.display_energy_mwh + result.receive_energy_mwh;
  return result;
}

/// Frontier dominance: no worse on both axes, strictly better on one.
bool dominates(const PolicyResult& a, const PolicyResult& b) {
  const bool no_worse =
      a.qoe_score_mean >= b.qoe_score_mean - 1e-9 &&
      a.energy_total_mwh <= b.energy_total_mwh + 1e-9;
  const bool strictly_better =
      a.qoe_score_mean > b.qoe_score_mean + 1e-6 ||
      a.energy_total_mwh < b.energy_total_mwh - 1e-6;
  return no_worse && strictly_better;
}

}  // namespace

int main() {
  bool traces_ok = true;
  std::vector<streaming::ThroughputModel> traces;
  for (const char* name : kTraceFiles) {
    traces.push_back(load_trace(name, traces_ok));
  }
  if (!traces_ok) return 1;

  const survey::AnxietyModel& anxiety = survey::AnxietyModel::reference();
  const abr::LadderModel ladder;

  const Policy policies[] = {Policy::kFixedRate, Policy::kRateBased,
                             Policy::kBufferBased, Policy::kBola,
                             Policy::kJointIlp};
  std::vector<PolicyResult> results;
  for (const Policy policy : policies) {
    results.push_back(run_policy(policy, traces, ladder, anxiety));
  }

  common::Table table({"policy", "qoe", "energy mWh", "rx mWh", "anxiety",
                       "bitrate", "rebuf s", "rebuf #"});
  for (const PolicyResult& r : results) {
    table.add_row({r.policy, common::Table::num(r.qoe_score_mean, 3),
                   common::Table::num(r.energy_total_mwh, 1),
                   common::Table::num(r.receive_energy_mwh, 1),
                   common::Table::num(r.anxiety_mean, 4),
                   common::Table::num(r.mean_bitrate_mbps, 2),
                   common::Table::num(r.rebuffer_time_s, 1),
                   std::to_string(r.rebuffer_events)});
  }
  std::printf("%s\n", table.render().c_str());

  const PolicyResult& joint = results.back();
  const bool beats_fixed = dominates(joint, results[0]);
  bool beats_client = false;
  for (std::size_t i = 1; i + 1 < results.size(); ++i) {
    if (dominates(joint, results[i])) {
      beats_client = true;
      std::printf("joint-ilp dominates %s\n", results[i].policy.c_str());
    }
  }
  const bool pass = beats_fixed && beats_client;
  std::printf(
      "acceptance (joint-ilp dominates fixed-rate and >=1 client-side "
      "baseline): %s\n",
      pass ? "PASS" : "FAIL");

  common::Json knobs = common::Json::object();
  knobs.set("seed", 2026);
  knobs.set("users", static_cast<long>(kUsers));
  knobs.set("slots", static_cast<long>(kSlots));
  knobs.set("chunks_per_slot", static_cast<long>(kChunksPerSlot));
  knobs.set("chunk_seconds", kChunkSeconds);
  common::Json trace_list = common::Json::array();
  for (const char* name : kTraceFiles) trace_list.push(std::string(name));
  knobs.set("traces", std::move(trace_list));
  knobs.set("qoe_weight", abr::JointSlotProblem{}.qoe_weight);
  knobs.set("receive_energy_weight",
            abr::JointSlotProblem{}.receive_energy_weight);
  knobs.set("joint_throughput_safety", kJointThroughputSafety);

  common::Json rows = common::Json::array();
  for (const PolicyResult& r : results) {
    common::Json row = common::Json::object();
    row.set("policy", r.policy);
    row.set("qoe_score_mean", r.qoe_score_mean);
    row.set("energy_total_mwh", r.energy_total_mwh);
    row.set("display_energy_mwh", r.display_energy_mwh);
    row.set("receive_energy_mwh", r.receive_energy_mwh);
    row.set("anxiety_mean", r.anxiety_mean);
    row.set("mean_bitrate_mbps", r.mean_bitrate_mbps);
    row.set("rebuffer_time_s", r.rebuffer_time_s);
    row.set("rebuffer_events", static_cast<long>(r.rebuffer_events));
    row.set("ilp_nodes", static_cast<long>(r.ilp_nodes));
    rows.push(std::move(row));
  }

  const bool wrote = lpvs::bench::write_bench_json(
      "abr_frontier",
      lpvs::bench::bench_doc("abr_frontier", pass, std::move(knobs),
                             std::move(rows)));
  return pass && wrote ? 0 : 1;
}

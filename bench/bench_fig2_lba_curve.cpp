// Fig. 2 — The anxiety curve extracted from the survey of 2,032 mobile
// users: anxiety degree vs battery level, with the published shape
// properties (convex on [20,100], concave on [0,20], sharp jump at 20%).
#include <cstdio>

#include "lpvs/common/rng.hpp"
#include "lpvs/common/table.hpp"
#include "lpvs/survey/lba_curve.hpp"
#include "lpvs/survey/population.hpp"

int main() {
  using namespace lpvs;

  common::Rng rng(2032);
  const survey::SyntheticPopulation population;
  const auto participants = population.generate_paper_population(rng);

  survey::LbaCurveExtractor extractor;
  extractor.add_population(participants);
  const common::PiecewiseLinear curve = extractor.extract();

  std::printf("=== Fig. 2: extracted LBA curve (N = %ld answers) ===\n\n",
              extractor.answers());

  std::printf("LBA sufferers: %.2f%% (paper: 91.88%%)\n",
              100.0 * survey::SyntheticPopulation::lba_fraction(participants));
  std::printf(
      "give up watching at <=10%% battery: %.1f%% (paper: ~50%%)\n\n",
      100.0 * survey::SyntheticPopulation::giveup_fraction_at(participants,
                                                              10));

  common::Table table({"battery level %", "anxiety degree", "bar"});
  for (int level = 100; level >= 5; level -= 5) {
    const double a = curve(level);
    table.add_row({std::to_string(level), common::Table::num(a, 3),
                   std::string(static_cast<std::size_t>(a * 40), '#')});
  }
  std::printf("%s\n", table.render().c_str());

  const survey::CurveShape shape = survey::analyze_curve(curve);
  std::printf("shape checks vs the published Fig. 2:\n");
  std::printf("  non-increasing in battery level : %s\n",
              shape.non_increasing ? "yes" : "NO");
  std::printf("  convex on [20%%, 100%%]          : %s\n",
              shape.convex_above_20 ? "yes" : "NO");
  std::printf("  concave on [0%%, 20%%]           : %s\n",
              shape.concave_below_20 ? "yes" : "NO");
  std::printf("  sharp increase at 20%% (jump)    : %.3f\n",
              shape.jump_at_20);
  std::printf("  anxiety at full battery         : %.3f\n",
              shape.anxiety_at_full);
  std::printf("  anxiety at empty battery        : %.3f\n",
              shape.anxiety_at_empty);
  return 0;
}

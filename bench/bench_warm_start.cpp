// Warm-start and engine ablation on the Fig. 10 replay workload:
// consecutive-slot Phase-1 solves with realistic slot-to-slot deltas
// (battery drain, gamma posterior drift, viewer churn), swept over both
// relaxation engines:
//
//   dense    per-node dense LP from scratch — the historical oracle
//   revised  presolve + best-first B&B + per-node dual-simplex re-solve
//            from the parent basis, with cross-slot root-basis memory
//
// and over both seeding legs per engine — every solve cold (greedy seed)
// versus warm-started through solver::SolveCache (previous slot's
// assignment repaired into the B&B incumbent; under the revised engine the
// cache additionally threads the root BasisHint from slot to slot).
//
// Acceptance claims this bench backs:
//   - warm-started consecutive-slot solves explore >= 30% fewer ILP nodes
//     than cold solves under the dense engine, with bit-identical
//     objectives (the historical claim, unchanged);
//   - the revised engine reaches >= 5x the warm slots/s of the dense
//     engine at 120 devices (stretch: >= 10x and p99 < 50 ms), with
//     objectives matching the dense oracle to 1e-9 relative.
//
// Capacity is scaled so ~45% of the cluster fits (the binding regime of
// Fig. 8): with loose capacity the root LP is integral and every solve is
// one node, cold or warm — there is nothing to measure.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_output.hpp"
#include "lpvs/common/rng.hpp"
#include "lpvs/common/table.hpp"
#include "lpvs/core/scheduler.hpp"
#include "lpvs/solver/solve_cache.hpp"

namespace {

using namespace lpvs;

core::SlotProblem make_problem(common::Rng& rng, int devices) {
  core::SlotProblem problem;
  problem.lambda = 2000.0;
  // Mean compute cost is 0.55, mean storage 100 MB: admit roughly 45% of
  // the cluster on compute, 60% on storage, so both rows can bind.
  problem.compute_capacity = 0.45 * 0.55 * devices;
  problem.storage_capacity = 0.60 * 100.0 * devices;
  for (int n = 0; n < devices; ++n) {
    core::DeviceSlotInput device;
    device.id = common::DeviceId{static_cast<std::uint32_t>(n)};
    device.power_rates_mw.resize(30);
    device.chunk_durations_s.assign(30, 10.0);
    for (auto& p : device.power_rates_mw) p = rng.uniform(400.0, 1100.0);
    device.battery_capacity_mwh = rng.uniform(2500.0, 4500.0);
    device.initial_energy_mwh =
        device.battery_capacity_mwh * rng.uniform(0.08, 0.95);
    device.gamma = rng.uniform(0.13, 0.49);
    device.compute_cost = rng.uniform(0.3, 0.8);
    device.storage_cost = rng.uniform(50.0, 150.0);
    problem.devices.push_back(std::move(device));
  }
  return problem;
}

/// Advances the cluster one slot: batteries drain by roughly the slot's
/// playback energy, gamma posteriors drift, per-chunk power rates wobble
/// with the content, and ~2% of viewers churn — the small-delta structure
/// between adjacent windows that warm-starting exploits.
void advance_slot(common::Rng& rng, core::SlotProblem& problem) {
  for (auto& device : problem.devices) {
    double slot_mwh = 0.0;
    for (std::size_t k = 0; k < device.power_rates_mw.size(); ++k) {
      slot_mwh +=
          device.power_rates_mw[k] * device.chunk_durations_s[k] / 3600.0;
    }
    device.initial_energy_mwh = std::max(
        0.0, device.initial_energy_mwh - rng.uniform(0.6, 1.0) * slot_mwh);
    device.gamma =
        std::clamp(device.gamma + rng.uniform(-0.01, 0.01), 0.05, 0.6);
    for (auto& p : device.power_rates_mw) p += rng.uniform(-15.0, 15.0);
  }
  const int churn =
      std::max<int>(1, static_cast<int>(problem.devices.size()) / 50);
  for (int c = 0; c < churn; ++c) {
    const auto victim = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(problem.devices.size()) - 1));
    core::DeviceSlotInput fresh;
    fresh.id = problem.devices[victim].id;
    fresh.power_rates_mw.resize(30);
    fresh.chunk_durations_s.assign(30, 10.0);
    for (auto& p : fresh.power_rates_mw) p = rng.uniform(400.0, 1100.0);
    fresh.battery_capacity_mwh = rng.uniform(2500.0, 4500.0);
    fresh.initial_energy_mwh =
        fresh.battery_capacity_mwh * rng.uniform(0.08, 0.95);
    fresh.gamma = rng.uniform(0.13, 0.49);
    fresh.compute_cost = rng.uniform(0.3, 0.8);
    fresh.storage_cost = rng.uniform(50.0, 150.0);
    problem.devices[victim] = std::move(fresh);
  }
}

struct LegResult {
  long nodes = 0;
  double wall_ms = 0.0;
  std::vector<double> objectives;
  std::vector<double> slot_ms;  ///< per-slot solve latency

  double slots_per_sec() const {
    return wall_ms > 0.0
               ? 1000.0 * static_cast<double>(slot_ms.size()) / wall_ms
               : 0.0;
  }

  lpvs::common::Json to_json() const {
    lpvs::common::Json leg = lpvs::common::Json::object();
    leg.set("nodes", nodes);
    leg.set("wall_ms", wall_ms);
    leg.set("slots_per_sec", slots_per_sec());
    leg.set("p50_ms", lpvs::bench::percentile(slot_ms, 0.5));
    leg.set("p99_ms", lpvs::bench::percentile(slot_ms, 0.99));
    return leg;
  }
};

struct EngineRun {
  LegResult cold;
  LegResult warm;
  long warm_starts = 0;
  double node_cut_percent = 0.0;
};

}  // namespace

int main() {
  std::printf(
      "=== Warm-start x engine sweep: consecutive-slot Phase-1 solves "
      "(Fig. 10 workload) ===\n\n");

  constexpr int kSlots = 16;
  common::Table table({"engine", "devices", "cold nodes", "warm nodes",
                       "node cut", "cold ms", "warm ms", "warm slots/s",
                       "warm p99 ms"});
  bool all_pass = true;
  common::Json rows = common::Json::array();

  for (const int devices : {40, 60, 120}) {
    // The identical slot-problem stream feeds every engine and leg.
    common::Rng rng(42);
    std::vector<core::SlotProblem> slots;
    slots.reserve(kSlots);
    core::SlotProblem problem = make_problem(rng, devices);
    for (int s = 0; s < kSlots; ++s) {
      slots.push_back(problem);
      advance_slot(rng, problem);
    }

    auto run_engine = [&](solver::LpEngine engine) {
      // Exact configuration on every leg: incumbents and basis memory may
      // only change *pruning*, so objectives must agree bit-for-bit
      // between a given engine's cold and warm legs (asserted per slot).
      solver::BranchAndBoundSolver::Options exact;
      exact.max_nodes = 500'000;
      exact.relative_gap = 0.0;
      exact.engine = engine;
      const solver::BranchAndBoundSolver solver(exact);

      auto run_leg = [&](solver::SolveCache* cache) {
        LegResult leg;
        const auto t0 = std::chrono::steady_clock::now();
        for (const core::SlotProblem& slot : slots) {
          const auto s0 = std::chrono::steady_clock::now();
          const solver::BinaryProgram program = core::phase1_program(slot);
          const solver::CachedSolve solved =
              solver::solve_with_cache(solver, program, cache, /*key=*/1);
          const auto s1 = std::chrono::steady_clock::now();
          leg.nodes += solved.solution.nodes_explored;
          leg.objectives.push_back(solved.solution.objective);
          leg.slot_ms.push_back(
              std::chrono::duration<double, std::milli>(s1 - s0).count());
        }
        const auto t1 = std::chrono::steady_clock::now();
        leg.wall_ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        return leg;
      };

      EngineRun run;
      run.cold = run_leg(nullptr);
      solver::SolveCache cache;
      run.warm = run_leg(&cache);
      run.warm_starts = cache.stats().warm_starts;
      run.node_cut_percent =
          run.cold.nodes > 0
              ? 100.0 *
                    static_cast<double>(run.cold.nodes - run.warm.nodes) /
                    static_cast<double>(run.cold.nodes)
              : 0.0;

      for (int s = 0; s < kSlots; ++s) {
        if (run.cold.objectives[static_cast<std::size_t>(s)] !=
            run.warm.objectives[static_cast<std::size_t>(s)]) {
          std::printf(
              "OBJECTIVE MISMATCH (%s, cold vs warm) at %d devices, "
              "slot %d: cold %.17g warm %.17g\n",
              solver::to_string(engine).c_str(), devices, s,
              run.cold.objectives[static_cast<std::size_t>(s)],
              run.warm.objectives[static_cast<std::size_t>(s)]);
          all_pass = false;
        }
      }
      return run;
    };

    const EngineRun dense = run_engine(solver::LpEngine::kDense);
    const EngineRun revised = run_engine(solver::LpEngine::kRevised);

    // Cross-engine agreement: the revised engine must land on the dense
    // oracle's objective (1e-9 relative) on every slot.
    for (int s = 0; s < kSlots; ++s) {
      const double want = dense.warm.objectives[static_cast<std::size_t>(s)];
      const double got =
          revised.warm.objectives[static_cast<std::size_t>(s)];
      const double scale = std::max(1.0, std::fabs(want));
      if (std::fabs(got - want) > 1e-9 * scale) {
        std::printf(
            "OBJECTIVE MISMATCH (dense vs revised) at %d devices, "
            "slot %d: dense %.17g revised %.17g\n",
            devices, s, want, got);
        all_pass = false;
      }
    }

    // Historical warm-start claim, enforced on the dense oracle.
    if (dense.node_cut_percent < 30.0) all_pass = false;

    const double speedup =
        dense.warm.wall_ms > 0.0 && revised.warm.wall_ms > 0.0
            ? revised.warm.slots_per_sec() / dense.warm.slots_per_sec()
            : 0.0;
    // Engine claim: >= 5x warm throughput at the largest cluster.
    if (devices == 120 && speedup < 5.0) all_pass = false;

    for (const auto& [label, run] :
         {std::pair<const char*, const EngineRun*>{"dense", &dense},
          std::pair<const char*, const EngineRun*>{"revised", &revised}}) {
      table.add_row({label, std::to_string(devices),
                     std::to_string(run->cold.nodes),
                     std::to_string(run->warm.nodes),
                     common::Table::num(run->node_cut_percent, 1) + "%",
                     common::Table::num(run->cold.wall_ms, 1),
                     common::Table::num(run->warm.wall_ms, 1),
                     common::Table::num(run->warm.slots_per_sec(), 1),
                     common::Table::num(
                         bench::percentile(run->warm.slot_ms, 0.99), 3)});

      common::Json row = common::Json::object();
      row.set("engine", label);
      row.set("devices", devices);
      row.set("slots", kSlots);
      row.set("node_cut_percent", run->node_cut_percent);
      row.set("warm_starts", run->warm_starts);
      row.set("cold", run->cold.to_json());
      row.set("warm", run->warm.to_json());
      if (devices == 120 && std::string(label) == "revised") {
        row.set("speedup_vs_dense_warm", speedup);
      }
      rows.push(std::move(row));
    }
    std::printf("%d devices: revised warm throughput %.1fx dense warm\n",
                devices, speedup);
  }

  std::printf("\n%s\n", table.render().c_str());
  std::printf(
      "acceptance (dense: >=30%% node cut, identical objectives; revised: "
      "matches oracle, >=5x warm slots/s at 120 devices): %s\n",
      all_pass ? "PASS" : "FAIL");

  common::Json knobs = common::Json::object();
  knobs.set("seed", 42);
  knobs.set("slots", static_cast<long>(kSlots));
  common::Json device_sweep = common::Json::array();
  for (const int devices : {40, 60, 120}) device_sweep.push(devices);
  knobs.set("devices", std::move(device_sweep));
  common::Json engine_sweep = common::Json::array();
  engine_sweep.push("dense");
  engine_sweep.push("revised");
  knobs.set("engines", std::move(engine_sweep));

  const bool wrote = lpvs::bench::write_bench_json(
      "warm_start",
      lpvs::bench::bench_doc("warm_start", all_pass, std::move(knobs),
                             std::move(rows)));
  return all_pass && wrote ? 0 : 1;
}

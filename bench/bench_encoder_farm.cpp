// Edge encoder farm under LPVS schedules (reproduction extension): takes
// the devices the Phase-1/Phase-2 scheduler actually selects at different
// VC sizes and replays their chunk-transform jobs through the
// discrete-event farm — verifying the aggregate capacity constraint (6)
// translates into real-time, deadline-safe delivery, and showing what
// happens when the constraint is (artificially) ignored.
#include <cstdio>

#include "lpvs/common/rng.hpp"
#include "lpvs/common/table.hpp"
#include "lpvs/core/scheduler.hpp"
#include "lpvs/streaming/encoder_farm.hpp"

namespace {

lpvs::core::SlotProblem make_problem(lpvs::common::Rng& rng, int devices,
                                     double capacity_units) {
  lpvs::core::SlotProblem problem;
  problem.compute_capacity = capacity_units;
  problem.storage_capacity = 64.0 * 1024.0;
  problem.lambda = 2000.0;
  for (int n = 0; n < devices; ++n) {
    lpvs::core::DeviceSlotInput device;
    device.id = lpvs::common::DeviceId{static_cast<std::uint32_t>(n)};
    device.power_rates_mw.assign(30, rng.uniform(400.0, 1100.0));
    device.chunk_durations_s.assign(30, 10.0);
    device.battery_capacity_mwh = 3500.0;
    device.initial_energy_mwh = 3500.0 * rng.uniform(0.1, 0.95);
    device.gamma = rng.uniform(0.13, 0.49);
    device.compute_cost = rng.uniform(0.3, 0.95);
    device.storage_cost = rng.uniform(50.0, 150.0);
    problem.devices.push_back(std::move(device));
  }
  return problem;
}

}  // namespace

int main() {
  using namespace lpvs;

  const survey::AnxietyModel anxiety = survey::AnxietyModel::reference();
  const core::RunContext context(anxiety);
  const core::LpvsScheduler scheduler;
  common::Rng rng(5);

  // The farm: 45 workers of 1.0 compute unit each = the paper's
  // ~100-stream AirFrame-class box.
  const int kWorkers = 45;
  const double kWorkerUnits = 1.0;

  std::printf("=== encoder farm under LPVS schedules ===\n\n");
  common::Table table({"VC size", "selected", "units used", "deadline "
                       "misses", "mean queue s", "utilization %"});
  for (int devices : {60, 120, 200, 400}) {
    const core::SlotProblem problem =
        make_problem(rng, devices, kWorkers * kWorkerUnits);
    const core::Schedule schedule = scheduler.schedule(problem, context);
    std::vector<double> selected_costs;
    for (std::size_t n = 0; n < problem.devices.size(); ++n) {
      if (schedule.x[n]) {
        selected_costs.push_back(problem.devices[n].compute_cost);
      }
    }
    const auto jobs =
        streaming::slot_jobs(selected_costs, 30, 10.0, kWorkerUnits);
    const streaming::FarmReport report =
        streaming::EncoderFarm(kWorkers).run(jobs);
    table.add_row({std::to_string(devices),
                   std::to_string(schedule.selected_count()),
                   common::Table::num(schedule.compute_used, 1),
                   std::to_string(report.jobs_missed_deadline),
                   common::Table::num(report.mean_queue_delay_s, 2),
                   common::Table::num(100.0 * report.mean_utilization, 1)});
  }
  std::printf("%s\n", table.render().c_str());

  // Counterfactual: serve everyone regardless of the capacity row.
  std::printf("=== counterfactual: ignore constraint (6), serve all ===\n\n");
  common::Table bad({"VC size", "units used", "deadline miss %",
                     "max queue s"});
  for (int devices : {120, 200, 400}) {
    const core::SlotProblem problem =
        make_problem(rng, devices, kWorkers * kWorkerUnits);
    std::vector<double> all_costs;
    double units = 0.0;
    for (const auto& device : problem.devices) {
      all_costs.push_back(device.compute_cost);
      units += device.compute_cost;
    }
    const streaming::FarmReport report = streaming::EncoderFarm(kWorkers).run(
        streaming::slot_jobs(all_costs, 30, 10.0, kWorkerUnits));
    bad.add_row({std::to_string(devices), common::Table::num(units, 1),
                 common::Table::num(100.0 * report.miss_ratio(), 1),
                 common::Table::num(report.max_queue_delay_s, 1)});
  }
  std::printf("%s\n", bad.render().c_str());
  std::printf("takeaway: schedules respecting (6) deliver every transformed\n"
              "chunk on time; over-admitting turns the edge into a growing\n"
              "queue and transformed chunks arrive after their deadlines.\n");
  return 0;
}

// SVII-D — "Overhead of LPVS and impact on other QoE metrics":
// quantifies the paper's argument that the one-slot-ahead working mode
// keeps LPVS off the chunk-delivery path.  We measure the actual LPVS
// scheduler runtime for a range of VC sizes (the Fig. 10 measurement),
// then replay ABR streaming sessions in which a *naive inline* scheduler
// stalls delivery by exactly that runtime at every scheduling point,
// versus the paper's one-slot-ahead mode (zero stall).
#include <chrono>
#include <cstdio>

#include "lpvs/common/rng.hpp"
#include "lpvs/common/stats.hpp"
#include "lpvs/common/table.hpp"
#include "lpvs/core/scheduler.hpp"
#include "lpvs/streaming/abr.hpp"

namespace {

double measured_scheduler_seconds(int devices) {
  lpvs::common::Rng rng(42);
  lpvs::core::SlotProblem problem;
  problem.compute_capacity = 45.0;
  problem.storage_capacity = 32.0 * 1024.0;
  problem.lambda = 2000.0;
  for (int n = 0; n < devices; ++n) {
    lpvs::core::DeviceSlotInput device;
    device.id = lpvs::common::DeviceId{static_cast<std::uint32_t>(n)};
    device.power_rates_mw.assign(30, rng.uniform(400.0, 1100.0));
    device.chunk_durations_s.assign(30, 10.0);
    device.battery_capacity_mwh = 3500.0;
    device.initial_energy_mwh = 3500.0 * rng.uniform(0.1, 0.9);
    device.gamma = rng.uniform(0.13, 0.49);
    device.compute_cost = rng.uniform(0.3, 0.8);
    device.storage_cost = rng.uniform(50.0, 150.0);
    problem.devices.push_back(std::move(device));
  }
  const lpvs::survey::AnxietyModel anxiety =
      lpvs::survey::AnxietyModel::reference();
  const lpvs::core::RunContext context(anxiety);
  const lpvs::core::LpvsScheduler scheduler;
  const auto t0 = std::chrono::steady_clock::now();
  (void)scheduler.schedule(problem, context);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  using namespace lpvs;

  std::printf("=== SVII-D: scheduling overhead vs streaming QoE ===\n\n");

  common::Table table({"VC size", "sched time (s)", "mode",
                       "rebuffer s/session", "freeze events",
                       "mean bitrate", "QoE score"});
  for (int devices : {500, 2000, 5000}) {
    const double sched_s = measured_scheduler_seconds(devices);
    // Hypothetical worst case to stress the inline mode: a solver as slow
    // as the paper's (0.055 s/device) would stall ~ devices * 0.055 s.
    const double paper_like_stall = 0.055 * devices;
    struct Mode {
      const char* name;
      double stall_s;
    };
    for (const Mode& mode :
         {Mode{"one-slot-ahead", 0.0}, Mode{"inline (ours)", sched_s},
          Mode{"inline (paper-speed)", paper_like_stall}}) {
      streaming::StreamingSession::Config config;
      config.chunk_count = 180;  // 30 minutes of 10 s chunks
      config.scheduling_stall_s = mode.stall_s;
      const streaming::StreamingSession session(config);
      common::RunningStats rebuffer;
      common::RunningStats events;
      common::RunningStats bitrate;
      common::RunningStats score;
      for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        streaming::ThroughputModel network;
        streaming::BufferBasedAbr abr;
        common::Rng rng(seed);
        const streaming::SessionQoe qoe = session.run(network, abr, rng);
        rebuffer.add(qoe.rebuffer_time_s);
        events.add(qoe.rebuffer_events);
        bitrate.add(qoe.mean_bitrate_mbps);
        score.add(qoe.score());
      }
      table.add_row({std::to_string(devices),
                     common::Table::num(mode.stall_s, 2), mode.name,
                     common::Table::num(rebuffer.mean(), 2),
                     common::Table::num(events.mean(), 2),
                     common::Table::num(bitrate.mean(), 2),
                     common::Table::num(score.mean(), 2)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("reproduced claim: under one-slot-ahead scheduling the LPVS\n"
              "optimization adds zero delivery stall, so freezing time and\n"
              "frequency are untouched; a blocking scheduler at the\n"
              "paper's solve speed would freeze playback for minutes.\n");
  return 0;
}

// Fig. 9 — Time per viewer (TPV) with and without LPVS for low-battery
// users: users whose battery starts at <= 40% and who are served by LPVS.
// Users give up watching when their battery hits their personal give-up
// level (from the survey answers).
//
// Paper's numbers: 42.3 min without LPVS -> 58.7 min with LPVS, an extra
// 16.4 min = +38.8%.  Note the extension ratio is structurally gamma/(1 -
// gamma): saving a gamma fraction of power stretches the battery-limited
// watch window by exactly that factor.
#include <cstdio>

#include "lpvs/common/stats.hpp"
#include "lpvs/common/table.hpp"
#include "lpvs/emu/emulator.hpp"

int main() {
  using namespace lpvs;

  const survey::AnxietyModel anxiety = survey::AnxietyModel::reference();
  const core::RunContext context(anxiety);
  const core::LpvsScheduler scheduler;

  common::RunningStats tpv_with;
  common::RunningStats tpv_without;
  common::Table table({"group", "TPV w/o LPVS (min)", "TPV w/ LPVS (min)",
                       "extra (min)", "extension %"});
  for (int group = 50; group <= 100; group += 10) {
    emu::EmulatorConfig config;
    config.group_size = group;
    config.slots = 96;               // enough horizon to reach give-up
    config.chunks_per_slot = 30;
    config.compute_capacity = 45.0;  // sufficient capacity regime
    config.enable_giveup = true;
    // Fig. 9 focuses on low-battery audiences: bias the Gaussian downward
    // so the <= 40% stratum is well populated.
    config.initial_battery_mean = 0.38;
    config.initial_battery_std = 0.18;
    config.seed = 9000 + static_cast<std::uint64_t>(group);
    const emu::PairedMetrics paired =
        emu::run_paired(config, scheduler, context);
    const double with =
        paired.with_lpvs.mean_tpv(0.40, /*require_served=*/true);
    const double without = paired.without_lpvs.mean_tpv(0.40, false);
    tpv_with.add(with);
    tpv_without.add(without);
    table.add_row({std::to_string(group), common::Table::num(without, 1),
                   common::Table::num(with, 1),
                   common::Table::num(with - without, 1),
                   common::Table::num(100.0 * (with / without - 1.0), 1)});
  }
  std::printf("=== Fig. 9: time per viewer for low-battery users ===\n\n");
  std::printf("%s\n", table.render().c_str());
  const double avg_ext =
      100.0 * (tpv_with.mean() / tpv_without.mean() - 1.0);
  std::printf("average TPV: %.1f min -> %.1f min, +%.1f min (+%.1f%%)\n",
              tpv_without.mean(), tpv_with.mean(),
              tpv_with.mean() - tpv_without.mean(), avg_ext);
  std::printf("paper: 42.3 min -> 58.7 min, +16.4 min (+38.8%%)\n");
  return 0;
}

// Table II — Survey subjects and corresponding frequencies (N = 2,032):
// the synthetic population's demographic marginals against the paper's.
#include <cstdio>

#include <map>

#include "lpvs/common/rng.hpp"
#include "lpvs/common/table.hpp"
#include "lpvs/survey/population.hpp"

int main() {
  using namespace lpvs;
  using namespace lpvs::survey;

  common::Rng rng(1);
  const auto population =
      SyntheticPopulation().generate_paper_population(rng);
  const auto n = static_cast<double>(population.size());

  std::map<Gender, long> gender;
  std::map<AgeBand, long> age;
  std::map<Occupation, long> occupation;
  std::map<PhoneBrand, long> brand;
  for (const Participant& p : population) {
    ++gender[p.gender];
    ++age[p.age];
    ++occupation[p.occupation];
    ++brand[p.brand];
  }

  std::printf("=== Table II: survey subjects (N = %zu) ===\n\n",
              population.size());
  common::Table table({"subject", "ours", "ours %", "paper", "paper %"});
  auto row = [&](const char* name, long ours, long paper,
                 const char* paper_pct) {
    table.add_row({name, std::to_string(ours),
                   common::Table::num(100.0 * ours / n, 2),
                   std::to_string(paper), paper_pct});
  };
  row("male", gender[Gender::kMale], 1095, "53.89");
  row("female", gender[Gender::kFemale], 937, "46.11");
  row("age <18", age[AgeBand::kUnder18], 9, "0.52");
  row("age 18-25", age[AgeBand::k18To25], 888, "51.45");
  row("age 25-35", age[AgeBand::k25To35], 460, "26.65");
  row("age 35-45", age[AgeBand::k35To45], 250, "14.48");
  row("age 45-65", age[AgeBand::k45To65], 119, "6.89");
  row("student", occupation[Occupation::kStudent], 1024, "50.39");
  row("gov/inst", occupation[Occupation::kGovernment], 271, "13.34");
  row("company", occupation[Occupation::kCompany], 434, "21.36");
  row("freelance", occupation[Occupation::kFreelance], 144, "7.09");
  row("other occ.", occupation[Occupation::kOther], 159, "7.82");
  row("iPhone", brand[PhoneBrand::kIPhone], 737, "36.27");
  row("Huawei", brand[PhoneBrand::kHuawei], 682, "33.56");
  row("Xiaomi", brand[PhoneBrand::kXiaomi], 228, "11.22");
  row("other brand", brand[PhoneBrand::kOther], 385, "18.95");
  std::printf("%s\n", table.render().c_str());
  std::printf("note: the paper's age counts sum to 1,726 (not 2,032); the\n"
              "published percentages are treated as sampling weights.\n");
  return 0;
}

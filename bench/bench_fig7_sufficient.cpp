// Fig. 7 — Energy saving and anxiety reduction under sufficient edge
// resource: virtual clusters of 50-100 users, an edge server able to
// transform ~100 concurrent streams, Gaussian initial battery status.
//
// Paper's numbers: average energy saving 35.20% (max 37.13%); average
// anxiety reduction 6.82% (max 7.36%) — anxiety reduction is small because
// the Gaussian battery levels sit on the flat part of the LBA curve.
#include <cstdio>

#include "lpvs/common/stats.hpp"
#include "lpvs/common/table.hpp"
#include "lpvs/emu/emulator.hpp"

int main() {
  using namespace lpvs;

  const survey::AnxietyModel anxiety = survey::AnxietyModel::reference();
  const core::RunContext context(anxiety);
  const core::LpvsScheduler scheduler;

  std::printf("=== Fig. 7: LPVS with sufficient edge resource ===\n\n");
  common::Table table({"group size", "energy saving %",
                       "anxiety reduction %", "served/slot"});
  common::RunningStats energy;
  common::RunningStats anxiety_red;
  for (int group = 50; group <= 100; group += 10) {
    emu::EmulatorConfig config;
    config.group_size = group;
    // One hour: long enough for the Bayesian gammas to converge, short
    // enough that no device's battery dies inside the measurement window
    // (battery death would shorten the *baseline* run's watch time and
    // understate the saving; the paper measures TPV effects separately).
    config.slots = 12;
    config.chunks_per_slot = 30;
    // "Sufficient edge resource": the server handles every stream in the
    // VC.  70 units covers 100 devices of our (QHD-heavy) catalog mix.
    config.compute_capacity = 70.0;
    config.enable_giveup = false;    // Fig. 7 tracks energy/anxiety only
    config.seed = 7000 + static_cast<std::uint64_t>(group);
    const emu::PairedMetrics paired =
        emu::run_paired(config, scheduler, context);
    const double saving = 100.0 * paired.energy_saving_ratio();
    const double reduction = 100.0 * paired.anxiety_reduction_ratio();
    energy.add(saving);
    anxiety_red.add(reduction);
    table.add_row(
        {std::to_string(group), common::Table::num(saving, 2),
         common::Table::num(reduction, 2),
         common::Table::num(static_cast<double>(
                                paired.with_lpvs.total_selected) /
                                paired.with_lpvs.slots_run,
                            1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("energy saving:      avg %.2f%%, max %.2f%%  "
              "(paper: avg 35.20%%, max 37.13%%)\n",
              energy.mean(), energy.max());
  std::printf("anxiety reduction:  avg %.2f%%, max %.2f%%  "
              "(paper: avg 6.82%%, max 7.36%%)\n",
              anxiety_red.mean(), anxiety_red.max());
  return 0;
}

// Long-run LBA exposure (reproduction extension): a week in the life of a
// viewing fleet, with overnight + opportunistic charging from the survey's
// behavioral model.  Reports LPVS's effect in anxiety-minutes avoided per
// user per day, time spent in the <= 20% warning zone, and sessions saved
// from give-up abandonment — the cumulative version of the paper's
// per-session results.
#include <cstdio>

#include "lpvs/common/table.hpp"
#include "lpvs/emu/daily_life.hpp"

int main() {
  using namespace lpvs;

  const survey::AnxietyModel anxiety = survey::AnxietyModel::reference();

  std::printf("=== a week of daily life, with and without LPVS ===\n\n");
  common::Table table({"serving", "anxiety-min/day", "warn-zone min/day",
                       "abandon %", "viewing min/day"});
  const struct {
    const char* name;
    bool enabled;
    double fraction;
  } scenarios[] = {
      {"no LPVS", false, 0.0},
      {"LPVS, half served", true, 0.5},
      {"LPVS, all served", true, 1.0},
  };
  double baseline_anxiety = 0.0;
  for (const auto& scenario : scenarios) {
    emu::DailyLifeConfig config;
    config.users = 100;
    config.days = 7;
    config.lpvs_enabled = scenario.enabled;
    config.served_fraction = scenario.fraction;
    config.seed = 2020;
    const emu::DailyLifeReport report =
        emu::simulate_daily_life(config, anxiety);
    if (!scenario.enabled) {
      baseline_anxiety = report.anxiety_minutes_per_day;
    }
    table.add_row(
        {scenario.name,
         common::Table::num(report.anxiety_minutes_per_day, 1),
         common::Table::num(report.warning_zone_minutes_per_day, 1),
         common::Table::num(100.0 * report.abandon_ratio(), 1),
         common::Table::num(report.mean_viewing_minutes_per_day, 1)});
    if (scenario.enabled && scenario.fraction == 1.0 &&
        baseline_anxiety > 0.0) {
      std::printf("%s\n", table.render().c_str());
      std::printf("fully-served LPVS avoids %.1f anxiety-minutes per user "
                  "per day (%.1f%% of the baseline exposure)\n",
                  baseline_anxiety - report.anxiety_minutes_per_day,
                  100.0 * (baseline_anxiety -
                           report.anxiety_minutes_per_day) /
                      baseline_anxiety);
    }
  }
  return 0;
}

// Fig. 10 — Running time of the LPVS scheduler as the VC group size grows,
// with the linear fit the paper reports (y = 0.055x - 0.324, R^2 = 0.999 on
// their hardware; the shape to reproduce is the *linear* growth and that
// thousands of devices fit in a five-minute slot).
#include <chrono>
#include <cstdio>
#include <vector>

#include "lpvs/common/rng.hpp"
#include "lpvs/common/stats.hpp"
#include "lpvs/common/table.hpp"
#include "lpvs/core/scheduler.hpp"

namespace {

lpvs::core::SlotProblem make_problem(lpvs::common::Rng& rng, int devices) {
  lpvs::core::SlotProblem problem;
  problem.lambda = 2000.0;
  problem.compute_capacity = 45.0;
  problem.storage_capacity = 32.0 * 1024.0;
  for (int n = 0; n < devices; ++n) {
    lpvs::core::DeviceSlotInput device;
    device.id = lpvs::common::DeviceId{static_cast<std::uint32_t>(n)};
    device.power_rates_mw.resize(30);
    device.chunk_durations_s.assign(30, 10.0);
    for (auto& p : device.power_rates_mw) p = rng.uniform(400.0, 1100.0);
    device.battery_capacity_mwh = rng.uniform(2500.0, 4500.0);
    device.initial_energy_mwh =
        device.battery_capacity_mwh * rng.uniform(0.08, 0.95);
    device.gamma = rng.uniform(0.13, 0.49);
    device.compute_cost = rng.uniform(0.3, 0.8);
    device.storage_cost = rng.uniform(50.0, 150.0);
    problem.devices.push_back(std::move(device));
  }
  return problem;
}

}  // namespace

int main() {
  using namespace lpvs;

  const survey::AnxietyModel anxiety = survey::AnxietyModel::reference();
  const core::RunContext context(anxiety);
  const core::LpvsScheduler scheduler;
  common::Rng rng(10);

  std::printf("=== Fig. 10: scheduler running time vs VC group size ===\n\n");
  common::Table table({"devices", "time (ms)", "selected"});
  std::vector<double> xs;
  std::vector<double> ys;
  constexpr int kRepeats = 7;  // B&B node counts vary per instance; average
  for (int devices = 500; devices <= 5000; devices += 500) {
    double total_ms = 0.0;
    int selected = 0;
    for (int rep = 0; rep < kRepeats; ++rep) {
      const core::SlotProblem problem = make_problem(rng, devices);
      const auto t0 = std::chrono::steady_clock::now();
      const core::Schedule schedule = scheduler.schedule(problem, context);
      const auto t1 = std::chrono::steady_clock::now();
      total_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
      selected = schedule.selected_count();
    }
    const double ms = total_ms / kRepeats;
    xs.push_back(devices);
    ys.push_back(ms);
    table.add_row({std::to_string(devices), common::Table::num(ms, 1),
                   std::to_string(selected)});
  }
  std::printf("%s\n", table.render().c_str());

  const common::LinearFit fit = common::linear_fit(xs, ys);
  std::printf("linear fit: y = %.4f ms/device * x + %.2f, R^2 = %.4f\n",
              fit.slope, fit.intercept, fit.r_squared);
  std::printf("paper: y = 0.055 s/device * x - 0.324 s, R^2 = 0.999 "
              "(different hardware; the reproduced claim is linearity)\n");
  const double slot_ms = 5.0 * 60.0 * 1000.0;
  const double capacity =
      fit.slope > 0.0 ? (slot_ms - fit.intercept) / fit.slope : 1e9;
  std::printf("devices schedulable within one 5-minute slot: %.0f "
              "(paper: >5,000)\n", capacity);
  return 0;
}

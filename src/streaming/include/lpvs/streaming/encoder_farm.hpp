// Edge encoder farm (reproduction extension of SVI-B's "video
// transforming" block).
//
// The scheduler's capacity constraint (6) is an aggregate: sum of compute
// costs <= C.  Whether the edge box can actually deliver every selected
// chunk *on time* is a queueing question — jobs arrive as chunks become
// due, workers are busy for the chunk's transform service time, and a
// transformed chunk that misses its playback deadline is worthless.  This
// module is a small discrete-event simulation of that encoder farm: an
// event queue over job arrivals/completions, a FIFO dispatch queue, W
// parallel workers, per-job deadlines, and utilization/lateness
// accounting.  It closes the loop on the paper's claim that an
// AirFrame-class server sustains ~100 concurrent transform streams.
#pragma once

#include <cstdint>
#include <queue>
#include <span>
#include <string>
#include <vector>

#include "lpvs/common/rng.hpp"
#include "lpvs/fault/fault_injector.hpp"
#include "lpvs/obs/metrics.hpp"

namespace lpvs::streaming {

/// One transform job: a chunk of a selected user's stream.
struct TransformJob {
  std::uint32_t device = 0;
  std::uint32_t chunk = 0;
  double arrival_s = 0.0;   ///< when the chunk is available for transform
  double service_s = 0.0;   ///< transform work at one worker (wall time)
  double deadline_s = 0.0;  ///< must finish before playback needs it
};

/// Per-run results.
struct FarmReport {
  long jobs_completed = 0;
  long jobs_missed_deadline = 0;
  /// Jobs lost to injected kEncoderWorker drops (a crashed worker whose
  /// chunk never gets transformed — the device plays it untransformed).
  long jobs_failed = 0;
  double mean_queue_delay_s = 0.0;
  double max_queue_delay_s = 0.0;
  double mean_utilization = 0.0;  ///< busy worker-seconds / capacity
  double makespan_s = 0.0;

  double miss_ratio() const {
    const long total = jobs_completed;
    return total > 0 ? static_cast<double>(jobs_missed_deadline) / total
                     : 0.0;
  }
};

/// FIFO multi-worker discrete-event simulator.
class EncoderFarm {
 public:
  explicit EncoderFarm(int workers);

  /// Runs all jobs to completion (jobs need not be sorted).  With a
  /// registry attached, also records queue depth at each arrival
  /// (lpvs_farm_queue_depth), per-job queue delay, and completion/miss
  /// counters; the report itself is identical either way.
  ///
  /// With an active injector, each job draws one kEncoderWorker decision
  /// keyed (fault_key, device, chunk): a drop kills the job (jobs_failed),
  /// a delay inflates its service time by the drawn transit delay, a
  /// corruption doubles it (the chunk is re-encoded).  Null/disabled
  /// injector leaves the report bit-identical to the fault-free run.
  FarmReport run(std::vector<TransformJob> jobs,
                 obs::MetricsRegistry* metrics = nullptr,
                 const fault::FaultInjector* faults = nullptr,
                 std::uint64_t fault_key = 0) const;

  int workers() const { return workers_; }

 private:
  int workers_;
};

/// Builds one slot's job list for a selected user set: each user
/// contributes `chunks_per_slot` jobs, arrivals staggered at the chunk
/// cadence, service time = chunk seconds * (device compute cost / worker
/// throughput), deadline = arrival + one chunk of buffer slack.
std::vector<TransformJob> slot_jobs(std::span<const double> compute_costs,
                                    int chunks_per_slot, double chunk_seconds,
                                    double worker_units,
                                    double deadline_slack_chunks = 2.0);

}  // namespace lpvs::streaming

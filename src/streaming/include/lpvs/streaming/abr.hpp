// Client-side adaptive-bitrate streaming session (reproduction extension).
//
// Models what happens on the phone between the edge and the screen: a
// playout buffer, chunk downloads over the stochastic last hop
// (network.hpp), an ABR controller choosing the ladder rung, and the QoE
// accounting (startup delay, rebuffering time/frequency, bitrate,
// switches) that SVII-D says LPVS must not degrade.  The session can
// inject a per-slot "scheduling stall" — the delay a *naive inline*
// scheduler would add at every scheduling point — so the one-slot-ahead
// design's QoE neutrality can be demonstrated quantitatively
// (bench_qoe_overhead).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "lpvs/common/rng.hpp"
#include "lpvs/streaming/network.hpp"

namespace lpvs::streaming {

/// Per-session quality-of-experience record.
struct SessionQoe {
  double startup_delay_s = 0.0;
  double rebuffer_time_s = 0.0;   ///< total video freezing time
  int rebuffer_events = 0;        ///< freezing frequency
  double mean_bitrate_mbps = 0.0;
  int bitrate_switches = 0;
  int chunks_played = 0;

  /// Standard linear QoE: bitrate reward minus rebuffering and switching
  /// penalties (the common MPC/Pensieve-style objective).
  ///
  /// Normalization: the rebuffer term is the *freeze percentage* — stalled
  /// time as a share of nominal playback time (chunks * chunk_seconds),
  /// scaled by 100 so a session frozen 1% of the time loses
  /// `rebuffer_penalty` points.  That keeps the term comparable to the
  /// bitrate reward (single-digit Mbps) and independent of session length.
  /// (A previous form multiplied `rebuffer_time_s / chunks` by a bare 10.0
  /// — exactly this freeze percentage for the default 10-second chunks,
  /// just with the chunk duration folded into an unexplained constant.)
  /// The switch term is switches per chunk, as in the MPC objective.
  double score(double rebuffer_penalty = 4.3, double switch_penalty = 0.5,
               double chunk_seconds = 10.0) const {
    const double chunks = static_cast<double>(std::max(chunks_played, 1));
    const double freeze_percent =
        100.0 * rebuffer_time_s / (chunks * chunk_seconds);
    return mean_bitrate_mbps - rebuffer_penalty * freeze_percent -
           switch_penalty * bitrate_switches / chunks;
  }
};

/// ABR policy interface: choose a ladder rung for the next chunk.
class AbrController {
 public:
  virtual ~AbrController() = default;
  virtual std::string name() const = 0;
  /// `ladder` ascending bitrates; returns an index into it.
  virtual std::size_t pick_rung(std::span<const double> ladder,
                                double buffer_s,
                                double throughput_estimate_mbps) = 0;
};

/// Rate-based: highest rung under a safety factor of the estimated
/// throughput (harmonic mean of recent downloads).
class RateBasedAbr : public AbrController {
 public:
  explicit RateBasedAbr(double safety = 0.85) : safety_(safety) {}
  std::string name() const override { return "rate-based"; }
  std::size_t pick_rung(std::span<const double> ladder, double buffer_s,
                        double throughput_estimate_mbps) override;

 private:
  double safety_;
};

/// Buffer-based (BBA-style): rung is a linear function of buffer level
/// between a reservoir and a cushion, ignoring throughput except at start.
class BufferBasedAbr : public AbrController {
 public:
  BufferBasedAbr(double reservoir_s = 8.0, double cushion_s = 40.0)
      : reservoir_s_(reservoir_s), cushion_s_(cushion_s) {}
  std::string name() const override { return "buffer-based"; }
  std::size_t pick_rung(std::span<const double> ladder, double buffer_s,
                        double throughput_estimate_mbps) override;

 private:
  double reservoir_s_;
  double cushion_s_;
};

/// BOLA (Spiteri, Urgaonkar & Sitaraman): Lyapunov-drift-plus-penalty rung
/// choice from the buffer level alone.  Each decision maximizes
///
///   (V * (v_m + gp) - Q) / S_m
///
/// over rungs m, where v_m = ln(r_m / r_0) is the rung's log utility,
/// S_m = r_m * chunk_seconds its size, Q the buffer level in chunks, and
/// V = (buffer_capacity/chunk_seconds - 1) / (v_max + gp) the control gain
/// that keeps the chosen rung's buffer target inside the playout buffer.
/// Ties go to the lowest rung (the conservative choice).  Throughput
/// estimates are ignored — BOLA is the buffer-only corner of the policy
/// menu, provably near-optimal for the utility it maximizes.
class BolaAbr : public AbrController {
 public:
  explicit BolaAbr(double gp = 5.0, double chunk_seconds = 10.0,
                   double buffer_capacity_s = 60.0)
      : gp_(gp),
        chunk_seconds_(chunk_seconds),
        buffer_capacity_s_(buffer_capacity_s) {}
  std::string name() const override { return "bola"; }
  std::size_t pick_rung(std::span<const double> ladder, double buffer_s,
                        double throughput_estimate_mbps) override;

 private:
  double gp_;
  double chunk_seconds_;
  double buffer_capacity_s_;
};

/// One viewer's streaming session simulation.
class StreamingSession {
 public:
  struct Config {
    std::vector<double> ladder_mbps = {1.0, 1.8, 2.5, 3.5, 5.0};
    double chunk_seconds = 10.0;
    int chunk_count = 180;          ///< 30 minutes
    double buffer_capacity_s = 60.0;
    double startup_threshold_s = 10.0;  ///< buffer needed to start playing
    /// Extra delivery stall injected every `stall_period_chunks` chunks —
    /// models a scheduler that blocks the pipeline at scheduling points
    /// (0 = the paper's one-slot-ahead design).
    double scheduling_stall_s = 0.0;
    int stall_period_chunks = 30;   ///< one 5-minute slot of 10 s chunks
  };

  StreamingSession() : StreamingSession(Config{}) {}
  explicit StreamingSession(Config config);

  /// Runs the whole session; deterministic in (rng state, model state).
  /// With an injector, each chunk download samples the link under
  /// kNetworkLink faults keyed (fault_key, chunk index); a null or
  /// disabled injector leaves the session bit-identical to the plain run.
  SessionQoe run(ThroughputModel& network, AbrController& abr,
                 common::Rng& rng,
                 const fault::FaultInjector* faults = nullptr,
                 std::uint64_t fault_key = 0) const;

  const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace lpvs::streaming

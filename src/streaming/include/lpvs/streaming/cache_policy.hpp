// Cache replacement policies for the edge chunk store (reproduction
// extension).  SIV-A notes that "depending on different caching strategies
// [32], the edge server might not have the whole video chunks" — chunk
// availability, and therefore what LPVS can price and transform, depends
// on the replacement policy.  This header generalizes the LRU cache of
// streaming.hpp behind a common interface, adds an LFU variant and
// hit/miss accounting, so the policies can be compared under the trace's
// Zipf-skewed demand (bench_cache_policies).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "lpvs/common/units.hpp"
#include "lpvs/media/video.hpp"
#include "lpvs/obs/metrics.hpp"

namespace lpvs::streaming {

/// Hit/miss counters shared by all policies.
struct CacheStats {
  long hits = 0;
  long misses = 0;
  long evictions = 0;

  double hit_ratio() const {
    const long total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / total : 0.0;
  }
};

/// Byte-budgeted chunk cache interface.
class ChunkCache {
 public:
  virtual ~ChunkCache() = default;

  virtual std::string policy_name() const = 0;

  /// Looks a chunk up, updating recency/frequency and the hit counters.
  virtual bool lookup(common::VideoId video, common::ChunkId chunk) = 0;

  /// Presence test without side effects.
  virtual bool contains(common::VideoId video,
                        common::ChunkId chunk) const = 0;

  /// Inserts (no-op if present); returns false if the chunk alone exceeds
  /// the cache.
  virtual bool insert(common::VideoId video,
                      const media::VideoChunk& chunk) = 0;

  virtual double used_mb() const = 0;
  virtual double capacity_mb() const = 0;
  virtual const CacheStats& stats() const = 0;

  /// Wires lookup/eviction accounting into a metrics registry as
  /// lpvs_cache_<policy>_{hits,misses,evictions}_total.  Detached (the
  /// default) the hooks cost one branch per lookup.
  void attach_metrics(obs::MetricsRegistry& registry);

 protected:
  void note_lookup(bool hit) {
    if (hit) {
      if (hits_metric_ != nullptr) hits_metric_->add(1);
    } else {
      if (misses_metric_ != nullptr) misses_metric_->add(1);
    }
  }
  void note_eviction() {
    if (evictions_metric_ != nullptr) evictions_metric_->add(1);
  }

 private:
  obs::Counter* hits_metric_ = nullptr;
  obs::Counter* misses_metric_ = nullptr;
  obs::Counter* evictions_metric_ = nullptr;
};

/// Least-recently-used replacement.
class LruChunkCache : public ChunkCache {
 public:
  explicit LruChunkCache(double capacity_mb);

  std::string policy_name() const override { return "lru"; }
  bool lookup(common::VideoId video, common::ChunkId chunk) override;
  bool contains(common::VideoId video,
                common::ChunkId chunk) const override;
  bool insert(common::VideoId video, const media::VideoChunk& chunk) override;
  double used_mb() const override { return used_mb_; }
  double capacity_mb() const override { return capacity_mb_; }
  const CacheStats& stats() const override { return stats_; }

 private:
  struct Entry {
    std::uint64_t key;
    double size_mb;
  };

  void evict_one();

  double capacity_mb_;
  double used_mb_ = 0.0;
  CacheStats stats_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
};

/// Least-frequently-used replacement with recency tie-breaking (classic
/// frequency-list O(1) LFU).
class LfuChunkCache : public ChunkCache {
 public:
  explicit LfuChunkCache(double capacity_mb);

  std::string policy_name() const override { return "lfu"; }
  bool lookup(common::VideoId video, common::ChunkId chunk) override;
  bool contains(common::VideoId video,
                common::ChunkId chunk) const override;
  bool insert(common::VideoId video, const media::VideoChunk& chunk) override;
  double used_mb() const override { return used_mb_; }
  double capacity_mb() const override { return capacity_mb_; }
  const CacheStats& stats() const override { return stats_; }

  /// Access frequency of a resident chunk (0 if absent); for tests.
  long frequency(common::VideoId video, common::ChunkId chunk) const;

 private:
  struct Entry {
    std::uint64_t key;
    double size_mb;
    long frequency;
  };
  // frequency -> LRU list of entries at that frequency (front = newest).
  using Bucket = std::list<Entry>;

  void evict_one();
  void bump(std::map<long, Bucket>::iterator bucket_it,
            Bucket::iterator entry_it);

  double capacity_mb_;
  double used_mb_ = 0.0;
  CacheStats stats_;
  std::map<long, Bucket> buckets_;
  struct Locator {
    std::map<long, Bucket>::iterator bucket;
    Bucket::iterator entry;
  };
  std::unordered_map<std::uint64_t, Locator> index_;
};

/// Factory by name ("lru" / "lfu"); nullptr for unknown names.
std::unique_ptr<ChunkCache> make_cache(const std::string& policy,
                                       double capacity_mb);

}  // namespace lpvs::streaming

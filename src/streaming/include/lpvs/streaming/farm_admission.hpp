// Batch admission for edge encoder farms (reproduction extension).
//
// EncoderFarm answers "can this worker pool deliver these jobs on time?";
// the scheduler answers "which users should be transformed at all?".  This
// module connects the two at deployment scale: every farm's active viewers
// form one SlotProblem, the whole fleet of farms is admitted in a single
// core::BatchScheduler call (sharded across the pool, consecutive slots
// warm-starting each farm's ILP under its farm id), and each farm's
// admitted set is then run through its encoder queue to yield deadline and
// utilization numbers for exactly the load the scheduler committed it to.
#pragma once

#include <cstdint>
#include <vector>

#include "lpvs/core/batch_scheduler.hpp"
#include "lpvs/core/run_context.hpp"
#include "lpvs/core/scheduler.hpp"
#include "lpvs/streaming/encoder_farm.hpp"

namespace lpvs::streaming {

/// One farm's slot: the cluster competing for its transform capacity plus
/// the shape of its encoding pipeline.
struct FarmSlotRequest {
  /// Stable farm identity — the BatchScheduler stream key, so resubmitting
  /// the same farm next slot warm-starts its ILP.  Unique within a batch.
  std::uint64_t farm_id = 0;
  core::SlotProblem problem;
  /// Encoder pool shape, forwarded to EncoderFarm / slot_jobs.
  int workers = 8;
  int chunks_per_slot = 30;
  double chunk_seconds = 10.0;
  /// Compute-cost units one worker retires per second of wall time.
  double worker_units = 1.0;
  double deadline_slack_chunks = 2.0;
};

/// What one farm got: the admission schedule, the admitted device indices
/// (positions into request.problem.devices), and the encoder-queue report
/// for that admitted load.
struct FarmSlotResult {
  core::Schedule schedule;
  std::vector<std::uint32_t> admitted;
  FarmReport farm;
};

/// Admits every farm's cluster in one sharded batch solve, then simulates
/// each farm's encoder queue on its admitted set.  Results are in request
/// order; determinism across thread counts is inherited from
/// BatchScheduler.  With a registry in `context`, the farms' queue metrics
/// land alongside the batch/solver metrics.
std::vector<FarmSlotResult> admit_and_encode(
    const std::vector<FarmSlotRequest>& requests,
    const core::Scheduler& scheduler, const core::RunContext& context,
    core::BatchScheduler& batch);

}  // namespace lpvs::streaming

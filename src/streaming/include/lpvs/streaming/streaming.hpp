// Streaming substrate (SIV-A, SIV-D): CDN catalog, edge chunk cache with
// prefetch, chunk availability per user request, and edge-server transform
// capacity.
//
// The paper's architecture: CDN servers at the PoP hold full videos; an
// edge server co-located with the base station prefetches chunks according
// to a caching strategy (which "provides underlying support for and is
// independent of LPVS"); mobile devices in the base station's coverage form
// a virtual cluster (VC) that shares the edge server.  At a scheduling
// point only the chunks already at the edge count as available for power
// estimation — user 2/3 in Fig. 4 have partial windows.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "lpvs/common/status.hpp"
#include "lpvs/common/units.hpp"
#include "lpvs/fault/fault_injector.hpp"
#include "lpvs/fault/retry.hpp"
#include "lpvs/media/video.hpp"
#include "lpvs/transform/transform.hpp"

namespace lpvs::streaming {

/// The paper's d_n(t) = <VID, CID_1, ..., CID_Km>: what device n will play
/// during slot t, restricted to the chunks available at the edge.
struct ChunkRequest {
  common::VideoId video;
  std::vector<common::ChunkId> chunks;

  bool empty() const { return chunks.empty(); }
  std::size_t chunk_count() const { return chunks.size(); }
};

/// CDN Point-of-Presence: authoritative store of whole videos.
class CdnServer {
 public:
  void publish(media::Video video);

  const media::Video* find(common::VideoId id) const;
  std::size_t catalog_size() const { return catalog_.size(); }

  /// All chunk ids of a video (what a cache may prefetch).
  std::vector<common::ChunkId> chunk_ids(common::VideoId id) const;

 private:
  std::unordered_map<std::uint32_t, media::Video> catalog_;
};

/// Byte-budgeted LRU chunk cache at the edge.
class EdgeCache {
 public:
  explicit EdgeCache(double capacity_mb);

  /// Inserts a chunk (evicting LRU entries if needed).  Returns
  /// kResourceExhausted when the chunk alone exceeds the whole cache; a
  /// re-insert of a cached chunk is OK and only refreshes recency.
  common::Status insert(common::VideoId video, const media::VideoChunk& chunk);

  bool contains(common::VideoId video, common::ChunkId chunk) const;

  /// Marks a hit (refreshes recency); returns whether it was present.
  bool touch(common::VideoId video, common::ChunkId chunk);

  double used_mb() const { return used_mb_; }
  double capacity_mb() const { return capacity_mb_; }
  std::size_t entries() const { return lru_.size(); }
  std::size_t evictions() const { return evictions_; }

 private:
  struct Key {
    std::uint32_t video;
    std::uint32_t chunk;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(k.video) << 32) | k.chunk);
    }
  };
  struct Entry {
    Key key;
    double size_mb;
  };

  void evict_one();

  double capacity_mb_;
  double used_mb_ = 0.0;
  std::size_t evictions_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
};

/// Simple look-ahead prefetcher: pulls the next `window` chunks of every
/// video that has active viewers into the edge cache (the "content delivery
/// strategy between the edge servers and the CDN servers" of SIV-A).
class Prefetcher {
 public:
  explicit Prefetcher(int window = 30, fault::BackoffPolicy backoff = {})
      : window_(window), backoff_(backoff) {}

  /// Prefetches up to `window_` chunks of `video` starting at
  /// `next_chunk_index` from the CDN into the cache; returns how many
  /// chunks were newly inserted, or kNotFound when the CDN does not carry
  /// the video.
  ///
  /// With an active injector, each CDN-to-edge chunk delivery is subject
  /// to kChunkDelivery faults and retried under the backoff policy
  /// (backoff accounted, not slept).  A chunk whose retry budget runs out
  /// is simply not cached this round — available_request() then truncates
  /// the device's window at the gap, which is the paper's partial-
  /// availability path (Fig. 4), and the next slot's prefetch tries again.
  /// Decisions are keyed on (fault_key, video, chunk, attempt), so replays
  /// drop identical chunks.
  common::StatusOr<int> prefetch(const CdnServer& cdn, EdgeCache& cache,
                                 common::VideoId video,
                                 std::size_t next_chunk_index,
                                 const fault::FaultInjector* faults = nullptr,
                                 std::uint64_t fault_key = 0) const;

  int window() const { return window_; }
  const fault::BackoffPolicy& backoff() const { return backoff_; }

 private:
  int window_;
  fault::BackoffPolicy backoff_;
};

/// Builds device n's slot request from what is actually cached: the video's
/// next chunks starting at `next_chunk_index`, truncated at the first gap
/// (playback cannot skip a missing chunk).
ChunkRequest available_request(const CdnServer& cdn, const EdgeCache& cache,
                               common::VideoId video,
                               std::size_t next_chunk_index,
                               std::size_t max_chunks);

/// Edge server transform capacity (SIV-D): extra compute units C and
/// staging storage S available for video transforming, with the admission
/// arithmetic of constraints (6) and (7).
class EdgeServer {
 public:
  struct Capacity {
    /// One unit = one real-time 1080p30 transform stream; the Nokia
    /// AirFrame-class box handles ~100 concurrent device streams (SVI-B),
    /// i.e. ~45 units under transform::ResourceModel's 0.45 units/stream.
    double compute_units = 45.0;
    double storage_mb = 32.0 * 1024.0;
  };

  EdgeServer() : EdgeServer(Capacity{}) {}
  explicit EdgeServer(Capacity capacity,
                      transform::ResourceModel resource_model = {});

  const Capacity& capacity() const { return capacity_; }
  const transform::ResourceModel& resource_model() const {
    return resource_model_;
  }

  /// g(d_n(t)) for one request (depends on the requesting display).
  double compute_cost(const display::DisplaySpec& spec,
                      const media::Video& video) const;
  /// h(d_n(t)) for one request.
  double storage_cost(const media::Video& video) const;

  /// Checks constraints (6) and (7) for a candidate selection, given
  /// per-device costs.
  static bool feasible(const std::vector<int>& selection,
                       const std::vector<double>& compute_costs,
                       const std::vector<double>& storage_costs,
                       double compute_capacity, double storage_capacity);

 private:
  Capacity capacity_;
  transform::ResourceModel resource_model_;
};

}  // namespace lpvs::streaming

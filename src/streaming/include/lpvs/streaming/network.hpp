// Wireless last-hop throughput model (reproduction extension).
//
// The paper's QoE discussion (SVII-D) argues LPVS's "one-slot-ahead"
// scheduling keeps it off the chunk delivery path, so freezing time and
// frequency are untouched.  Testing that claim requires a client-side
// streaming model, which in turn needs a link: this module provides a
// two-state Gilbert-Elliott-style channel — a good state and a degraded
// state with log-normal throughput in each — the standard simple model for
// cellular/WiFi variability.
// Besides the synthetic channel, the model can *replay a recorded trace*
// (from_trace): a line-oriented text file of per-download throughputs, so
// loadgen and the benches can drive clients with real network captures.
// Format, diff-friendly like lpvs-trace:
//
//   lpvs-throughput v1
//   # optional comments
//   12.5
//   9.81
//   ...
//
// one Mbps value per line.  Malformed or non-positive lines are skipped,
// not fatal (counted as lpvs_throughput_skipped_lines_total on the
// optional registry); a bad header or zero usable samples fails the load.
// Replay is cyclic and consumes no randomness.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "lpvs/common/rng.hpp"
#include "lpvs/common/status.hpp"
#include "lpvs/fault/fault_injector.hpp"
#include "lpvs/obs/metrics.hpp"

namespace lpvs::streaming {

/// Stateful per-device throughput process; sample once per download.
class ThroughputModel {
 public:
  struct Config {
    double good_mbps_median = 18.0;  ///< median throughput, good state
    double bad_mbps_median = 2.5;    ///< median throughput, degraded state
    double log_sigma = 0.35;         ///< lognormal spread within a state
    double p_good_to_bad = 0.06;     ///< per-sample transition probability
    double p_bad_to_good = 0.25;
  };

  ThroughputModel() : ThroughputModel(Config{}) {}
  explicit ThroughputModel(Config config) : config_(config) {}

  /// Draws the throughput (Mbps) for the next download, advancing the
  /// channel state.
  double sample_mbps(common::Rng& rng);

  /// Same, under injected kNetworkLink faults keyed (key_a, key_b): a drop
  /// is a radio outage (~0.01 Mbps, channel knocked into the bad state), a
  /// delay forces the bad state before the draw, a corruption scales the
  /// drawn rate by the decision's factor (retransmissions eating goodput).
  /// With a null/disabled injector this is exactly sample_mbps(rng).
  double sample_mbps(common::Rng& rng, const fault::FaultInjector* faults,
                     std::uint64_t key_a, std::uint64_t key_b = 0);

  bool in_good_state() const { return good_; }
  const Config& config() const { return config_; }

  /// Long-run fraction of time in the good state (stationary distribution
  /// of the two-state chain).
  double stationary_good_fraction() const;

  /// Parses the lpvs-throughput v1 text format into a trace-replay model
  /// (see the file comment).  Malformed lines are skipped and counted on
  /// `registry`; zero usable samples or a foreign header fail the load.
  static common::StatusOr<ThroughputModel> from_trace(
      std::istream& in, obs::MetricsRegistry* registry = nullptr);
  static common::StatusOr<ThroughputModel> from_trace_file(
      const std::string& path, obs::MetricsRegistry* registry = nullptr);

  /// Writes `mbps` in the lpvs-throughput v1 format (round-trips through
  /// from_trace).
  static void save_trace(const std::vector<double>& mbps, std::ostream& out);

  /// True when sample_mbps replays a trace instead of the synthetic chain.
  bool trace_mode() const { return !trace_mbps_.empty(); }
  const std::vector<double>& trace() const { return trace_mbps_; }
  /// Replay cursor (next sample = trace()[pos % size]); lets callers give
  /// each client a distinct phase of a shared trace.
  void set_trace_position(std::size_t pos) { trace_pos_ = pos; }

 private:
  Config config_;
  bool good_ = true;
  std::vector<double> trace_mbps_;  ///< non-empty = trace-replay mode
  std::size_t trace_pos_ = 0;
};

}  // namespace lpvs::streaming

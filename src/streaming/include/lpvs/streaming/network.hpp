// Wireless last-hop throughput model (reproduction extension).
//
// The paper's QoE discussion (SVII-D) argues LPVS's "one-slot-ahead"
// scheduling keeps it off the chunk delivery path, so freezing time and
// frequency are untouched.  Testing that claim requires a client-side
// streaming model, which in turn needs a link: this module provides a
// two-state Gilbert-Elliott-style channel — a good state and a degraded
// state with log-normal throughput in each — the standard simple model for
// cellular/WiFi variability.
#pragma once

#include <cstdint>

#include "lpvs/common/rng.hpp"
#include "lpvs/fault/fault_injector.hpp"

namespace lpvs::streaming {

/// Stateful per-device throughput process; sample once per download.
class ThroughputModel {
 public:
  struct Config {
    double good_mbps_median = 18.0;  ///< median throughput, good state
    double bad_mbps_median = 2.5;    ///< median throughput, degraded state
    double log_sigma = 0.35;         ///< lognormal spread within a state
    double p_good_to_bad = 0.06;     ///< per-sample transition probability
    double p_bad_to_good = 0.25;
  };

  ThroughputModel() : ThroughputModel(Config{}) {}
  explicit ThroughputModel(Config config) : config_(config) {}

  /// Draws the throughput (Mbps) for the next download, advancing the
  /// channel state.
  double sample_mbps(common::Rng& rng);

  /// Same, under injected kNetworkLink faults keyed (key_a, key_b): a drop
  /// is a radio outage (~0.01 Mbps, channel knocked into the bad state), a
  /// delay forces the bad state before the draw, a corruption scales the
  /// drawn rate by the decision's factor (retransmissions eating goodput).
  /// With a null/disabled injector this is exactly sample_mbps(rng).
  double sample_mbps(common::Rng& rng, const fault::FaultInjector* faults,
                     std::uint64_t key_a, std::uint64_t key_b = 0);

  bool in_good_state() const { return good_; }
  const Config& config() const { return config_; }

  /// Long-run fraction of time in the good state (stationary distribution
  /// of the two-state chain).
  double stationary_good_fraction() const;

 private:
  Config config_;
  bool good_ = true;
};

}  // namespace lpvs::streaming

#include "lpvs/streaming/farm_admission.hpp"

#include <utility>

namespace lpvs::streaming {

std::vector<FarmSlotResult> admit_and_encode(
    const std::vector<FarmSlotRequest>& requests,
    const core::Scheduler& scheduler, const core::RunContext& context,
    core::BatchScheduler& batch) {
  std::vector<core::BatchItem> items;
  items.reserve(requests.size());
  for (const FarmSlotRequest& request : requests) {
    core::BatchItem item;
    item.stream_key = request.farm_id;
    item.problem = request.problem;
    items.push_back(std::move(item));
  }

  std::vector<core::Schedule> schedules =
      batch.schedule_batch(items, scheduler, context);

  std::vector<FarmSlotResult> results;
  results.reserve(requests.size());
  for (std::size_t f = 0; f < requests.size(); ++f) {
    const FarmSlotRequest& request = requests[f];
    FarmSlotResult result;
    result.schedule = std::move(schedules[f]);

    std::vector<double> admitted_costs;
    for (std::size_t d = 0; d < request.problem.devices.size(); ++d) {
      if (d < result.schedule.x.size() && result.schedule.x[d] != 0) {
        result.admitted.push_back(static_cast<std::uint32_t>(d));
        admitted_costs.push_back(request.problem.devices[d].compute_cost);
      }
    }

    const std::vector<TransformJob> jobs = slot_jobs(
        admitted_costs, request.chunks_per_slot, request.chunk_seconds,
        request.worker_units, request.deadline_slack_chunks);
    result.farm = EncoderFarm(request.workers)
                      .run(jobs, context.metrics, context.faults,
                           /*fault_key=*/request.farm_id);
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace lpvs::streaming

#include "lpvs/streaming/network.hpp"

#include <cmath>

namespace lpvs::streaming {

double ThroughputModel::sample_mbps(common::Rng& rng) {
  // State transition first, then a draw from the new state's law.
  if (good_) {
    if (rng.bernoulli(config_.p_good_to_bad)) good_ = false;
  } else {
    if (rng.bernoulli(config_.p_bad_to_good)) good_ = true;
  }
  const double median =
      good_ ? config_.good_mbps_median : config_.bad_mbps_median;
  return median * std::exp(rng.normal(0.0, config_.log_sigma));
}

double ThroughputModel::sample_mbps(common::Rng& rng,
                                    const fault::FaultInjector* faults,
                                    std::uint64_t key_a, std::uint64_t key_b) {
  if (faults == nullptr || !faults->enabled()) return sample_mbps(rng);
  const fault::FaultDecision decision =
      faults->decide(fault::FaultSite::kNetworkLink, key_a, key_b);
  if (decision.dropped()) {
    good_ = false;  // an outage never leaves the channel healthy
    return 0.01;
  }
  if (decision.delayed()) good_ = false;
  double mbps = sample_mbps(rng);
  if (decision.corrupted()) {
    mbps *= std::max(0.05, 1.0 - std::abs(decision.corrupt_factor));
  }
  return mbps;
}

double ThroughputModel::stationary_good_fraction() const {
  const double to_bad = config_.p_good_to_bad;
  const double to_good = config_.p_bad_to_good;
  const double denom = to_bad + to_good;
  return denom > 0.0 ? to_good / denom : 1.0;
}

}  // namespace lpvs::streaming

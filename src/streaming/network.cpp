#include "lpvs/streaming/network.hpp"

#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace lpvs::streaming {

double ThroughputModel::sample_mbps(common::Rng& rng) {
  if (trace_mode()) {
    // Replay consumes no randomness: loadgen clients stay bit-identical
    // whether their trace came from a file or was injected directly.
    const double mbps = trace_mbps_[trace_pos_ % trace_mbps_.size()];
    ++trace_pos_;
    return mbps;
  }
  // State transition first, then a draw from the new state's law.
  if (good_) {
    if (rng.bernoulli(config_.p_good_to_bad)) good_ = false;
  } else {
    if (rng.bernoulli(config_.p_bad_to_good)) good_ = true;
  }
  const double median =
      good_ ? config_.good_mbps_median : config_.bad_mbps_median;
  return median * std::exp(rng.normal(0.0, config_.log_sigma));
}

double ThroughputModel::sample_mbps(common::Rng& rng,
                                    const fault::FaultInjector* faults,
                                    std::uint64_t key_a, std::uint64_t key_b) {
  if (faults == nullptr || !faults->enabled()) return sample_mbps(rng);
  const fault::FaultDecision decision =
      faults->decide(fault::FaultSite::kNetworkLink, key_a, key_b);
  if (decision.dropped()) {
    good_ = false;  // an outage never leaves the channel healthy
    return 0.01;
  }
  if (decision.delayed()) good_ = false;
  double mbps = sample_mbps(rng);
  if (decision.corrupted()) {
    mbps *= std::max(0.05, 1.0 - std::abs(decision.corrupt_factor));
  }
  return mbps;
}

double ThroughputModel::stationary_good_fraction() const {
  const double to_bad = config_.p_good_to_bad;
  const double to_good = config_.p_bad_to_good;
  const double denom = to_bad + to_good;
  return denom > 0.0 ? to_good / denom : 1.0;
}

common::StatusOr<ThroughputModel> ThroughputModel::from_trace(
    std::istream& in, obs::MetricsRegistry* registry) {
  std::string header;
  if (!std::getline(in, header) ||
      header.rfind("lpvs-throughput v1", 0) != 0) {
    return common::Status::InvalidArgument(
        "not an lpvs-throughput v1 trace");
  }

  std::vector<double> mbps;
  long skipped = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    double value = 0.0;
    std::string extra;
    if (!(row >> value) || row >> extra || !std::isfinite(value) ||
        value <= 0.0) {
      ++skipped;  // a truncated tail or stray text must not kill the load
      continue;
    }
    mbps.push_back(value);
  }
  if (skipped > 0 && registry != nullptr) {
    registry
        ->counter("lpvs_throughput_skipped_lines_total",
                  "Malformed lines skipped while loading throughput traces")
        .add(skipped);
  }
  if (mbps.empty()) {
    return common::Status::InvalidArgument("trace has no usable samples");
  }

  ThroughputModel model;
  model.trace_mbps_ = std::move(mbps);
  return model;
}

common::StatusOr<ThroughputModel> ThroughputModel::from_trace_file(
    const std::string& path, obs::MetricsRegistry* registry) {
  std::ifstream in(path);
  if (!in) return common::Status::NotFound("no trace at " + path);
  return from_trace(in, registry);
}

void ThroughputModel::save_trace(const std::vector<double>& mbps,
                                 std::ostream& out) {
  out << "lpvs-throughput v1\n";
  for (double value : mbps) out << value << "\n";
}

}  // namespace lpvs::streaming

#include "lpvs/streaming/network.hpp"

#include <cmath>

namespace lpvs::streaming {

double ThroughputModel::sample_mbps(common::Rng& rng) {
  // State transition first, then a draw from the new state's law.
  if (good_) {
    if (rng.bernoulli(config_.p_good_to_bad)) good_ = false;
  } else {
    if (rng.bernoulli(config_.p_bad_to_good)) good_ = true;
  }
  const double median =
      good_ ? config_.good_mbps_median : config_.bad_mbps_median;
  return median * std::exp(rng.normal(0.0, config_.log_sigma));
}

double ThroughputModel::stationary_good_fraction() const {
  const double to_bad = config_.p_good_to_bad;
  const double to_good = config_.p_bad_to_good;
  const double denom = to_bad + to_good;
  return denom > 0.0 ? to_good / denom : 1.0;
}

}  // namespace lpvs::streaming

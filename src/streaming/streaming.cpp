#include "lpvs/streaming/streaming.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace lpvs::streaming {

void CdnServer::publish(media::Video video) {
  const std::uint32_t key = video.id.value;
  catalog_.insert_or_assign(key, std::move(video));
}

const media::Video* CdnServer::find(common::VideoId id) const {
  const auto it = catalog_.find(id.value);
  return it == catalog_.end() ? nullptr : &it->second;
}

std::vector<common::ChunkId> CdnServer::chunk_ids(common::VideoId id) const {
  std::vector<common::ChunkId> ids;
  if (const media::Video* video = find(id)) {
    ids.reserve(video->chunks.size());
    for (const media::VideoChunk& chunk : video->chunks) {
      ids.push_back(chunk.id);
    }
  }
  return ids;
}

EdgeCache::EdgeCache(double capacity_mb) : capacity_mb_(capacity_mb) {
  assert(capacity_mb > 0.0);
}

common::Status EdgeCache::insert(common::VideoId video,
                                 const media::VideoChunk& chunk) {
  const Key key{video.value, chunk.id.value};
  if (const auto it = index_.find(key); it != index_.end()) {
    // Already cached: refresh recency only.
    lru_.splice(lru_.begin(), lru_, it->second);
    return common::Status::Ok();
  }
  const double size_mb = chunk.bitrate_mbps * chunk.duration.value / 8.0;
  if (size_mb > capacity_mb_) {
    return common::Status::ResourceExhausted(
        "chunk exceeds whole cache capacity");
  }
  while (used_mb_ + size_mb > capacity_mb_) evict_one();
  lru_.push_front(Entry{key, size_mb});
  index_[key] = lru_.begin();
  used_mb_ += size_mb;
  return common::Status::Ok();
}

void EdgeCache::evict_one() {
  assert(!lru_.empty());
  const Entry& victim = lru_.back();
  used_mb_ -= victim.size_mb;
  index_.erase(victim.key);
  lru_.pop_back();
  ++evictions_;
}

bool EdgeCache::contains(common::VideoId video, common::ChunkId chunk) const {
  return index_.contains(Key{video.value, chunk.value});
}

bool EdgeCache::touch(common::VideoId video, common::ChunkId chunk) {
  const auto it = index_.find(Key{video.value, chunk.value});
  if (it == index_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

common::StatusOr<int> Prefetcher::prefetch(const CdnServer& cdn,
                                           EdgeCache& cache,
                                           common::VideoId video,
                                           std::size_t next_chunk_index,
                                           const fault::FaultInjector* faults,
                                           std::uint64_t fault_key) const {
  const media::Video* source = cdn.find(video);
  if (source == nullptr) {
    return common::Status::NotFound("video not in CDN catalog");
  }
  // Attempts of one chunk's delivery draw distinct decisions; the stride
  // bounds the retry budget a backoff policy may configure.
  constexpr std::uint64_t kAttemptStride = 64;
  const bool lossy = faults != nullptr && faults->enabled();
  int inserted = 0;
  const std::size_t end = std::min(
      source->chunks.size(), next_chunk_index + static_cast<std::size_t>(
                                                     std::max(window_, 0)));
  for (std::size_t k = next_chunk_index; k < end; ++k) {
    if (cache.contains(video, source->chunks[k].id)) continue;
    if (lossy) {
      const fault::RetryResult delivery = fault::retry_with_backoff(
          backoff_, [&](int attempt) -> common::Status {
            const fault::FaultDecision decision = faults->decide(
                fault::FaultSite::kChunkDelivery, fault_key,
                ((static_cast<std::uint64_t>(video.value) << 24) ^ k) *
                        kAttemptStride +
                    static_cast<std::uint64_t>(attempt));
            if (decision.dropped() || decision.corrupted()) {
              // A corrupted chunk fails its checksum at the edge and is
              // re-requested, which costs the same as a drop.
              return common::Status::Unavailable("chunk delivery");
            }
            return common::Status::Ok();
          });
      if (!delivery.status.ok()) continue;  // retried next slot
    }
    if (cache.insert(video, source->chunks[k]).ok()) ++inserted;
  }
  return inserted;
}

ChunkRequest available_request(const CdnServer& cdn, const EdgeCache& cache,
                               common::VideoId video,
                               std::size_t next_chunk_index,
                               std::size_t max_chunks) {
  ChunkRequest request;
  request.video = video;
  const media::Video* source = cdn.find(video);
  if (source == nullptr) return request;
  const std::size_t end =
      std::min(source->chunks.size(), next_chunk_index + max_chunks);
  for (std::size_t k = next_chunk_index; k < end; ++k) {
    if (!cache.contains(video, source->chunks[k].id)) break;  // first gap
    request.chunks.push_back(source->chunks[k].id);
  }
  return request;
}

EdgeServer::EdgeServer(Capacity capacity,
                       transform::ResourceModel resource_model)
    : capacity_(capacity), resource_model_(resource_model) {}

double EdgeServer::compute_cost(const display::DisplaySpec& spec,
                                const media::Video& video) const {
  return resource_model_.compute_cost(spec, video);
}

double EdgeServer::storage_cost(const media::Video& video) const {
  return resource_model_.storage_cost(video);
}

bool EdgeServer::feasible(const std::vector<int>& selection,
                          const std::vector<double>& compute_costs,
                          const std::vector<double>& storage_costs,
                          double compute_capacity, double storage_capacity) {
  assert(selection.size() == compute_costs.size());
  assert(selection.size() == storage_costs.size());
  double compute = 0.0;
  double storage = 0.0;
  for (std::size_t n = 0; n < selection.size(); ++n) {
    if (selection[n] == 0) continue;
    compute += compute_costs[n];
    storage += storage_costs[n];
  }
  constexpr double kSlack = 1e-9;
  return compute <= compute_capacity + kSlack &&
         storage <= storage_capacity + kSlack;
}

}  // namespace lpvs::streaming

#include "lpvs/streaming/abr.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>

namespace lpvs::streaming {

std::size_t RateBasedAbr::pick_rung(std::span<const double> ladder,
                                    double buffer_s,
                                    double throughput_estimate_mbps) {
  (void)buffer_s;
  assert(!ladder.empty());
  const double budget = safety_ * throughput_estimate_mbps;
  std::size_t rung = 0;
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    if (ladder[i] <= budget) rung = i;
  }
  return rung;
}

std::size_t BufferBasedAbr::pick_rung(std::span<const double> ladder,
                                      double buffer_s,
                                      double throughput_estimate_mbps) {
  (void)throughput_estimate_mbps;
  assert(!ladder.empty());
  if (buffer_s <= reservoir_s_) return 0;
  if (buffer_s >= cushion_s_) return ladder.size() - 1;
  const double t =
      (buffer_s - reservoir_s_) / (cushion_s_ - reservoir_s_);
  return static_cast<std::size_t>(t * static_cast<double>(ladder.size() - 1) +
                                  0.5);
}

std::size_t BolaAbr::pick_rung(std::span<const double> ladder,
                               double buffer_s,
                               double throughput_estimate_mbps) {
  (void)throughput_estimate_mbps;
  assert(!ladder.empty());
  const double r0 = ladder.front();
  const double v_max = std::log(ladder.back() / r0);
  const double gain =
      (buffer_capacity_s_ / chunk_seconds_ - 1.0) / (v_max + gp_);
  const double q_chunks = buffer_s / chunk_seconds_;

  std::size_t best = 0;
  double best_score = 0.0;
  for (std::size_t m = 0; m < ladder.size(); ++m) {
    const double utility = std::log(ladder[m] / r0);
    const double size = ladder[m] * chunk_seconds_;
    const double score = (gain * (utility + gp_) - q_chunks) / size;
    if (m == 0 || score > best_score) {
      best = m;
      best_score = score;
    }
  }
  return best;
}

StreamingSession::StreamingSession(Config config)
    : config_(std::move(config)) {
  assert(!config_.ladder_mbps.empty());
  assert(std::is_sorted(config_.ladder_mbps.begin(),
                        config_.ladder_mbps.end()));
  assert(config_.chunk_seconds > 0.0);
}

SessionQoe StreamingSession::run(ThroughputModel& network,
                                 AbrController& abr,
                                 common::Rng& rng,
                                 const fault::FaultInjector* faults,
                                 std::uint64_t fault_key) const {
  SessionQoe qoe;
  double buffer_s = 0.0;
  bool playing = false;
  std::deque<double> recent_rates;  // for the harmonic-mean estimate
  double bitrate_sum = 0.0;
  std::size_t previous_rung = 0;
  bool have_previous = false;
  bool was_starved = false;

  for (int k = 0; k < config_.chunk_count; ++k) {
    // Throughput estimate: harmonic mean of the last five downloads
    // (robust to outliers, the standard choice).
    double estimate = 0.0;
    if (!recent_rates.empty()) {
      double inv_sum = 0.0;
      for (double r : recent_rates) inv_sum += 1.0 / r;
      estimate = static_cast<double>(recent_rates.size()) / inv_sum;
    }

    const std::size_t rung =
        abr.pick_rung(config_.ladder_mbps, buffer_s, estimate);
    const double bitrate = config_.ladder_mbps[rung];
    if (have_previous && rung != previous_rung) ++qoe.bitrate_switches;
    previous_rung = rung;
    have_previous = true;

    const double throughput = network.sample_mbps(
        rng, faults, fault_key, static_cast<std::uint64_t>(k));
    double download_s = bitrate * config_.chunk_seconds / throughput;
    // A scheduler that blocks chunk delivery while it solves adds its
    // runtime as a stall at every scheduling point; the paper's
    // one-slot-ahead mode sets this to zero.
    if (config_.scheduling_stall_s > 0.0 && k > 0 &&
        k % config_.stall_period_chunks == 0) {
      download_s += config_.scheduling_stall_s;
    }

    recent_rates.push_back(throughput);
    if (recent_rates.size() > 5) recent_rates.pop_front();

    if (!playing) {
      qoe.startup_delay_s += download_s;
      buffer_s += config_.chunk_seconds;
      if (buffer_s >= config_.startup_threshold_s) playing = true;
    } else {
      // Playback drains the buffer while the chunk downloads.
      if (buffer_s >= download_s) {
        buffer_s -= download_s;
        was_starved = false;
      } else {
        qoe.rebuffer_time_s += download_s - buffer_s;
        if (!was_starved) ++qoe.rebuffer_events;  // a new freezing episode
        was_starved = true;
        buffer_s = 0.0;
      }
      buffer_s = std::min(buffer_s + config_.chunk_seconds,
                          config_.buffer_capacity_s);
    }

    bitrate_sum += bitrate;
    ++qoe.chunks_played;
  }
  qoe.mean_bitrate_mbps =
      qoe.chunks_played > 0 ? bitrate_sum / qoe.chunks_played : 0.0;
  return qoe;
}

}  // namespace lpvs::streaming

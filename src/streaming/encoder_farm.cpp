#include "lpvs/streaming/encoder_farm.hpp"

#include <algorithm>
#include <cassert>

namespace lpvs::streaming {

EncoderFarm::EncoderFarm(int workers) : workers_(workers) {
  assert(workers > 0);
}

FarmReport EncoderFarm::run(std::vector<TransformJob> jobs,
                            obs::MetricsRegistry* metrics,
                            const fault::FaultInjector* faults,
                            std::uint64_t fault_key) const {
  FarmReport report;
  if (faults != nullptr && faults->enabled()) {
    std::vector<TransformJob> surviving;
    surviving.reserve(jobs.size());
    for (TransformJob job : jobs) {
      const fault::FaultDecision decision = faults->decide(
          fault::FaultSite::kEncoderWorker, fault_key,
          (static_cast<std::uint64_t>(job.device) << 32) | job.chunk);
      if (decision.dropped()) {
        ++report.jobs_failed;
        continue;
      }
      if (decision.delayed()) job.service_s += decision.delay_ms / 1000.0;
      if (decision.corrupted()) job.service_s *= 2.0;  // re-encode once
      surviving.push_back(job);
    }
    jobs = std::move(surviving);
    if (metrics != nullptr && report.jobs_failed > 0) {
      metrics
          ->counter("lpvs_farm_jobs_failed_total",
                    "Transform jobs lost to injected worker faults")
          .add(report.jobs_failed);
    }
  }
  if (jobs.empty()) return report;

  obs::Histogram* queue_depth_hist = nullptr;
  obs::Histogram* queue_delay_hist = nullptr;
  if (metrics != nullptr) {
    queue_depth_hist = &metrics->histogram(
        "lpvs_farm_queue_depth",
        obs::MetricsRegistry::linear_buckets(0.0, 5.0, 21),
        "Jobs waiting for a worker at each job's dispatch");
    queue_delay_hist = &metrics->histogram(
        "lpvs_farm_queue_delay_s",
        {0.0, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0},
        "Seconds a job waited between arrival and service start");
  }

  // FIFO dispatch: process in arrival order; each job takes the earliest
  // available worker.  A min-heap over worker free times is the classic
  // event-driven formulation of an M-worker FIFO queue.
  std::sort(jobs.begin(), jobs.end(),
            [](const TransformJob& a, const TransformJob& b) {
              return a.arrival_s < b.arrival_s;
            });
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (int w = 0; w < workers_; ++w) free_at.push(0.0);

  double total_delay = 0.0;
  double busy_seconds = 0.0;
  double last_finish = 0.0;
  const double first_arrival = jobs.front().arrival_s;
  // FIFO start times are non-decreasing, so the queue depth at a job's
  // arrival (earlier jobs still waiting to start) is a moving window over
  // the start-time sequence.
  std::vector<double> starts;
  if (queue_depth_hist != nullptr) starts.reserve(jobs.size());
  std::size_t started_before = 0;
  std::size_t job_index = 0;
  for (const TransformJob& job : jobs) {
    const double worker_free = free_at.top();
    free_at.pop();
    const double start = std::max(job.arrival_s, worker_free);
    const double finish = start + job.service_s;
    free_at.push(finish);

    const double delay = start - job.arrival_s;
    total_delay += delay;
    report.max_queue_delay_s = std::max(report.max_queue_delay_s, delay);
    busy_seconds += job.service_s;
    last_finish = std::max(last_finish, finish);
    ++report.jobs_completed;
    if (finish > job.deadline_s) ++report.jobs_missed_deadline;

    if (queue_depth_hist != nullptr) {
      starts.push_back(start);
      while (started_before < job_index &&
             starts[started_before] <= job.arrival_s) {
        ++started_before;
      }
      queue_depth_hist->observe(
          static_cast<double>(job_index - started_before));
      queue_delay_hist->observe(delay);
    }
    ++job_index;
  }
  report.mean_queue_delay_s =
      total_delay / static_cast<double>(report.jobs_completed);
  report.makespan_s = std::max(last_finish - first_arrival, 1e-12);
  report.mean_utilization =
      busy_seconds / (static_cast<double>(workers_) * report.makespan_s);

  if (metrics != nullptr) {
    metrics
        ->counter("lpvs_farm_jobs_total", "Transform jobs run to completion")
        .add(report.jobs_completed);
    metrics
        ->counter("lpvs_farm_deadline_misses_total",
                  "Transform jobs that finished past their deadline")
        .add(report.jobs_missed_deadline);
    metrics
        ->gauge("lpvs_farm_utilization",
                "Busy worker-seconds / capacity of the last run")
        .set(report.mean_utilization);
  }
  return report;
}

std::vector<TransformJob> slot_jobs(std::span<const double> compute_costs,
                                    int chunks_per_slot, double chunk_seconds,
                                    double worker_units,
                                    double deadline_slack_chunks) {
  assert(worker_units > 0.0);
  std::vector<TransformJob> jobs;
  jobs.reserve(compute_costs.size() *
               static_cast<std::size_t>(chunks_per_slot));
  for (std::size_t n = 0; n < compute_costs.size(); ++n) {
    // A device costing `c` compute units needs c/worker_units worker-
    // seconds per second of video: transforming one chunk of s seconds
    // takes s * c / worker_units wall seconds on one worker.
    const double service =
        chunk_seconds * compute_costs[n] / worker_units;
    for (int k = 0; k < chunks_per_slot; ++k) {
      TransformJob job;
      job.device = static_cast<std::uint32_t>(n);
      job.chunk = static_cast<std::uint32_t>(k);
      job.arrival_s = static_cast<double>(k) * chunk_seconds;
      job.service_s = service;
      job.deadline_s =
          job.arrival_s + deadline_slack_chunks * chunk_seconds;
      jobs.push_back(job);
    }
  }
  return jobs;
}

}  // namespace lpvs::streaming

#include "lpvs/streaming/cache_policy.hpp"

#include <cassert>

namespace lpvs::streaming {
namespace {

std::uint64_t chunk_key(common::VideoId video, common::ChunkId chunk) {
  return (static_cast<std::uint64_t>(video.value) << 32) | chunk.value;
}

double chunk_size_mb(const media::VideoChunk& chunk) {
  return chunk.bitrate_mbps * chunk.duration.value / 8.0;
}

}  // namespace

void ChunkCache::attach_metrics(obs::MetricsRegistry& registry) {
  const std::string prefix = "lpvs_cache_" + policy_name() + "_";
  hits_metric_ = &registry.counter(prefix + "hits_total",
                                   "Chunk lookups served from the cache");
  misses_metric_ = &registry.counter(prefix + "misses_total",
                                     "Chunk lookups that missed the cache");
  evictions_metric_ =
      &registry.counter(prefix + "evictions_total", "Chunks evicted");
}

// ---------------------------------------------------------------- LRU --

LruChunkCache::LruChunkCache(double capacity_mb)
    : capacity_mb_(capacity_mb) {
  assert(capacity_mb > 0.0);
}

bool LruChunkCache::lookup(common::VideoId video, common::ChunkId chunk) {
  const auto it = index_.find(chunk_key(video, chunk));
  if (it == index_.end()) {
    ++stats_.misses;
    note_lookup(false);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  note_lookup(true);
  return true;
}

bool LruChunkCache::contains(common::VideoId video,
                             common::ChunkId chunk) const {
  return index_.contains(chunk_key(video, chunk));
}

bool LruChunkCache::insert(common::VideoId video,
                           const media::VideoChunk& chunk) {
  const std::uint64_t key = chunk_key(video, chunk.id);
  if (const auto it = index_.find(key); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  const double size = chunk_size_mb(chunk);
  if (size > capacity_mb_) return false;
  while (used_mb_ + size > capacity_mb_) evict_one();
  lru_.push_front(Entry{key, size});
  index_[key] = lru_.begin();
  used_mb_ += size;
  return true;
}

void LruChunkCache::evict_one() {
  assert(!lru_.empty());
  const Entry& victim = lru_.back();
  used_mb_ -= victim.size_mb;
  index_.erase(victim.key);
  lru_.pop_back();
  ++stats_.evictions;
  note_eviction();
}

// ---------------------------------------------------------------- LFU --

LfuChunkCache::LfuChunkCache(double capacity_mb)
    : capacity_mb_(capacity_mb) {
  assert(capacity_mb > 0.0);
}

bool LfuChunkCache::lookup(common::VideoId video, common::ChunkId chunk) {
  const auto it = index_.find(chunk_key(video, chunk));
  if (it == index_.end()) {
    ++stats_.misses;
    note_lookup(false);
    return false;
  }
  bump(it->second.bucket, it->second.entry);
  ++stats_.hits;
  note_lookup(true);
  return true;
}

bool LfuChunkCache::contains(common::VideoId video,
                             common::ChunkId chunk) const {
  return index_.contains(chunk_key(video, chunk));
}

bool LfuChunkCache::insert(common::VideoId video,
                           const media::VideoChunk& chunk) {
  const std::uint64_t key = chunk_key(video, chunk.id);
  if (index_.contains(key)) return true;
  const double size = chunk_size_mb(chunk);
  if (size > capacity_mb_) return false;
  while (used_mb_ + size > capacity_mb_) evict_one();
  auto [bucket_it, inserted] = buckets_.try_emplace(1);
  (void)inserted;
  bucket_it->second.push_front(Entry{key, size, 1});
  index_[key] = Locator{bucket_it, bucket_it->second.begin()};
  used_mb_ += size;
  return true;
}

long LfuChunkCache::frequency(common::VideoId video,
                              common::ChunkId chunk) const {
  const auto it = index_.find(chunk_key(video, chunk));
  return it == index_.end() ? 0 : it->second.entry->frequency;
}

void LfuChunkCache::bump(std::map<long, Bucket>::iterator bucket_it,
                         Bucket::iterator entry_it) {
  Entry entry = *entry_it;
  ++entry.frequency;
  bucket_it->second.erase(entry_it);
  auto next_it = buckets_.try_emplace(entry.frequency).first;
  next_it->second.push_front(entry);
  if (bucket_it->second.empty()) buckets_.erase(bucket_it);
  index_[entry.key] = Locator{next_it, next_it->second.begin()};
}

void LfuChunkCache::evict_one() {
  assert(!buckets_.empty());
  // Lowest frequency bucket, least recently used inside it (back).
  const auto bucket_it = buckets_.begin();
  Bucket& bucket = bucket_it->second;
  assert(!bucket.empty());
  const Entry victim = bucket.back();
  bucket.pop_back();
  index_.erase(victim.key);
  used_mb_ -= victim.size_mb;
  if (bucket.empty()) buckets_.erase(bucket_it);
  ++stats_.evictions;
  note_eviction();
}

std::unique_ptr<ChunkCache> make_cache(const std::string& policy,
                                       double capacity_mb) {
  if (policy == "lru") return std::make_unique<LruChunkCache>(capacity_mb);
  if (policy == "lfu") return std::make_unique<LfuChunkCache>(capacity_mb);
  return nullptr;
}

}  // namespace lpvs::streaming

// SlotProblemConfig: the one type that parameterizes slot-problem assembly.
//
// Four subsystems build core::SlotProblem instances from the same knobs —
// the emulator (one virtual cluster), the city replay (many), the fleet
// federation (per edge server), and the serving daemon (per connected
// cluster).  Each used to carry its own copy of the fields, so a default
// changed in one could silently drift from the others and the daemon's
// inline duplicates ("kept inline here so the daemon has no emu dep") were
// the worst offender.  This struct is the single source: emu::ClusterParams
// derives from it, server::ServerConfig embeds it, and the per-subsystem
// configs only override defaults in their constructors.
//
// The load generator never assembles slot problems itself — it receives the
// scheduler's decisions over the wire — so it consumes this type only
// indirectly, through the daemon it drives.
//
// Fluent `with_*` builders mirror core::RunContext: each returns an updated
// copy, so call sites can assemble a config in one expression without
// mutating a shared instance.
#pragma once

#include <cstdint>

#include "lpvs/solver/lp.hpp"

namespace lpvs::core {

struct SlotProblemConfig {
  /// Edge transform capacity C of constraint (6), compute units.
  double compute_capacity = 45.0;
  /// Edge staging storage S of constraint (7), megabytes.
  double storage_capacity_mb = 32.0 * 1024.0;
  /// Objective regularizer of (8a)/(13).
  double lambda = 2000.0;
  /// Chunks generated (and priced) per device per slot.
  int chunks_per_slot = 30;
  /// Playback seconds per chunk.
  double chunk_seconds = 10.0;
  /// Fraction of the full charge a user budgets for one viewing session —
  /// the session-budget convention every subsystem shares, so absolute
  /// watch-time numbers land on the paper's scale.
  double effective_capacity_scale = 0.25;
  /// Seeds the derived per-(entity, slot) randomness streams.
  std::uint64_t seed = 42;
  /// Warm-start consecutive-slot ILP solves from the previous slot's
  /// assignment (solver::SolveCache).  Changes which optimal assignment
  /// ties resolve to and the nodes explored, never the objective achieved;
  /// off reproduces the historical every-solve-cold behavior exactly.
  bool warm_start = true;
  /// Which LP relaxation engine drives the per-slot B&B.  kRevised (the
  /// default) presolves, re-solves each node dually from its parent basis,
  /// and reuses the previous slot's root basis across coefficient deltas;
  /// kDense is the historical from-scratch simplex kept as the
  /// differential oracle.  Objectives are engine-independent (the
  /// differential tests enforce it); node counts and tie-broken
  /// assignments are not, so the engine is part of the solve-budget
  /// fingerprint (solver::budget_fingerprint).
  solver::LpEngine lp_engine = solver::LpEngine::kRevised;

  SlotProblemConfig with_compute_capacity(double v) const {
    SlotProblemConfig c = *this;
    c.compute_capacity = v;
    return c;
  }
  SlotProblemConfig with_storage_capacity_mb(double v) const {
    SlotProblemConfig c = *this;
    c.storage_capacity_mb = v;
    return c;
  }
  SlotProblemConfig with_lambda(double v) const {
    SlotProblemConfig c = *this;
    c.lambda = v;
    return c;
  }
  SlotProblemConfig with_chunks_per_slot(int v) const {
    SlotProblemConfig c = *this;
    c.chunks_per_slot = v;
    return c;
  }
  SlotProblemConfig with_chunk_seconds(double v) const {
    SlotProblemConfig c = *this;
    c.chunk_seconds = v;
    return c;
  }
  SlotProblemConfig with_effective_capacity_scale(double v) const {
    SlotProblemConfig c = *this;
    c.effective_capacity_scale = v;
    return c;
  }
  SlotProblemConfig with_seed(std::uint64_t v) const {
    SlotProblemConfig c = *this;
    c.seed = v;
    return c;
  }
  SlotProblemConfig with_warm_start(bool v) const {
    SlotProblemConfig c = *this;
    c.warm_start = v;
    return c;
  }
  SlotProblemConfig with_lp_engine(solver::LpEngine v) const {
    SlotProblemConfig c = *this;
    c.lp_engine = v;
    return c;
  }
};

}  // namespace lpvs::core

// The per-slot scheduling problem (SIV) and its evaluation machinery (SV-B).
//
// At a scheduling point the LPVS scheduler sees, for each device n of the
// virtual cluster: the power rates p_n(kappa) of the chunks available for
// the coming slot, the initial energy status e_n(1), the current Bayesian
// estimate of gamma_n, and the edge resource costs g/h of transforming the
// device's stream.  The joint objective (8a) couples power and anxiety
// through the battery trajectory; "information compacting" (SV-B) rewrites
// both the energy-feasibility constraint and the objective so that no
// intermediate energy status appears.  Both forms are implemented here and
// property-tested for exact equivalence.
#pragma once

#include <vector>

#include "lpvs/common/units.hpp"
#include "lpvs/survey/lba_curve.hpp"

namespace lpvs::core {

/// Everything the scheduler knows about one device at a scheduling point.
struct DeviceSlotInput {
  common::DeviceId id;
  /// p_n(kappa) for the available chunks, milliwatts.  Size K_m.
  std::vector<double> power_rates_mw;
  /// Delta_kappa, seconds, same size as power_rates_mw.
  std::vector<double> chunk_durations_s;
  /// e_n(1): remaining battery energy at the slot start, mWh.
  double initial_energy_mwh = 5000.0;
  /// Full-charge capacity, mWh (converts energy to the fraction phi eats).
  double battery_capacity_mwh = 13000.0;
  /// Current estimate E[gamma_n]: fraction of device power saved when the
  /// transform is on (see transform.hpp for the gamma semantics note).
  double gamma = 0.31;
  /// g(d_n(t)), compute units; h(d_n(t)), megabytes.
  double compute_cost = 0.45;
  double storage_cost = 75.0;
  /// SLA tier weight (Remark 3: lambda is set by the provider "based on
  /// ... specific service-level agreements with the customers").  The
  /// effective anxiety regularizer for this device is lambda * sla_weight;
  /// 1.0 = standard tier, >1 = premium subscribers whose anxiety the
  /// provider weighs more.
  double sla_weight = 1.0;

  std::size_t chunk_count() const { return power_rates_mw.size(); }
};

/// One slot's joint problem over the whole virtual cluster.
struct SlotProblem {
  std::vector<DeviceSlotInput> devices;
  double compute_capacity = 45.0;   ///< C in constraint (6)
  double storage_capacity = 32768;  ///< S in constraint (7)
  /// Regularization lambda of objective (8a), in milliwatt-equivalents per
  /// unit anxiety (the power term is summed in mW, so lambda ~ 10^3 makes
  /// the two terms comparable; Remark 3 leaves the choice to the provider).
  double lambda = 2000.0;
};

/// Per-device outcome of playing the slot with or without the transform.
struct DeviceEvaluation {
  double sum_psi_mw = 0.0;        ///< sum over chunks of psi(kappa)
  double sum_anxiety = 0.0;       ///< sum over chunks of phi(e(kappa))
  double final_energy_mwh = 0.0;  ///< e(K_m + 1), floored at zero
  double energy_spent_mwh = 0.0;
  bool battery_survives = true;   ///< no chunk started with an empty battery

  /// The device's contribution to objective (8a)/(13).
  double objective(double lambda) const {
    return sum_psi_mw + lambda * sum_anxiety;
  }
};

/// Forward (chunk-by-chunk) evaluation implementing (3), (5) and the
/// objective terms of (8a) literally.  `transformed` is x_n.
DeviceEvaluation evaluate_forward(const DeviceSlotInput& device,
                                  bool transformed,
                                  const survey::AnxietyModel& anxiety);

/// Compacted-form objective term of (13) for this device: identical value
/// to evaluate_forward(...).objective(lambda) — the equivalence the paper
/// proves via (12) and that our property tests check numerically.
double compacted_objective(const DeviceSlotInput& device, bool transformed,
                           const survey::AnxietyModel& anxiety,
                           double lambda);

/// Left-hand side minus right-hand side of the compacted energy constraint
/// (11); non-negative means the device can afford the slot when
/// transformed.  Exposed separately so tests can check the telescoped
/// identity (10d) against the forward simulation.
double compacted_constraint_slack(const DeviceSlotInput& device);

/// Sum over kappa of e(kappa) computed by the closed form (10d).
double energy_sum_closed_form(const DeviceSlotInput& device,
                              bool transformed);

/// Sum over kappa of e(kappa) computed by forward simulation of (5),
/// *without* flooring at zero (the algebraic identity the paper uses).
double energy_sum_forward(const DeviceSlotInput& device, bool transformed);

/// Eligibility filter for Phase-1: the device has chunks to play, a
/// meaningful gamma, and constraint (11) holds under x_n = 1.
bool eligible_for_transform(const DeviceSlotInput& device);

/// Total energy (mWh) the device would spend on the slot untransformed.
double untransformed_energy_mwh(const DeviceSlotInput& device);

}  // namespace lpvs::core

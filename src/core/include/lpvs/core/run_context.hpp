// RunContext: the per-run environment threaded through the scheduling and
// emulation hot paths (API redesign).
//
// Before this existed every layer took the anxiety model as a bare
// argument, and every new cross-cutting concern (metrics, tracing, solve
// caching, fault injection, deadlines) threatened to multiply method
// signatures.  RunContext bundles the anxiety model with *optional*
// capabilities; a default-constructed (or capability-less) context is the
// disabled state, and every instrumentation site guards on the null
// pointers, so un-instrumented runs pay one branch per site.
//
// New knobs are attached with the fluent builder instead of new overloads:
//
//   RunContext(anxiety)
//       .with_metrics(&registry)
//       .with_trace(&trace)
//       .with_fault_injector(&chaos)
//       .with_deadline(SlotDeadline{.budget_ms = 250.0});
//
// Contracts:
//   - Observability is purely observational: attaching a registry or trace
//     must never change schedules, RunMetrics, or any other computed
//     result (tests/obs_test.cpp asserts a paired on/off run is identical).
//   - Fault injection is zero-cost when disabled: a null injector — or an
//     attached injector whose probabilities are all zero — leaves every
//     computed result bit-identical to the pre-fault-layer pipeline
//     (tests/fault_test.cpp asserts it).
#pragma once

#include <cassert>

#include <cstdint>

#include "lpvs/fault/fault_injector.hpp"
#include "lpvs/obs/event_trace.hpp"
#include "lpvs/obs/metrics.hpp"
#include "lpvs/survey/lba_curve.hpp"

namespace lpvs::solver {
class SolveCache;
}  // namespace lpvs::solver

namespace lpvs::core {

/// Per-slot scheduling deadline.  The scheduler must hand back *some*
/// feasible schedule inside the budget; when the budget is blown (for
/// real, or via injected kSolverBudget overruns) it walks the degradation
/// ladder (scheduler.hpp) instead of overrunning the slot boundary.
struct SlotDeadline {
  /// Wall budget for one slot's schedule, milliseconds; 0 = no deadline.
  double budget_ms = 0.0;
  /// Operational override: pin the ladder to one rung (0..3) regardless of
  /// budget or faults; -1 = pick normally.  The kill switch for a
  /// misbehaving solver in production, and the deterministic handle the
  /// ladder tests use.
  int force_rung = -1;

  bool enabled() const { return budget_ms > 0.0 || force_rung >= 0; }
};

struct RunContext {
  /// The LBA anxiety model phi; required by every scheduler.
  const survey::AnxietyModel* anxiety = nullptr;
  /// Optional metric sink (counters / gauges / histograms); null = off.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional structured event sink; null = off.
  obs::EventTrace* events = nullptr;
  /// Optional warm-start cache for the ILP-backed schedulers; null = every
  /// solve starts cold.  Unlike the observability sinks, a cache is allowed
  /// to change *which* optimal assignment ties resolve to and how many
  /// nodes the search visits — never the objective value achieved (the
  /// differential tests enforce that).
  solver::SolveCache* solve_cache = nullptr;
  /// Identifies the problem stream within the cache (one key per virtual
  /// cluster); consecutive solves under the same key warm-start each other.
  std::uint64_t solve_key = 0;
  /// Optional fault injector; null (or all probabilities zero) = the
  /// happy-path pipeline, bit-identical to a build without the fault layer.
  const fault::FaultInjector* faults = nullptr;
  /// Per-slot scheduling deadline; disabled by default.
  SlotDeadline deadline{};
  /// The slot index this context is scheduling (fault-decision keys and
  /// trace attribution); -1 when the caller is not slot-driven.
  std::int64_t slot = -1;

  RunContext() = default;
  RunContext(const survey::AnxietyModel& anxiety_model,
             obs::MetricsRegistry* registry = nullptr,
             obs::EventTrace* sink = nullptr)
      : anxiety(&anxiety_model), metrics(registry), events(sink) {}

  const survey::AnxietyModel& anxiety_model() const {
    assert(anxiety != nullptr);
    return *anxiety;
  }
  bool observed() const { return metrics != nullptr || events != nullptr; }
  /// True when fault decisions can actually fire; sites guard on this so a
  /// disabled injector costs one branch.
  bool faults_active() const {
    return faults != nullptr && faults->enabled();
  }

  // --- Fluent builder: each returns a bound copy, so a base context can
  // --- be specialized per shard/slot without mutating the original.
  RunContext with_metrics(obs::MetricsRegistry* registry) const {
    RunContext bound = *this;
    bound.metrics = registry;
    return bound;
  }
  RunContext with_trace(obs::EventTrace* sink) const {
    RunContext bound = *this;
    bound.events = sink;
    return bound;
  }
  /// Copy of this context bound to a solve cache and stream key; the
  /// batch/emulation layers hand each shard its own keyed view.
  RunContext with_solve_cache(solver::SolveCache* cache,
                              std::uint64_t key) const {
    RunContext bound = *this;
    bound.solve_cache = cache;
    bound.solve_key = key;
    return bound;
  }
  RunContext with_fault_injector(const fault::FaultInjector* injector) const {
    RunContext bound = *this;
    bound.faults = injector;
    return bound;
  }
  RunContext with_deadline(SlotDeadline slot_deadline) const {
    RunContext bound = *this;
    bound.deadline = slot_deadline;
    return bound;
  }
  RunContext with_slot(std::int64_t slot_index) const {
    RunContext bound = *this;
    bound.slot = slot_index;
    return bound;
  }
};

}  // namespace lpvs::core

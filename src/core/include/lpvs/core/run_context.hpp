// RunContext: the per-run environment threaded through the scheduling and
// emulation hot paths (API redesign).
//
// Before this existed every layer took the anxiety model as a bare
// argument, and there was no way to hand a metrics registry or an event
// trace to the code that actually does the work.  RunContext bundles the
// anxiety model with *optional* observability sinks; a default-constructed
// (or sink-less) context is the disabled state, and every instrumentation
// site guards on the null pointers, so un-observed runs pay one branch.
//
// Contract: observability is purely observational.  Attaching a registry
// or trace must never change schedules, RunMetrics, or any other computed
// result — tests/obs_test.cpp asserts a paired on/off run is identical.
#pragma once

#include <cassert>

#include <cstdint>

#include "lpvs/obs/event_trace.hpp"
#include "lpvs/obs/metrics.hpp"
#include "lpvs/survey/lba_curve.hpp"

namespace lpvs::solver {
class SolveCache;
}  // namespace lpvs::solver

namespace lpvs::core {

struct RunContext {
  /// The LBA anxiety model phi; required by every scheduler.
  const survey::AnxietyModel* anxiety = nullptr;
  /// Optional metric sink (counters / gauges / histograms); null = off.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional structured event sink; null = off.
  obs::EventTrace* events = nullptr;
  /// Optional warm-start cache for the ILP-backed schedulers; null = every
  /// solve starts cold.  Unlike the observability sinks, a cache is allowed
  /// to change *which* optimal assignment ties resolve to and how many
  /// nodes the search visits — never the objective value achieved (the
  /// differential tests enforce that).
  solver::SolveCache* solve_cache = nullptr;
  /// Identifies the problem stream within the cache (one key per virtual
  /// cluster); consecutive solves under the same key warm-start each other.
  std::uint64_t solve_key = 0;

  RunContext() = default;
  RunContext(const survey::AnxietyModel& anxiety_model,
             obs::MetricsRegistry* registry = nullptr,
             obs::EventTrace* sink = nullptr)
      : anxiety(&anxiety_model), metrics(registry), events(sink) {}

  const survey::AnxietyModel& anxiety_model() const {
    assert(anxiety != nullptr);
    return *anxiety;
  }
  bool observed() const { return metrics != nullptr || events != nullptr; }

  /// Copy of this context bound to a solve cache and stream key; the
  /// batch/emulation layers hand each shard its own keyed view.
  RunContext with_solve_cache(solver::SolveCache* cache,
                              std::uint64_t key) const {
    RunContext bound = *this;
    bound.solve_cache = cache;
    bound.solve_key = key;
    return bound;
  }
};

}  // namespace lpvs::core

// LPVS schedulers (SV): the two-phase heuristic and the baselines it is
// judged against.
//
// Phase-1 drops the nonlinear anxiety term and solves the remaining linear
// 0/1 program — maximize the slot's energy saving subject to the two edge
// capacity rows (6)(7), with the compacted constraint (11) as an
// eligibility filter — exactly, via branch-and-bound (the paper calls
// CPLEX/Gurobi here).  Phase-2 re-introduces phi: unselected users are
// ranked by anxiety degree and greedily swapped with selected users
// whenever the swap reduces the full lambda-weighted objective (13) and
// stays feasible.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lpvs/core/run_context.hpp"
#include "lpvs/core/slot_problem.hpp"
#include "lpvs/core/slot_problem_config.hpp"
#include "lpvs/solver/ilp.hpp"
#include "lpvs/survey/lba_curve.hpp"

namespace lpvs::core {

/// How much of the two-phase heuristic a slot actually got before its
/// deadline/fault budget ran out.  LpvsScheduler walks these rungs top to
/// bottom; every rung below kFullSolve still yields a feasible schedule,
/// trading optimality for bounded latency (graceful degradation).
enum class DegradationRung : int {
  kFullSolve = 0,       ///< exact Phase-1 B&B (+ Phase-2)
  kWarmRepair = 1,      ///< greedy repair of the previous assignment
  kReplayPrevious = 2,  ///< previous slot's assignment replayed verbatim
  kPassthrough = 3,     ///< x = 0 everywhere (no-transform)
};

/// Stable lowercase label ("full_solve", "warm_repair", ...).
const char* degradation_rung_name(DegradationRung rung);

/// A slot schedule plus everything the evaluation section reports about it.
struct Schedule {
  std::vector<int> x;  ///< x_n per device

  double objective = 0.0;            ///< lambda-weighted objective (13)
  double baseline_objective = 0.0;   ///< same with x = 0
  double energy_spent_mwh = 0.0;     ///< across the VC, with this schedule
  double baseline_energy_mwh = 0.0;  ///< across the VC, untransformed
  double anxiety_sum = 0.0;          ///< sum of per-chunk anxiety degrees
  double baseline_anxiety_sum = 0.0;
  double compute_used = 0.0;
  double storage_used = 0.0;
  long ilp_nodes = 0;
  int phase2_swaps = 0;
  int phase2_additions = 0;
  /// Which ladder rung produced this schedule (kFullSolve unless the run
  /// context carried a deadline or an active fault injector).
  DegradationRung rung = DegradationRung::kFullSolve;

  int selected_count() const;
  double energy_saving_ratio() const;   ///< (baseline - actual) / baseline
  double anxiety_reduction_ratio() const;
};

/// Interface shared by LPVS and all baseline selectors.
///
/// The single entry point takes a RunContext: the anxiety model plus the
/// optional capabilities (metrics, tracing, solve cache, faults, deadline).
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;
  virtual Schedule schedule(const SlotProblem& problem,
                            const RunContext& context) const = 0;
};

/// Scores a given selection vector: fills every metric field of Schedule.
/// All schedulers funnel through this so results are comparable.
Schedule score_selection(const SlotProblem& problem,
                         const survey::AnxietyModel& anxiety,
                         std::vector<int> x);

/// The Phase-1 binary program (14): maximize the slot energy saving under
/// the two capacity rows, with the compacted constraint (11) as the
/// eligibility mask.  Exposed so the differential test harness and the
/// warm-start bench can solve the exact workload the scheduler solves.
solver::BinaryProgram phase1_program(const SlotProblem& problem);

/// B&B settings tuned for per-slot scheduling: a bounded node budget and a
/// 0.001% relative optimality gap, so the solver never chases ties through
/// an exponential frontier of equivalent optima inside a 5-minute slot.
/// The zero-argument form selects the revised/dual-simplex engine — the
/// serving hot path; pass solver::LpEngine::kDense to pin the historical
/// oracle instead.
solver::BranchAndBoundSolver::Options scheduler_ilp_defaults();
solver::BranchAndBoundSolver::Options scheduler_ilp_defaults(
    solver::LpEngine engine);

/// The paper's two-phase heuristic (SV-C).
class LpvsScheduler : public Scheduler {
 public:
  struct Options {
    solver::BranchAndBoundSolver::Options ilp = scheduler_ilp_defaults();
    /// Upper bound on Phase-2 sweep passes over the unselected list.
    int max_phase2_passes = 2;
    /// Also greedily add eligible unselected users into leftover capacity
    /// when their objective benefit is positive (strictly improves (13)).
    bool augment_after_swaps = true;
    /// Deadline-to-node-budget conversion for SlotDeadline::budget_ms.
    /// Deterministic by construction: the budget truncates the B&B node
    /// limit instead of racing a wall clock, so two runs with the same
    /// deadline always produce bit-identical schedules.
    double nodes_per_ms = 100.0;
    /// Below this derived node budget a truncated B&B is pointless (the
    /// root LP alone dominates the cost); the ladder skips straight to
    /// kWarmRepair.
    long min_full_solve_nodes = 16;
  };

  LpvsScheduler() : LpvsScheduler(Options{}) {}
  explicit LpvsScheduler(Options options) : options_(options) {}

  std::string name() const override { return "lpvs"; }
  Schedule schedule(const SlotProblem& problem,
                    const RunContext& context) const override;

  /// Phase-1 only (exposed for the ablation bench).
  Schedule schedule_phase1_only(const SlotProblem& problem,
                                const RunContext& context) const;

 private:
  Schedule run(const SlotProblem& problem, const RunContext& context,
               bool run_phase2) const;

  Options options_;
};

/// LpvsScheduler options honoring a SlotProblemConfig's solver knobs
/// (lp_engine today); the subsystem configs that embed SlotProblemConfig
/// construct their schedulers through this so the engine choice actually
/// reaches the solver.
LpvsScheduler::Options scheduler_options_for(const SlotProblemConfig& config);

/// x = 0 everywhere: conventional streaming without LPVS.
class NoTransformScheduler : public Scheduler {
 public:
  std::string name() const override { return "no-transform"; }
  Schedule schedule(const SlotProblem& problem,
                    const RunContext& context) const override;
};

/// Random admission until capacity runs out — the strategy SIII-C argues
/// "cannot be optimal".
class RandomScheduler : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : seed_(seed) {}
  std::string name() const override { return "random"; }
  Schedule schedule(const SlotProblem& problem,
                    const RunContext& context) const override;

 private:
  std::uint64_t seed_;
};

/// Greedy by per-device energy saving (density on the binding resource).
class GreedyEnergyScheduler : public Scheduler {
 public:
  std::string name() const override { return "greedy-energy"; }
  Schedule schedule(const SlotProblem& problem,
                    const RunContext& context) const override;
};

/// Greedy by anxiety degree at the slot start (most anxious users first).
class GreedyAnxietyScheduler : public Scheduler {
 public:
  std::string name() const override { return "greedy-anxiety"; }
  Schedule schedule(const SlotProblem& problem,
                    const RunContext& context) const override;
};

/// Exact B&B on the full lambda-weighted objective (exploits that (13) is
/// separable across devices).  Not part of the paper — the reproduction's
/// upper bound for the ablation of the two-phase heuristic.
class JointOptimalScheduler : public Scheduler {
 public:
  explicit JointOptimalScheduler(
      solver::BranchAndBoundSolver::Options options = {})
      : options_(options) {}
  std::string name() const override { return "joint-optimal"; }
  Schedule schedule(const SlotProblem& problem,
                    const RunContext& context) const override;

 private:
  solver::BranchAndBoundSolver::Options options_;
};

}  // namespace lpvs::core

// Information-gathering signaling cost (SVI-B's first emulator block,
// reproduction extension).
//
// At every scheduling point each device uploads a small report — display
// spec, battery status, requested chunk ids — and the edge pushes back a
// one-bit decision.  LPVS only makes sense if this signaling costs the
// phone (and the uplink) far less than the display saving it buys; this
// module quantifies both sides so the claim is checked, not assumed.
#pragma once

#include <cstddef>
#include <cstdint>

#include "lpvs/common/status.hpp"
#include "lpvs/common/units.hpp"
#include "lpvs/fault/fault_injector.hpp"
#include "lpvs/fault/retry.hpp"

namespace lpvs::core {

/// Sizes of the per-slot report protocol, in bytes.
struct ReportSchema {
  std::size_t header_bytes = 24;       ///< ids, slot number, auth tag
  std::size_t display_spec_bytes = 8;  ///< panel type + resolution code
  std::size_t battery_bytes = 4;       ///< energy status (fixed point)
  std::size_t per_chunk_bytes = 4;     ///< one CID per available chunk
  std::size_t decision_bytes = 16;     ///< downlink: decision + next slot

  std::size_t uplink_bytes(std::size_t chunk_count) const {
    return header_bytes + display_spec_bytes + battery_bytes +
           per_chunk_bytes * chunk_count;
  }
};

/// Device-side energy model for the report exchange.
class SignalingCostModel {
 public:
  struct Coefficients {
    /// Radio energy per transmitted byte (LTE/5G uplink, including the
    /// promotion overhead amortized over the report burst).
    double uplink_nj_per_byte = 900.0;
    double downlink_nj_per_byte = 350.0;
    /// Fixed radio state-promotion cost if the radio were idle (the worst
    /// case; during streaming the radio is already active, cost ~0).
    double promotion_mj = 0.0;
  };

  SignalingCostModel() : SignalingCostModel(Coefficients{}) {}
  explicit SignalingCostModel(Coefficients coefficients)
      : coefficients_(coefficients) {}

  /// Energy one device spends on one scheduling point's exchange.
  common::MilliwattHours report_energy(const ReportSchema& schema,
                                       std::size_t chunk_count) const;

  /// Average extra device power due to signaling at the slot cadence.
  common::Milliwatts report_power(const ReportSchema& schema,
                                  std::size_t chunk_count,
                                  common::Seconds slot_length) const;

  const Coefficients& coefficients() const { return coefficients_; }

 private:
  Coefficients coefficients_;
};

/// What one scheduling point's report exchange actually cost once the link
/// was allowed to be lossy.
struct SignalingOutcome {
  int uplink_attempts = 1;
  int downlink_attempts = 1;
  double backoff_ms = 0.0;  ///< accounted (not slept) retry backoff
  double delay_ms = 0.0;    ///< injected transit delay, both directions
  /// Device-side energy including every retransmission (the clean-link
  /// exchange costs exactly SignalingCostModel::report_energy).
  common::MilliwattHours energy{0.0};

  int retries() const { return uplink_attempts + downlink_attempts - 2; }
};

/// The report exchange over a lossy link (tentpole): uplink report and
/// downlink decision, each delivered with retry-with-exponential-backoff
/// under injected kSignalingUplink / kSignalingDownlink faults.
///
/// Deterministic: every fault decision is keyed on (device, slot, attempt),
/// so a replayed run retries the same messages the same number of times.
/// With a null/disabled injector the exchange always succeeds on the first
/// attempt at exactly the clean-link energy.
class SignalingLink {
 public:
  SignalingLink() = default;
  SignalingLink(ReportSchema schema, SignalingCostModel cost_model,
                fault::BackoffPolicy backoff = {})
      : schema_(schema), cost_model_(cost_model), backoff_(backoff) {}

  /// Attempts the full exchange for (device, slot).  Returns the outcome
  /// when both directions eventually deliver; kUnavailable when either
  /// still fails after the retry budget (the edge then schedules without
  /// this device's report); kDeadlineExceeded when `timeout_ms` > 0 and
  /// the accumulated backoff would overrun it.
  common::StatusOr<SignalingOutcome> exchange(
      const fault::FaultInjector* injector, std::uint64_t device,
      std::uint64_t slot, std::size_t chunk_count,
      double timeout_ms = 0.0) const;

  const ReportSchema& schema() const { return schema_; }
  const fault::BackoffPolicy& backoff() const { return backoff_; }

 private:
  ReportSchema schema_{};
  SignalingCostModel cost_model_{};
  fault::BackoffPolicy backoff_{};
};

}  // namespace lpvs::core

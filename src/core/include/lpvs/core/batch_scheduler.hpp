// Sharded, warm-started fleet solving (scaling extension).
//
// A deployment schedules many virtual clusters at every slot boundary.
// BatchScheduler turns that into one call: it shards N independent
// SlotProblems across a ThreadPool, hands every shard a RunContext view
// bound to a shared solver::SolveCache under the shard's stream key, and
// returns the schedules in input order.  Submitting the next slot's batch
// with the same stream keys warm-starts every cluster's ILP from its
// previous assignment.
//
// Determinism: results land in pre-assigned slots and each shard's solve
// depends only on its own problem plus its own stream's cache entry, so
// any thread count produces identical schedules for the same batch
// sequence — provided stream keys are unique within a batch (asserted).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "lpvs/common/thread_pool.hpp"
#include "lpvs/core/run_context.hpp"
#include "lpvs/core/scheduler.hpp"
#include "lpvs/solver/solve_cache.hpp"

namespace lpvs::core {

/// One cluster's slot problem plus the key identifying its problem stream
/// across consecutive batches (e.g. the session or edge-server id).
struct BatchItem {
  std::uint64_t stream_key = 0;
  SlotProblem problem;
};

class BatchScheduler {
 public:
  struct Options {
    /// Worker threads for the shard fan-out; 0 = hardware concurrency,
    /// 1 = run inline on the caller's thread.
    unsigned threads = 0;
    /// Seed each shard's ILP with its stream's previous assignment.  Off,
    /// the batch is pure sharding (every solve cold) — the control leg the
    /// warm-start bench compares against.
    bool warm_start = true;
  };

  BatchScheduler() : BatchScheduler(Options{}) {}
  explicit BatchScheduler(Options options);

  /// Solves every item with `scheduler`; result i corresponds to items[i].
  /// With a registry in `context`, per-shard wall times land in
  /// lpvs_batch_shard_ms and batch totals in lpvs_batch_* counters.
  std::vector<Schedule> schedule_batch(const std::vector<BatchItem>& items,
                                       const Scheduler& scheduler,
                                       const RunContext& context);

  /// The cross-batch warm-start cache (hit/seed counts for benches/tests).
  const solver::SolveCache& cache() const { return cache_; }
  void clear_cache() { cache_.clear(); }

  const Options& options() const { return options_; }

 private:
  Options options_;
  solver::SolveCache cache_;
  std::unique_ptr<common::ThreadPool> pool_;
};

}  // namespace lpvs::core

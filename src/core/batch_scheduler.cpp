#include "lpvs/core/batch_scheduler.hpp"

#include <cassert>
#include <unordered_set>

namespace lpvs::core {

BatchScheduler::BatchScheduler(Options options) : options_(options) {
  if (options_.threads != 1) {
    pool_ = std::make_unique<common::ThreadPool>(options_.threads);
  }
}

std::vector<Schedule> BatchScheduler::schedule_batch(
    const std::vector<BatchItem>& items, const Scheduler& scheduler,
    const RunContext& context) {
#ifndef NDEBUG
  // Duplicate keys inside one batch would race on the same cache entry
  // and break the any-thread-count determinism guarantee.
  std::unordered_set<std::uint64_t> keys;
  for (const BatchItem& item : items) {
    assert(keys.insert(item.stream_key).second &&
           "BatchScheduler: stream keys must be unique within a batch");
  }
#endif

  obs::Histogram* shard_ms_hist = nullptr;
  if (context.metrics != nullptr) {
    shard_ms_hist = &context.metrics->histogram(
        "lpvs_batch_shard_ms", obs::MetricsRegistry::time_buckets_ms(),
        "Wall-clock time of one cluster shard's slot solve");
  }

  std::vector<Schedule> results(items.size());
  auto run_one = [&](std::size_t i) {
    const obs::ScopedTimer timer(shard_ms_hist);
    const RunContext shard_context =
        options_.warm_start
            ? context.with_solve_cache(&cache_, items[i].stream_key)
            : context;
    results[i] = scheduler.schedule(items[i].problem, shard_context);
  };

  if (pool_ == nullptr || items.size() <= 1) {
    for (std::size_t i = 0; i < items.size(); ++i) run_one(i);
  } else {
    common::parallel_for(*pool_, items.size(), run_one);
  }

  if (context.metrics != nullptr) {
    context.metrics
        ->counter("lpvs_batch_batches_total", "Fleet batches scheduled")
        .add(1);
    context.metrics
        ->counter("lpvs_batch_items_total",
                  "Cluster problems solved across all batches")
        .add(static_cast<long>(items.size()));
  }
  return results;
}

}  // namespace lpvs::core

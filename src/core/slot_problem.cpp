#include "lpvs/core/slot_problem.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lpvs::core {
namespace {

/// psi_{n,m}(kappa) of equation (3) under our gamma-as-saving semantics:
/// the transform removes a gamma fraction of the device's power draw.
double effective_power_mw(const DeviceSlotInput& device, std::size_t kappa,
                          bool transformed) {
  const double p = device.power_rates_mw[kappa];
  return transformed ? (1.0 - device.gamma) * p : p;
}

double chunk_energy_mwh(double power_mw, double duration_s) {
  return power_mw * duration_s / 3600.0;
}

}  // namespace

DeviceEvaluation evaluate_forward(const DeviceSlotInput& device,
                                  bool transformed,
                                  const survey::AnxietyModel& anxiety) {
  assert(device.power_rates_mw.size() == device.chunk_durations_s.size());
  assert(device.battery_capacity_mwh > 0.0);
  DeviceEvaluation eval;
  double energy = device.initial_energy_mwh;
  for (std::size_t kappa = 0; kappa < device.chunk_count(); ++kappa) {
    if (energy <= 0.0) eval.battery_survives = false;
    const double psi = effective_power_mw(device, kappa, transformed);
    eval.sum_psi_mw += psi;
    // phi is evaluated at the energy status *before* playing the chunk,
    // matching e_{n,m}(kappa) in objective (8a).
    eval.sum_anxiety += anxiety(energy / device.battery_capacity_mwh);
    const double spend =
        chunk_energy_mwh(psi, device.chunk_durations_s[kappa]);
    const double drawn = std::min(spend, std::max(energy, 0.0));
    eval.energy_spent_mwh += drawn;
    energy -= spend;
    energy = std::max(energy, 0.0);
  }
  eval.final_energy_mwh = energy;
  return eval;
}

double compacted_objective(const DeviceSlotInput& device, bool transformed,
                           const survey::AnxietyModel& anxiety,
                           double lambda) {
  // Equation (13): every e(kappa) replaced by e(1) - sum_{i<kappa} psi(i),
  // so no intermediate energy state is materialized.
  double objective = 0.0;
  double spent_mwh = 0.0;
  for (std::size_t kappa = 0; kappa < device.chunk_count(); ++kappa) {
    const double psi = effective_power_mw(device, kappa, transformed);
    const double predicted = device.initial_energy_mwh - spent_mwh;
    objective +=
        psi + lambda * anxiety(std::max(predicted, 0.0) /
                               device.battery_capacity_mwh);
    spent_mwh += chunk_energy_mwh(psi, device.chunk_durations_s[kappa]);
  }
  return objective;
}

double energy_sum_closed_form(const DeviceSlotInput& device,
                              bool transformed) {
  // Equation (10d): K_m * e(1) - sum_kappa (K_m - kappa) psi(kappa) Delta.
  const auto k_m = static_cast<double>(device.chunk_count());
  double weighted = 0.0;
  for (std::size_t kappa = 0; kappa < device.chunk_count(); ++kappa) {
    const double psi_mwh = chunk_energy_mwh(
        effective_power_mw(device, kappa, transformed),
        device.chunk_durations_s[kappa]);
    // kappa is 1-indexed in the paper; entry i here is chunk i+1.
    weighted += (k_m - static_cast<double>(kappa + 1)) * psi_mwh;
  }
  return k_m * device.initial_energy_mwh - weighted;
}

double energy_sum_forward(const DeviceSlotInput& device, bool transformed) {
  double energy = device.initial_energy_mwh;
  double total = 0.0;
  for (std::size_t kappa = 0; kappa < device.chunk_count(); ++kappa) {
    total += energy;  // e(kappa) before playing chunk kappa
    energy -= chunk_energy_mwh(
        effective_power_mw(device, kappa, transformed),
        device.chunk_durations_s[kappa]);
  }
  return total;
}

double compacted_constraint_slack(const DeviceSlotInput& device) {
  // Constraint (11) under x_n = 1, all terms in mWh:
  //   K_m e(1) - sum (K_m - kappa) psi(kappa)Delta  >=  gamma sum p(kappa)Delta
  double rhs = 0.0;
  for (std::size_t kappa = 0; kappa < device.chunk_count(); ++kappa) {
    rhs += device.gamma * chunk_energy_mwh(device.power_rates_mw[kappa],
                                           device.chunk_durations_s[kappa]);
  }
  return energy_sum_closed_form(device, /*transformed=*/true) - rhs;
}

bool eligible_for_transform(const DeviceSlotInput& device) {
  if (device.chunk_count() == 0) return false;
  if (device.gamma <= 0.0) return false;
  return compacted_constraint_slack(device) >= 0.0;
}

double untransformed_energy_mwh(const DeviceSlotInput& device) {
  double total = 0.0;
  for (std::size_t kappa = 0; kappa < device.chunk_count(); ++kappa) {
    total += chunk_energy_mwh(device.power_rates_mw[kappa],
                              device.chunk_durations_s[kappa]);
  }
  return total;
}

}  // namespace lpvs::core

#include "lpvs/core/signaling.hpp"

namespace lpvs::core {

common::MilliwattHours SignalingCostModel::report_energy(
    const ReportSchema& schema, std::size_t chunk_count) const {
  const double uplink_nj =
      coefficients_.uplink_nj_per_byte *
      static_cast<double>(schema.uplink_bytes(chunk_count));
  const double downlink_nj =
      coefficients_.downlink_nj_per_byte *
      static_cast<double>(schema.decision_bytes);
  // nJ -> mWh: 1 mWh = 3.6 J = 3.6e9 nJ.
  const double total_nj =
      uplink_nj + downlink_nj + coefficients_.promotion_mj * 1e6;
  return {total_nj / 3.6e9};
}

common::Milliwatts SignalingCostModel::report_power(
    const ReportSchema& schema, std::size_t chunk_count,
    common::Seconds slot_length) const {
  const common::MilliwattHours energy = report_energy(schema, chunk_count);
  return common::average_power(energy, slot_length);
}

namespace {

/// Keys one delivery attempt: attempts of the same (device, slot) message
/// draw distinct fault decisions, replays of the same run draw identical
/// ones.  The stride bounds the retry budget a site may configure.
constexpr std::uint64_t kAttemptStride = 64;

double nj_to_mwh(double nj) { return nj / 3.6e9; }

}  // namespace

common::StatusOr<SignalingOutcome> SignalingLink::exchange(
    const fault::FaultInjector* injector, std::uint64_t device,
    std::uint64_t slot, std::size_t chunk_count, double timeout_ms) const {
  const auto& coeff = cost_model_.coefficients();
  const double uplink_mwh =
      nj_to_mwh(coeff.uplink_nj_per_byte *
                static_cast<double>(schema_.uplink_bytes(chunk_count))) +
      coeff.promotion_mj / 3.6e6;
  const double downlink_mwh = nj_to_mwh(
      coeff.downlink_nj_per_byte * static_cast<double>(schema_.decision_bytes));

  SignalingOutcome outcome;
  const bool lossy = injector != nullptr && injector->enabled();

  // One delivery direction: charge the radio for every attempt, retry on
  // injected drops, accumulate injected transit delay on the attempt that
  // finally lands.  Corruption of the fixed-format report is detected by
  // the auth tag and treated as a drop (the edge cannot act on it).
  auto deliver = [&](fault::FaultSite site, double attempt_mwh,
                     int& attempts_out) -> common::Status {
    // Both directions share one timeout budget: the downlink only gets
    // whatever backoff room the uplink retries left.
    double remaining_ms = 0.0;
    if (timeout_ms > 0.0) {
      remaining_ms = timeout_ms - outcome.backoff_ms;
      if (remaining_ms <= 0.0) {
        return common::Status::DeadlineExceeded(
            "signaling timeout spent before delivery");
      }
    }
    const fault::RetryResult result = fault::retry_with_backoff(
        backoff_,
        [&](int attempt) -> common::Status {
          outcome.energy.value += attempt_mwh;
          if (!lossy) return common::Status::Ok();
          const fault::FaultDecision decision = injector->decide(
              site, device, slot * kAttemptStride + static_cast<std::uint64_t>(attempt));
          if (decision.dropped() || decision.corrupted()) {
            return common::Status::Unavailable(fault_site_name(site));
          }
          outcome.delay_ms += decision.delay_ms;
          return common::Status::Ok();
        },
        remaining_ms);
    attempts_out = result.attempts;
    outcome.backoff_ms += result.backoff_ms;
    return result.status;
  };

  if (common::Status up = deliver(fault::FaultSite::kSignalingUplink,
                                  uplink_mwh, outcome.uplink_attempts);
      !up.ok()) {
    return up;
  }
  if (common::Status down = deliver(fault::FaultSite::kSignalingDownlink,
                                    downlink_mwh, outcome.downlink_attempts);
      !down.ok()) {
    return down;
  }
  return outcome;
}

}  // namespace lpvs::core

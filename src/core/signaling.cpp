#include "lpvs/core/signaling.hpp"

namespace lpvs::core {

common::MilliwattHours SignalingCostModel::report_energy(
    const ReportSchema& schema, std::size_t chunk_count) const {
  const double uplink_nj =
      coefficients_.uplink_nj_per_byte *
      static_cast<double>(schema.uplink_bytes(chunk_count));
  const double downlink_nj =
      coefficients_.downlink_nj_per_byte *
      static_cast<double>(schema.decision_bytes);
  // nJ -> mWh: 1 mWh = 3.6 J = 3.6e9 nJ.
  const double total_nj =
      uplink_nj + downlink_nj + coefficients_.promotion_mj * 1e6;
  return {total_nj / 3.6e9};
}

common::Milliwatts SignalingCostModel::report_power(
    const ReportSchema& schema, std::size_t chunk_count,
    common::Seconds slot_length) const {
  const common::MilliwattHours energy = report_energy(schema, chunk_count);
  return common::average_power(energy, slot_length);
}

}  // namespace lpvs::core

#include "lpvs/core/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "lpvs/common/rng.hpp"
#include "lpvs/solver/solve_cache.hpp"

namespace lpvs::core {
namespace {

/// Capacity bookkeeping shared by the greedy selectors and Phase-2.
struct CapacityTracker {
  double compute_used = 0.0;
  double storage_used = 0.0;
  double compute_capacity;
  double storage_capacity;

  explicit CapacityTracker(const SlotProblem& problem)
      : compute_capacity(problem.compute_capacity),
        storage_capacity(problem.storage_capacity) {}

  bool fits(const DeviceSlotInput& device) const {
    constexpr double kSlack = 1e-9;
    return compute_used + device.compute_cost <= compute_capacity + kSlack &&
           storage_used + device.storage_cost <= storage_capacity + kSlack;
  }
  void add(const DeviceSlotInput& device) {
    compute_used += device.compute_cost;
    storage_used += device.storage_cost;
  }
  void remove(const DeviceSlotInput& device) {
    compute_used -= device.compute_cost;
    storage_used -= device.storage_cost;
  }
};

/// Greedy admission over a device order; only eligible devices are taken.
Schedule admit_in_order(const SlotProblem& problem,
                        const survey::AnxietyModel& anxiety,
                        const std::vector<std::size_t>& order) {
  std::vector<int> x(problem.devices.size(), 0);
  CapacityTracker capacity(problem);
  for (std::size_t n : order) {
    const DeviceSlotInput& device = problem.devices[n];
    if (!eligible_for_transform(device)) continue;
    if (!capacity.fits(device)) continue;
    capacity.add(device);
    x[n] = 1;
  }
  return score_selection(problem, anxiety, std::move(x));
}

/// Records one cached solve's outcome (hit kind, node count, incumbent
/// quality) into the registry; shared by the two ILP-backed schedulers.
void record_solve_metrics(obs::MetricsRegistry* metrics,
                          const solver::CachedSolve& cached) {
  if (metrics == nullptr) return;
  if (cached.exact_hit) {
    metrics
        ->counter("lpvs_solver_cache_exact_hits_total",
                  "ILP solves skipped: identical problem fingerprint")
        .add(1);
    return;
  }
  if (cached.warm_started) {
    metrics
        ->counter("lpvs_solver_warm_starts_total",
                  "ILP solves seeded with the previous slot's assignment")
        .add(1);
    const double objective = cached.solution.objective;
    const double gap =
        objective > 0.0
            ? (objective - cached.incumbent_objective) / objective
            : 0.0;
    metrics
        ->histogram("lpvs_solver_incumbent_gap",
                    obs::MetricsRegistry::linear_buckets(0.0, 0.005, 21),
                    "Relative objective gap between the repaired warm-start "
                    "incumbent and the returned solution")
        .observe(std::max(gap, 0.0));
  } else {
    metrics
        ->counter("lpvs_solver_cold_starts_total",
                  "ILP solves with no usable predecessor (greedy seed)")
        .add(1);
  }
  metrics
      ->histogram("lpvs_solver_nodes_per_solve",
                  obs::MetricsRegistry::linear_buckets(0.0, 20.0, 26),
                  "Branch-and-bound nodes explored by one solve")
      .observe(static_cast<double>(cached.solution.nodes_explored));
}

/// Key stride for per-rung fault decisions: each slot draws at most one
/// decision per rung, keyed (solve_key, slot * stride + rung), so replays
/// walk the identical rungs and adjacent slots draw independent faults.
constexpr std::uint64_t kRungStride = 8;
constexpr int kPassthroughRung =
    static_cast<int>(DegradationRung::kPassthrough);

/// Salt mixed into cache fingerprints of degraded (rung > 0) results so a
/// repaired or replayed assignment can warm-start later solves but never
/// masquerade as an exact full-quality hit.
constexpr std::uint64_t kDegradedFingerprintSalt = 0xD46A1D5C90F0C0DDULL;

}  // namespace

const char* degradation_rung_name(DegradationRung rung) {
  switch (rung) {
    case DegradationRung::kFullSolve:
      return "full_solve";
    case DegradationRung::kWarmRepair:
      return "warm_repair";
    case DegradationRung::kReplayPrevious:
      return "replay_previous";
    case DegradationRung::kPassthrough:
      return "passthrough";
  }
  return "unknown";
}

solver::BinaryProgram phase1_program(const SlotProblem& problem) {
  const std::size_t n = problem.devices.size();
  solver::BinaryProgram program;
  program.objective.resize(n);
  program.rows.assign(2, std::vector<double>(n, 0.0));
  program.rhs = {problem.compute_capacity, problem.storage_capacity};
  program.eligible.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const DeviceSlotInput& device = problem.devices[j];
    program.objective[j] = device.gamma * untransformed_energy_mwh(device);
    program.rows[0][j] = device.compute_cost;
    program.rows[1][j] = device.storage_cost;
    program.eligible[j] = eligible_for_transform(device) ? 1 : 0;
  }
  return program;
}

solver::BranchAndBoundSolver::Options scheduler_ilp_defaults() {
  return scheduler_ilp_defaults(solver::LpEngine::kRevised);
}

solver::BranchAndBoundSolver::Options scheduler_ilp_defaults(
    solver::LpEngine engine) {
  // The root LP plus LP-guided rounding already lands within a fraction of
  // a percent of the optimum on Phase-1-shaped knapsacks; a couple hundred
  // nodes close the remaining gap.  Proving exact optimality can take an
  // exponential tie-breaking frontier, which has no business inside a
  // 5-minute scheduling slot.
  solver::BranchAndBoundSolver::Options options;
  options.max_nodes = 200;
  options.relative_gap = 1e-4;
  options.engine = engine;
  return options;
}

LpvsScheduler::Options scheduler_options_for(const SlotProblemConfig& config) {
  LpvsScheduler::Options options;
  options.ilp = scheduler_ilp_defaults(config.lp_engine);
  return options;
}

int Schedule::selected_count() const {
  return static_cast<int>(std::count(x.begin(), x.end(), 1));
}

double Schedule::energy_saving_ratio() const {
  return baseline_energy_mwh > 0.0
             ? (baseline_energy_mwh - energy_spent_mwh) / baseline_energy_mwh
             : 0.0;
}

double Schedule::anxiety_reduction_ratio() const {
  return baseline_anxiety_sum > 0.0
             ? (baseline_anxiety_sum - anxiety_sum) / baseline_anxiety_sum
             : 0.0;
}

Schedule score_selection(const SlotProblem& problem,
                         const survey::AnxietyModel& anxiety,
                         std::vector<int> x) {
  assert(x.size() == problem.devices.size());
  Schedule schedule;
  schedule.x = std::move(x);
  for (std::size_t n = 0; n < problem.devices.size(); ++n) {
    const DeviceSlotInput& device = problem.devices[n];
    const bool transformed = schedule.x[n] != 0;
    const DeviceEvaluation with =
        evaluate_forward(device, transformed, anxiety);
    const DeviceEvaluation without =
        evaluate_forward(device, /*transformed=*/false, anxiety);
    const double effective_lambda = problem.lambda * device.sla_weight;
    schedule.objective += with.objective(effective_lambda);
    schedule.baseline_objective += without.objective(effective_lambda);
    schedule.energy_spent_mwh += with.energy_spent_mwh;
    schedule.baseline_energy_mwh += without.energy_spent_mwh;
    schedule.anxiety_sum += with.sum_anxiety;
    schedule.baseline_anxiety_sum += without.sum_anxiety;
    if (transformed) {
      schedule.compute_used += device.compute_cost;
      schedule.storage_used += device.storage_cost;
    }
  }
  return schedule;
}

Schedule LpvsScheduler::schedule(const SlotProblem& problem,
                                 const RunContext& context) const {
  return run(problem, context, /*run_phase2=*/true);
}

Schedule LpvsScheduler::schedule_phase1_only(const SlotProblem& problem,
                                             const RunContext& context) const {
  return run(problem, context, /*run_phase2=*/false);
}

Schedule LpvsScheduler::run(const SlotProblem& problem,
                            const RunContext& context,
                            bool run_phase2) const {
  const survey::AnxietyModel& anxiety = context.anxiety_model();
  const std::size_t n = problem.devices.size();

  // Observability: a null registry skips everything, and nothing recorded
  // here feeds back into the schedule (see run_context.hpp's contract).
  obs::Histogram* solve_ms_hist = nullptr;
  if (context.metrics != nullptr) {
    solve_ms_hist = &context.metrics->histogram(
        "lpvs_scheduler_solve_ms", obs::MetricsRegistry::time_buckets_ms(),
        "Wall-clock time of one two-phase schedule solve");
  }
  obs::ScopedTimer solve_timer(solve_ms_hist);

  // --- Degradation ladder: pick the rung this slot can afford. ---
  // A wall-clock deadline is converted into a node budget (deterministic —
  // no clock race), an active injector may knock the slot further down via
  // kSolverBudget drops, and force_rung pins the rung outright (ops kill
  // switch / test handle).
  int rung = 0;
  solver::BranchAndBoundSolver::Options ilp_options = options_.ilp;
  if (context.deadline.budget_ms > 0.0) {
    const long node_budget = std::max<long>(
        1, std::lround(context.deadline.budget_ms * options_.nodes_per_ms));
    if (node_budget < options_.min_full_solve_nodes) {
      rung = 1;
    } else if (node_budget < ilp_options.max_nodes) {
      ilp_options.max_nodes = node_budget;
    }
  }
  if (context.faults_active()) {
    const auto slot_key = static_cast<std::uint64_t>(context.slot + 1);
    while (rung < kPassthroughRung &&
           context.faults->should_drop(
               fault::FaultSite::kSolverBudget, context.solve_key,
               slot_key * kRungStride + static_cast<std::uint64_t>(rung))) {
      ++rung;
    }
  }
  const bool forced = context.deadline.force_rung >= 0;
  if (forced) {
    rung = std::min(context.deadline.force_rung, kPassthroughRung);
  }

  // --- Phase-1: exact ILP on the energy-only objective (14). ---
  // With a cache in the context, consecutive-slot solves for the same
  // stream key reuse the previous assignment as the B&B incumbent (or the
  // whole solution, when the problem is bit-identical).  Degraded rungs
  // skip the B&B: kWarmRepair greedy-repairs the previous assignment
  // against the new program (a cold repair degenerates to the density
  // greedy), kReplayPrevious replays it verbatim when it still fits, and
  // kPassthrough serves everyone untransformed.
  const solver::BinaryProgram program = phase1_program(problem);
  const std::uint64_t budget_fp = solver::budget_fingerprint(ilp_options);
  std::vector<int> x;
  long nodes = 0;
  if (rung == 0) {
    const solver::CachedSolve cached = solver::solve_with_cache(
        solver::BranchAndBoundSolver(ilp_options), program,
        context.solve_cache, context.solve_key, budget_fp);
    record_solve_metrics(context.metrics, cached);
    x = cached.solution.x;
    nodes = cached.solution.nodes_explored;
  } else {
    std::vector<int> previous;
    if (context.solve_cache != nullptr) {
      previous = context.solve_cache->previous_assignment(context.solve_key);
    }
    if (rung == 1) {
      x = solver::repair_assignment(program, previous);
    } else if (rung == 2) {
      if (previous.size() == n) {
        x = previous;
        for (std::size_t j = 0; j < n; ++j) {
          if (!program.is_eligible(j)) x[j] = 0;  // departed eligibility
        }
        if (!program.feasible(x)) rung = kPassthroughRung;
      } else {
        rung = kPassthroughRung;  // nothing to replay (cold / resized VC)
      }
    }
    if (rung == kPassthroughRung) x.clear();
    x.resize(n, 0);
    // Degraded results still feed the warm-start chain, under a salted
    // fingerprint so they can never exact-hit a full-quality lookup.
    // Passthrough is withheld: an all-zeros incumbent would poison repair.
    if (context.solve_cache != nullptr && rung < kPassthroughRung) {
      solver::IlpSolution degraded;
      degraded.status = solver::IlpStatus::kFeasible;
      degraded.x = x;
      degraded.objective = program.value(x);
      context.solve_cache->store(
          context.solve_key,
          solver::combine_fingerprints(
              solver::combine_fingerprints(solver::fingerprint(program),
                                           budget_fp),
              kDegradedFingerprintSalt + static_cast<std::uint64_t>(rung)),
          degraded);
    }
  }
  x.resize(n, 0);

  int swaps = 0;
  int additions = 0;

  // Verbatim replay and passthrough stay verbatim: Phase-2 only polishes
  // the rungs that already paid for a fresh Phase-1 answer.
  run_phase2 = run_phase2 && rung <= 1;

  if (run_phase2 && n > 0) {
    // --- Phase-2: anxiety-aware swapping on the full objective (13). ---
    // The objective is separable across devices, so a swap's effect is the
    // difference of per-device benefits (objective reduction if served).
    std::vector<double> benefit(n, 0.0);
    std::vector<double> start_anxiety(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const DeviceSlotInput& device = problem.devices[j];
      start_anxiety[j] = anxiety(device.initial_energy_mwh /
                                 device.battery_capacity_mwh);
      if (!eligible_for_transform(device)) {
        benefit[j] = -1.0;  // never brought in by a swap
        continue;
      }
      const double effective_lambda = problem.lambda * device.sla_weight;
      benefit[j] =
          compacted_objective(device, false, anxiety, effective_lambda) -
          compacted_objective(device, true, anxiety, effective_lambda);
    }

    CapacityTracker capacity(problem);
    for (std::size_t j = 0; j < n; ++j) {
      if (x[j]) capacity.add(problem.devices[j]);
    }

    // Unselected users ranked by anxiety degree, most anxious first —
    // the paper's "first (N - N') devices with the largest anxiety".
    std::vector<std::size_t> anxious;
    for (std::size_t j = 0; j < n; ++j) {
      if (!x[j] && benefit[j] >= 0.0) anxious.push_back(j);
    }
    std::sort(anxious.begin(), anxious.end(),
              [&](std::size_t a, std::size_t b) {
                return start_anxiety[a] > start_anxiety[b];
              });

    constexpr double kTol = 1e-9;
    for (int pass = 0; pass < options_.max_phase2_passes; ++pass) {
      bool changed = false;
      for (std::size_t u : anxious) {
        if (x[u]) continue;
        const DeviceSlotInput& incoming = problem.devices[u];
        // Direct admission into leftover capacity strictly improves (13).
        if (options_.augment_after_swaps && benefit[u] > kTol &&
            capacity.fits(incoming)) {
          capacity.add(incoming);
          x[u] = 1;
          ++additions;
          changed = true;
          continue;
        }
        // Otherwise look for the cheapest selected victim whose removal
        // both frees enough capacity and loses less than we gain.
        std::ptrdiff_t victim = -1;
        double victim_benefit = benefit[u] - kTol;
        for (std::size_t s = 0; s < n; ++s) {
          if (!x[s] || s == u) continue;
          if (benefit[s] >= victim_benefit) continue;
          capacity.remove(problem.devices[s]);
          const bool fits = capacity.fits(incoming);
          capacity.add(problem.devices[s]);
          if (!fits) continue;
          victim = static_cast<std::ptrdiff_t>(s);
          victim_benefit = benefit[s];
        }
        if (victim >= 0) {
          const auto s = static_cast<std::size_t>(victim);
          capacity.remove(problem.devices[s]);
          capacity.add(incoming);
          x[s] = 0;
          x[u] = 1;
          ++swaps;
          changed = true;
          if (context.events != nullptr) {
            context.events->record(
                {obs::EventKind::kPhase2Swap, /*slot=*/-1,
                 static_cast<int>(problem.devices[u].id.value),
                 {{"swapped_out",
                   static_cast<double>(problem.devices[s].id.value)},
                  {"gain", benefit[u] - benefit[s]}}});
          }
        }
      }
      if (!changed) break;
    }
  }

  Schedule schedule = score_selection(problem, anxiety, std::move(x));
  schedule.ilp_nodes = nodes;
  schedule.phase2_swaps = swaps;
  schedule.phase2_additions = additions;
  schedule.rung = static_cast<DegradationRung>(rung);

  if (context.metrics != nullptr) {
    context.metrics
        ->counter(std::string("lpvs_scheduler_rung_") +
                      degradation_rung_name(schedule.rung) + "_total",
                  "Slot solves that landed on this degradation rung")
        .add(1);
  }
  if (rung > 0 && context.events != nullptr) {
    context.events->record(
        {obs::EventKind::kDegradation, static_cast<int>(context.slot),
         /*device=*/-1,
         {{"rung", static_cast<double>(rung)},
          {"forced", forced ? 1.0 : 0.0}}});
  }

  if (context.metrics != nullptr) {
    context.metrics
        ->counter("lpvs_scheduler_solves_total",
                  "Two-phase schedule solves performed")
        .add(1);
    context.metrics
        ->counter("lpvs_scheduler_ilp_nodes_total",
                  "Branch-and-bound nodes explored by Phase-1")
        .add(nodes);
    context.metrics
        ->counter("lpvs_scheduler_phase2_swaps_total",
                  "Anxiety-driven Phase-2 swaps applied")
        .add(swaps);
    context.metrics
        ->counter("lpvs_scheduler_phase2_additions_total",
                  "Phase-2 greedy additions into leftover capacity")
        .add(additions);
    context.metrics
        ->histogram("lpvs_scheduler_selected_per_slot",
                    obs::MetricsRegistry::linear_buckets(0.0, 10.0, 21),
                    "Devices selected for transform per solve")
        .observe(static_cast<double>(schedule.selected_count()));
  }
  if (context.events != nullptr) {
    context.events->record(
        {obs::EventKind::kScheduleSolve, /*slot=*/-1, /*device=*/-1,
         {{"devices", static_cast<double>(n)},
          {"selected", static_cast<double>(schedule.selected_count())},
          {"ilp_nodes", static_cast<double>(nodes)},
          {"phase2_swaps", static_cast<double>(swaps)},
          {"phase2_additions", static_cast<double>(additions)},
          {"objective", schedule.objective}}});
  }
  return schedule;
}

Schedule NoTransformScheduler::schedule(const SlotProblem& problem,
                                        const RunContext& context) const {
  return score_selection(problem, context.anxiety_model(),
                         std::vector<int>(problem.devices.size(), 0));
}

Schedule RandomScheduler::schedule(const SlotProblem& problem,
                                   const RunContext& context) const {
  const survey::AnxietyModel& anxiety = context.anxiety_model();
  std::vector<std::size_t> order(problem.devices.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  common::Rng rng(seed_);
  for (std::size_t i = order.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(order[i - 1], order[j]);
  }
  return admit_in_order(problem, anxiety, order);
}

Schedule GreedyEnergyScheduler::schedule(const SlotProblem& problem,
                                         const RunContext& context) const {
  const survey::AnxietyModel& anxiety = context.anxiety_model();
  const std::size_t n = problem.devices.size();
  std::vector<double> saving(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    saving[j] = problem.devices[j].gamma *
                untransformed_energy_mwh(problem.devices[j]);
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return saving[a] > saving[b]; });
  return admit_in_order(problem, anxiety, order);
}

Schedule GreedyAnxietyScheduler::schedule(const SlotProblem& problem,
                                          const RunContext& context) const {
  const survey::AnxietyModel& anxiety = context.anxiety_model();
  const std::size_t n = problem.devices.size();
  std::vector<double> degree(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    degree[j] = anxiety(problem.devices[j].initial_energy_mwh /
                        problem.devices[j].battery_capacity_mwh);
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return degree[a] > degree[b]; });
  return admit_in_order(problem, anxiety, order);
}

Schedule JointOptimalScheduler::schedule(const SlotProblem& problem,
                                         const RunContext& context) const {
  // (13) is separable, so the joint problem is itself a 2-row binary
  // program over per-device objective benefits.
  const survey::AnxietyModel& anxiety = context.anxiety_model();
  const std::size_t n = problem.devices.size();
  solver::BinaryProgram program;
  program.objective.resize(n);
  program.rows.assign(2, std::vector<double>(n, 0.0));
  program.rhs = {problem.compute_capacity, problem.storage_capacity};
  program.eligible.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const DeviceSlotInput& device = problem.devices[j];
    const bool ok = eligible_for_transform(device);
    const double effective_lambda = problem.lambda * device.sla_weight;
    program.eligible[j] = ok ? 1 : 0;
    program.objective[j] =
        ok ? compacted_objective(device, false, anxiety, effective_lambda) -
                 compacted_objective(device, true, anxiety, effective_lambda)
           : 0.0;
    program.rows[0][j] = device.compute_cost;
    program.rows[1][j] = device.storage_cost;
  }
  const solver::CachedSolve cached = solver::solve_with_cache(
      solver::BranchAndBoundSolver(options_), program, context.solve_cache,
      context.solve_key, solver::budget_fingerprint(options_));
  record_solve_metrics(context.metrics, cached);
  std::vector<int> x = cached.solution.x;
  x.resize(n, 0);
  Schedule schedule = score_selection(problem, anxiety, std::move(x));
  schedule.ilp_nodes = cached.solution.nodes_explored;
  return schedule;
}

}  // namespace lpvs::core

#include "lpvs/abr/ladder.hpp"

#include <cassert>
#include <cmath>

namespace lpvs::abr {

LadderModel::LadderModel(Config config) : config_(std::move(config)) {
  assert(!config_.rungs_mbps.empty());
  for (std::size_t m = 0; m + 1 < config_.rungs_mbps.size(); ++m) {
    assert(config_.rungs_mbps[m] < config_.rungs_mbps[m + 1]);
  }
  assert(config_.rungs_mbps.front() > 0.0);
  assert(config_.receive_base_mw >= 0.0);
  assert(config_.receive_mw_per_mbps >= 0.0);
}

double LadderModel::receive_power_mw(std::size_t m) const {
  return config_.receive_base_mw +
         config_.receive_mw_per_mbps * config_.rungs_mbps[m];
}

double LadderModel::receive_energy_mwh(std::size_t m, double seconds) const {
  return receive_power_mw(m) * seconds / 3600.0;
}

double LadderModel::incremental_energy_mwh(std::size_t m,
                                           double seconds) const {
  return receive_energy_mwh(m, seconds) - receive_energy_mwh(0, seconds);
}

double LadderModel::utility(std::size_t m) const {
  return config_.utility_scale *
         std::log(config_.rungs_mbps[m] / config_.rungs_mbps[0]);
}

std::size_t LadderModel::rung_at_or_below(double mbps) const {
  std::size_t rung = 0;
  for (std::size_t m = 0; m < size(); ++m) {
    if (config_.rungs_mbps[m] <= mbps) rung = m;
  }
  return rung;
}

}  // namespace lpvs::abr

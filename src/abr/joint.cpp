#include "lpvs/abr/joint.hpp"

#include <cassert>

#include "lpvs/solver/solve_cache.hpp"

namespace lpvs::abr {
namespace {

double slot_seconds(const core::DeviceSlotInput& device) {
  double total = 0.0;
  for (double s : device.chunk_durations_s) total += s;
  return total;
}

/// Battery affordability of (transform, rung): the slot's display energy at
/// the chosen transform plus the rung's receive+decode energy must fit the
/// device's remaining energy — the rung-aware analogue of constraint (11)'s
/// role as an eligibility filter.
bool battery_affords(const core::DeviceSlotInput& device, bool transformed,
                     const LadderModel& ladder, std::size_t rung,
                     double seconds) {
  const double display_mwh =
      core::untransformed_energy_mwh(device) *
      (transformed ? 1.0 - device.gamma : 1.0);
  return display_mwh + ladder.receive_energy_mwh(rung, seconds) <=
         device.initial_energy_mwh;
}

/// Throughput admissibility (see JointSlotProblem::throughput_safety).
bool throughput_admits(const JointSlotProblem& problem,
                       const DeviceStreamState& stream, std::size_t rung,
                       double seconds) {
  if (rung == 0) return true;  // the baseline rung is always grantable
  const double slack =
      seconds > 0.0 ? 1.0 + stream.buffer_s / seconds : 1.0;
  return problem.ladder.bitrate_mbps(rung) <=
         problem.throughput_safety * stream.throughput_mbps * slack;
}

}  // namespace

JointProgram build_joint_program(const JointSlotProblem& problem,
                                 const survey::AnxietyModel& anxiety) {
  assert(problem.streams.size() == problem.base.devices.size());
  const std::size_t n = problem.base.devices.size();
  const LadderModel& ladder = problem.ladder;

  JointProgram joint;
  joint.device_count = n;

  // Pass 1: enumerate admissible menu entries in (device, transform, rung)
  // order — the deterministic column order every solver sees.
  for (std::size_t d = 0; d < n; ++d) {
    const core::DeviceSlotInput& device = problem.base.devices[d];
    const DeviceStreamState& stream = problem.streams[d];
    const double seconds = slot_seconds(device);
    const bool transform_ok = core::eligible_for_transform(device);
    for (int t = 0; t <= 1; ++t) {
      if (t == 1 && !transform_ok) continue;
      for (std::size_t m = 0; m < ladder.size(); ++m) {
        if (t == 0 && m == 0) continue;  // the implicit baseline
        if (!throughput_admits(problem, stream, m, seconds)) continue;
        if (!battery_affords(device, t == 1, ladder, m, seconds)) continue;
        if (m > 0 && problem.qoe_floor > 0.0 &&
            ladder.utility(m) < problem.qoe_floor) {
          continue;
        }
        joint.entries.push_back(
            {d, static_cast<std::uint8_t>(t), m});
      }
    }
  }

  const std::size_t cols = joint.entries.size();
  solver::BinaryProgram& program = joint.program;
  program.objective.resize(cols);
  // Rows: compute, storage, receive budget, then one per device.
  program.rows.assign(3 + n, std::vector<double>(cols, 0.0));
  program.rhs.assign(3 + n, 1.0);
  program.rhs[0] = problem.base.compute_capacity;
  program.rhs[1] = problem.base.storage_capacity;
  program.rhs[2] = problem.receive_budget_mwh;

  for (std::size_t j = 0; j < cols; ++j) {
    const JointProgram::Entry& entry = joint.entries[j];
    const core::DeviceSlotInput& device = problem.base.devices[entry.device];
    const double seconds = slot_seconds(device);
    const double effective_lambda = problem.base.lambda * device.sla_weight;

    double c = 0.0;
    if (entry.transform != 0) {
      // The (13) benefit of turning the transform on — identical to what
      // JointOptimalScheduler maximizes, so the transform-only projection
      // of this program is the existing separable program.
      c += core::compacted_objective(device, false, anxiety,
                                     effective_lambda) -
           core::compacted_objective(device, true, anxiety,
                                     effective_lambda);
      program.rows[0][j] = device.compute_cost;
      program.rows[1][j] = device.storage_cost;
    }
    c += problem.qoe_weight * ladder.utility(entry.rung);
    const double rx_mwh = ladder.incremental_energy_mwh(entry.rung, seconds);
    c -= problem.receive_energy_weight * rx_mwh;
    program.rows[2][j] = rx_mwh;
    program.rows[3 + entry.device][j] = 1.0;  // one decision per user
    program.objective[j] = c;
  }
  return joint;
}

JointSelection decode_selection(const JointProgram& joint,
                                const std::vector<int>& x) {
  JointSelection selection;
  selection.transform.assign(joint.device_count, 0);
  selection.rung.assign(joint.device_count, 0);
  for (std::size_t j = 0; j < joint.entries.size() && j < x.size(); ++j) {
    if (x[j] == 0) continue;
    const JointProgram::Entry& entry = joint.entries[j];
    selection.transform[entry.device] = entry.transform != 0 ? 1 : 0;
    selection.rung[entry.device] = entry.rung;
  }
  return selection;
}

JointSchedule JointAbrScheduler::schedule(const JointSlotProblem& problem,
                                          const core::RunContext& context) const {
  const survey::AnxietyModel& anxiety = context.anxiety_model();
  const JointProgram joint = build_joint_program(problem, anxiety);

  const solver::CachedSolve cached = solver::solve_with_cache(
      solver::BranchAndBoundSolver(options_), joint.program,
      context.solve_cache, context.solve_key,
      solver::budget_fingerprint(options_));
  const JointSelection selection =
      decode_selection(joint, cached.solution.x);

  JointSchedule result;
  result.display =
      core::score_selection(problem.base, anxiety, selection.transform);
  result.rung = selection.rung;
  result.rung_mbps.resize(joint.device_count);
  for (std::size_t d = 0; d < joint.device_count; ++d) {
    const double seconds = slot_seconds(problem.base.devices[d]);
    result.rung_mbps[d] = problem.ladder.bitrate_mbps(selection.rung[d]);
    result.receive_energy_mwh +=
        problem.ladder.receive_energy_mwh(selection.rung[d], seconds);
    result.incremental_rx_mwh +=
        problem.ladder.incremental_energy_mwh(selection.rung[d], seconds);
    result.qoe_utility_sum += problem.ladder.utility(selection.rung[d]);
  }
  result.ilp_nodes = cached.solution.nodes_explored;

  if (context.metrics != nullptr) {
    context.metrics
        ->counter("lpvs_abr_joint_solves_total",
                  "Joint ABR x transform slot solves performed")
        .add(1);
    context.metrics
        ->counter("lpvs_abr_joint_nodes_total",
                  "Branch-and-bound nodes explored by joint ABR solves")
        .add(result.ilp_nodes);
    obs::Histogram& rung_hist = context.metrics->histogram(
        "lpvs_abr_granted_rung",
        obs::MetricsRegistry::linear_buckets(0.0, 1.0, 9),
        "Granted ladder rung per device per slot");
    for (std::size_t d = 0; d < joint.device_count; ++d) {
      rung_hist.observe(static_cast<double>(selection.rung[d]));
    }
  }
  return result;
}

}  // namespace lpvs::abr

// Joint ABR x energy scheduling: bitrate rungs as first-class variables of
// the slot ILP, co-optimized with the display transform.
//
// The paper's Phase-1 program decides one binary per device (transform on
// or off).  This module widens each device's decision to a *menu*: every
// admissible (transform, rung) pair becomes one binary variable z_{n,t,m},
// with the pair (t=0, m=0) — untransformed, lowest rung — as the implicit
// baseline that choosing nothing falls back to.  The encoding is a
// multiple-choice knapsack, which fits solver::BinaryProgram's
// non-negative-row `A z <= b` contract without touching the solvers:
//
//   rows 0..1   the edge compute/storage capacities (6)(7) — coefficients
//               are the device's transform costs on t=1 entries, 0 on t=0
//   row  2      a shared receive-energy budget: each entry costs its rung's
//               *incremental* receive+decode energy over rung 0 (>= 0 for
//               an ascending ladder), summed across the cluster
//   rows 3..    one-decision-per-user rows: sum of a device's menu <= 1
//
// Per-device feasibility — battery affordability of the rung, throughput
// admissibility given the reported buffer, the transform's compacted
// constraint (11), a QoE floor on the granted utility — is enforced the
// same way (11) already is in Phase-1: as *menu eligibility*, entries that
// fail are simply never created.  Because the result is a plain
// BinaryProgram, the exhaustive enumerator and the dense LP engine remain
// ground truth for the joint solves, and the differential harness extends
// to rung variables unchanged.
//
// The objective of entry (n, t, m), relative to the baseline:
//
//   c = t * [J_n(x=0) - J_n(x=1)]            the transform's (13) benefit
//     + qoe_weight * v(m)                    log utility of the rung
//     - receive_energy_weight * dE_rx(m)     energy price of the rung
//
// so the solver trades panel savings, rung quality, and receive energy in
// one maximization — the EVSO/QoMEX coupling priced into the paper's ILP.
#pragma once

#include <cstdint>
#include <vector>

#include "lpvs/abr/ladder.hpp"
#include "lpvs/core/run_context.hpp"
#include "lpvs/core/scheduler.hpp"
#include "lpvs/core/slot_problem.hpp"
#include "lpvs/solver/ilp.hpp"
#include "lpvs/survey/lba_curve.hpp"

namespace lpvs::abr {

/// Client-reported streaming state for one device — what the v2 REPORT
/// frame carries (buffer level, throughput estimate).
struct DeviceStreamState {
  double buffer_s = 0.0;
  double throughput_mbps = 0.0;
};

/// One slot's joint problem: the display-side slot problem plus per-device
/// streaming state and the ladder/budget/QoE knobs.
struct JointSlotProblem {
  /// Display-side inputs: devices, capacities, lambda.
  core::SlotProblem base;
  /// Parallel to base.devices.
  std::vector<DeviceStreamState> streams;

  LadderModel ladder;
  /// Cluster-wide incremental receive-energy allowance per slot, mWh
  /// (spent by granting rungs above 0).  Large = effectively unbounded.
  double receive_budget_mwh = 1.0e18;
  /// Objective weight on the granted rung's log utility.
  double qoe_weight = 3000.0;
  /// Objective price per mWh of incremental receive energy.
  double receive_energy_weight = 30.0;
  /// Minimum utility an above-baseline grant must deliver; <= 0 admits all.
  double qoe_floor = 0.0;
  /// Throughput admissibility: rung m is grantable when
  ///   r_m <= safety * throughput * (1 + buffer_s / slot_seconds),
  /// i.e. the download overshoot the buffer can absorb.  Rung 0 is always
  /// grantable (it is the baseline the client can fall back to).
  double throughput_safety = 0.9;
};

/// The compiled program plus the column -> (device, transform, rung) map
/// needed to read a solution back.
struct JointProgram {
  struct Entry {
    std::size_t device = 0;
    std::uint8_t transform = 0;
    std::size_t rung = 0;
  };

  solver::BinaryProgram program;
  std::vector<Entry> entries;  ///< entries[j] describes column j
  std::size_t device_count = 0;
};

/// Compiles the joint problem into a BinaryProgram (see the file comment
/// for the encoding).  Deterministic: columns are ordered by (device,
/// transform, rung).
JointProgram build_joint_program(const JointSlotProblem& problem,
                                 const survey::AnxietyModel& anxiety);

/// A solution mapped back to per-device decisions.  Devices whose menu
/// selected nothing take the baseline (untransformed, rung 0).
struct JointSelection {
  std::vector<int> transform;     ///< x_n per device
  std::vector<std::size_t> rung;  ///< granted ladder rung per device
};

JointSelection decode_selection(const JointProgram& joint,
                                const std::vector<int>& x);

/// A joint schedule: the display-side scoring (energy/anxiety/objective of
/// the transform selection) plus the rung grants and their accounting.
struct JointSchedule {
  core::Schedule display;
  std::vector<std::size_t> rung;       ///< per device
  std::vector<double> rung_mbps;       ///< ladder bitrate per device
  double receive_energy_mwh = 0.0;     ///< total rx+decode energy granted
  double incremental_rx_mwh = 0.0;     ///< spent from receive_budget_mwh
  double qoe_utility_sum = 0.0;        ///< sum of granted log utilities
  long ilp_nodes = 0;
};

/// Solves the joint program with branch-and-bound and scores the result.
/// Honors the context's solve cache (warm starts across consecutive slots)
/// exactly like the Phase-1 schedulers; deterministic for a given
/// (problem, options) at any thread count.
class JointAbrScheduler {
 public:
  JointAbrScheduler() : JointAbrScheduler(core::scheduler_ilp_defaults()) {}
  explicit JointAbrScheduler(solver::BranchAndBoundSolver::Options options)
      : options_(options) {}

  JointSchedule schedule(const JointSlotProblem& problem,
                         const core::RunContext& context) const;

 private:
  solver::BranchAndBoundSolver::Options options_;
};

}  // namespace lpvs::abr

// Bitrate-ladder pricing: the energy and QoE contribution of each rung.
//
// The display transform attacks the panel's power draw; the *other* big
// power knob of mobile streaming is the bitrate itself — receive (radio)
// and decode power both grow with the bits moved (EVSO, Park & Kim; the
// QoMEX crowdsourced energy/QoE model, Herglotz et al.).  Both lines of
// work land on the same shape: over a DASH-style ladder, receive+decode
// power is well fit by an affine function of bitrate,
//
//   P_rx(r) = p0 + k * r        [mW, r in Mbps]
//
// while perceptual quality is concave in bitrate; we use the BOLA-style
// logarithmic utility v(r) = ln(r / r_min), which is zero at the lowest
// rung and diminishing above it.  LadderModel packages the ladder with
// both curves so the joint scheduler (joint.hpp), the serving daemon, and
// the benches price rungs identically.
#pragma once

#include <cstddef>
#include <vector>

namespace lpvs::abr {

/// One ladder + its affine energy model and log utility curve.
class LadderModel {
 public:
  struct Config {
    /// Ascending bitrates, Mbps.  The default mirrors the streaming
    /// session's ladder so client- and server-side policies compare 1:1.
    std::vector<double> rungs_mbps = {1.0, 1.8, 2.5, 3.5, 5.0};
    /// p0: radio + decode floor while streaming at all, mW.
    double receive_base_mw = 350.0;
    /// k: marginal receive+decode power per Mbps, mW/Mbps.
    double receive_mw_per_mbps = 210.0;
    /// Scales the log utility into the joint objective's units.
    double utility_scale = 1.0;
  };

  LadderModel() : LadderModel(Config{}) {}
  explicit LadderModel(Config config);

  std::size_t size() const { return config_.rungs_mbps.size(); }
  double bitrate_mbps(std::size_t m) const { return config_.rungs_mbps[m]; }

  /// Receive+decode power at rung m: p0 + k * r_m, mW.
  double receive_power_mw(std::size_t m) const;

  /// Energy to stream `seconds` of playback at rung m, mWh.
  double receive_energy_mwh(std::size_t m, double seconds) const;

  /// Energy at rung m minus energy at rung 0 over `seconds` — the
  /// coefficient the joint program's shared budget row uses (non-negative
  /// for an ascending ladder, as BinaryProgram rows require).
  double incremental_energy_mwh(std::size_t m, double seconds) const;

  /// BOLA-style log utility: utility_scale * ln(r_m / r_0); utility(0)=0.
  double utility(std::size_t m) const;

  /// Highest rung whose bitrate is <= `mbps` (0 when none fits).
  std::size_t rung_at_or_below(double mbps) const;

  const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace lpvs::abr

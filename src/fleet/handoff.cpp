#include "lpvs/fleet/handoff.hpp"

#include <utility>

#include "lpvs/fleet/wire.hpp"

namespace lpvs::fleet {
namespace {

constexpr std::uint32_t kSessionVersion = 1;
constexpr std::uint32_t kSessionMagic = 0x4C505653u;  // "LPVS"
// Same per-message attempt keying as core::signaling: retries of one
// message draw fresh decisions, replays of one run do not.
constexpr std::uint64_t kAttemptStride = 64;

void encode_gamma_state(wire::Writer& w,
                        const bayes::GammaEstimator::State& s) {
  w.f64(s.prior.mean);
  w.f64(s.prior.variance);
  w.f64(s.prior.lower);
  w.f64(s.prior.upper);
  w.f64(s.prior.observation_variance);
  w.f64(s.mean);
  w.f64(s.variance);
  w.u64(s.observations);
}

bool decode_gamma_state(wire::Reader& r, bayes::GammaEstimator::State& s) {
  return r.f64(s.prior.mean) && r.f64(s.prior.variance) &&
         r.f64(s.prior.lower) && r.f64(s.prior.upper) &&
         r.f64(s.prior.observation_variance) && r.f64(s.mean) &&
         r.f64(s.variance) && r.u64(s.observations);
}

void encode_nig_state(wire::Writer& w,
                      const bayes::NigGammaEstimator::State& s) {
  w.f64(s.prior.mean);
  w.f64(s.prior.kappa);
  w.f64(s.prior.alpha);
  w.f64(s.prior.beta);
  w.f64(s.prior.lower);
  w.f64(s.prior.upper);
  w.f64(s.mean);
  w.f64(s.kappa);
  w.f64(s.alpha);
  w.f64(s.beta);
  w.u64(s.observations);
}

bool decode_nig_state(wire::Reader& r, bayes::NigGammaEstimator::State& s) {
  return r.f64(s.prior.mean) && r.f64(s.prior.kappa) && r.f64(s.prior.alpha) &&
         r.f64(s.prior.beta) && r.f64(s.prior.lower) && r.f64(s.prior.upper) &&
         r.f64(s.mean) && r.f64(s.kappa) && r.f64(s.alpha) && r.f64(s.beta) &&
         r.u64(s.observations);
}

}  // namespace

void encode_session_body(wire::Writer& w, const SessionState& state) {
  w.u64(state.user);
  encode_gamma_state(w, state.gamma);
  encode_nig_state(w, state.nig);
  w.f64(state.battery_fraction);
  w.u8(state.last_assignment);
  w.u32(state.slots_served);
}

bool decode_session_body(wire::Reader& r, SessionState& state) {
  return r.u64(state.user) && decode_gamma_state(r, state.gamma) &&
         decode_nig_state(r, state.nig) && r.f64(state.battery_fraction) &&
         r.u8(state.last_assignment) && r.u32(state.slots_served);
}

std::vector<std::uint8_t> encode_session(const SessionState& state) {
  wire::Writer w;
  w.u32(kSessionMagic);
  w.u32(kSessionVersion);
  encode_session_body(w, state);
  std::vector<std::uint8_t> bytes = w.take();
  wire::seal(bytes);
  return bytes;
}

common::StatusOr<SessionState> decode_session(
    std::vector<std::uint8_t> bytes) {
  const common::Status sealed = wire::unseal(bytes);
  if (!sealed.ok()) return sealed;
  wire::Reader r(bytes);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (!r.u32(magic) || magic != kSessionMagic) {
    return common::Status::InvalidArgument("not a session payload");
  }
  if (!r.u32(version) || version != kSessionVersion) {
    return common::Status::InvalidArgument("unsupported session version");
  }
  SessionState state;
  if (!decode_session_body(r, state) || !r.exhausted()) {
    return common::Status::DataLoss("truncated session payload");
  }
  return state;
}

HandoffOutcome SessionHandoff::transfer(const fault::FaultInjector* injector,
                                        const SessionState& state,
                                        std::uint64_t slot,
                                        SessionState& received) const {
  const std::vector<std::uint8_t> payload = encode_session(state);

  HandoffOutcome outcome;
  outcome.payload_bytes = payload.size();

  const bool lossy =
      injector != nullptr &&
      injector->site_enabled(fault::FaultSite::kHandoffTransfer);

  const fault::RetryResult result = fault::retry_with_backoff(
      backoff_, [&](int attempt) -> common::Status {
        std::vector<std::uint8_t> in_flight = payload;
        if (lossy) {
          const fault::FaultDecision decision = injector->decide(
              fault::FaultSite::kHandoffTransfer, state.user,
              slot * kAttemptStride + static_cast<std::uint64_t>(attempt));
          if (decision.dropped()) {
            return common::Status::Unavailable("handoff payload dropped");
          }
          if (decision.corrupted()) {
            // Garble one byte in flight; the checksum below rejects it and
            // the attempt retries like a drop, but through the same decode
            // path a real receiver would run.
            const std::size_t victim =
                static_cast<std::size_t>(
                    decision.corrupt_factor * 1e6 < 0
                        ? -decision.corrupt_factor * 1e6
                        : decision.corrupt_factor * 1e6) %
                in_flight.size();
            in_flight[victim] ^= 0xA5u;
          }
          // An injected delay delivers late but intact; the lateness is
          // accounted with the backoff total.
          if (decision.delayed()) outcome.backoff_ms += decision.delay_ms;
        }
        common::StatusOr<SessionState> decoded =
            decode_session(std::move(in_flight));
        if (!decoded.ok()) {
          // Corruption is detected, not delivered — retryable.
          return common::Status::Unavailable(decoded.status().message());
        }
        received = std::move(decoded).value();
        return common::Status::Ok();
      });

  outcome.transferred = result.status.ok();
  outcome.attempts = result.attempts;
  outcome.backoff_ms += result.backoff_ms;
  return outcome;
}

}  // namespace lpvs::fleet

// Binary wire format helpers for the fleet's inter-server payloads
// (session handoff, server checkpoints).
//
// The codec itself (fixed-width little-endian fields, bit-cast doubles,
// varints, FNV-1a seal/unseal) moved to lpvs/common/wire.hpp when the
// client-facing session protocol (server/protocol.hpp) started needing the
// exact same primitives; fleet::wire is now an alias of that shared codec,
// so the two formats can never drift apart on checksum or field encoding.
#pragma once

#include "lpvs/common/wire.hpp"

namespace lpvs::fleet {

namespace wire = lpvs::common::wire;

}  // namespace lpvs::fleet

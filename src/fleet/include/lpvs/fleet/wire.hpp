// Binary wire format helpers for the fleet's inter-server payloads
// (session handoff, server checkpoints).
//
// Everything the fleet ships between servers must round-trip *bit-exactly*
// — the failover and handoff acceptance tests compare posteriors and whole
// replays bit for bit — so doubles travel as their IEEE-754 bit patterns
// (std::bit_cast through uint64) rather than through any decimal
// formatting.  Integers are little-endian regardless of host order.
// Payloads are sealed with an FNV-1a checksum trailer so a corrupted
// transfer is *detected* (kDataLoss) instead of silently installing a
// garbled posterior on the receiving server.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "lpvs/common/status.hpp"

namespace lpvs::fleet::wire {

/// Appends fixed-width fields to a byte buffer.
class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back((v >> (8 * i)) & 0xFFu);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back((v >> (8 * i)) & 0xFFu);
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Reads fixed-width fields back; every read reports truncation instead of
/// walking past the end, so a short payload surfaces as kDataLoss at the
/// decode layer rather than as undefined behavior.
class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > bytes_.size()) return false;
    v = bytes_[pos_++];
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > bytes_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
    }
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > bytes_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
    }
    return true;
  }
  bool i64(std::int64_t& v) {
    std::uint64_t raw = 0;
    if (!u64(raw)) return false;
    v = static_cast<std::int64_t>(raw);
    return true;
  }
  bool f64(double& v) {
    std::uint64_t raw = 0;
    if (!u64(raw)) return false;
    v = std::bit_cast<double>(raw);
    return true;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

/// 64-bit FNV-1a over the buffer contents.
std::uint64_t checksum(const std::vector<std::uint8_t>& bytes,
                       std::size_t count);

/// Appends an 8-byte checksum trailer covering everything before it.
void seal(std::vector<std::uint8_t>& bytes);

/// Verifies and strips the trailer; kDataLoss when the buffer is shorter
/// than a trailer or the checksum does not match the contents.
common::Status unseal(std::vector<std::uint8_t>& bytes);

}  // namespace lpvs::fleet::wire

// Session handoff between edge servers (fleet tentpole, part 2).
//
// When placement moves a user (roaming, server join/leave), everything the
// source server has *learned* about the user should move too — above all
// the Bayes gamma posterior, which took real observations to sharpen, plus
// the last reported battery status and the user's previous-slot assignment
// bit (the receiving server's solve-cache warm hint).  The transfer rides
// the same lossy-transport discipline as core::signaling: each delivery
// attempt draws a deterministic fault::FaultInjector decision (site
// kHandoffTransfer, keyed on user and slot*stride+attempt exactly like
// SignalingLink keys its exchanges), failed attempts retry under
// fault::retry_with_backoff with accounted-not-slept backoff, and a
// payload corrupted in flight is rejected by its checksum rather than
// installed.  When the whole retry budget burns out the receiver performs
// a *cold restart*: a fresh session at the prior — correctness is
// preserved, only the learned sharpness is lost.
#pragma once

#include <cstdint>
#include <vector>

#include "lpvs/bayes/gamma_estimator.hpp"
#include "lpvs/bayes/nig_estimator.hpp"
#include "lpvs/common/status.hpp"
#include "lpvs/fault/fault_injector.hpp"
#include "lpvs/fault/retry.hpp"
#include "lpvs/fleet/wire.hpp"

namespace lpvs::fleet {

/// Everything worth moving when a user's session changes servers.  Also
/// the per-session unit a fleet::Checkpoint snapshots.
struct SessionState {
  std::uint64_t user = 0;
  bayes::GammaEstimator::State gamma;
  bayes::NigGammaEstimator::State nig;
  /// Last battery status the source server heard (refreshed every slot by
  /// the device's own report; carried so the receiver can schedule the
  /// very next slot without waiting for one).
  double battery_fraction = 1.0;
  /// Previous-slot transform decision: the receiver folds it into its
  /// warm-start incumbent so the arriving user does not cold-start the
  /// destination's ILP stream.
  std::uint8_t last_assignment = 0;
  std::uint32_t slots_served = 0;
};

/// Versioned, checksum-sealed binary encoding (wire.hpp).  Bit-exact:
/// decode(encode(s)) reproduces every double to the bit, so the restored
/// posterior's next estimate equals the original's (tests assert ==).
std::vector<std::uint8_t> encode_session(const SessionState& state);
common::StatusOr<SessionState> decode_session(std::vector<std::uint8_t> bytes);

/// Unframed body-level encode/decode, shared with fleet::Checkpoint (which
/// embeds many sessions inside its own versioned, sealed frame).
void encode_session_body(wire::Writer& w, const SessionState& state);
bool decode_session_body(wire::Reader& r, SessionState& state);

/// What one transfer attempt sequence came to.
struct HandoffOutcome {
  /// False = every attempt failed; the receiver must cold-restart.
  bool transferred = false;
  int attempts = 0;
  double backoff_ms = 0.0;  ///< accounted (not slept) retry backoff
  std::size_t payload_bytes = 0;
};

/// Moves SessionState between servers over the lossy channel.
class SessionHandoff {
 public:
  SessionHandoff() = default;
  explicit SessionHandoff(fault::BackoffPolicy backoff) : backoff_(backoff) {}

  /// Transfers `state` for slot `slot`.  On success `received` holds the
  /// decoded payload (bit-identical to `state` unless an injected
  /// corruption slipped past — it cannot: corruption fails the checksum
  /// and is retried).  Deterministic: decisions are keyed on
  /// (user, slot, attempt) only.  A null or disabled injector always
  /// succeeds on the first attempt.
  HandoffOutcome transfer(const fault::FaultInjector* injector,
                          const SessionState& state, std::uint64_t slot,
                          SessionState& received) const;

  const fault::BackoffPolicy& backoff() const { return backoff_; }

 private:
  fault::BackoffPolicy backoff_{};
};

}  // namespace lpvs::fleet

// The federation driver (fleet tentpole, part 4): N emulated edge servers
// over one partitioned Twitch trace.
//
// Each server runs the paper's per-slot pipeline (price content, solve the
// Phase-1 ILP through core::LpvsScheduler, play back, update the Bayes
// posteriors) for *its* users only; which server owns which user is decided
// by fleet::Placement (weighted rendezvous hashing), users roam between
// servers at a configurable mobility rate (fleet::SessionHandoff moves
// their learned state over the lossy channel), servers can crash
// (fault::FaultSite::kServerCrash) and fail over from fleet::Checkpoint,
// and membership itself can change mid-run (scheduled join/leave events,
// each triggering the minimal rendezvous rebalancing).
//
// Determinism contract (the same one the emulator and batch scheduler
// keep): the whole run is a pure function of (trace, config, injector
// seed).  Every control decision — mobility, crash, handoff loss — is
// keyed on stable (entity, slot) pairs; the per-slot server phase runs the
// servers in parallel on a ThreadPool with results landing in
// pre-assigned slots and users partitioned across servers, so any thread
// count produces the bit-identical FederationReport
// (tests/fleet_test.cpp runs 1/2/8 threads).
//
// What the federation deliberately does NOT re-model: the per-device
// signaling energy of report exchanges (the single-server Emulator owns
// that path); here reports always arrive and the federation-level faults
// are the interesting ones.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "lpvs/core/run_context.hpp"
#include "lpvs/core/scheduler.hpp"
#include "lpvs/emu/cluster_params.hpp"
#include "lpvs/fleet/checkpoint.hpp"
#include "lpvs/fleet/handoff.hpp"
#include "lpvs/fleet/placement.hpp"
#include "lpvs/trace/trace.hpp"

namespace lpvs::fleet {

/// A scheduled membership change: `server` joins (with `weight`) or leaves
/// at the start of `slot` (relative to the run, not the trace).
struct MembershipEvent {
  int slot = 0;
  std::uint64_t server = 0;
  bool join = true;
  double weight = 1.0;
};

/// Per-server capacities and seed come from the shared ClusterParams base
/// (each edge server is one "virtual cluster" of the paper, federated).
struct FederationConfig : emu::ClusterParams {
  FederationConfig() {
    seed = 7;
    // Federation slots price a shorter chunk train per user than the
    // single-cluster emulator (12 x 10 s vs 30 x 10 s).
    chunks_per_slot = 12;
  }

  /// Initial fleet size: servers 0..servers-1, weight 1.0 each unless
  /// `server_weights` overrides (indexed by initial server id).
  int servers = 4;
  std::vector<double> server_weights;

  /// Cap on users drawn from the trace's live sessions at start_slot.
  int users = 48;
  /// Trace sessions need at least this many viewers to contribute users.
  int min_viewers = 20;
  int start_slot = 144;  ///< trace slot where the run begins
  int slots = 48;        ///< federation slots to run

  double initial_battery_mean = 0.5;
  double initial_battery_std = 0.2;
  double observation_noise = 0.02;

  /// Per-user per-slot probability of roaming to a fresh placement draw.
  double mobility_rate = 0.0;
  /// Slots between checkpoints; 1 = every slot (fresh checkpoints, the
  /// bit-exact failover regime).  0 disables checkpointing entirely
  /// (every crash is a full cold restart).
  int checkpoint_interval = 1;
  /// Worker threads for the per-server phase; 0 = hardware concurrency.
  unsigned threads = 1;

  std::vector<MembershipEvent> membership;
};

/// One server's totals over the run.
struct ServerReport {
  std::uint64_t id = 0;
  long slots_run = 0;
  long scheduled_users = 0;  ///< user-slots placed into the ILP
  long selected = 0;         ///< user-slots granted the transform
  double energy_mwh = 0.0;
  double objective = 0.0;
  long handoffs_in = 0;
  long handoffs_out = 0;
  long cold_restarts = 0;  ///< sessions rebuilt at the prior
  long failovers = 0;      ///< crashes of this logical server
};

/// Fleet-wide aggregate; every field is deterministic in (trace, config).
struct FederationReport {
  std::vector<ServerReport> servers;  // sorted by id, incl. departed ones
  int slots_run = 0;
  long users = 0;
  double total_energy_mwh = 0.0;
  double total_objective = 0.0;
  long total_selected = 0;
  double mean_anxiety = 0.0;
  long anxiety_samples = 0;
  long handoffs = 0;          ///< successful session transfers
  long handoff_failures = 0;  ///< transfers that fell back to cold restart
  long failovers = 0;
  long placement_moves = 0;   ///< users moved by join/leave rebalancing
  long capacity_violations = 0;  ///< schedules breaking a capacity row (0!)
  /// FNV-1a digest over every user's end state (battery, posterior,
  /// watch-time bit patterns) — one number that differs iff any of it
  /// does; the bit-exactness tests compare it.
  std::uint64_t state_digest = 0;
};

/// Runs the fleet.  Construct once, run() replays the whole scenario.
class Federation {
 public:
  Federation(FederationConfig config, const trace::Trace& trace,
             const core::Scheduler& scheduler, core::RunContext context);
  ~Federation();

  FederationReport run();

 private:
  struct EdgeServer;
  struct FleetUser;

  void setup_users();
  void setup_servers();
  EdgeServer& server(std::uint64_t id);
  void handle_crashes(int slot, FederationReport& report);
  void reconcile_placement(int slot, bool rebalancing,
                           FederationReport& report);
  void serve_slot(int slot, FederationReport& report,
                  double& anxiety_accumulator);
  void take_checkpoints(int slot);

  FederationConfig config_;
  const trace::Trace& trace_;
  const core::Scheduler& scheduler_;
  core::RunContext context_;
  Placement placement_;
  SessionHandoff handoff_;
  CheckpointStore checkpoints_;
  std::vector<FleetUser> users_;
  std::map<std::uint64_t, std::unique_ptr<EdgeServer>> servers_;
  std::map<std::uint64_t, ServerReport> departed_;  ///< reports of left servers
};

}  // namespace lpvs::fleet

// The federation driver (fleet tentpole, part 4): N emulated edge servers
// over one partitioned Twitch trace.
//
// Each server runs the paper's per-slot pipeline (price content, solve the
// Phase-1 ILP through core::LpvsScheduler, play back, update the Bayes
// posteriors) for *its* users only; which server owns which user is decided
// by fleet::Placement (weighted rendezvous hashing), users roam between
// servers at a configurable mobility rate (fleet::SessionHandoff moves
// their learned state over the lossy channel), servers can crash
// (fault::FaultSite::kServerCrash) and fail over from fleet::Checkpoint,
// and membership itself can change mid-run (scheduled join/leave events,
// each triggering the minimal rendezvous rebalancing).
//
// Determinism contract (the same one the emulator and batch scheduler
// keep): the whole run is a pure function of (trace, config, injector
// seed).  Every control decision — mobility, crash, handoff loss — is
// keyed on stable (entity, slot) pairs; the per-slot server phase runs the
// servers in parallel on a ThreadPool with results landing in
// pre-assigned slots and users partitioned across servers, so any thread
// count produces the bit-identical FederationReport
// (tests/fleet_test.cpp runs 1/2/8 threads).
//
// What the federation deliberately does NOT re-model: the per-device
// signaling energy of report exchanges (the single-server Emulator owns
// that path); here reports always arrive and the federation-level faults
// are the interesting ones.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "lpvs/core/run_context.hpp"
#include "lpvs/core/scheduler.hpp"
#include "lpvs/emu/cluster_params.hpp"
#include "lpvs/fleet/checkpoint.hpp"
#include "lpvs/fleet/handoff.hpp"
#include "lpvs/fleet/placement.hpp"
#include "lpvs/trace/trace.hpp"

namespace lpvs::fleet {

/// A scheduled membership change: `server` joins (with `weight`) or leaves
/// at the start of `slot` (relative to the run, not the trace).
struct MembershipEvent {
  int slot = 0;
  std::uint64_t server = 0;
  bool join = true;
  double weight = 1.0;
};

/// Diurnal arrival process: new viewers join mid-run following a sinusoidal
/// day curve, so a long-horizon soak sees the load the autoscaler must
/// track instead of the fixed start-slot audience.  Arrival counts are
/// deterministic Poisson draws keyed on (seed, slot); each arrival clones a
/// channel from the trace-derived session pool and draws its own device,
/// battery, give-up level, and lifetime from per-user derived streams.
struct DiurnalLoadConfig {
  bool enabled = false;
  double base_arrivals_per_slot = 0.0;  ///< mean arrivals at the trough
  double peak_arrivals_per_slot = 0.0;  ///< mean arrivals at the peak
  int period_slots = 1440;              ///< one simulated day of 1-min slots
  /// Fraction of the period where the peak falls (0.5 = mid-period).
  double peak_phase = 0.5;
  int min_lifetime_slots = 60;   ///< arrival watch-time bounds (uniform)
  int max_lifetime_slots = 360;
  int max_users = 0;  ///< hard cap on users ever created; 0 = unlimited
};

/// Load-derived membership control: every `interval_slots` the policy
/// looks at queue depth (active sessions per live server), the degraded
/// share of the slot's solves (any ladder rung below full solve), and
/// posterior staleness risk (failovers since the last evaluation), then
/// joins or retires one server.  Decisions read only federation-internal
/// state — never the metrics registry — so an attached registry cannot
/// perturb the run (the obs-determinism contract).
struct AutoscaleConfig {
  bool enabled = false;
  int interval_slots = 10;  ///< evaluation cadence
  int cooldown_slots = 20;  ///< min slots between membership actions
  int min_servers = 2;
  int max_servers = 16;
  double target_sessions_per_server = 12.0;
  double high_watermark = 1.25;  ///< scale out above target * high
  double low_watermark = 0.5;    ///< scale in below target * low
  /// Scale out when more than this fraction of the window's solves ran on
  /// a degraded rung; scale-in additionally requires half this fraction.
  double degraded_fraction_out = 0.15;
  /// Server ids minted for autoscale joins start here (clear of the
  /// initial fleet and any scheduled membership events).
  std::uint64_t first_server_id = 1000;
};

/// Per-server capacities and seed come from the shared ClusterParams base
/// (each edge server is one "virtual cluster" of the paper, federated).
struct FederationConfig : emu::ClusterParams {
  FederationConfig() {
    seed = 7;
    // Federation slots price a shorter chunk train per user than the
    // single-cluster emulator (12 x 10 s vs 30 x 10 s).
    chunks_per_slot = 12;
  }

  /// Initial fleet size: servers 0..servers-1, weight 1.0 each unless
  /// `server_weights` overrides (indexed by initial server id).
  int servers = 4;
  std::vector<double> server_weights;

  /// Cap on users drawn from the trace's live sessions at start_slot.
  int users = 48;
  /// Trace sessions need at least this many viewers to contribute users.
  int min_viewers = 20;
  int start_slot = 144;  ///< trace slot where the run begins
  int slots = 48;        ///< federation slots to run

  double initial_battery_mean = 0.5;
  double initial_battery_std = 0.2;
  double observation_noise = 0.02;

  /// Per-user per-slot probability of roaming to a fresh placement draw.
  double mobility_rate = 0.0;
  /// Slots between checkpoints; 1 = every slot (fresh checkpoints, the
  /// bit-exact failover regime).  0 disables checkpointing entirely
  /// (every crash is a full cold restart).
  int checkpoint_interval = 1;
  /// Worker threads for the per-server phase; 0 = hardware concurrency.
  unsigned threads = 1;

  std::vector<MembershipEvent> membership;

  DiurnalLoadConfig diurnal;
  AutoscaleConfig autoscale;

  /// Simulated wall seconds per federation slot (the clock the telemetry
  /// windows aggregate over — the paper's slots are one minute).
  double slot_seconds = 60.0;
  /// End-of-slot hook, called after the slot's metrics are exported with
  /// (slot, simulated time at slot end in ms).  The diurnal soak wires
  /// this to TelemetryExporter::publish(sim_time_ms); it must not mutate
  /// federation state.
  std::function<void(int slot, std::int64_t sim_time_ms)> slot_hook;
};

/// One server's totals over the run.
struct ServerReport {
  std::uint64_t id = 0;
  long slots_run = 0;
  long scheduled_users = 0;  ///< user-slots placed into the ILP
  long selected = 0;         ///< user-slots granted the transform
  double energy_mwh = 0.0;
  double objective = 0.0;
  long handoffs_in = 0;
  long handoffs_out = 0;
  long cold_restarts = 0;  ///< sessions rebuilt at the prior
  long failovers = 0;      ///< crashes of this logical server
};

/// Fleet-wide aggregate; every field is deterministic in (trace, config).
struct FederationReport {
  std::vector<ServerReport> servers;  // sorted by id, incl. departed ones
  int slots_run = 0;
  long users = 0;
  double total_energy_mwh = 0.0;
  double total_objective = 0.0;
  long total_selected = 0;
  double mean_anxiety = 0.0;
  long anxiety_samples = 0;
  long handoffs = 0;          ///< successful session transfers
  long handoff_failures = 0;  ///< transfers that fell back to cold restart
  long failovers = 0;
  long placement_moves = 0;   ///< users moved by join/leave rebalancing
  long capacity_violations = 0;  ///< schedules breaking a capacity row (0!)
  long arrivals = 0;           ///< diurnal mid-run viewer arrivals
  long sessions_started = 0;   ///< session attaches (initial + re-attach)
  long sessions_ended = 0;     ///< orderly session closes
  /// Active viewers left without a serving session after a reconcile —
  /// the zero-lost-sessions SLO counts exactly this.
  long sessions_lost = 0;
  long autoscale_joins = 0;
  long autoscale_leaves = 0;
  int peak_servers = 0;        ///< most live servers at any slot
  long degraded_solves = 0;    ///< server-slots solved below kFullSolve
  long total_solves = 0;       ///< server-slots that ran the scheduler
  /// FNV-1a digest over every user's end state (battery, posterior,
  /// watch-time bit patterns) — one number that differs iff any of it
  /// does; the bit-exactness tests compare it.
  std::uint64_t state_digest = 0;
};

/// Runs the fleet.  Construct once, run() replays the whole scenario.
class Federation {
 public:
  Federation(FederationConfig config, const trace::Trace& trace,
             const core::Scheduler& scheduler, core::RunContext context);
  ~Federation();

  FederationReport run();

 private:
  struct EdgeServer;
  struct FleetUser;

  void setup_users();
  void setup_servers();
  EdgeServer& server(std::uint64_t id);
  void spawn_arrivals(int slot, FederationReport& report);
  void handle_crashes(int slot, FederationReport& report);
  void reconcile_placement(int slot, bool rebalancing,
                           FederationReport& report);
  void serve_slot(int slot, FederationReport& report,
                  double& anxiety_accumulator);
  void evaluate_autoscale(int slot, FederationReport& report);
  void take_checkpoints(int slot);

  FederationConfig config_;
  const trace::Trace& trace_;
  const core::Scheduler& scheduler_;
  core::RunContext context_;
  Placement placement_;
  SessionHandoff handoff_;
  CheckpointStore checkpoints_;
  std::vector<FleetUser> users_;
  std::map<std::uint64_t, std::unique_ptr<EdgeServer>> servers_;
  std::map<std::uint64_t, ServerReport> departed_;  ///< reports of left servers

  /// Channel templates (genre, bitrate) the diurnal arrival process clones
  /// viewers from; captured once at setup from the trace.
  struct SessionSeed {
    media::Genre genre = media::Genre::kIrlChat;
    double bitrate_mbps = 3.0;
  };
  std::vector<SessionSeed> session_pool_;
  std::uint64_t next_auto_server_ = 0;  ///< next autoscale join id
  int last_scale_slot_ = -1 << 20;      ///< cooldown anchor
  long degraded_at_last_eval_ = 0;      ///< rung-window baselines
  long solves_at_last_eval_ = 0;
  long failovers_at_last_eval_ = 0;     ///< staleness guard baseline
};

}  // namespace lpvs::fleet

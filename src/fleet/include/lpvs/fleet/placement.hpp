// User-to-edge-server placement via weighted rendezvous hashing (fleet
// tentpole, part 1).
//
// The federation must agree — with no coordination traffic — on which edge
// server owns each user, and a membership change (server join/leave) must
// move as few users as it mathematically can: every moved user is a session
// handoff on the wire and a warm posterior put at risk.  Rendezvous
// (highest-random-weight) hashing gives exactly that: each (user, server)
// pair hashes to a score, the user lands on the server with the highest
// score, and when a server leaves only *its* users move (their scores for
// the survivors are unchanged); when one joins, only the users whose new
// score beats their current maximum move — in expectation U/(N+1).
//
// Capacity weights use the -w/ln(u) trick (Weighted Rendezvous Hashing):
// scoring -weight / ln(uniform(user, server)) makes the win probability of
// each server exactly proportional to its weight, so a 2x-provisioned
// server statistically owns 2x the users.
#pragma once

#include <cstdint>
#include <vector>

namespace lpvs::fleet {

/// One edge server of the federation, as placement sees it.
struct ServerInfo {
  std::uint64_t id = 0;
  /// Relative capacity: a server with weight 2 owns ~2x the users of a
  /// weight-1 peer.  Must be > 0.
  double capacity_weight = 1.0;
};

class Placement {
 public:
  Placement() = default;
  explicit Placement(std::vector<ServerInfo> servers);

  /// Pure function of (user_key, membership): the owning server's id.
  /// Every caller with the same membership view agrees.  Asserts a
  /// non-empty membership.
  std::uint64_t place(std::uint64_t user_key) const;

  /// place() for a batch of users, in order.
  std::vector<std::uint64_t> place_all(
      const std::vector<std::uint64_t>& users) const;

  /// Membership changes.  add_server replaces the weight when the id is
  /// already present; remove_server reports whether the id was present.
  void add_server(ServerInfo server);
  bool remove_server(std::uint64_t id);
  bool contains(std::uint64_t id) const;

  /// Current membership, sorted by id (deterministic iteration order).
  const std::vector<ServerInfo>& servers() const { return servers_; }

  /// The rendezvous score of one (user, server) pair; exposed so tests can
  /// verify the winner really is the argmax.
  static double score(std::uint64_t user_key, const ServerInfo& server);

 private:
  std::vector<ServerInfo> servers_;  // sorted by id
};

}  // namespace lpvs::fleet

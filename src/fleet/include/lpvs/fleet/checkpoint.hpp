// Versioned server checkpoints and the replicated store that failover
// restores them from (fleet tentpole, part 3).
//
// An edge server's scheduler state is exactly: the per-session Bayes
// posteriors + last assignments (SessionState), its solve-cache entries
// (problem fingerprints and stored incumbents), and its slot counter.
// A Checkpoint snapshots all of it into a sealed, versioned binary frame
// (wire.hpp; doubles as bit patterns) — so when fault::FaultSite::
// kServerCrash wipes a server's memory, the peer that picks up its
// logical cluster decodes the latest checkpoint and resumes *bit-for-bit*
// where the crashed server would have been at the checkpointed slot.
// With checkpoint_interval = 1 (a fresh checkpoint every slot) the
// resumed replay is bit-identical to a run with no crash at all
// (tests/fleet_failover_test.cpp); with a longer interval the posterior
// updates since the snapshot are lost, measured by the
// fleet_posterior_staleness_slots histogram.
//
// The JSON sidecar (to_json) is diagnostics only — decimal formatting
// cannot round-trip doubles bit-exactly, so restore always reads the
// binary frame.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "lpvs/common/json.hpp"
#include "lpvs/common/status.hpp"
#include "lpvs/fleet/handoff.hpp"
#include "lpvs/solver/solve_cache.hpp"

namespace lpvs::fleet {

/// Snapshot of one edge server's scheduler state at the end of a slot.
struct Checkpoint {
  static constexpr std::uint32_t kVersion = 1;

  std::uint64_t server = 0;
  /// The slot whose end this snapshot captured; -1 = before any slot ran.
  std::int64_t slot = -1;
  std::uint64_t slots_run = 0;
  /// Sessions sorted by user id (the servers' own deterministic order).
  std::vector<SessionState> sessions;
  /// The server's solve-cache entries (fingerprint + stored incumbent per
  /// stream key), so a restored server's warm starts match the original's.
  std::vector<solver::SolveCache::ExportedEntry> cache_entries;

  /// Sealed, versioned binary frame.
  std::vector<std::uint8_t> encode() const;
  /// kInvalidArgument for a foreign/mis-versioned frame, kDataLoss for a
  /// corrupted or truncated one.
  static common::StatusOr<Checkpoint> decode(std::vector<std::uint8_t> bytes);

  /// Human-readable sidecar (posterior means, fingerprints, counters).
  common::Json to_json() const;
};

/// The peers' replicated checkpoint memory.  In the emulation this is one
/// in-process map; the protocol it models is "every end-of-interval
/// checkpoint is replicated off-box before the next slot starts", which is
/// why a crash can always restore the *latest stored* checkpoint and why
/// restore() decodes rather than returning live objects — failover pays
/// the full serialization path.
class CheckpointStore {
 public:
  /// Stores `bytes` as the latest checkpoint for `server`.
  void put(std::uint64_t server, std::vector<std::uint8_t> bytes);

  /// Decodes the latest checkpoint for `server`; kNotFound when the server
  /// never checkpointed.
  common::StatusOr<Checkpoint> restore(std::uint64_t server) const;

  bool contains(std::uint64_t server) const;
  std::size_t size() const { return latest_.size(); }
  /// Total bytes currently replicated (capacity accounting for benches).
  std::size_t stored_bytes() const;

 private:
  std::map<std::uint64_t, std::vector<std::uint8_t>> latest_;
};

}  // namespace lpvs::fleet

#include "lpvs/fleet/placement.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lpvs::fleet {
namespace {

/// splitmix64 finalizer over the combined (user, server) key — the same
/// stream-derivation discipline as common::Rng seeding, collapsed to one
/// 64-bit output per pair.
std::uint64_t mix(std::uint64_t user_key, std::uint64_t server_id) {
  std::uint64_t z = user_key * 0x9E3779B97F4A7C15ULL ^
                    (server_id + 1) * 0xC2B2AE3D27D4EB4FULL;
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

bool id_less(const ServerInfo& a, const ServerInfo& b) { return a.id < b.id; }

}  // namespace

Placement::Placement(std::vector<ServerInfo> servers)
    : servers_(std::move(servers)) {
  std::sort(servers_.begin(), servers_.end(), id_less);
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    assert(servers_[i].capacity_weight > 0.0);
    assert(i == 0 || servers_[i - 1].id != servers_[i].id);
  }
}

double Placement::score(std::uint64_t user_key, const ServerInfo& server) {
  // Map the hash into (0, 1): +1 keeps ln() away from exactly zero.
  const double u =
      (static_cast<double>(mix(user_key, server.id)) + 1.0) / 18446744073709551616.0;
  return -server.capacity_weight / std::log(u);
}

std::uint64_t Placement::place(std::uint64_t user_key) const {
  assert(!servers_.empty());
  std::uint64_t best_id = servers_.front().id;
  double best_score = score(user_key, servers_.front());
  for (std::size_t i = 1; i < servers_.size(); ++i) {
    const double s = score(user_key, servers_[i]);
    // Strict >: ties (probability ~0) resolve to the lowest server id,
    // which the sorted membership makes deterministic.
    if (s > best_score) {
      best_score = s;
      best_id = servers_[i].id;
    }
  }
  return best_id;
}

std::vector<std::uint64_t> Placement::place_all(
    const std::vector<std::uint64_t>& users) const {
  std::vector<std::uint64_t> assignment;
  assignment.reserve(users.size());
  for (const std::uint64_t user : users) assignment.push_back(place(user));
  return assignment;
}

void Placement::add_server(ServerInfo server) {
  assert(server.capacity_weight > 0.0);
  const auto it =
      std::lower_bound(servers_.begin(), servers_.end(), server, id_less);
  if (it != servers_.end() && it->id == server.id) {
    it->capacity_weight = server.capacity_weight;
    return;
  }
  servers_.insert(it, server);
}

bool Placement::remove_server(std::uint64_t id) {
  const auto it = std::lower_bound(servers_.begin(), servers_.end(),
                                   ServerInfo{id, 1.0}, id_less);
  if (it == servers_.end() || it->id != id) return false;
  servers_.erase(it);
  return true;
}

bool Placement::contains(std::uint64_t id) const {
  const auto it = std::lower_bound(servers_.begin(), servers_.end(),
                                   ServerInfo{id, 1.0}, id_less);
  return it != servers_.end() && it->id == id;
}

}  // namespace lpvs::fleet

#include "lpvs/fleet/checkpoint.hpp"

#include <utility>

#include "lpvs/fleet/wire.hpp"

namespace lpvs::fleet {
namespace {

constexpr std::uint32_t kCheckpointMagic = 0x4C504650u;  // "LPFP"

void encode_cache_entry(wire::Writer& w,
                        const solver::SolveCache::ExportedEntry& entry) {
  w.u64(entry.key);
  w.u64(entry.fingerprint);
  w.u8(static_cast<std::uint8_t>(entry.solution.status));
  w.f64(entry.solution.objective);
  w.i64(static_cast<std::int64_t>(entry.solution.nodes_explored));
  w.u32(static_cast<std::uint32_t>(entry.solution.x.size()));
  for (const int xi : entry.solution.x) {
    w.u8(static_cast<std::uint8_t>(xi != 0 ? 1 : 0));
  }
}

bool decode_cache_entry(wire::Reader& r,
                        solver::SolveCache::ExportedEntry& entry) {
  std::uint8_t status = 0;
  std::int64_t nodes = 0;
  std::uint32_t vars = 0;
  if (!r.u64(entry.key) || !r.u64(entry.fingerprint) || !r.u8(status) ||
      !r.f64(entry.solution.objective) || !r.i64(nodes) || !r.u32(vars)) {
    return false;
  }
  entry.solution.status = static_cast<solver::IlpStatus>(status);
  entry.solution.nodes_explored = static_cast<long>(nodes);
  if (vars > r.remaining()) return false;  // bounds before allocating
  entry.solution.x.resize(vars);
  for (std::uint32_t i = 0; i < vars; ++i) {
    std::uint8_t xi = 0;
    if (!r.u8(xi)) return false;
    entry.solution.x[i] = xi != 0 ? 1 : 0;
  }
  return true;
}

}  // namespace

std::vector<std::uint8_t> Checkpoint::encode() const {
  wire::Writer w;
  w.u32(kCheckpointMagic);
  w.u32(kVersion);
  w.u64(server);
  w.i64(slot);
  w.u64(slots_run);
  w.u32(static_cast<std::uint32_t>(sessions.size()));
  for (const SessionState& session : sessions) {
    encode_session_body(w, session);
  }
  w.u32(static_cast<std::uint32_t>(cache_entries.size()));
  for (const solver::SolveCache::ExportedEntry& entry : cache_entries) {
    encode_cache_entry(w, entry);
  }
  std::vector<std::uint8_t> bytes = w.take();
  wire::seal(bytes);
  return bytes;
}

common::StatusOr<Checkpoint> Checkpoint::decode(
    std::vector<std::uint8_t> bytes) {
  const common::Status sealed = wire::unseal(bytes);
  if (!sealed.ok()) return sealed;
  wire::Reader r(bytes);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (!r.u32(magic) || magic != kCheckpointMagic) {
    return common::Status::InvalidArgument("not a checkpoint frame");
  }
  if (!r.u32(version) || version != kVersion) {
    return common::Status::InvalidArgument("unsupported checkpoint version");
  }
  Checkpoint checkpoint;
  std::uint32_t session_count = 0;
  if (!r.u64(checkpoint.server) || !r.i64(checkpoint.slot) ||
      !r.u64(checkpoint.slots_run) || !r.u32(session_count)) {
    return common::Status::DataLoss("truncated checkpoint header");
  }
  checkpoint.sessions.reserve(session_count);
  for (std::uint32_t i = 0; i < session_count; ++i) {
    SessionState session;
    if (!decode_session_body(r, session)) {
      return common::Status::DataLoss("truncated checkpoint session");
    }
    checkpoint.sessions.push_back(std::move(session));
  }
  std::uint32_t entry_count = 0;
  if (!r.u32(entry_count)) {
    return common::Status::DataLoss("truncated checkpoint cache section");
  }
  checkpoint.cache_entries.reserve(entry_count);
  for (std::uint32_t i = 0; i < entry_count; ++i) {
    solver::SolveCache::ExportedEntry entry;
    if (!decode_cache_entry(r, entry)) {
      return common::Status::DataLoss("truncated checkpoint cache entry");
    }
    checkpoint.cache_entries.push_back(std::move(entry));
  }
  if (!r.exhausted()) {
    return common::Status::DataLoss("trailing bytes after checkpoint");
  }
  return checkpoint;
}

common::Json Checkpoint::to_json() const {
  common::Json doc = common::Json::object();
  doc.set("version", static_cast<long>(kVersion));
  doc.set("server", static_cast<long>(server));
  doc.set("slot", static_cast<long>(slot));
  doc.set("slots_run", static_cast<long>(slots_run));
  common::Json session_rows = common::Json::array();
  for (const SessionState& session : sessions) {
    common::Json row = common::Json::object();
    row.set("user", static_cast<long>(session.user));
    row.set("posterior_mean", session.gamma.mean);
    row.set("posterior_variance", session.gamma.variance);
    row.set("observations", static_cast<long>(session.gamma.observations));
    row.set("battery_fraction", session.battery_fraction);
    row.set("last_assignment", static_cast<long>(session.last_assignment));
    row.set("slots_served", static_cast<long>(session.slots_served));
    session_rows.push(std::move(row));
  }
  doc.set("sessions", std::move(session_rows));
  common::Json cache_rows = common::Json::array();
  for (const solver::SolveCache::ExportedEntry& entry : cache_entries) {
    common::Json row = common::Json::object();
    row.set("key", static_cast<long>(entry.key));
    row.set("fingerprint", static_cast<long>(entry.fingerprint));
    row.set("variables", static_cast<long>(entry.solution.x.size()));
    cache_rows.push(std::move(row));
  }
  doc.set("cache_entries", std::move(cache_rows));
  return doc;
}

void CheckpointStore::put(std::uint64_t server,
                          std::vector<std::uint8_t> bytes) {
  latest_[server] = std::move(bytes);
}

common::StatusOr<Checkpoint> CheckpointStore::restore(
    std::uint64_t server) const {
  const auto it = latest_.find(server);
  if (it == latest_.end()) {
    return common::Status::NotFound("no checkpoint for server");
  }
  return Checkpoint::decode(it->second);
}

bool CheckpointStore::contains(std::uint64_t server) const {
  return latest_.find(server) != latest_.end();
}

std::size_t CheckpointStore::stored_bytes() const {
  std::size_t total = 0;
  for (const auto& [server, bytes] : latest_) total += bytes.size();
  return total;
}

}  // namespace lpvs::fleet

#include "lpvs/fleet/federation.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <utility>

#include "lpvs/battery/battery.hpp"
#include "lpvs/bayes/gamma_estimator.hpp"
#include "lpvs/bayes/nig_estimator.hpp"
#include "lpvs/common/thread_pool.hpp"
#include "lpvs/display/display.hpp"
#include "lpvs/fleet/wire.hpp"
#include "lpvs/media/video.hpp"
#include "lpvs/survey/population.hpp"
#include "lpvs/transform/transform.hpp"

namespace lpvs::fleet {
namespace {

/// Same derived-stream construction as the emulator: all per-entity-per-slot
/// randomness is a pure function of (seed, entity, slot), so federation
/// replays are bit-identical regardless of thread count or server layout.
common::Rng derived_rng(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  return common::Rng(seed ^ (a + 1) * 0x9E3779B97F4A7C15ULL ^
                     (b + 1) * 0xC2B2AE3D27D4EB4FULL);
}

/// Seed salts for the federation's own derived streams (distinct from the
/// emulator's 0xF00D/0x5717C4/0xBA1E family except the Bayes-noise salt,
/// which is shared deliberately: a user observed by any server sees the
/// same measurement noise).
constexpr std::uint64_t kMobilitySalt = 0x0F1EE7u;
constexpr std::uint64_t kDeviceSalt = 0xF1u;
constexpr std::uint64_t kBayesNoiseSalt = 0xBA1Eu;

/// Fingerprint under which a server stores the handoff-derived warm hint.
/// It matches no real problem fingerprint (collisions are the cache's
/// accepted 2^-64 risk), so the hint never replays as an exact hit — it can
/// only be greedy-repaired into a warm incumbent, index-aligned with the
/// current slot's session order.
constexpr std::uint64_t kHintFingerprint = 0xF1EE7F00DB17E5ULL;

/// Placement key for a user: the mobility epoch in the high bits redraws
/// the rendezvous permutation for this user only, leaving everyone else's
/// assignment untouched.
std::uint64_t place_key(std::uint64_t user, std::uint32_t epoch) {
  return (static_cast<std::uint64_t>(epoch) << 32) ^ user;
}

}  // namespace

/// One emulated viewer: the device-side ground truth (battery, watching
/// state, content identity).  Server-side learned state lives in the
/// sessions; a crash can lose the learning, never the device.
struct Federation::FleetUser {
  std::uint64_t id = 0;
  media::Genre genre = media::Genre::kIrlChat;
  double bitrate_mbps = 3.0;
  display::DisplaySpec spec;
  battery::Battery battery;
  double start_fraction = 0.5;
  int giveup_percent = 10;
  int end_slot = 0;  ///< trace slot after which the user stops watching
  bool watching = true;
  double watch_minutes = 0.0;
  std::uint32_t epoch = 0;       ///< mobility epoch (placement key salt)
  std::uint32_t prev_epoch = 0;  ///< epoch at the previous reconcile
  bool placed = false;
  std::uint64_t server = 0;
  /// A session existed at some point; re-creating one afterwards is a cold
  /// restart (learned state lost), unlike the initial attach.
  bool established = false;
};

/// Per-session learned state held by the owning server (what handoff moves
/// and checkpoints snapshot).
struct ServerSession {
  bayes::GammaEstimator estimator;
  bayes::NigGammaEstimator nig;
  std::uint8_t last_assignment = 0;
  std::uint32_t slots_served = 0;
};

/// One emulated edge server.  Owns its sessions, its solve cache (one
/// warm-start stream keyed by the logical server id), and private copies of
/// the pricing models so the parallel serve phase shares nothing mutable.
struct Federation::EdgeServer {
  ServerInfo info;
  std::map<std::uint64_t, ServerSession> sessions;  // user-id order
  solver::SolveCache cache;
  std::uint64_t slots_run = 0;
  ServerReport report;
  transform::TransformEngine engine;
  media::PowerRateEstimator estimator;
  transform::ResourceModel resources;
  bool leaving = false;

  /// What the parallel serve phase produced this slot; folded into the
  /// totals sequentially (sorted server order) after the barrier so double
  /// summation order is thread-count independent.
  double slot_energy_mwh = 0.0;
  double slot_objective = 0.0;
  double slot_anxiety = 0.0;
  long slot_anxiety_samples = 0;
  long slot_selected = 0;
  long slot_scheduled = 0;
  long slot_capacity_violations = 0;
};

Federation::Federation(FederationConfig config, const trace::Trace& trace,
                       const core::Scheduler& scheduler,
                       core::RunContext context)
    : config_(std::move(config)),
      trace_(trace),
      scheduler_(scheduler),
      context_(context),
      placement_(std::vector<ServerInfo>{}) {
  assert(config_.servers > 0);
  assert(config_.slots > 0);
  assert(config_.chunks_per_slot > 0);
  assert(context_.anxiety != nullptr);
}

Federation::~Federation() = default;

Federation::EdgeServer& Federation::server(std::uint64_t id) {
  auto it = servers_.find(id);
  assert(it != servers_.end());
  return *it->second;
}

void Federation::setup_servers() {
  std::vector<ServerInfo> members;
  members.reserve(static_cast<std::size_t>(config_.servers));
  for (int s = 0; s < config_.servers; ++s) {
    ServerInfo info;
    info.id = static_cast<std::uint64_t>(s);
    if (static_cast<std::size_t>(s) < config_.server_weights.size()) {
      info.capacity_weight = config_.server_weights[static_cast<std::size_t>(s)];
    }
    members.push_back(info);
    auto edge = std::make_unique<EdgeServer>();
    edge->info = info;
    edge->report.id = info.id;
    servers_[info.id] = std::move(edge);
  }
  placement_ = Placement(members);
}

void Federation::setup_users() {
  // Users come from the trace: sessions live at the start slot with enough
  // viewers, most-watched first, one user per session round-robin until the
  // cap — so the audience mirrors the trace's popularity skew.
  std::vector<const trace::Session*> live =
      trace_.live_sessions(config_.start_slot);
  std::erase_if(live, [&](const trace::Session* s) {
    return s->viewers_at(config_.start_slot) < config_.min_viewers;
  });
  if (live.empty()) live = trace_.live_sessions(config_.start_slot);
  std::sort(live.begin(), live.end(),
            [&](const trace::Session* a, const trace::Session* b) {
              const int va = a->viewers_at(config_.start_slot);
              const int vb = b->viewers_at(config_.start_slot);
              if (va != vb) return va > vb;
              return a->id.value < b->id.value;
            });

  const int user_count = live.empty() ? 0 : config_.users;
  users_.clear();
  users_.reserve(static_cast<std::size_t>(user_count));

  // Give-up thresholds from the survey answer model, exactly like the
  // single-server emulator.
  common::Rng setup_rng = derived_rng(config_.seed, 0xDEu, 0xADu);
  const survey::SyntheticPopulation population;
  const std::vector<survey::Participant> participants =
      population.generate(user_count, setup_rng);

  const auto& catalog = display::DeviceCatalog::standard();
  for (int n = 0; n < user_count; ++n) {
    const trace::Session* session = live[static_cast<std::size_t>(n) %
                                         live.size()];
    const trace::Channel& channel = trace_.channel(session->channel);

    common::Rng device_rng =
        derived_rng(config_.seed, kDeviceSalt, static_cast<std::uint64_t>(n));
    FleetUser user;
    user.id = static_cast<std::uint64_t>(n);
    user.genre = channel.genre;
    user.bitrate_mbps = channel.bitrate_mbps;
    const auto& profile = catalog.sample(device_rng);
    user.spec = profile.spec;
    user.start_fraction = device_rng.truncated_normal(
        config_.initial_battery_mean, config_.initial_battery_std, 0.05, 1.0);
    user.battery = battery::Battery(
        common::MilliwattHours{profile.battery_mwh * config_.effective_capacity_scale},
        user.start_fraction);
    user.giveup_percent =
        participants[static_cast<std::size_t>(n)].giveup_level;
    user.end_slot = session->end_slot();
    users_.push_back(std::move(user));
  }
}

void Federation::handle_crashes(int slot, FederationReport& report) {
  const fault::FaultInjector* faults = context_.faults;
  if (faults == nullptr ||
      !faults->site_enabled(fault::FaultSite::kServerCrash)) {
    return;
  }
  obs::MetricsRegistry* registry = context_.metrics;
  const int global_slot = config_.start_slot + slot;

  for (auto& [id, edge] : servers_) {
    if (edge->leaving) continue;
    if (!faults->should_drop(fault::FaultSite::kServerCrash, id,
                             static_cast<std::uint64_t>(global_slot))) {
      continue;
    }
    // The server's memory is gone: sessions, solve cache, slot counter.
    edge->sessions.clear();
    edge->cache.clear();
    edge->slots_run = 0;
    ++edge->report.failovers;
    ++report.failovers;
    if (registry != nullptr) {
      registry
          ->counter("fleet_failover_total",
                    "Server crashes recovered by checkpoint failover")
          .add(1);
    }
    if (context_.events != nullptr) {
      context_.events->record(
          {obs::EventKind::kFaultInjected, global_slot, /*device=*/-1,
           {{"site", static_cast<double>(
                         static_cast<int>(fault::FaultSite::kServerCrash))},
            {"server", static_cast<double>(id)}}});
    }

    // Failover: the peer holding the replicated checkpoint restores the
    // crashed server's logical cluster through the full decode path.
    common::StatusOr<Checkpoint> restored = checkpoints_.restore(id);
    if (!restored.ok()) continue;  // nothing replicated: full cold restart
    const Checkpoint& checkpoint = restored.value();
    const double staleness =
        static_cast<double>(global_slot - 1 - checkpoint.slot);
    obs::Histogram* staleness_hist = nullptr;
    if (registry != nullptr) {
      staleness_hist = &registry->histogram(
          "fleet_posterior_staleness_slots",
          obs::MetricsRegistry::linear_buckets(0.0, 1.0, 17),
          "Slots of posterior learning lost per restored session");
    }
    for (const SessionState& state : checkpoint.sessions) {
      ServerSession session;
      session.estimator = bayes::GammaEstimator::from_state(state.gamma);
      session.nig = bayes::NigGammaEstimator::from_state(state.nig);
      session.last_assignment = state.last_assignment;
      session.slots_served = state.slots_served;
      edge->sessions[state.user] = std::move(session);
      if (staleness_hist != nullptr) staleness_hist->observe(staleness);
    }
    edge->cache.import_entries(checkpoint.cache_entries);
    edge->slots_run = checkpoint.slots_run;
  }
}

void Federation::reconcile_placement(int slot, bool rebalancing,
                                     FederationReport& report) {
  obs::MetricsRegistry* registry = context_.metrics;
  const int global_slot = config_.start_slot + slot;
  const fault::FaultInjector* faults = context_.faults;

  for (FleetUser& user : users_) {
    // Trace lifetime: the channel's session ended, the viewer leaves.
    if (user.watching && global_slot >= user.end_slot) user.watching = false;
    const bool active = user.watching && !user.battery.empty();

    if (!active) {
      if (user.placed) {
        auto it = servers_.find(user.server);
        if (it != servers_.end()) it->second->sessions.erase(user.id);
        user.placed = false;
      }
      user.prev_epoch = user.epoch;
      continue;
    }

    if (placement_.servers().empty()) {
      user.placed = false;
      user.prev_epoch = user.epoch;
      continue;
    }
    const std::uint64_t desired = placement_.place(place_key(user.id,
                                                             user.epoch));

    if (!user.placed) {
      // First attach (or re-attach after inactivity): cold session, no
      // state to move.
      user.server = desired;
      user.placed = true;
      EdgeServer& dest = server(desired);
      if (dest.sessions.find(user.id) == dest.sessions.end()) {
        dest.sessions[user.id] = ServerSession{};
        if (user.established) {
          ++dest.report.cold_restarts;
          if (registry != nullptr) {
            registry
                ->counter("fleet_cold_restarts_total",
                          "Sessions rebuilt at the prior after lost state")
                .add(1);
          }
        }
        user.established = true;
      }
      user.prev_epoch = user.epoch;
      continue;
    }

    if (desired == user.server) {
      // Stationary — but the owning server may have crashed without a
      // checkpoint, in which case the session must be rebuilt cold.
      EdgeServer& home = server(user.server);
      if (home.sessions.find(user.id) == home.sessions.end()) {
        home.sessions[user.id] = ServerSession{};
        ++home.report.cold_restarts;
        if (registry != nullptr) {
          registry
              ->counter("fleet_cold_restarts_total",
                        "Sessions rebuilt at the prior after lost state")
              .add(1);
        }
      }
      user.prev_epoch = user.epoch;
      continue;
    }

    // Migration: mobility redraws (epoch changed) or membership
    // rebalancing moved the user's rendezvous winner.
    const bool moved_by_rebalance = user.epoch == user.prev_epoch;
    if (moved_by_rebalance) {
      ++report.placement_moves;
      if (registry != nullptr) {
        registry
            ->counter("fleet_placement_moves_total",
                      "Users re-placed by server join/leave rebalancing")
            .add(1);
      }
    }

    EdgeServer& dest = server(desired);
    auto source_it = servers_.find(user.server);
    ServerSession* source_session = nullptr;
    if (source_it != servers_.end()) {
      auto sit = source_it->second->sessions.find(user.id);
      if (sit != source_it->second->sessions.end()) {
        source_session = &sit->second;
      }
    }

    bool installed = false;
    if (source_session != nullptr) {
      SessionState state;
      state.user = user.id;
      state.gamma = source_session->estimator.state();
      state.nig = source_session->nig.state();
      state.battery_fraction = user.battery.fraction();
      state.last_assignment = source_session->last_assignment;
      state.slots_served = source_session->slots_served;

      SessionState received;
      const HandoffOutcome outcome = handoff_.transfer(
          faults, state, static_cast<std::uint64_t>(global_slot), received);
      if (registry != nullptr) {
        registry
            ->counter("fleet_handoff_total",
                      "Session-state transfers attempted between servers")
            .add(1);
        if (outcome.attempts > 1) {
          registry
              ->counter("fleet_handoff_retries_total",
                        "Extra delivery attempts across all handoffs")
              .add(outcome.attempts - 1);
        }
      }
      if (outcome.transferred) {
        ServerSession session;
        session.estimator =
            bayes::GammaEstimator::from_state(received.gamma);
        session.nig = bayes::NigGammaEstimator::from_state(received.nig);
        session.last_assignment = received.last_assignment;
        session.slots_served = received.slots_served;
        dest.sessions[user.id] = std::move(session);
        installed = true;
        ++report.handoffs;
        ++dest.report.handoffs_in;
        if (source_it != servers_.end()) {
          ++source_it->second->report.handoffs_out;
        }
      } else {
        ++report.handoff_failures;
        if (registry != nullptr) {
          registry
              ->counter("fleet_handoff_failures_total",
                        "Handoffs that burned the retry budget (cold restart)")
              .add(1);
        }
      }
      source_it->second->sessions.erase(user.id);
    }

    if (!installed) {
      dest.sessions[user.id] = ServerSession{};
      ++dest.report.cold_restarts;
      if (registry != nullptr) {
        registry
            ->counter("fleet_cold_restarts_total",
                      "Sessions rebuilt at the prior after lost state")
            .add(1);
      }
    }
    user.server = desired;
    user.prev_epoch = user.epoch;
  }

  // Retire servers that left the placement once their users are gone.
  for (auto it = servers_.begin(); it != servers_.end();) {
    if (it->second->leaving && it->second->sessions.empty()) {
      departed_[it->first] = it->second->report;
      it = servers_.erase(it);
    } else {
      ++it;
    }
  }
  (void)rebalancing;
  (void)slot;
}

void Federation::serve_slot(int slot, FederationReport& report,
                            double& anxiety_accumulator) {
  const int global_slot = config_.start_slot + slot;
  const survey::AnxietyModel& anxiety = context_.anxiety_model();
  const fault::FaultInjector* faults = context_.faults;

  std::vector<EdgeServer*> active;
  active.reserve(servers_.size());
  for (auto& [id, edge] : servers_) {
    if (!edge->leaving) active.push_back(edge.get());
  }

  // The per-server body.  Each worker touches only its own server and that
  // server's users (placement partitions users across servers), plus
  // commutative registry counter adds inside the scheduler — so any thread
  // count produces the bit-identical report.  The scheduling context is
  // stripped of the fault injector and event sink: fleet faults live at the
  // federation layer (crash, handoff), not inside the solver, and an event
  // trace appended from racing workers would be order-nondeterministic.
  const auto serve_one = [&](std::size_t index) {
    EdgeServer& edge = *active[index];
    edge.slot_energy_mwh = 0.0;
    edge.slot_objective = 0.0;
    edge.slot_anxiety = 0.0;
    edge.slot_anxiety_samples = 0;
    edge.slot_selected = 0;
    edge.slot_scheduled = 0;
    edge.slot_capacity_violations = 0;
    ++edge.slots_run;
    ++edge.report.slots_run;
    if (edge.sessions.empty()) return;

    core::SlotProblem problem;
    problem.compute_capacity = config_.compute_capacity;
    problem.storage_capacity = config_.storage_capacity_mb;
    problem.lambda = config_.lambda;
    std::vector<std::uint64_t> order;
    std::vector<media::Video> videos;
    std::vector<int> hint;
    order.reserve(edge.sessions.size());
    videos.reserve(edge.sessions.size());
    hint.reserve(edge.sessions.size());

    for (auto& [user_id, session] : edge.sessions) {
      FleetUser& user = users_[static_cast<std::size_t>(user_id)];
      // Content is a pure function of (seed, user, slot) — identical no
      // matter which server happens to own the user.
      common::Rng content_seed_rng =
          derived_rng(config_.seed, user_id,
                      static_cast<std::uint64_t>(global_slot));
      media::ContentGenerator generator(content_seed_rng());
      media::Video video = generator.generate(
          common::VideoId{static_cast<std::uint32_t>(
              user_id * 100000u + static_cast<std::uint64_t>(global_slot))},
          user.genre, config_.chunks_per_slot, user.bitrate_mbps,
          common::Seconds{config_.chunk_seconds});

      core::DeviceSlotInput input;
      input.id = common::DeviceId{static_cast<std::uint32_t>(user_id)};
      input.power_rates_mw.reserve(video.chunks.size());
      input.chunk_durations_s.reserve(video.chunks.size());
      for (const media::VideoChunk& chunk : video.chunks) {
        input.power_rates_mw.push_back(
            edge.estimator.rate(user.spec, chunk).value);
        input.chunk_durations_s.push_back(chunk.duration.value);
      }
      input.initial_energy_mwh = user.battery.remaining().value;
      input.battery_capacity_mwh = user.battery.capacity().value;
      input.gamma = session.estimator.expected_gamma();
      input.compute_cost = edge.resources.compute_cost(user.spec, video);
      input.storage_cost = edge.resources.storage_cost(video);

      hint.push_back(session.last_assignment != 0 ? 1 : 0);
      order.push_back(user_id);
      problem.devices.push_back(std::move(input));
      videos.push_back(std::move(video));
    }
    edge.slot_scheduled = static_cast<long>(problem.devices.size());

    // Seed the warm hint: the sessions' previous assignments, in this
    // slot's problem order.  After a handoff or failover the carried
    // last_assignment bits land index-correct here, so an arriving user
    // does not cold-start the destination's ILP stream.  The salted
    // fingerprint never exact-hits; the cache greedy-repairs the hint into
    // the B&B incumbent.
    if (config_.warm_start) {
      solver::IlpSolution hint_solution;
      hint_solution.status = solver::IlpStatus::kFeasible;
      hint_solution.x = hint;
      edge.cache.store(edge.info.id, kHintFingerprint, hint_solution);
    }

    core::RunContext scheduling_context =
        context_.with_fault_injector(nullptr)
            .with_trace(nullptr)
            .with_slot(global_slot);
    if (config_.warm_start) {
      scheduling_context =
          scheduling_context.with_solve_cache(&edge.cache, edge.info.id);
    }
    const core::Schedule schedule =
        scheduler_.schedule(problem, scheduling_context);
    edge.slot_objective = schedule.objective;
    if (schedule.compute_used > problem.compute_capacity + 1e-9 ||
        schedule.storage_used > problem.storage_capacity + 1e-9) {
      ++edge.slot_capacity_violations;
    }

    for (std::size_t i = 0; i < order.size(); ++i) {
      FleetUser& user = users_[static_cast<std::size_t>(order[i])];
      ServerSession& session = edge.sessions[order[i]];
      const media::Video& video = videos[i];
      const bool selected = schedule.x[i] != 0;
      const double true_gamma = edge.engine.video_gamma(user.spec, video);

      session.last_assignment = selected ? 1 : 0;
      if (selected) {
        ++session.slots_served;
        ++edge.slot_selected;
      }

      for (const media::VideoChunk& chunk : video.chunks) {
        const double rate = edge.estimator.rate(user.spec, chunk).value;
        const double psi = selected ? (1.0 - true_gamma) * rate : rate;
        edge.slot_anxiety += anxiety(user.battery.fraction());
        ++edge.slot_anxiety_samples;
        const common::MilliwattHours drawn =
            user.battery.drain(common::Milliwatts{psi}, chunk.duration);
        edge.slot_energy_mwh += drawn.value;
        user.watch_minutes += chunk.duration.value / 60.0;
        if (user.battery.empty()) {
          user.watching = false;
          break;
        }
        if (config_.enable_giveup && user.giveup_percent > 0 &&
            user.battery.percent() <=
                static_cast<double>(user.giveup_percent)) {
          user.watching = false;
          break;
        }
      }

      // End-of-slot gamma observation; noise keyed on (user, global slot),
      // server-independent, through the same lossy Bayes-report path the
      // emulator models (gated on that site being configured).
      if (selected) {
        common::Rng noise_rng =
            derived_rng(config_.seed ^ kBayesNoiseSalt, order[i],
                        static_cast<std::uint64_t>(global_slot));
        double observed =
            true_gamma + noise_rng.normal(0.0, config_.observation_noise);
        bool delivered = true;
        if (faults != nullptr &&
            faults->site_enabled(fault::FaultSite::kBayesReport)) {
          const fault::FaultDecision decision =
              faults->decide(fault::FaultSite::kBayesReport, order[i],
                             static_cast<std::uint64_t>(global_slot));
          if (decision.dropped()) delivered = false;
          if (decision.corrupted()) observed += decision.corrupt_factor;
        }
        if (delivered) {
          session.estimator.observe(observed);
          session.nig.observe(observed);
        }
      }
    }
  };

  if (config_.threads == 1 || active.size() <= 1) {
    for (std::size_t i = 0; i < active.size(); ++i) serve_one(i);
  } else {
    common::ThreadPool pool(config_.threads);
    common::parallel_for(pool, active.size(), serve_one);
  }

  // Sequential epilogue in sorted-server order: double summation order is
  // fixed, so totals are bit-identical at any thread count.
  for (EdgeServer* edge : active) {
    edge->report.scheduled_users += edge->slot_scheduled;
    edge->report.selected += edge->slot_selected;
    edge->report.energy_mwh += edge->slot_energy_mwh;
    edge->report.objective += edge->slot_objective;
    report.total_energy_mwh += edge->slot_energy_mwh;
    report.total_objective += edge->slot_objective;
    report.total_selected += edge->slot_selected;
    report.capacity_violations += edge->slot_capacity_violations;
    anxiety_accumulator += edge->slot_anxiety;
    report.anxiety_samples += edge->slot_anxiety_samples;
  }
}

void Federation::take_checkpoints(int slot) {
  if (config_.checkpoint_interval <= 0) return;
  if ((slot + 1) % config_.checkpoint_interval != 0) return;
  const int global_slot = config_.start_slot + slot;
  for (auto& [id, edge] : servers_) {
    if (edge->leaving) continue;
    Checkpoint checkpoint;
    checkpoint.server = id;
    checkpoint.slot = global_slot;
    checkpoint.slots_run = edge->slots_run;
    checkpoint.sessions.reserve(edge->sessions.size());
    for (const auto& [user_id, session] : edge->sessions) {
      SessionState state;
      state.user = user_id;
      state.gamma = session.estimator.state();
      state.nig = session.nig.state();
      state.battery_fraction =
          users_[static_cast<std::size_t>(user_id)].battery.fraction();
      state.last_assignment = session.last_assignment;
      state.slots_served = session.slots_served;
      checkpoint.sessions.push_back(std::move(state));
    }
    checkpoint.cache_entries = edge->cache.export_entries();
    checkpoints_.put(id, checkpoint.encode());
  }
  if (context_.metrics != nullptr) {
    context_.metrics
        ->gauge("fleet_checkpoint_bytes",
                "Total bytes of replicated server checkpoints")
        .set(static_cast<double>(checkpoints_.stored_bytes()));
  }
}

FederationReport Federation::run() {
  setup_servers();
  setup_users();

  FederationReport report;
  report.users = static_cast<long>(users_.size());
  obs::MetricsRegistry* registry = context_.metrics;

  double anxiety_accumulator = 0.0;
  for (int slot = 0; slot < config_.slots; ++slot) {
    const int global_slot = config_.start_slot + slot;

    // (1) Membership: scheduled joins/leaves fire at the slot start, each
    // rebalancing only the users whose rendezvous winner changed.
    bool rebalancing = false;
    for (const MembershipEvent& event : config_.membership) {
      if (event.slot != slot) continue;
      rebalancing = true;
      if (event.join) {
        placement_.add_server({event.server, event.weight});
        if (servers_.find(event.server) == servers_.end()) {
          auto edge = std::make_unique<EdgeServer>();
          edge->info = {event.server, event.weight};
          edge->report.id = event.server;
          // A re-joining server continues its old report (and starts with
          // empty state: its memory did not survive the absence).
          const auto old = departed_.find(event.server);
          if (old != departed_.end()) {
            edge->report = old->second;
            departed_.erase(old);
          }
          servers_[event.server] = std::move(edge);
        } else {
          servers_[event.server]->leaving = false;
          servers_[event.server]->info.capacity_weight = event.weight;
        }
      } else {
        placement_.remove_server(event.server);
        const auto it = servers_.find(event.server);
        if (it != servers_.end()) it->second->leaving = true;
      }
    }

    // (2) Crashes and checkpoint failover.
    handle_crashes(slot, report);

    // (3) Mobility: each active user may roam, redrawing their placement.
    if (config_.mobility_rate > 0.0) {
      for (FleetUser& user : users_) {
        if (!user.watching || user.battery.empty()) continue;
        common::Rng mobility_rng =
            derived_rng(config_.seed ^ kMobilitySalt, user.id,
                        static_cast<std::uint64_t>(global_slot));
        if (mobility_rng.bernoulli(config_.mobility_rate)) ++user.epoch;
      }
    }

    // (4) Reconcile: desired vs. actual placement; moved users hand off.
    reconcile_placement(slot, rebalancing, report);

    // (5) Serve the slot on every server (parallel across servers).
    serve_slot(slot, report, anxiety_accumulator);
    ++report.slots_run;
    if (registry != nullptr) {
      registry->counter("fleet_slots_total", "Federation slots executed")
          .add(1);
    }

    // (6) Replicate end-of-interval checkpoints.
    take_checkpoints(slot);

    bool any_active = false;
    for (const FleetUser& user : users_) {
      if (user.watching && !user.battery.empty()) {
        any_active = true;
        break;
      }
    }
    if (!any_active) break;
  }

  report.mean_anxiety =
      report.anxiety_samples > 0
          ? anxiety_accumulator / static_cast<double>(report.anxiety_samples)
          : 0.0;

  // Final per-server rows: live servers and departed ones, sorted by id.
  std::map<std::uint64_t, ServerReport> rows = departed_;
  for (const auto& [id, edge] : servers_) rows[id] = edge->report;
  report.servers.reserve(rows.size());
  for (auto& [id, row] : rows) report.servers.push_back(row);

  // State digest: every user's end state plus every surviving session's
  // posterior, as bit patterns.  Two runs agree on this iff they agree on
  // all of it.
  wire::Writer digest;
  for (const FleetUser& user : users_) {
    digest.u64(user.id);
    digest.u8(user.watching ? 1 : 0);
    digest.f64(user.battery.fraction());
    digest.f64(user.watch_minutes);
  }
  for (const auto& [id, edge] : servers_) {
    digest.u64(id);
    for (const auto& [user_id, session] : edge->sessions) {
      digest.u64(user_id);
      const bayes::GammaEstimator::State gamma = session.estimator.state();
      digest.f64(gamma.mean);
      digest.f64(gamma.variance);
      digest.u64(gamma.observations);
      const bayes::NigGammaEstimator::State nig = session.nig.state();
      digest.f64(nig.mean);
      digest.f64(nig.kappa);
      digest.f64(nig.alpha);
      digest.f64(nig.beta);
      digest.u8(session.last_assignment);
      digest.u32(session.slots_served);
    }
  }
  report.state_digest =
      wire::checksum(digest.bytes(), digest.bytes().size());
  return report;
}

}  // namespace lpvs::fleet

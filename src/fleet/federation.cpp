#include "lpvs/fleet/federation.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <cmath>
#include <utility>

#include "lpvs/battery/battery.hpp"
#include "lpvs/bayes/gamma_estimator.hpp"
#include "lpvs/bayes/nig_estimator.hpp"
#include "lpvs/common/thread_pool.hpp"
#include "lpvs/display/display.hpp"
#include "lpvs/fleet/wire.hpp"
#include "lpvs/media/video.hpp"
#include "lpvs/survey/population.hpp"
#include "lpvs/transform/transform.hpp"

namespace lpvs::fleet {
namespace {

/// Same derived-stream construction as the emulator: all per-entity-per-slot
/// randomness is a pure function of (seed, entity, slot), so federation
/// replays are bit-identical regardless of thread count or server layout.
common::Rng derived_rng(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  return common::Rng(seed ^ (a + 1) * 0x9E3779B97F4A7C15ULL ^
                     (b + 1) * 0xC2B2AE3D27D4EB4FULL);
}

/// Seed salts for the federation's own derived streams (distinct from the
/// emulator's 0xF00D/0x5717C4/0xBA1E family except the Bayes-noise salt,
/// which is shared deliberately: a user observed by any server sees the
/// same measurement noise).
constexpr std::uint64_t kMobilitySalt = 0x0F1EE7u;
constexpr std::uint64_t kDeviceSalt = 0xF1u;
constexpr std::uint64_t kBayesNoiseSalt = 0xBA1Eu;
constexpr std::uint64_t kArrivalSalt = 0xD1A17Eu;  ///< diurnal arrivals

/// Knuth's Poisson sampler — exact and cheap for the per-slot arrival
/// means a diurnal curve produces (single digits to low tens).
int poisson_draw(common::Rng& rng, double mean) {
  if (mean <= 0.0) return 0;
  const double limit = std::exp(-mean);
  int count = -1;
  double p = 1.0;
  do {
    ++count;
    p *= rng.uniform();
  } while (p > limit);
  return count;
}

/// Exponential-ish bounds for the slot serve-phase wall time: sub-100us
/// warm slots through second-scale stalls.
const std::vector<double>& serve_ms_buckets() {
  static const std::vector<double> bounds = {
      0.05, 0.1, 0.25, 0.5, 1.0,   2.5,   5.0,   10.0,
      25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0};
  return bounds;
}

/// Fingerprint under which a server stores the handoff-derived warm hint.
/// It matches no real problem fingerprint (collisions are the cache's
/// accepted 2^-64 risk), so the hint never replays as an exact hit — it can
/// only be greedy-repaired into a warm incumbent, index-aligned with the
/// current slot's session order.
constexpr std::uint64_t kHintFingerprint = 0xF1EE7F00DB17E5ULL;

/// Placement key for a user: the mobility epoch in the high bits redraws
/// the rendezvous permutation for this user only, leaving everyone else's
/// assignment untouched.
std::uint64_t place_key(std::uint64_t user, std::uint32_t epoch) {
  return (static_cast<std::uint64_t>(epoch) << 32) ^ user;
}

}  // namespace

/// One emulated viewer: the device-side ground truth (battery, watching
/// state, content identity).  Server-side learned state lives in the
/// sessions; a crash can lose the learning, never the device.
struct Federation::FleetUser {
  std::uint64_t id = 0;
  media::Genre genre = media::Genre::kIrlChat;
  double bitrate_mbps = 3.0;
  display::DisplaySpec spec;
  battery::Battery battery;
  double start_fraction = 0.5;
  int giveup_percent = 10;
  int end_slot = 0;  ///< trace slot after which the user stops watching
  bool watching = true;
  double watch_minutes = 0.0;
  std::uint32_t epoch = 0;       ///< mobility epoch (placement key salt)
  std::uint32_t prev_epoch = 0;  ///< epoch at the previous reconcile
  bool placed = false;
  std::uint64_t server = 0;
  /// A session existed at some point; re-creating one afterwards is a cold
  /// restart (learned state lost), unlike the initial attach.
  bool established = false;
};

/// Per-session learned state held by the owning server (what handoff moves
/// and checkpoints snapshot).
struct ServerSession {
  bayes::GammaEstimator estimator;
  bayes::NigGammaEstimator nig;
  std::uint8_t last_assignment = 0;
  std::uint32_t slots_served = 0;
};

/// One emulated edge server.  Owns its sessions, its solve cache (one
/// warm-start stream keyed by the logical server id), and private copies of
/// the pricing models so the parallel serve phase shares nothing mutable.
struct Federation::EdgeServer {
  ServerInfo info;
  std::map<std::uint64_t, ServerSession> sessions;  // user-id order
  solver::SolveCache cache;
  std::uint64_t slots_run = 0;
  ServerReport report;
  transform::TransformEngine engine;
  media::PowerRateEstimator estimator;
  transform::ResourceModel resources;
  bool leaving = false;

  /// What the parallel serve phase produced this slot; folded into the
  /// totals sequentially (sorted server order) after the barrier so double
  /// summation order is thread-count independent.
  double slot_energy_mwh = 0.0;
  double slot_objective = 0.0;
  double slot_anxiety = 0.0;
  long slot_anxiety_samples = 0;
  long slot_selected = 0;
  long slot_scheduled = 0;
  long slot_capacity_violations = 0;
  /// 1 when this slot's schedule came off a ladder rung below kFullSolve —
  /// the degraded-share signal the autoscaler reads (never the registry).
  long slot_degraded = 0;
};

Federation::Federation(FederationConfig config, const trace::Trace& trace,
                       const core::Scheduler& scheduler,
                       core::RunContext context)
    : config_(std::move(config)),
      trace_(trace),
      scheduler_(scheduler),
      context_(context),
      placement_(std::vector<ServerInfo>{}) {
  assert(config_.servers > 0);
  assert(config_.slots > 0);
  assert(config_.chunks_per_slot > 0);
  assert(context_.anxiety != nullptr);
}

Federation::~Federation() = default;

Federation::EdgeServer& Federation::server(std::uint64_t id) {
  auto it = servers_.find(id);
  assert(it != servers_.end());
  return *it->second;
}

void Federation::setup_servers() {
  std::vector<ServerInfo> members;
  members.reserve(static_cast<std::size_t>(config_.servers));
  for (int s = 0; s < config_.servers; ++s) {
    ServerInfo info;
    info.id = static_cast<std::uint64_t>(s);
    if (static_cast<std::size_t>(s) < config_.server_weights.size()) {
      info.capacity_weight = config_.server_weights[static_cast<std::size_t>(s)];
    }
    members.push_back(info);
    auto edge = std::make_unique<EdgeServer>();
    edge->info = info;
    edge->report.id = info.id;
    servers_[info.id] = std::move(edge);
  }
  placement_ = Placement(members);
}

void Federation::setup_users() {
  // Users come from the trace: sessions live at the start slot with enough
  // viewers, most-watched first, one user per session round-robin until the
  // cap — so the audience mirrors the trace's popularity skew.
  std::vector<const trace::Session*> live =
      trace_.live_sessions(config_.start_slot);
  std::erase_if(live, [&](const trace::Session* s) {
    return s->viewers_at(config_.start_slot) < config_.min_viewers;
  });
  if (live.empty()) live = trace_.live_sessions(config_.start_slot);
  std::sort(live.begin(), live.end(),
            [&](const trace::Session* a, const trace::Session* b) {
              const int va = a->viewers_at(config_.start_slot);
              const int vb = b->viewers_at(config_.start_slot);
              if (va != vb) return va > vb;
              return a->id.value < b->id.value;
            });

  const int user_count = live.empty() ? 0 : config_.users;
  users_.clear();
  users_.reserve(static_cast<std::size_t>(user_count));

  // Give-up thresholds from the survey answer model, exactly like the
  // single-server emulator.
  common::Rng setup_rng = derived_rng(config_.seed, 0xDEu, 0xADu);
  const survey::SyntheticPopulation population;
  const std::vector<survey::Participant> participants =
      population.generate(user_count, setup_rng);

  const auto& catalog = display::DeviceCatalog::standard();
  for (int n = 0; n < user_count; ++n) {
    const trace::Session* session = live[static_cast<std::size_t>(n) %
                                         live.size()];
    const trace::Channel& channel = trace_.channel(session->channel);

    common::Rng device_rng =
        derived_rng(config_.seed, kDeviceSalt, static_cast<std::uint64_t>(n));
    FleetUser user;
    user.id = static_cast<std::uint64_t>(n);
    user.genre = channel.genre;
    user.bitrate_mbps = channel.bitrate_mbps;
    const auto& profile = catalog.sample(device_rng);
    user.spec = profile.spec;
    user.start_fraction = device_rng.truncated_normal(
        config_.initial_battery_mean, config_.initial_battery_std, 0.05, 1.0);
    user.battery = battery::Battery(
        common::MilliwattHours{profile.battery_mwh * config_.effective_capacity_scale},
        user.start_fraction);
    user.giveup_percent =
        participants[static_cast<std::size_t>(n)].giveup_level;
    user.end_slot = session->end_slot();
    users_.push_back(std::move(user));
  }

  // Channel templates the diurnal arrival process clones from: one per
  // distinct live session, in the same popularity order as the users.
  session_pool_.clear();
  session_pool_.reserve(live.size());
  for (const trace::Session* session : live) {
    const trace::Channel& channel = trace_.channel(session->channel);
    session_pool_.push_back({channel.genre, channel.bitrate_mbps});
  }
}

void Federation::spawn_arrivals(int slot, FederationReport& report) {
  const DiurnalLoadConfig& diurnal = config_.diurnal;
  if (!diurnal.enabled || session_pool_.empty()) return;
  const int global_slot = config_.start_slot + slot;

  // Sinusoidal day curve: weight 1 at peak_phase through the period,
  // 0 half a period away.
  const double period =
      static_cast<double>(std::max(1, diurnal.period_slots));
  const double phase =
      static_cast<double>(slot) / period - diurnal.peak_phase;
  const double weight =
      0.5 * (1.0 + std::cos(2.0 * 3.14159265358979323846 * phase));
  const double mean =
      diurnal.base_arrivals_per_slot +
      (diurnal.peak_arrivals_per_slot - diurnal.base_arrivals_per_slot) *
          weight;

  common::Rng arrival_rng = derived_rng(
      config_.seed ^ kArrivalSalt, static_cast<std::uint64_t>(slot), 0);
  const int count = poisson_draw(arrival_rng, mean);
  if (count <= 0) return;

  const auto& catalog = display::DeviceCatalog::standard();
  const survey::SyntheticPopulation population;
  long spawned = 0;
  for (int k = 0; k < count; ++k) {
    if (diurnal.max_users > 0 &&
        users_.size() >= static_cast<std::size_t>(diurnal.max_users)) {
      break;
    }
    const auto id = static_cast<std::uint64_t>(users_.size());
    const SessionSeed& channel = session_pool_[id % session_pool_.size()];
    // Same per-user derived stream as the start-slot audience: ids are
    // unique, so arrivals never collide with an existing user's draws.
    common::Rng device_rng = derived_rng(config_.seed, kDeviceSalt, id);

    FleetUser user;
    user.id = id;
    user.genre = channel.genre;
    user.bitrate_mbps = channel.bitrate_mbps;
    const auto& profile = catalog.sample(device_rng);
    user.spec = profile.spec;
    user.start_fraction = device_rng.truncated_normal(
        config_.initial_battery_mean, config_.initial_battery_std, 0.05,
        1.0);
    user.battery = battery::Battery(
        common::MilliwattHours{profile.battery_mwh *
                               config_.effective_capacity_scale},
        user.start_fraction);
    common::Rng survey_rng =
        derived_rng(config_.seed ^ kArrivalSalt, id, 1);
    const std::vector<survey::Participant> participants =
        population.generate(1, survey_rng);
    user.giveup_percent = participants[0].giveup_level;
    user.end_slot =
        global_slot + static_cast<int>(device_rng.uniform_int(
                          diurnal.min_lifetime_slots,
                          diurnal.max_lifetime_slots));
    users_.push_back(std::move(user));
    ++spawned;
  }
  report.arrivals += spawned;
  if (context_.metrics != nullptr && spawned > 0) {
    context_.metrics
        ->counter("lpvs_fleet_arrivals_total",
                  "Diurnal mid-run viewer arrivals")
        .add(spawned);
  }
}

void Federation::handle_crashes(int slot, FederationReport& report) {
  const fault::FaultInjector* faults = context_.faults;
  if (faults == nullptr ||
      !faults->site_enabled(fault::FaultSite::kServerCrash)) {
    return;
  }
  obs::MetricsRegistry* registry = context_.metrics;
  const int global_slot = config_.start_slot + slot;

  for (auto& [id, edge] : servers_) {
    if (edge->leaving) continue;
    if (!faults->should_drop(fault::FaultSite::kServerCrash, id,
                             static_cast<std::uint64_t>(global_slot))) {
      continue;
    }
    // The server's memory is gone: sessions, solve cache, slot counter.
    edge->sessions.clear();
    edge->cache.clear();
    edge->slots_run = 0;
    ++edge->report.failovers;
    ++report.failovers;
    if (registry != nullptr) {
      registry
          ->counter("fleet_failover_total",
                    "Server crashes recovered by checkpoint failover")
          .add(1);
    }
    if (context_.events != nullptr) {
      context_.events->record(
          {obs::EventKind::kFaultInjected, global_slot, /*device=*/-1,
           {{"site", static_cast<double>(
                         static_cast<int>(fault::FaultSite::kServerCrash))},
            {"server", static_cast<double>(id)}}});
    }

    // Failover: the peer holding the replicated checkpoint restores the
    // crashed server's logical cluster through the full decode path.
    common::StatusOr<Checkpoint> restored = checkpoints_.restore(id);
    if (!restored.ok()) continue;  // nothing replicated: full cold restart
    const Checkpoint& checkpoint = restored.value();
    const double staleness =
        static_cast<double>(global_slot - 1 - checkpoint.slot);
    obs::Histogram* staleness_hist = nullptr;
    if (registry != nullptr) {
      staleness_hist = &registry->histogram(
          "fleet_posterior_staleness_slots",
          obs::MetricsRegistry::linear_buckets(0.0, 1.0, 17),
          "Slots of posterior learning lost per restored session");
    }
    for (const SessionState& state : checkpoint.sessions) {
      ServerSession session;
      session.estimator = bayes::GammaEstimator::from_state(state.gamma);
      session.nig = bayes::NigGammaEstimator::from_state(state.nig);
      session.last_assignment = state.last_assignment;
      session.slots_served = state.slots_served;
      edge->sessions[state.user] = std::move(session);
      if (staleness_hist != nullptr) staleness_hist->observe(staleness);
    }
    edge->cache.import_entries(checkpoint.cache_entries);
    edge->slots_run = checkpoint.slots_run;
  }
}

void Federation::reconcile_placement(int slot, bool rebalancing,
                                     FederationReport& report) {
  obs::MetricsRegistry* registry = context_.metrics;
  const int global_slot = config_.start_slot + slot;
  const fault::FaultInjector* faults = context_.faults;

  for (FleetUser& user : users_) {
    // Trace lifetime: the channel's session ended, the viewer leaves.
    if (user.watching && global_slot >= user.end_slot) user.watching = false;
    const bool active = user.watching && !user.battery.empty();

    if (!active) {
      if (user.placed) {
        auto it = servers_.find(user.server);
        if (it != servers_.end()) it->second->sessions.erase(user.id);
        user.placed = false;
        // Orderly close: trace end, battery empty, or give-up.
        ++report.sessions_ended;
        if (registry != nullptr) {
          registry
              ->counter("lpvs_fleet_sessions_ended_total",
                        "Viewer sessions closed in order")
              .add(1);
        }
      }
      user.prev_epoch = user.epoch;
      continue;
    }

    if (placement_.servers().empty()) {
      user.placed = false;
      user.prev_epoch = user.epoch;
      continue;
    }
    const std::uint64_t desired = placement_.place(place_key(user.id,
                                                             user.epoch));

    if (!user.placed) {
      // First attach (or re-attach after inactivity): cold session, no
      // state to move.
      user.server = desired;
      user.placed = true;
      ++report.sessions_started;
      if (registry != nullptr) {
        registry
            ->counter("lpvs_fleet_sessions_started_total",
                      "Viewer session attaches (initial and re-attach)")
            .add(1);
      }
      EdgeServer& dest = server(desired);
      if (dest.sessions.find(user.id) == dest.sessions.end()) {
        dest.sessions[user.id] = ServerSession{};
        if (user.established) {
          ++dest.report.cold_restarts;
          if (registry != nullptr) {
            registry
                ->counter("fleet_cold_restarts_total",
                          "Sessions rebuilt at the prior after lost state")
                .add(1);
          }
        }
        user.established = true;
      }
      user.prev_epoch = user.epoch;
      continue;
    }

    if (desired == user.server) {
      // Stationary — but the owning server may have crashed without a
      // checkpoint, in which case the session must be rebuilt cold.
      EdgeServer& home = server(user.server);
      if (home.sessions.find(user.id) == home.sessions.end()) {
        home.sessions[user.id] = ServerSession{};
        ++home.report.cold_restarts;
        if (registry != nullptr) {
          registry
              ->counter("fleet_cold_restarts_total",
                        "Sessions rebuilt at the prior after lost state")
              .add(1);
        }
      }
      user.prev_epoch = user.epoch;
      continue;
    }

    // Migration: mobility redraws (epoch changed) or membership
    // rebalancing moved the user's rendezvous winner.
    const bool moved_by_rebalance = user.epoch == user.prev_epoch;
    if (moved_by_rebalance) {
      ++report.placement_moves;
      if (registry != nullptr) {
        registry
            ->counter("fleet_placement_moves_total",
                      "Users re-placed by server join/leave rebalancing")
            .add(1);
      }
    }

    EdgeServer& dest = server(desired);
    auto source_it = servers_.find(user.server);
    ServerSession* source_session = nullptr;
    if (source_it != servers_.end()) {
      auto sit = source_it->second->sessions.find(user.id);
      if (sit != source_it->second->sessions.end()) {
        source_session = &sit->second;
      }
    }

    bool installed = false;
    if (source_session != nullptr) {
      SessionState state;
      state.user = user.id;
      state.gamma = source_session->estimator.state();
      state.nig = source_session->nig.state();
      state.battery_fraction = user.battery.fraction();
      state.last_assignment = source_session->last_assignment;
      state.slots_served = source_session->slots_served;

      SessionState received;
      const HandoffOutcome outcome = handoff_.transfer(
          faults, state, static_cast<std::uint64_t>(global_slot), received);
      if (registry != nullptr) {
        registry
            ->counter("fleet_handoff_total",
                      "Session-state transfers attempted between servers")
            .add(1);
        if (outcome.attempts > 1) {
          registry
              ->counter("fleet_handoff_retries_total",
                        "Extra delivery attempts across all handoffs")
              .add(outcome.attempts - 1);
        }
      }
      if (outcome.transferred) {
        ServerSession session;
        session.estimator =
            bayes::GammaEstimator::from_state(received.gamma);
        session.nig = bayes::NigGammaEstimator::from_state(received.nig);
        session.last_assignment = received.last_assignment;
        session.slots_served = received.slots_served;
        dest.sessions[user.id] = std::move(session);
        installed = true;
        ++report.handoffs;
        ++dest.report.handoffs_in;
        if (source_it != servers_.end()) {
          ++source_it->second->report.handoffs_out;
        }
      } else {
        ++report.handoff_failures;
        if (registry != nullptr) {
          registry
              ->counter("fleet_handoff_failures_total",
                        "Handoffs that burned the retry budget (cold restart)")
              .add(1);
        }
      }
      source_it->second->sessions.erase(user.id);
    }

    if (!installed) {
      dest.sessions[user.id] = ServerSession{};
      ++dest.report.cold_restarts;
      if (registry != nullptr) {
        registry
            ->counter("fleet_cold_restarts_total",
                      "Sessions rebuilt at the prior after lost state")
            .add(1);
      }
    }
    user.server = desired;
    user.prev_epoch = user.epoch;
  }

  // Loss audit: every viewer who is still watching with charge left must
  // hold a serving session somewhere after reconciliation — crash recovery,
  // handoff fallback, and rebalancing all funnel through the branches
  // above, so anyone left stranded here is a genuinely lost session (the
  // soak's zero-lost-sessions SLO counts exactly this).
  for (const FleetUser& user : users_) {
    if (!user.watching || user.battery.empty()) continue;
    bool has_session = false;
    if (user.placed) {
      const auto it = servers_.find(user.server);
      has_session = it != servers_.end() &&
                    it->second->sessions.count(user.id) != 0;
    }
    if (!has_session) {
      ++report.sessions_lost;
      if (registry != nullptr) {
        registry
            ->counter("lpvs_fleet_sessions_lost_total",
                      "Active viewers stranded without a serving session")
            .add(1);
      }
    }
  }

  // Retire servers that left the placement once their users are gone.
  for (auto it = servers_.begin(); it != servers_.end();) {
    if (it->second->leaving && it->second->sessions.empty()) {
      departed_[it->first] = it->second->report;
      it = servers_.erase(it);
    } else {
      ++it;
    }
  }
  (void)rebalancing;
  (void)slot;
}

void Federation::serve_slot(int slot, FederationReport& report,
                            double& anxiety_accumulator) {
  const int global_slot = config_.start_slot + slot;
  const survey::AnxietyModel& anxiety = context_.anxiety_model();
  const fault::FaultInjector* faults = context_.faults;

  std::vector<EdgeServer*> active;
  active.reserve(servers_.size());
  for (auto& [id, edge] : servers_) {
    if (!edge->leaving) active.push_back(edge.get());
  }

  // The per-server body.  Each worker touches only its own server and that
  // server's users (placement partitions users across servers), plus
  // commutative registry counter adds inside the scheduler — so any thread
  // count produces the bit-identical report.  The scheduling context is
  // stripped of the fault injector and event sink: fleet faults live at the
  // federation layer (crash, handoff), not inside the solver, and an event
  // trace appended from racing workers would be order-nondeterministic.
  const auto serve_one = [&](std::size_t index) {
    EdgeServer& edge = *active[index];
    edge.slot_energy_mwh = 0.0;
    edge.slot_objective = 0.0;
    edge.slot_anxiety = 0.0;
    edge.slot_anxiety_samples = 0;
    edge.slot_selected = 0;
    edge.slot_scheduled = 0;
    edge.slot_capacity_violations = 0;
    edge.slot_degraded = 0;
    ++edge.slots_run;
    ++edge.report.slots_run;
    if (edge.sessions.empty()) return;

    core::SlotProblem problem;
    problem.compute_capacity = config_.compute_capacity;
    problem.storage_capacity = config_.storage_capacity_mb;
    problem.lambda = config_.lambda;
    std::vector<std::uint64_t> order;
    std::vector<media::Video> videos;
    std::vector<int> hint;
    order.reserve(edge.sessions.size());
    videos.reserve(edge.sessions.size());
    hint.reserve(edge.sessions.size());

    for (auto& [user_id, session] : edge.sessions) {
      FleetUser& user = users_[static_cast<std::size_t>(user_id)];
      // Content is a pure function of (seed, user, slot) — identical no
      // matter which server happens to own the user.
      common::Rng content_seed_rng =
          derived_rng(config_.seed, user_id,
                      static_cast<std::uint64_t>(global_slot));
      media::ContentGenerator generator(content_seed_rng());
      media::Video video = generator.generate(
          common::VideoId{static_cast<std::uint32_t>(
              user_id * 100000u + static_cast<std::uint64_t>(global_slot))},
          user.genre, config_.chunks_per_slot, user.bitrate_mbps,
          common::Seconds{config_.chunk_seconds});

      core::DeviceSlotInput input;
      input.id = common::DeviceId{static_cast<std::uint32_t>(user_id)};
      input.power_rates_mw.reserve(video.chunks.size());
      input.chunk_durations_s.reserve(video.chunks.size());
      for (const media::VideoChunk& chunk : video.chunks) {
        input.power_rates_mw.push_back(
            edge.estimator.rate(user.spec, chunk).value);
        input.chunk_durations_s.push_back(chunk.duration.value);
      }
      input.initial_energy_mwh = user.battery.remaining().value;
      input.battery_capacity_mwh = user.battery.capacity().value;
      input.gamma = session.estimator.expected_gamma();
      input.compute_cost = edge.resources.compute_cost(user.spec, video);
      input.storage_cost = edge.resources.storage_cost(video);

      hint.push_back(session.last_assignment != 0 ? 1 : 0);
      order.push_back(user_id);
      problem.devices.push_back(std::move(input));
      videos.push_back(std::move(video));
    }
    edge.slot_scheduled = static_cast<long>(problem.devices.size());

    // Seed the warm hint: the sessions' previous assignments, in this
    // slot's problem order.  After a handoff or failover the carried
    // last_assignment bits land index-correct here, so an arriving user
    // does not cold-start the destination's ILP stream.  The salted
    // fingerprint never exact-hits; the cache greedy-repairs the hint into
    // the B&B incumbent.
    if (config_.warm_start) {
      solver::IlpSolution hint_solution;
      hint_solution.status = solver::IlpStatus::kFeasible;
      hint_solution.x = hint;
      edge.cache.store(edge.info.id, kHintFingerprint, hint_solution);
    }

    core::RunContext scheduling_context =
        context_.with_fault_injector(nullptr)
            .with_trace(nullptr)
            .with_slot(global_slot);
    if (config_.warm_start) {
      scheduling_context =
          scheduling_context.with_solve_cache(&edge.cache, edge.info.id);
    }
    const core::Schedule schedule =
        scheduler_.schedule(problem, scheduling_context);
    edge.slot_objective = schedule.objective;
    edge.slot_degraded =
        schedule.rung != core::DegradationRung::kFullSolve ? 1 : 0;
    if (schedule.compute_used > problem.compute_capacity + 1e-9 ||
        schedule.storage_used > problem.storage_capacity + 1e-9) {
      ++edge.slot_capacity_violations;
    }

    for (std::size_t i = 0; i < order.size(); ++i) {
      FleetUser& user = users_[static_cast<std::size_t>(order[i])];
      ServerSession& session = edge.sessions[order[i]];
      const media::Video& video = videos[i];
      const bool selected = schedule.x[i] != 0;
      const double true_gamma = edge.engine.video_gamma(user.spec, video);

      session.last_assignment = selected ? 1 : 0;
      if (selected) {
        ++session.slots_served;
        ++edge.slot_selected;
      }

      for (const media::VideoChunk& chunk : video.chunks) {
        const double rate = edge.estimator.rate(user.spec, chunk).value;
        const double psi = selected ? (1.0 - true_gamma) * rate : rate;
        edge.slot_anxiety += anxiety(user.battery.fraction());
        ++edge.slot_anxiety_samples;
        const common::MilliwattHours drawn =
            user.battery.drain(common::Milliwatts{psi}, chunk.duration);
        edge.slot_energy_mwh += drawn.value;
        user.watch_minutes += chunk.duration.value / 60.0;
        if (user.battery.empty()) {
          user.watching = false;
          break;
        }
        if (config_.enable_giveup && user.giveup_percent > 0 &&
            user.battery.percent() <=
                static_cast<double>(user.giveup_percent)) {
          user.watching = false;
          break;
        }
      }

      // End-of-slot gamma observation; noise keyed on (user, global slot),
      // server-independent, through the same lossy Bayes-report path the
      // emulator models (gated on that site being configured).
      if (selected) {
        common::Rng noise_rng =
            derived_rng(config_.seed ^ kBayesNoiseSalt, order[i],
                        static_cast<std::uint64_t>(global_slot));
        double observed =
            true_gamma + noise_rng.normal(0.0, config_.observation_noise);
        bool delivered = true;
        if (faults != nullptr &&
            faults->site_enabled(fault::FaultSite::kBayesReport)) {
          const fault::FaultDecision decision =
              faults->decide(fault::FaultSite::kBayesReport, order[i],
                             static_cast<std::uint64_t>(global_slot));
          if (decision.dropped()) delivered = false;
          if (decision.corrupted()) observed += decision.corrupt_factor;
        }
        if (delivered) {
          session.estimator.observe(observed);
          session.nig.observe(observed);
        }
      }
    }
  };

  if (config_.threads == 1 || active.size() <= 1) {
    for (std::size_t i = 0; i < active.size(); ++i) serve_one(i);
  } else {
    common::ThreadPool pool(config_.threads);
    common::parallel_for(pool, active.size(), serve_one);
  }

  // Sequential epilogue in sorted-server order: double summation order is
  // fixed, so totals are bit-identical at any thread count.
  for (EdgeServer* edge : active) {
    edge->report.scheduled_users += edge->slot_scheduled;
    edge->report.selected += edge->slot_selected;
    edge->report.energy_mwh += edge->slot_energy_mwh;
    edge->report.objective += edge->slot_objective;
    report.total_energy_mwh += edge->slot_energy_mwh;
    report.total_objective += edge->slot_objective;
    report.total_selected += edge->slot_selected;
    report.capacity_violations += edge->slot_capacity_violations;
    anxiety_accumulator += edge->slot_anxiety;
    report.anxiety_samples += edge->slot_anxiety_samples;
    if (edge->slot_scheduled > 0) {
      ++report.total_solves;
      report.degraded_solves += edge->slot_degraded;
    }
  }
}

void Federation::evaluate_autoscale(int slot, FederationReport& report) {
  const AutoscaleConfig& scale = config_.autoscale;
  if (!scale.enabled || scale.interval_slots <= 0) return;
  if ((slot + 1) % scale.interval_slots != 0) return;

  long live = 0;
  long sessions = 0;
  std::uint64_t highest_live = 0;
  for (const auto& [id, edge] : servers_) {
    if (edge->leaving) continue;
    ++live;
    sessions += static_cast<long>(edge->sessions.size());
    highest_live = std::max(highest_live, id);
  }

  // Window signals since the previous evaluation.  Baselines advance even
  // when the cooldown suppresses action, so the next decision sees a fresh
  // window instead of stale accumulated history.
  const long window_solves = report.total_solves - solves_at_last_eval_;
  const long window_degraded =
      report.degraded_solves - degraded_at_last_eval_;
  const long window_failovers = report.failovers - failovers_at_last_eval_;
  solves_at_last_eval_ = report.total_solves;
  degraded_at_last_eval_ = report.degraded_solves;
  failovers_at_last_eval_ = report.failovers;

  if (slot - last_scale_slot_ < scale.cooldown_slots) return;

  const double per_server =
      live > 0 ? static_cast<double>(sessions) / static_cast<double>(live)
               : 1e18;
  const double degraded_fraction =
      window_solves > 0
          ? static_cast<double>(window_degraded) /
                static_cast<double>(window_solves)
          : 0.0;

  const bool scale_out =
      live < scale.max_servers &&
      (per_server > scale.target_sessions_per_server * scale.high_watermark ||
       degraded_fraction > scale.degraded_fraction_out);
  // Scale-in needs slack on every signal; fresh failovers mean restored
  // sessions are re-learning from stale posteriors, the worst moment to
  // also force a rebalancing wave.
  const bool scale_in =
      !scale_out && live > scale.min_servers &&
      per_server < scale.target_sessions_per_server * scale.low_watermark &&
      degraded_fraction < 0.5 * scale.degraded_fraction_out &&
      window_failovers == 0;

  obs::MetricsRegistry* registry = context_.metrics;
  if (scale_out) {
    const std::uint64_t id = next_auto_server_++;
    placement_.add_server({id, 1.0});
    auto edge = std::make_unique<EdgeServer>();
    edge->info = {id, 1.0};
    edge->report.id = id;
    const auto old = departed_.find(id);
    if (old != departed_.end()) {
      edge->report = old->second;
      departed_.erase(old);
    }
    servers_[id] = std::move(edge);
    ++report.autoscale_joins;
    last_scale_slot_ = slot;
    if (registry != nullptr) {
      registry
          ->counter("lpvs_fleet_autoscale_joins_total",
                    "Servers added by the load-derived autoscaler")
          .add(1);
    }
  } else if (scale_in) {
    // Retire the youngest server: autoscale-minted ids are highest, so
    // scale-in unwinds scale-out before touching the configured fleet.
    placement_.remove_server(highest_live);
    const auto it = servers_.find(highest_live);
    if (it != servers_.end()) it->second->leaving = true;
    ++report.autoscale_leaves;
    last_scale_slot_ = slot;
    if (registry != nullptr) {
      registry
          ->counter("lpvs_fleet_autoscale_leaves_total",
                    "Servers retired by the load-derived autoscaler")
          .add(1);
    }
  }
}

void Federation::take_checkpoints(int slot) {
  if (config_.checkpoint_interval <= 0) return;
  if ((slot + 1) % config_.checkpoint_interval != 0) return;
  const int global_slot = config_.start_slot + slot;
  for (auto& [id, edge] : servers_) {
    if (edge->leaving) continue;
    Checkpoint checkpoint;
    checkpoint.server = id;
    checkpoint.slot = global_slot;
    checkpoint.slots_run = edge->slots_run;
    checkpoint.sessions.reserve(edge->sessions.size());
    for (const auto& [user_id, session] : edge->sessions) {
      SessionState state;
      state.user = user_id;
      state.gamma = session.estimator.state();
      state.nig = session.nig.state();
      state.battery_fraction =
          users_[static_cast<std::size_t>(user_id)].battery.fraction();
      state.last_assignment = session.last_assignment;
      state.slots_served = session.slots_served;
      checkpoint.sessions.push_back(std::move(state));
    }
    checkpoint.cache_entries = edge->cache.export_entries();
    checkpoints_.put(id, checkpoint.encode());
  }
  if (context_.metrics != nullptr) {
    context_.metrics
        ->gauge("fleet_checkpoint_bytes",
                "Total bytes of replicated server checkpoints")
        .set(static_cast<double>(checkpoints_.stored_bytes()));
  }
}

FederationReport Federation::run() {
  setup_servers();
  setup_users();
  next_auto_server_ = config_.autoscale.first_server_id;

  FederationReport report;
  report.users = static_cast<long>(users_.size());
  obs::MetricsRegistry* registry = context_.metrics;

  double anxiety_accumulator = 0.0;
  for (int slot = 0; slot < config_.slots; ++slot) {
    const int global_slot = config_.start_slot + slot;

    // (0) Diurnal arrivals: new viewers join following the day curve.
    spawn_arrivals(slot, report);

    // (1) Membership: scheduled joins/leaves fire at the slot start, each
    // rebalancing only the users whose rendezvous winner changed.
    bool rebalancing = false;
    for (const MembershipEvent& event : config_.membership) {
      if (event.slot != slot) continue;
      rebalancing = true;
      if (event.join) {
        placement_.add_server({event.server, event.weight});
        if (servers_.find(event.server) == servers_.end()) {
          auto edge = std::make_unique<EdgeServer>();
          edge->info = {event.server, event.weight};
          edge->report.id = event.server;
          // A re-joining server continues its old report (and starts with
          // empty state: its memory did not survive the absence).
          const auto old = departed_.find(event.server);
          if (old != departed_.end()) {
            edge->report = old->second;
            departed_.erase(old);
          }
          servers_[event.server] = std::move(edge);
        } else {
          servers_[event.server]->leaving = false;
          servers_[event.server]->info.capacity_weight = event.weight;
        }
      } else {
        placement_.remove_server(event.server);
        const auto it = servers_.find(event.server);
        if (it != servers_.end()) it->second->leaving = true;
      }
    }

    // (2) Crashes and checkpoint failover.
    handle_crashes(slot, report);

    // (3) Mobility: each active user may roam, redrawing their placement.
    if (config_.mobility_rate > 0.0) {
      for (FleetUser& user : users_) {
        if (!user.watching || user.battery.empty()) continue;
        common::Rng mobility_rng =
            derived_rng(config_.seed ^ kMobilitySalt, user.id,
                        static_cast<std::uint64_t>(global_slot));
        if (mobility_rng.bernoulli(config_.mobility_rate)) ++user.epoch;
      }
    }

    // (4) Reconcile: desired vs. actual placement; moved users hand off.
    reconcile_placement(slot, rebalancing, report);

    // (5) Serve the slot on every server (parallel across servers).  The
    // wall time of the serve phase is the fleet-level request->schedule
    // latency the soak's p99 SLO reads.
    const long anxiety_samples_before = report.anxiety_samples;
    const double anxiety_before = anxiety_accumulator;
    const auto serve_start = std::chrono::steady_clock::now();
    serve_slot(slot, report, anxiety_accumulator);
    const double serve_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - serve_start)
            .count();
    ++report.slots_run;

    long live_servers = 0;
    long live_sessions = 0;
    for (const auto& [id, edge] : servers_) {
      if (edge->leaving) continue;
      ++live_servers;
      live_sessions += static_cast<long>(edge->sessions.size());
    }
    long active_users = 0;
    for (const FleetUser& user : users_) {
      if (user.watching && !user.battery.empty()) ++active_users;
    }
    report.peak_servers =
        std::max(report.peak_servers, static_cast<int>(live_servers));

    if (registry != nullptr) {
      registry->counter("fleet_slots_total", "Federation slots executed")
          .add(1);
      registry
          ->histogram("lpvs_fleet_slot_serve_ms", serve_ms_buckets(),
                      "Wall-clock serve phase per federation slot "
                      "(fleet-level request->schedule)")
          .observe(serve_ms);
      registry
          ->gauge("lpvs_fleet_active_users",
                  "Viewers watching with charge left")
          .set(static_cast<double>(active_users));
      registry
          ->gauge("lpvs_fleet_active_servers", "Live (non-leaving) servers")
          .set(static_cast<double>(live_servers));
      registry
          ->gauge("lpvs_fleet_sessions", "Serving sessions across the fleet")
          .set(static_cast<double>(live_sessions));
      const long slot_samples =
          report.anxiety_samples - anxiety_samples_before;
      registry
          ->gauge("lpvs_fleet_slot_anxiety",
                  "Mean anxiety across this slot's chunk plays")
          .set(slot_samples > 0
                   ? (anxiety_accumulator - anxiety_before) /
                         static_cast<double>(slot_samples)
                   : 0.0);
      registry
          ->gauge("lpvs_fleet_energy_mwh",
                  "Cumulative fleet energy drawn (mWh)")
          .set(report.total_energy_mwh);
    }

    // (6) Load-derived membership control.
    evaluate_autoscale(slot, report);

    // (7) Replicate end-of-interval checkpoints.
    take_checkpoints(slot);

    // (8) Export: hand the slot's simulated clock to the telemetry hook.
    if (config_.slot_hook) {
      const auto sim_time_ms = static_cast<std::int64_t>(
          static_cast<double>(slot + 1) * config_.slot_seconds * 1000.0);
      config_.slot_hook(slot, sim_time_ms);
    }

    bool any_active = false;
    for (const FleetUser& user : users_) {
      if (user.watching && !user.battery.empty()) {
        any_active = true;
        break;
      }
    }
    // A diurnal run keeps going through an empty trough: the arrival
    // process will refill the audience.
    if (!any_active && !config_.diurnal.enabled) break;
  }

  report.mean_anxiety =
      report.anxiety_samples > 0
          ? anxiety_accumulator / static_cast<double>(report.anxiety_samples)
          : 0.0;

  // Final per-server rows: live servers and departed ones, sorted by id.
  std::map<std::uint64_t, ServerReport> rows = departed_;
  for (const auto& [id, edge] : servers_) rows[id] = edge->report;
  report.servers.reserve(rows.size());
  for (auto& [id, row] : rows) report.servers.push_back(row);

  // State digest: every user's end state plus every surviving session's
  // posterior, as bit patterns.  Two runs agree on this iff they agree on
  // all of it.
  wire::Writer digest;
  for (const FleetUser& user : users_) {
    digest.u64(user.id);
    digest.u8(user.watching ? 1 : 0);
    digest.f64(user.battery.fraction());
    digest.f64(user.watch_minutes);
  }
  for (const auto& [id, edge] : servers_) {
    digest.u64(id);
    for (const auto& [user_id, session] : edge->sessions) {
      digest.u64(user_id);
      const bayes::GammaEstimator::State gamma = session.estimator.state();
      digest.f64(gamma.mean);
      digest.f64(gamma.variance);
      digest.u64(gamma.observations);
      const bayes::NigGammaEstimator::State nig = session.nig.state();
      digest.f64(nig.mean);
      digest.f64(nig.kappa);
      digest.f64(nig.alpha);
      digest.f64(nig.beta);
      digest.u8(session.last_assignment);
      digest.u32(session.slots_served);
    }
  }
  report.state_digest =
      wire::checksum(digest.bytes(), digest.bytes().size());
  return report;
}

}  // namespace lpvs::fleet

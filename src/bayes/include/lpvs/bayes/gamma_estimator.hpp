// Bayesian tracking of the per-device power-reduction ratio gamma_n (SV-D).
//
// The true gamma_n is unknown before a transformed video is played
// (Difficulty-3's circular argument).  The paper resolves it by treating
// gamma_n as a random variable: a Gaussian prior N(mu, sigma^2) supported
// on [gamma_L, gamma_U] (the Table I band; mu = 0.31, sigma^2 = 12 in the
// paper's setup), updated after each slot with the observed power reduction
// Delta_n via Bayes' rule.  With a Gaussian likelihood the pair is
// conjugate, so the posterior stays Gaussian and the update is exact; the
// expectation used for the next slot's scheduling is the mean of that
// Gaussian truncated to [gamma_L, gamma_U] (equations (17)-(19)).
#pragma once

#include <cstddef>
#include <cstdint>

namespace lpvs::bayes {

/// Standard normal pdf / cdf helpers (exposed for tests).
double normal_pdf(double z);
double normal_cdf(double z);

/// Mean of N(mu, sigma^2) truncated to [lo, hi].
double truncated_normal_mean(double mu, double sigma, double lo, double hi);

/// Variance of N(mu, sigma^2) truncated to [lo, hi].
double truncated_normal_variance(double mu, double sigma, double lo,
                                 double hi);

/// Conjugate Gaussian estimator of one device's gamma.
class GammaEstimator {
 public:
  struct Prior {
    double mean = 0.31;        ///< (0.13 + 0.49) / 2, the Table I average
    double variance = 12.0;    ///< deliberately diffuse (paper's sigma^2)
    double lower = 0.13;       ///< gamma_L
    double upper = 0.49;       ///< gamma_U
    /// Observation noise: one slot's measured saving scatters around the
    /// device's long-run gamma because content varies chunk to chunk.
    double observation_variance = 0.03 * 0.03;
  };

  /// The full posterior, as plain data.  Round-trips bit-exactly through
  /// state()/from_state(), so a posterior serialized on one edge server
  /// (fleet handoff, checkpoint) yields an estimator whose next
  /// expected_gamma() — and every later update — is bit-identical to the
  /// original's.
  struct State {
    Prior prior;
    double mean = 0.0;
    double variance = 0.0;
    std::uint64_t observations = 0;
  };

  GammaEstimator() : GammaEstimator(Prior{}) {}
  explicit GammaEstimator(Prior prior);

  State state() const;
  static GammaEstimator from_state(const State& state);

  /// Bayes update with one observed per-slot power reduction Delta_n.
  /// Gaussian-Gaussian conjugacy: closed form, no approximation.
  void observe(double delta);

  /// E[gamma | observations] over the truncated support — the value the
  /// scheduler plugs in for the next slot (equation (19)).
  double expected_gamma() const;

  /// Posterior variance of the *untruncated* Gaussian (monotonically
  /// shrinking with each observation; property-tested).
  double posterior_variance() const { return variance_; }
  double posterior_mean() const { return mean_; }
  std::size_t observations() const { return observations_; }
  const Prior& prior() const { return prior_; }

  /// Numerical-integration expectation over the truncated support; used in
  /// tests to confirm the closed form (equations (18)-(19) literally).
  double expected_gamma_numeric(std::size_t intervals = 4096) const;

 private:
  Prior prior_;
  double mean_;
  double variance_;
  std::size_t observations_ = 0;
};

}  // namespace lpvs::bayes

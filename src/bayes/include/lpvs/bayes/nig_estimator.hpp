// Unknown-variance gamma estimator (reproduction extension to SV-D).
//
// The paper's conjugate update assumes the per-slot observation noise
// variance is known.  In practice it is not: how much a device's measured
// saving scatters depends on its content mix.  The Normal-Inverse-Gamma
// (NIG) prior is conjugate to a Gaussian likelihood with *both* mean and
// variance unknown, so the same closed-form machinery extends: the
// posterior over (gamma, sigma^2) stays NIG, and the posterior-predictive
// over gamma is a Student-t whose mean we clamp to the Table I band.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lpvs::bayes {

/// Conjugate Normal-Inverse-Gamma estimator: gamma | sigma^2 ~
/// N(mu, sigma^2 / kappa), sigma^2 ~ InvGamma(alpha, beta).
class NigGammaEstimator {
 public:
  struct Prior {
    double mean = 0.31;     ///< mu0: the Table I prior mean
    double kappa = 0.05;    ///< pseudo-observations behind mu0 (diffuse)
    double alpha = 1.5;     ///< shape; >1 so the variance mean exists
    double beta = 0.0015;   ///< scale; E[sigma^2] = beta/(alpha-1) = 0.003
    double lower = 0.13;    ///< gamma_L
    double upper = 0.49;    ///< gamma_U
  };

  /// The full NIG posterior, as plain data; round-trips bit-exactly
  /// through state()/from_state() (fleet handoff and checkpoint carry it).
  struct State {
    Prior prior;
    double mean = 0.0;
    double kappa = 0.0;
    double alpha = 0.0;
    double beta = 0.0;
    std::uint64_t observations = 0;
  };

  NigGammaEstimator() : NigGammaEstimator(Prior{}) {}
  explicit NigGammaEstimator(Prior prior);

  State state() const;
  static NigGammaEstimator from_state(const State& state);

  /// Standard NIG conjugate update with one observation.
  void observe(double delta);

  /// Posterior mean of gamma clamped to [gamma_L, gamma_U] — what the
  /// scheduler would use.
  double expected_gamma() const;

  /// Posterior mean of the observation variance, E[sigma^2 | data].
  double expected_observation_variance() const;

  /// Variance of the posterior marginal of gamma (Student-t), defined for
  /// alpha > 1; used to check posterior contraction.
  double gamma_marginal_variance() const;

  double posterior_mean() const { return mean_; }
  double posterior_kappa() const { return kappa_; }
  double posterior_alpha() const { return alpha_; }
  double posterior_beta() const { return beta_; }
  std::size_t observations() const { return observations_; }
  const Prior& prior() const { return prior_; }

 private:
  Prior prior_;
  double mean_;
  double kappa_;
  double alpha_;
  double beta_;
  std::size_t observations_ = 0;
};

}  // namespace lpvs::bayes

#include "lpvs/bayes/gamma_estimator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lpvs::bayes {
namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014327;
constexpr double kInvSqrt2 = 0.7071067811865476;
}  // namespace

double normal_pdf(double z) {
  return kInvSqrt2Pi * std::exp(-0.5 * z * z);
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z * kInvSqrt2); }

double truncated_normal_mean(double mu, double sigma, double lo, double hi) {
  assert(hi > lo);
  if (sigma <= 0.0) return std::clamp(mu, lo, hi);
  const double alpha = (lo - mu) / sigma;
  const double beta = (hi - mu) / sigma;
  const double mass = normal_cdf(beta) - normal_cdf(alpha);
  if (mass < 1e-300) {
    // All mass numerically outside the window: snap to the nearer edge.
    return mu < lo ? lo : hi;
  }
  return mu + sigma * (normal_pdf(alpha) - normal_pdf(beta)) / mass;
}

double truncated_normal_variance(double mu, double sigma, double lo,
                                 double hi) {
  assert(hi > lo);
  if (sigma <= 0.0) return 0.0;
  const double alpha = (lo - mu) / sigma;
  const double beta = (hi - mu) / sigma;
  const double mass = normal_cdf(beta) - normal_cdf(alpha);
  if (mass < 1e-300) return 0.0;
  const double pa = normal_pdf(alpha);
  const double pb = normal_pdf(beta);
  const double ratio = (alpha * pa - beta * pb) / mass;
  const double shift = (pa - pb) / mass;
  return sigma * sigma * (1.0 + ratio - shift * shift);
}

GammaEstimator::GammaEstimator(Prior prior)
    : prior_(prior), mean_(prior.mean), variance_(prior.variance) {
  assert(prior_.upper > prior_.lower);
  assert(prior_.variance > 0.0);
  assert(prior_.observation_variance > 0.0);
}

GammaEstimator::State GammaEstimator::state() const {
  State state;
  state.prior = prior_;
  state.mean = mean_;
  state.variance = variance_;
  state.observations = observations_;
  return state;
}

GammaEstimator GammaEstimator::from_state(const State& state) {
  GammaEstimator estimator(state.prior);
  estimator.mean_ = state.mean;
  estimator.variance_ = state.variance;
  estimator.observations_ = static_cast<std::size_t>(state.observations);
  return estimator;
}

void GammaEstimator::observe(double delta) {
  // Conjugate Gaussian update (equation (17) with Gaussian likelihood):
  // posterior precision adds, posterior mean is the precision-weighted
  // blend of prior mean and observation.
  const double prior_precision = 1.0 / variance_;
  const double obs_precision = 1.0 / prior_.observation_variance;
  const double posterior_precision = prior_precision + obs_precision;
  mean_ = (mean_ * prior_precision + delta * obs_precision) /
          posterior_precision;
  variance_ = 1.0 / posterior_precision;
  ++observations_;
}

double GammaEstimator::expected_gamma() const {
  // Equation (19): expectation under the posterior restricted to
  // [gamma_L, gamma_U].
  return truncated_normal_mean(mean_, std::sqrt(variance_), prior_.lower,
                               prior_.upper);
}

double GammaEstimator::expected_gamma_numeric(std::size_t intervals) const {
  // Simpson's rule on the truncated posterior: computes (18) and (19)
  // literally as integrals.  Tests compare this to the closed form.
  assert(intervals >= 2);
  if (intervals % 2 == 1) ++intervals;
  const double sigma = std::sqrt(variance_);
  const double lo = prior_.lower;
  const double hi = prior_.upper;
  const double h = (hi - lo) / static_cast<double>(intervals);
  auto pdf = [&](double g) {
    const double z = (g - mean_) / sigma;
    return normal_pdf(z) / sigma;
  };
  double mass = 0.0;
  double moment = 0.0;
  for (std::size_t k = 0; k <= intervals; ++k) {
    const double g = lo + h * static_cast<double>(k);
    const double weight =
        (k == 0 || k == intervals) ? 1.0 : (k % 2 == 1 ? 4.0 : 2.0);
    mass += weight * pdf(g);
    moment += weight * g * pdf(g);
  }
  if (mass <= 0.0) return std::clamp(mean_, lo, hi);
  return moment / mass;
}

}  // namespace lpvs::bayes

#include "lpvs/bayes/nig_estimator.hpp"

#include <algorithm>
#include <cassert>

namespace lpvs::bayes {

NigGammaEstimator::NigGammaEstimator(Prior prior)
    : prior_(prior),
      mean_(prior.mean),
      kappa_(prior.kappa),
      alpha_(prior.alpha),
      beta_(prior.beta) {
  assert(prior_.kappa > 0.0);
  assert(prior_.alpha > 1.0);
  assert(prior_.beta > 0.0);
  assert(prior_.upper > prior_.lower);
}

NigGammaEstimator::State NigGammaEstimator::state() const {
  State state;
  state.prior = prior_;
  state.mean = mean_;
  state.kappa = kappa_;
  state.alpha = alpha_;
  state.beta = beta_;
  state.observations = observations_;
  return state;
}

NigGammaEstimator NigGammaEstimator::from_state(const State& state) {
  NigGammaEstimator estimator(state.prior);
  estimator.mean_ = state.mean;
  estimator.kappa_ = state.kappa;
  estimator.alpha_ = state.alpha;
  estimator.beta_ = state.beta;
  estimator.observations_ = static_cast<std::size_t>(state.observations);
  return estimator;
}

void NigGammaEstimator::observe(double delta) {
  // One-observation NIG update (e.g. Murphy, "Conjugate Bayesian analysis
  // of the Gaussian distribution", eqs. 85-89 with n = 1):
  const double kappa_next = kappa_ + 1.0;
  const double mean_next = (kappa_ * mean_ + delta) / kappa_next;
  alpha_ += 0.5;
  beta_ += 0.5 * kappa_ * (delta - mean_) * (delta - mean_) / kappa_next;
  mean_ = mean_next;
  kappa_ = kappa_next;
  ++observations_;
}

double NigGammaEstimator::expected_gamma() const {
  return std::clamp(mean_, prior_.lower, prior_.upper);
}

double NigGammaEstimator::expected_observation_variance() const {
  return alpha_ > 1.0 ? beta_ / (alpha_ - 1.0) : beta_;
}

double NigGammaEstimator::gamma_marginal_variance() const {
  // Marginal of gamma is Student-t with 2*alpha dof, scale^2 =
  // beta/(alpha*kappa); its variance is scale^2 * dof/(dof-2) for dof>2.
  const double dof = 2.0 * alpha_;
  const double scale_sq = beta_ / (alpha_ * kappa_);
  if (dof <= 2.0) return scale_sq * 1e6;  // effectively undefined: huge
  return scale_sq * dof / (dof - 2.0);
}

}  // namespace lpvs::bayes

#include "lpvs/common/piecewise.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace lpvs::common {

PiecewiseLinear::PiecewiseLinear(std::vector<double> xs,
                                 std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  assert(xs_.size() == ys_.size());
  assert(!xs_.empty());
  assert(std::is_sorted(xs_.begin(), xs_.end(),
                        [](double a, double b) { return a <= b; }) ||
         std::adjacent_find(xs_.begin(), xs_.end(),
                            [](double a, double b) { return a >= b; }) ==
             xs_.end());
}

PiecewiseLinear PiecewiseLinear::from_uniform_samples(std::vector<double> ys,
                                                      double x0, double dx) {
  std::vector<double> xs(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = x0 + dx * static_cast<double>(i);
  }
  return PiecewiseLinear(std::move(xs), std::move(ys));
}

double PiecewiseLinear::operator()(double x) const {
  assert(!xs_.empty());
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const auto hi = static_cast<std::size_t>(it - xs_.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
  return ys_[lo] + t * (ys_[hi] - ys_[lo]);
}

bool PiecewiseLinear::non_increasing(double tol) const {
  for (std::size_t i = 1; i < ys_.size(); ++i) {
    if (ys_[i] > ys_[i - 1] + tol) return false;
  }
  return true;
}

double PiecewiseLinear::integrate(double a, double b) const {
  if (empty() || a >= b) return 0.0;
  a = std::max(a, x_min());
  b = std::min(b, x_max());
  if (a >= b) return 0.0;
  double area = 0.0;
  double prev_x = a;
  double prev_y = (*this)(a);
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    if (xs_[i] <= a) continue;
    if (xs_[i] >= b) break;
    area += 0.5 * (prev_y + ys_[i]) * (xs_[i] - prev_x);
    prev_x = xs_[i];
    prev_y = ys_[i];
  }
  area += 0.5 * (prev_y + (*this)(b)) * (b - prev_x);
  return area;
}

double PiecewiseLinear::slope_at(double x) const {
  if (xs_.size() < 2) return 0.0;
  if (x <= xs_.front()) x = xs_.front();
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  auto hi = static_cast<std::size_t>(it - xs_.begin());
  hi = std::clamp<std::size_t>(hi, 1, xs_.size() - 1);
  const std::size_t lo = hi - 1;
  return (ys_[hi] - ys_[lo]) / (xs_[hi] - xs_[lo]);
}

}  // namespace lpvs::common

#include "lpvs/common/io.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <mutex>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <unistd.h>

namespace lpvs::common::io {
namespace {

std::once_flag sigpipe_once;

Status errno_status(const char* what, int err) {
  return Status::Internal(std::string(what) + ": " + std::strerror(err));
}

}  // namespace

void ignore_sigpipe() {
  std::call_once(sigpipe_once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

common::Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return errno_status("fcntl(F_GETFL)", errno);
  if ((flags & O_NONBLOCK) != 0) return Status::Ok();
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return errno_status("fcntl(F_SETFL, O_NONBLOCK)", errno);
  }
  return Status::Ok();
}

common::Status set_tcp_nodelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return errno_status("setsockopt(TCP_NODELAY)", errno);
  }
  return Status::Ok();
}

IoResult read_retry(int fd, void* buf, std::size_t count) {
  for (;;) {
    const ssize_t n = ::read(fd, buf, count);
    if (n > 0) {
      return IoResult{IoResult::Kind::kOk, static_cast<std::size_t>(n), 0};
    }
    if (n == 0) return IoResult{IoResult::Kind::kEof, 0, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return IoResult{IoResult::Kind::kWouldBlock, 0, 0};
    }
    return IoResult{IoResult::Kind::kError, 0, errno};
  }
}

IoResult write_retry(int fd, const void* buf, std::size_t count) {
  for (;;) {
    const ssize_t n = ::write(fd, buf, count);
    if (n >= 0) {
      return IoResult{IoResult::Kind::kOk, static_cast<std::size_t>(n), 0};
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return IoResult{IoResult::Kind::kWouldBlock, 0, 0};
    }
    return IoResult{IoResult::Kind::kError, 0, errno};
  }
}

common::Status read_exact(int fd, void* buf, std::size_t count) {
  auto* cursor = static_cast<std::uint8_t*>(buf);
  std::size_t done = 0;
  while (done < count) {
    const IoResult r = read_retry(fd, cursor + done, count - done);
    switch (r.kind) {
      case IoResult::Kind::kOk:
        done += r.count;
        break;
      case IoResult::Kind::kEof:
        return Status::Unavailable("peer closed mid-read");
      case IoResult::Kind::kWouldBlock:
        // A blocking fd only reports EAGAIN under SO_RCVTIMEO; treat the
        // elapsed timeout as the transport giving up.
        return Status::Unavailable("read timed out");
      case IoResult::Kind::kError:
        return Status::Unavailable(std::string("read: ") +
                                   std::strerror(r.error));
    }
  }
  return Status::Ok();
}

common::Status write_all(int fd, const void* buf, std::size_t count) {
  const auto* cursor = static_cast<const std::uint8_t*>(buf);
  std::size_t done = 0;
  while (done < count) {
    const IoResult r = write_retry(fd, cursor + done, count - done);
    switch (r.kind) {
      case IoResult::Kind::kOk:
        done += r.count;
        break;
      case IoResult::Kind::kWouldBlock:
        return Status::Unavailable("write timed out");
      case IoResult::Kind::kEof:  // unreachable for writes
      case IoResult::Kind::kError:
        return Status::Unavailable(std::string("write: ") +
                                   std::strerror(r.error));
    }
  }
  return Status::Ok();
}

IoResult writev_retry(int fd, const struct iovec* iov, int iovcnt) {
  for (;;) {
    const ssize_t n = ::writev(fd, iov, iovcnt);
    if (n >= 0) {
      return IoResult{IoResult::Kind::kOk, static_cast<std::size_t>(n), 0};
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return IoResult{IoResult::Kind::kWouldBlock, 0, 0};
    }
    return IoResult{IoResult::Kind::kError, 0, errno};
  }
}

void advance_iovecs(struct iovec*& iov, int& iovcnt, std::size_t accepted) {
  while (iovcnt > 0 && accepted >= iov->iov_len) {
    accepted -= iov->iov_len;
    ++iov;
    --iovcnt;
  }
  if (iovcnt > 0 && accepted > 0) {
    iov->iov_base = static_cast<std::uint8_t*>(iov->iov_base) + accepted;
    iov->iov_len -= accepted;
  }
}

common::Status writev_all(int fd, struct iovec* iov, int iovcnt) {
  // Skip empty leading entries so writev never sees iovcnt == 0 with bytes
  // still owed (and a fully empty batch is a successful no-op).
  advance_iovecs(iov, iovcnt, 0);
  while (iovcnt > 0 && iov->iov_len == 0) {
    ++iov;
    --iovcnt;
  }
  while (iovcnt > 0) {
    const IoResult r = writev_retry(fd, iov, iovcnt);
    switch (r.kind) {
      case IoResult::Kind::kOk:
        advance_iovecs(iov, iovcnt, r.count);
        while (iovcnt > 0 && iov->iov_len == 0) {
          ++iov;
          --iovcnt;
        }
        break;
      case IoResult::Kind::kWouldBlock:
        return Status::Unavailable("writev timed out");
      case IoResult::Kind::kEof:  // unreachable for writes
      case IoResult::Kind::kError:
        return Status::Unavailable(std::string("writev: ") +
                                   std::strerror(r.error));
    }
  }
  return Status::Ok();
}

void close_fd(int fd) {
  if (fd < 0) return;
  // POSIX leaves the fd state unspecified after EINTR from close; Linux
  // guarantees it is closed.  Retrying would risk closing a recycled fd, so
  // call once and move on.
  ::close(fd);
}

}  // namespace lpvs::common::io

#include "lpvs/common/json.hpp"

#include <cmath>
#include <cstdio>

namespace lpvs::common {

Json Json::object() {
  Json j;
  j.value_ = std::make_shared<ObjectRep>();
  return j;
}

Json Json::array() {
  Json j;
  j.value_ = std::make_shared<ArrayRep>();
  return j;
}

Json& Json::set(const std::string& key, Json value) {
  if (!std::holds_alternative<std::shared_ptr<ObjectRep>>(value_)) {
    value_ = std::make_shared<ObjectRep>();
  }
  auto& members = std::get<std::shared_ptr<ObjectRep>>(value_)->members;
  for (auto& [existing_key, existing_value] : members) {
    if (existing_key == key) {
      existing_value = std::move(value);
      return *this;
    }
  }
  members.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (!std::holds_alternative<std::shared_ptr<ArrayRep>>(value_)) {
    value_ = std::make_shared<ArrayRep>();
  }
  std::get<std::shared_ptr<ArrayRep>>(value_)->elements.push_back(
      std::move(value));
  return *this;
}

bool Json::is_null() const {
  return std::holds_alternative<std::nullptr_t>(value_);
}

bool Json::is_object() const {
  return std::holds_alternative<std::shared_ptr<ObjectRep>>(value_);
}

bool Json::is_array() const {
  return std::holds_alternative<std::shared_ptr<ArrayRep>>(value_);
}

std::size_t Json::size() const {
  if (is_object()) {
    return std::get<std::shared_ptr<ObjectRep>>(value_)->members.size();
  }
  if (is_array()) {
    return std::get<std::shared_ptr<ArrayRep>>(value_)->elements.size();
  }
  return 0;
}

std::string Json::escape(const std::string& raw) {
  std::string out = "\"";
  for (unsigned char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

namespace {

std::string format_number(double d) {
  if (!std::isfinite(d)) return "null";  // JSON has no inf/nan
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", d);
    return buffer;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.10g", d);
  return buffer;
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string newline = indent > 0 ? "\n" : "";
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent) * (depth + 1),
                               ' ')
                 : "";
  const std::string closing_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent) * depth, ' ')
                 : "";
  const std::string space = indent > 0 ? " " : "";

  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const auto* d = std::get_if<double>(&value_)) {
    out += format_number(*d);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    out += escape(*s);
  } else if (is_object()) {
    const auto& members =
        std::get<std::shared_ptr<ObjectRep>>(value_)->members;
    if (members.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, value] : members) {
      if (!first) out += ',';
      first = false;
      out += newline + pad + escape(key) + ':' + space;
      value.dump_to(out, indent, depth + 1);
    }
    out += newline + closing_pad + '}';
  } else {
    const auto& elements =
        std::get<std::shared_ptr<ArrayRep>>(value_)->elements;
    if (elements.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    bool first = true;
    for (const Json& value : elements) {
      if (!first) out += ',';
      first = false;
      out += newline + pad;
      value.dump_to(out, indent, depth + 1);
    }
    out += newline + closing_pad + ']';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json to_json(const std::vector<double>& values) {
  Json array = Json::array();
  for (double value : values) array.push(value);
  return array;
}

Json to_json(const std::vector<long>& values) {
  Json array = Json::array();
  for (long value : values) array.push(value);
  return array;
}

}  // namespace lpvs::common

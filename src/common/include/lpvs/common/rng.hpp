// Deterministic pseudo-random number generation for the LPVS emulator.
//
// Every stochastic component of the reproduction (survey population, trace
// synthesis, display assignment, initial battery levels, transform noise)
// draws from an explicitly seeded Rng so that a whole emulation run is
// reproducible bit-for-bit from a single 64-bit seed.  We implement
// xoshiro256++ rather than relying on std::mt19937 so the stream is stable
// across standard-library implementations.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace lpvs::common {

/// xoshiro256++ 1.0 by Blackman & Vigna (public domain reference
/// implementation, re-expressed in C++).  Passes BigCrush; 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from `seed` via splitmix64, the
  /// recommended seeding procedure for the xoshiro family.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& lane : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      lane = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).  53 random mantissa bits.
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive).  Unbiased via rejection.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t draw = (*this)();
    while (draw >= limit) draw = (*this)();
    return lo + static_cast<std::int64_t>(draw % span);
  }

  /// Standard normal via Marsaglia polar method (no trig, deterministic).
  double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return u * factor;
  }

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Normal draw rejected outside [lo, hi].  Falls back to clamping after
  /// 1000 rejections so pathological parameters cannot livelock.
  double truncated_normal(double mean, double stddev, double lo, double hi) {
    for (int i = 0; i < 1000; ++i) {
      const double draw = normal(mean, stddev);
      if (draw >= lo && draw <= hi) return draw;
    }
    const double draw = normal(mean, stddev);
    return draw < lo ? lo : (draw > hi ? hi : draw);
  }

  /// Log-normal: exp(N(mu, sigma^2)).
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Exponential with rate lambda.
  double exponential(double lambda) {
    return -std::log(1.0 - uniform()) / lambda;
  }

  /// Bounded Zipf(s) over ranks [1, n] via inverse-CDF on precomputed-free
  /// rejection sampling (Devroye).  Used for viewer-to-channel popularity.
  std::int64_t zipf(std::int64_t n, double s) {
    // Rejection sampling from a piecewise-constant envelope.
    const double b = std::pow(2.0, s - 1.0);
    while (true) {
      const double u = uniform();
      const double v = uniform();
      const auto x = static_cast<std::int64_t>(
          std::floor(std::pow(static_cast<double>(n) + 1.0, u)));
      const double t = std::pow(1.0 + 1.0 / static_cast<double>(x), s - 1.0);
      if (v * static_cast<double>(x) * (t - 1.0) / (b - 1.0) <=
          t / b) {
        if (x >= 1 && x <= n) return x;
      }
    }
  }

  /// Derives an independent child stream; used to give each emulated device
  /// or channel its own RNG so reordering iterations does not perturb draws.
  Rng fork(std::uint64_t stream_id) {
    return Rng((*this)() ^ (stream_id * 0xD1B54A32D192ED03ULL + 1));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace lpvs::common

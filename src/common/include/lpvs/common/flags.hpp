// Minimal command-line flag parser for the example/CLI binaries.
// Supports `--name value`, `--name=value`, boolean `--name` /
// `--no-name`, typed accessors with defaults, and an auto-generated
// `--help` text.  No global state; deliberately tiny.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace lpvs::common {

class Flags {
 public:
  /// Parses argv.  Unknown flags are collected as errors; positional
  /// arguments are kept in order.
  static Flags parse(int argc, const char* const* argv,
                     const std::vector<std::string>& known_flags);

  bool has(const std::string& name) const;

  /// Typed accessors; return `fallback` when absent, and record a parse
  /// error when present but malformed.
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  long get_int(const std::string& name, long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::vector<std::string>& errors() const { return errors_; }
  bool ok() const { return errors_.empty(); }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::vector<std::string> errors_;
};

/// Streams rows of comma-separated values with proper quoting; used by the
/// CLI tool to export metrics for plotting.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// One string with header + all rows, RFC-4180 quoting where needed.
  std::string str() const;

  /// Writes to a file; returns false on I/O failure.
  bool write_file(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  static std::string escape(const std::string& cell);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lpvs::common

// Piecewise-linear function on a set of (x, y) knots.  This is the carrier
// type for the empirical LBA curve phi(.) of Fig. 2: the survey module
// extracts 100 knots (battery level 1..100 -> anxiety degree) and the LPVS
// scheduler evaluates / integrates the curve when scoring schedules.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace lpvs::common {

/// Monotone-x piecewise-linear interpolant.  Evaluation outside the knot
/// range clamps to the boundary values (the physically meaningful behaviour
/// for an anxiety curve defined on battery levels [0, 100]).
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;

  /// Knots must be strictly increasing in x; asserts in debug builds.
  PiecewiseLinear(std::vector<double> xs, std::vector<double> ys);

  /// Convenience: y sampled at x = 0, 1, ..., ys.size()-1.
  static PiecewiseLinear from_uniform_samples(std::vector<double> ys,
                                              double x0 = 0.0,
                                              double dx = 1.0);

  double operator()(double x) const;

  std::size_t size() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }
  std::span<const double> xs() const { return xs_; }
  std::span<const double> ys() const { return ys_; }
  double x_min() const { return xs_.front(); }
  double x_max() const { return xs_.back(); }

  /// True iff y is non-increasing as x increases (the LBA curve property:
  /// anxiety never grows when battery level grows).
  bool non_increasing(double tol = 1e-12) const;

  /// Trapezoidal integral over [a, b] (clamped to the knot range).
  double integrate(double a, double b) const;

  /// Numerical derivative (forward difference on the knot grid).
  double slope_at(double x) const;

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

}  // namespace lpvs::common

// Minimal JSON document builder (output only).  Experiment results are
// consumed by external plotting/analysis scripts; this provides a
// dependency-free way to serialize metrics as JSON with correct escaping
// and stable key order.  Build trees with Json::object()/array(), then
// dump() with optional pretty-printing.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace lpvs::common {

class Json {
 public:
  /// Value constructors.
  Json() : value_(nullptr) {}                      // null
  Json(bool b) : value_(b) {}                      // NOLINT(runtime/explicit)
  Json(double d) : value_(d) {}                    // NOLINT(runtime/explicit)
  Json(long n) : value_(static_cast<double>(n)) {} // NOLINT(runtime/explicit)
  Json(int n) : value_(static_cast<double>(n)) {}  // NOLINT(runtime/explicit)
  Json(const char* s) : value_(std::string(s)) {}  // NOLINT(runtime/explicit)
  Json(std::string s) : value_(std::move(s)) {}    // NOLINT(runtime/explicit)

  static Json object();
  static Json array();

  /// Object field assignment (first call on a default Json turns it into
  /// an object); keys keep insertion order.
  Json& set(const std::string& key, Json value);

  /// Array append (first call turns a default Json into an array).
  Json& push(Json value);

  bool is_null() const;
  bool is_object() const;
  bool is_array() const;
  std::size_t size() const;  ///< members or elements; 0 for scalars

  /// Serializes; indent 0 = compact single line, otherwise pretty-printed
  /// with `indent` spaces per level.
  std::string dump(int indent = 0) const;

  /// Escapes a string per RFC 8259 (quotes, backslashes, control chars).
  static std::string escape(const std::string& raw);


 private:
  struct ObjectRep {
    std::vector<std::pair<std::string, Json>> members;
  };
  struct ArrayRep {
    std::vector<Json> elements;
  };

  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<ObjectRep>, std::shared_ptr<ArrayRep>>
      value_;
};

/// Shared numeric-array serialization used by every metrics exporter
/// (emu/metrics_io, obs snapshots) so they stay on one common::Json path
/// instead of growing ad-hoc loops.
Json to_json(const std::vector<double>& values);
Json to_json(const std::vector<long>& values);

}  // namespace lpvs::common

// ASCII table renderer used by the bench harnesses to print paper-shaped
// tables (Table I, Table II, and the per-figure result rows) to stdout.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace lpvs::common {

/// Accumulates rows of string cells and renders them with aligned columns
/// and a header rule, e.g.
///
///   group_size  energy_saving_%  anxiety_reduction_%
///   ----------  ---------------  -------------------
///           50            35.90                 6.71
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Formats a double with fixed precision; helper for building cells.
  static std::string num(double v, int precision = 2);

  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lpvs::common

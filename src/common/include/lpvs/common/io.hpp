// POSIX fd helpers for the networked serving layer.
//
// Every place the server or load generator touches a file descriptor goes
// through these wrappers, so the fiddly parts of socket I/O are handled
// once and tested once:
//
//   - EINTR: all loops retry interrupted syscalls instead of surfacing a
//     spurious failure when a signal lands mid-read.
//   - SIGPIPE: a peer that closes mid-write must produce EPIPE (a Status),
//     not kill the process; ignore_sigpipe() installs the process-wide
//     suppression exactly once.
//   - Partial I/O: the *_all/_exact variants loop until the full count is
//     transferred (blocking fds — the load-generator clients); the bare
//     read_retry/write_retry variants return short counts and kWouldBlock
//     (non-blocking fds — the server's event loop).
//
// Nothing here allocates or takes locks; results travel as IoResult /
// common::Status so callers can branch on the canonical codes
// (kUnavailable = transport gone, kDeadlineExceeded et al. stay upstream).
#pragma once

#include <cstddef>
#include <cstdint>

#include <sys/uio.h>

#include "lpvs/common/status.hpp"

namespace lpvs::common::io {

/// Outcome of one non-blocking read/write attempt.
struct IoResult {
  enum class Kind {
    kOk,          ///< `count` bytes transferred (may be short)
    kWouldBlock,  ///< EAGAIN/EWOULDBLOCK — retry after the next poll wakeup
    kEof,         ///< orderly peer shutdown (reads only)
    kError,       ///< transport error; connection is dead
  };
  Kind kind = Kind::kOk;
  std::size_t count = 0;  ///< bytes transferred when kind == kOk
  int error = 0;          ///< errno when kind == kError

  bool ok() const { return kind == Kind::kOk; }
};

/// Installs SIG_IGN for SIGPIPE (idempotent, thread-safe).  Call before any
/// socket writes; afterwards a closed peer surfaces as EPIPE from write().
void ignore_sigpipe();

/// O_NONBLOCK on, via fcntl.  kInternal with the errno text on failure.
common::Status set_nonblocking(int fd);

/// TCP_NODELAY on (no-op Status on non-TCP fds is fine to ignore): the
/// session protocol exchanges small frames request/response style, exactly
/// the pattern Nagle's algorithm penalizes.
common::Status set_tcp_nodelay(int fd);

/// One read(2), retrying EINTR.  Never blocks longer than the fd does.
IoResult read_retry(int fd, void* buf, std::size_t count);

/// One write(2), retrying EINTR.
IoResult write_retry(int fd, const void* buf, std::size_t count);

/// Blocking helper: loops until exactly `count` bytes are read.
/// kUnavailable on EOF or transport error (the message says which).
common::Status read_exact(int fd, void* buf, std::size_t count);

/// Blocking helper: loops until exactly `count` bytes are written.
common::Status write_all(int fd, const void* buf, std::size_t count);

/// One writev(2), retrying EINTR.  Like write_retry but gathers from an
/// iovec batch; the kernel may accept any prefix of the total, including a
/// cut mid-entry — callers advance with advance_iovecs() and call again.
IoResult writev_retry(int fd, const struct iovec* iov, int iovcnt);

/// Advances (iov, iovcnt) past `accepted` bytes of a partially written
/// batch.  Fully consumed entries are skipped by bumping the pointer and
/// shrinking the count; a mid-buffer cut adjusts iov_base/iov_len of the
/// first surviving entry in place.  `accepted` beyond the batch total
/// clamps to empty.  This is the one piece of iovec arithmetic the batched
/// flush paths share, so it lives here and is unit-tested in isolation.
void advance_iovecs(struct iovec*& iov, int& iovcnt, std::size_t accepted);

/// Blocking helper: loops (EINTR, partial acceptance) until every byte of
/// the batch is written.  Mutates the iovec array via advance_iovecs as it
/// goes.  kUnavailable on EPIPE/reset or an SO_SNDTIMEO timeout.
common::Status writev_all(int fd, struct iovec* iov, int iovcnt);

/// close(2), retrying EINTR (and swallowing the post-close EINTR ambiguity
/// the POSIX way: the fd is gone either way).
void close_fd(int fd);

}  // namespace lpvs::common::io

// Minimal fixed-size thread pool used to parallelize embarrassingly
// parallel experiment sweeps (per-cluster replays, per-seed repetitions).
// Determinism note: callers must make each task's result independent of
// execution order (every LPVS experiment derives its randomness from
// explicit per-task seeds), so parallel and serial runs are bit-identical.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lpvs::common {

class ThreadPool {
 public:
  /// `threads` == 0 selects the hardware concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns immediately.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs fn(i) for i in [0, count) across the pool and waits for all.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace lpvs::common

// Lightweight unit-bearing value types.  The emulator mixes power (mW),
// energy (mWh and joules), time (seconds and 5-minute slots), and battery
// fractions; keeping them in distinct types catches the classic
// watt-vs-watt-hour mixups at compile time without a heavyweight units
// library.
#pragma once

#include <compare>
#include <cstdint>

namespace lpvs::common {

/// Power in milliwatts.
struct Milliwatts {
  double value = 0.0;
  constexpr auto operator<=>(const Milliwatts&) const = default;
  constexpr Milliwatts operator+(Milliwatts o) const { return {value + o.value}; }
  constexpr Milliwatts operator-(Milliwatts o) const { return {value - o.value}; }
  constexpr Milliwatts operator*(double k) const { return {value * k}; }
  constexpr Milliwatts& operator+=(Milliwatts o) {
    value += o.value;
    return *this;
  }
};

/// Energy in milliwatt-hours (the unit battery datasheets use).
struct MilliwattHours {
  double value = 0.0;
  constexpr auto operator<=>(const MilliwattHours&) const = default;
  constexpr MilliwattHours operator+(MilliwattHours o) const {
    return {value + o.value};
  }
  constexpr MilliwattHours operator-(MilliwattHours o) const {
    return {value - o.value};
  }
  constexpr MilliwattHours operator*(double k) const { return {value * k}; }
  constexpr MilliwattHours& operator+=(MilliwattHours o) {
    value += o.value;
    return *this;
  }
  constexpr MilliwattHours& operator-=(MilliwattHours o) {
    value -= o.value;
    return *this;
  }
};

/// Time in seconds.
struct Seconds {
  double value = 0.0;
  constexpr auto operator<=>(const Seconds&) const = default;
  constexpr Seconds operator+(Seconds o) const { return {value + o.value}; }
  constexpr Seconds operator*(double k) const { return {value * k}; }
  constexpr double minutes() const { return value / 60.0; }
  constexpr double hours() const { return value / 3600.0; }
};

/// Energy spent drawing `p` for duration `t`.
constexpr MilliwattHours energy(Milliwatts p, Seconds t) {
  return {p.value * t.value / 3600.0};
}

/// Average power when `e` is spent over duration `t`.
constexpr Milliwatts average_power(MilliwattHours e, Seconds t) {
  return {t.value > 0.0 ? e.value * 3600.0 / t.value : 0.0};
}

inline constexpr Seconds kSlotLength{5.0 * 60.0};  // paper's 5-minute slot

/// Strongly typed integer identifiers (a DeviceId is not a VideoId).
template <class Tag>
struct Id {
  std::uint32_t value = 0;
  constexpr auto operator<=>(const Id&) const = default;
};

struct DeviceTag {};
struct VideoTag {};
struct ChunkTag {};
struct ChannelTag {};
struct SessionTag {};

using DeviceId = Id<DeviceTag>;
using VideoId = Id<VideoTag>;
using ChunkId = Id<ChunkTag>;
using ChannelId = Id<ChannelTag>;
using SessionId = Id<SessionTag>;

}  // namespace lpvs::common

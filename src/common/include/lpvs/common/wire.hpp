// Shared binary wire codec (fixed-width fields, varints, FNV-1a sealing).
//
// Two independent wire formats grew out of the fleet work: the inter-server
// payloads (session handoff, checkpoints) and the client-facing session
// protocol served by src/server.  Both need the same primitives — and the
// same guarantees — so the codec lives here, in common, and the format
// layers (fleet/wire.hpp, server/protocol.hpp) build frame layouts on top:
//
//   - Bit-exact round-trips: doubles travel as their IEEE-754 bit patterns
//     (std::bit_cast through uint64) rather than through any decimal
//     formatting, because the failover / handoff / serving acceptance tests
//     compare posteriors and whole schedules bit for bit.
//   - Fixed endianness: integers are little-endian regardless of host order.
//   - Detected corruption: payloads are sealed with an FNV-1a checksum
//     trailer so a corrupted transfer is *detected* (kDataLoss) instead of
//     silently installing a garbled posterior or schedule at the receiver.
//   - No overreads: every Reader accessor reports truncation instead of
//     walking past the end, so a short payload surfaces as a decode error
//     rather than undefined behavior.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "lpvs/common/status.hpp"

namespace lpvs::common::wire {

/// Appends fixed-width fields to a byte buffer.  By default the Writer
/// owns its buffer; the hot serving path instead binds one to an existing
/// (reused) vector so per-frame encoding appends in place and a session's
/// outbound buffer is the only allocation, amortized to zero once grown.
class Writer {
 public:
  Writer() : bytes_(&owned_) {}
  /// Appends to `out` (which the caller keeps owning); take() is invalid.
  explicit Writer(std::vector<std::uint8_t>* out) : bytes_(out) {}

  void u8(std::uint8_t v) { bytes_->push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_->push_back((v >> (8 * i)) & 0xFFu);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_->push_back((v >> (8 * i)) & 0xFFu);
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  /// LEB128 unsigned varint: 7 bits per byte, high bit = continuation.
  /// Small values (lengths, counts) cost one byte instead of eight.
  void varint(std::uint64_t v) {
    while (v >= 0x80u) {
      bytes_->push_back(static_cast<std::uint8_t>(v) | 0x80u);
      v >>= 7;
    }
    bytes_->push_back(static_cast<std::uint8_t>(v));
  }

  /// Length-prefixed (varint) byte string.
  void str(const std::string& s) {
    varint(s.size());
    bytes_->insert(bytes_->end(), s.begin(), s.end());
  }

  const std::vector<std::uint8_t>& bytes() const { return *bytes_; }
  std::vector<std::uint8_t> take() { return std::move(owned_); }

 private:
  std::vector<std::uint8_t> owned_;
  std::vector<std::uint8_t>* bytes_;
};

/// Reads fixed-width fields back; every read reports truncation instead of
/// walking past the end, so a short payload surfaces as kDataLoss at the
/// decode layer rather than as undefined behavior.
class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes)
      : Reader(bytes.data(), bytes.size()) {}
  /// Reads from a borrowed span — the in-place decode path: the serving
  /// layer parses frames directly out of the connection's receive buffer
  /// without copying each payload into its own vector first.
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > size_) return false;
    v = data_[pos_++];
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > size_) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    }
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > size_) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    }
    return true;
  }
  bool i64(std::int64_t& v) {
    std::uint64_t raw = 0;
    if (!u64(raw)) return false;
    v = static_cast<std::int64_t>(raw);
    return true;
  }
  bool f64(double& v) {
    std::uint64_t raw = 0;
    if (!u64(raw)) return false;
    v = std::bit_cast<double>(raw);
    return true;
  }

  /// LEB128 unsigned varint.  Rejects encodings longer than 10 bytes (the
  /// maximum a 64-bit value needs), so a malicious all-continuation stream
  /// cannot spin the decoder.
  bool varint(std::uint64_t& v) {
    v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      std::uint8_t byte = 0;
      if (!u8(byte)) return false;
      v |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
      if ((byte & 0x80u) == 0) return true;
    }
    return false;  // 10th byte still had the continuation bit set
  }

  /// Varint-length-prefixed byte string.  Rejects lengths running past the
  /// end of the buffer before allocating.
  bool str(std::string& s) {
    std::uint64_t length = 0;
    if (!varint(length)) return false;
    if (pos_ + length > size_) return false;
    s.assign(reinterpret_cast<const char*>(data_ + pos_),
             static_cast<std::size_t>(length));
    pos_ += length;
    return true;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// 64-bit FNV-1a over the first `count` bytes of the buffer.
std::uint64_t checksum(const std::vector<std::uint8_t>& bytes,
                       std::size_t count);

/// Incremental FNV-1a: fold more bytes into a running hash.  Used by the
/// serving layer to digest the schedule payload stream a session receives.
std::uint64_t fnv1a(std::uint64_t hash, const std::uint8_t* data,
                    std::size_t count);

/// The FNV-1a offset basis — the seed for an incremental fnv1a() chain.
inline constexpr std::uint64_t kFnvOffsetBasis = 0xCBF29CE484222325ULL;

/// Appends an 8-byte checksum trailer covering everything before it.
void seal(std::vector<std::uint8_t>& bytes);

/// Seals only the suffix [from, end): the in-place encode path, where one
/// outbound buffer holds several frames and each frame's trailer must
/// cover that frame's payload alone.
void seal(std::vector<std::uint8_t>& bytes, std::size_t from);

/// Verifies and strips the trailer; kDataLoss when the buffer is shorter
/// than a trailer or the checksum does not match the contents.
common::Status unseal(std::vector<std::uint8_t>& bytes);

/// Span form of unseal for in-place decoding: verifies that the last 8
/// bytes of [data, data+size) seal the prefix, without copying or
/// truncating.  On Ok the payload proper is the first size-8 bytes.
common::Status verify_seal(const std::uint8_t* data, std::size_t size);

}  // namespace lpvs::common::wire

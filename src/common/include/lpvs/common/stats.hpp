// Small statistics toolkit used throughout the reproduction: running
// moments (Welford), percentiles, histograms (Fig. 5), and ordinary
// least-squares linear regression (the paper fits Fig. 10 with
// y = 0.055x - 0.324, R^2 = 0.999; we report the same fit on our data).
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace lpvs::common {

/// Numerically stable running mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
    sum_ += x;
  }

  /// Merges another accumulator (parallel Welford / Chan et al.).
  void merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double nab = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / nab;
    mean_ = (na * mean_ + nb * other.mean_) / nab;
    n_ += other.n_;
    min_ = other.min_ < min_ ? other.min_ : min_;
    max_ = other.max_ > max_ ? other.max_ : max_;
    sum_ += other.sum_;
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Equal-width histogram over [lo, hi); values outside are clamped into the
/// edge bins so totals are preserved (matches the binning used for Fig. 5).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add(std::span<const double> xs);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_[bin]; }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  /// Fraction of mass in `bin` (0 if empty histogram).
  double fraction(std::size_t bin) const;
  /// Index of the fullest bin.
  std::size_t mode_bin() const;

  /// Renders a fixed-width ASCII bar chart, one row per bin.  Used by the
  /// bench harnesses to print figure-shaped output.
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exact percentile of a sample (linear interpolation between order
/// statistics, the "exclusive" convention).  `p` in [0, 100].
double percentile(std::vector<double> xs, double p);

/// Ordinary least squares fit y = slope*x + intercept with R^2.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Pearson correlation coefficient.
double pearson(std::span<const double> xs, std::span<const double> ys);

}  // namespace lpvs::common

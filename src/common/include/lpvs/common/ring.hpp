// Bounded lock-free rings for cross-thread handoff inside the daemon.
//
// The multi-reactor server moves work between threads in exactly two
// patterns, and each gets the narrowest structure that serves it:
//
//   - SpscRing: one producer, one consumer.  The dispatcher thread hands
//     accepted connections to the worker that owns their cluster — one ring
//     per worker, so each ring has exactly one writer (the dispatcher) and
//     one reader (the worker).  Lamport's classic design with *cached*
//     opposite indices: the producer re-reads the consumer's head only when
//     its cached copy says the ring looks full (and vice versa), so the
//     steady-state cost is one relaxed load and one release store per
//     operation, with no cache-line ping-pong.
//
//   - MpscRing: many producers, one consumer.  Worker threads push control
//     acknowledgements and shed signals toward the dispatcher.  Vyukov's
//     bounded MPMC queue (safe a fortiori for MPSC): every cell carries a
//     sequence number that encodes both ownership and lap count, so
//     producers claim slots with a single CAS and never spin behind a
//     stalled peer beyond their own slot.
//
// Both rings are fixed-capacity (rounded up to a power of two) and never
// allocate after construction — full is a normal, reportable condition
// (try_push returns false), which is what gives the handoff path
// backpressure instead of unbounded queueing.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace lpvs::common {

namespace ring_detail {

/// Smallest power of two >= n (and >= 2), so index masking replaces modulo.
inline std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace ring_detail

/// Single-producer / single-consumer bounded ring.  Exactly one thread may
/// call try_push and exactly one (possibly different) thread may call
/// try_pop; anything else is a data race by contract.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : mask_(ring_detail::pow2_at_least(capacity) - 1),
        cells_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// False when the ring is full (the item is untouched, caller keeps it).
  bool try_push(T&& item) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;  // genuinely full
    }
    cells_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// False when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;  // genuinely empty
    }
    out = std::move(cells_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  const std::size_t mask_;
  std::vector<T> cells_;
  // Producer side: owns tail_, keeps a stale copy of head_.
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::size_t head_cache_ = 0;
  // Consumer side: owns head_, keeps a stale copy of tail_.
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t tail_cache_ = 0;
};

/// Multi-producer / single-consumer bounded ring (Vyukov bounded queue).
/// Any number of threads may try_push concurrently; one thread pops.
template <typename T>
class MpscRing {
 public:
  explicit MpscRing(std::size_t capacity)
      : mask_(ring_detail::pow2_at_least(capacity) - 1),
        cells_(mask_ + 1) {
    for (std::size_t i = 0; i <= mask_; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// False when the ring is full.
  bool try_push(T&& item) {
    std::size_t tail = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[tail & mask_];
      const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
      const auto delta = static_cast<std::intptr_t>(seq) -
                         static_cast<std::intptr_t>(tail);
      if (delta == 0) {
        if (tail_.compare_exchange_weak(tail, tail + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(item);
          cell.sequence.store(tail + 1, std::memory_order_release);
          return true;
        }
        // CAS lost: tail was reloaded; retry at the new position.
      } else if (delta < 0) {
        return false;  // the cell is still a full lap behind: ring is full
      } else {
        tail = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// False when the ring is empty.  Single consumer only.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    Cell& cell = cells_[head & mask_];
    const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
    const auto delta = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(head + 1);
    if (delta < 0) return false;  // producer has not published this cell yet
    out = std::move(cell.value);
    cell.sequence.store(head + mask_ + 1, std::memory_order_release);
    head_.store(head + 1, std::memory_order_relaxed);
    return true;
  }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  const std::size_t mask_;
  std::vector<Cell> cells_;
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::size_t> head_{0};
};

}  // namespace lpvs::common

// Canonical error model for the serving stack (API redesign).
//
// The solver and streaming layers historically reported failure three
// incompatible ways: bool-plus-out-param, nullable pointers, and ad-hoc
// per-module enums (IlpStatus, LpStatus).  None of those lets the retry and
// degradation machinery distinguish the cases it must treat differently —
// a transport drop is retryable, a deadline overrun triggers the
// degradation ladder, an infeasible program does neither.  Status carries a
// small canonical code (plus an optional human message); StatusOr<T> is
// the value-or-Status sum type the converted entry points return.
//
// Conventions: Status() / Status::Ok() is success and carries no message.
// StatusOr<T> constructed from a non-ok Status holds that error;
// constructing one from an ok Status is a programming error (asserted).
#pragma once

#include <cassert>
#include <string>
#include <utility>

namespace lpvs::common {

/// Canonical error space, deliberately small: each code is one *distinct
/// reaction* callers can have (retry, degrade, give up, fix the caller).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    ///< malformed input; retrying cannot help
  kNotFound,           ///< named thing does not exist (video id, stream key)
  kResourceExhausted,  ///< capacity exceeded (cache too small, budget spent)
  kUnavailable,        ///< transport failure; retryable with backoff
  kDeadlineExceeded,   ///< timeout / slot budget overrun; degrade instead
  kInfeasible,         ///< no solution satisfies the constraints
  kDataLoss,           ///< payload corrupted in flight
  kInternal,           ///< invariant violation inside the callee
};

const char* to_string(StatusCode code);

class Status {
 public:
  Status() = default;  ///< success
  explicit Status(StatusCode code, std::string message = "")
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m = "") {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m = "") {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status ResourceExhausted(std::string m = "") {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Unavailable(std::string m = "") {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status DeadlineExceeded(std::string m = "") {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Infeasible(std::string m = "") {
    return Status(StatusCode::kInfeasible, std::move(m));
  }
  static Status DataLoss(std::string m = "") {
    return Status(StatusCode::kDataLoss, std::move(m));
  }
  static Status Internal(std::string m = "") {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True when a retry-with-backoff loop may reasonably try again.
  bool retryable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "UNAVAILABLE: uplink dropped".
  std::string to_string() const;

  /// Codes compare; messages are debugging payload, not identity.
  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Value-or-error: exactly one of the two is active.  Small enough to pass
/// by value; the error arm reuses Status's message storage.
template <typename T>
class StatusOr {
 public:
  /// Error state.  `status` must be non-ok (an ok Status carries no value).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(implicit)
    assert(!status_.ok() && "StatusOr from an ok Status needs a value");
    if (status_.ok()) status_ = Status::Internal("ok Status without a value");
  }
  StatusOr(T value)  // NOLINT(implicit)
      : status_(Status::Ok()), value_(std::move(value)), has_value_(true) {}

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(has_value_);
    return value_;
  }
  T& value() & {
    assert(has_value_);
    return value_;
  }
  T&& value() && {
    assert(has_value_);
    return std::move(value_);
  }
  template <typename U>
  T value_or(U&& fallback) const& {
    return has_value_ ? value_ : static_cast<T>(std::forward<U>(fallback));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const {
    assert(has_value_);
    return &value_;
  }
  T* operator->() {
    assert(has_value_);
    return &value_;
  }

 private:
  Status status_;
  T value_{};
  bool has_value_ = false;
};

}  // namespace lpvs::common

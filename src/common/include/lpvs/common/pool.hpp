// Object pool for hot-path allocation elision.
//
// The serving hot path used to pay one heap allocation per accepted
// connection (the Connection object plus its decoder and outbound buffers)
// and several per frame.  The pool converts those into free-list pops:
// objects are constructed once, recycled through reset(), and keep their
// internal buffer capacity across reuses, so a steady-state worker stops
// touching the allocator entirely.
//
// Deliberately not thread-safe: each worker reactor owns one pool per
// pooled type, matching the share-nothing design — cross-thread recycling
// would reintroduce the synchronization the sharding removed.
//
// T must be default-constructible and expose `void reset()` restoring it to
// an as-new state *without* releasing buffer capacity (clear(), not
// shrink_to_fit()).  Every object is owned by the pool for its whole life;
// destruction of the pool destroys everything exactly once, so ASan/LSan
// see a leak-free shutdown even when objects are still checked out (the
// daemon force-closes connections on stop without returning them one by
// one).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace lpvs::common {

template <typename T>
class ObjectPool {
 public:
  ObjectPool() = default;
  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  /// A recycled object (already reset) or a freshly constructed one.
  T* acquire() {
    if (!free_.empty()) {
      T* object = free_.back();
      free_.pop_back();
      return object;
    }
    all_.push_back(std::make_unique<T>());
    return all_.back().get();
  }

  /// Returns an object to the pool.  The object must have come from this
  /// pool's acquire() and must not be touched after release.
  void release(T* object) {
    object->reset();
    free_.push_back(object);
  }

  /// Objects constructed over the pool's lifetime (high-water mark).
  std::size_t size() const { return all_.size(); }
  /// Objects currently checked out.
  std::size_t outstanding() const { return all_.size() - free_.size(); }

 private:
  std::vector<std::unique_ptr<T>> all_;
  std::vector<T*> free_;
};

}  // namespace lpvs::common

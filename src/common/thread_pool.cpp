#include "lpvs/common/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace lpvs::common {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([i, &fn] { fn(i); });
  }
  pool.wait_idle();
}

}  // namespace lpvs::common

#include "lpvs/common/wire.hpp"

namespace lpvs::common::wire {
namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

}  // namespace

std::uint64_t fnv1a(std::uint64_t hash, const std::uint8_t* data,
                    std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    hash ^= data[i];
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t checksum(const std::vector<std::uint8_t>& bytes,
                       std::size_t count) {
  return fnv1a(kFnvOffsetBasis, bytes.data(),
               count < bytes.size() ? count : bytes.size());
}

void seal(std::vector<std::uint8_t>& bytes) { seal(bytes, 0); }

void seal(std::vector<std::uint8_t>& bytes, std::size_t from) {
  const std::uint64_t sum =
      fnv1a(kFnvOffsetBasis, bytes.data() + from, bytes.size() - from);
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<std::uint8_t>((sum >> (8 * i)) & 0xFFu));
  }
}

common::Status unseal(std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 8) {
    return common::Status::DataLoss("payload shorter than its checksum");
  }
  const std::size_t body = bytes.size() - 8;
  std::uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<std::uint64_t>(bytes[body + i]) << (8 * i);
  }
  if (stored != checksum(bytes, body)) {
    return common::Status::DataLoss("payload checksum mismatch");
  }
  bytes.resize(body);
  return common::Status::Ok();
}

common::Status verify_seal(const std::uint8_t* data, std::size_t size) {
  if (size < 8) {
    return common::Status::DataLoss("payload shorter than its checksum");
  }
  const std::size_t body = size - 8;
  std::uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<std::uint64_t>(data[body + i]) << (8 * i);
  }
  if (stored != fnv1a(kFnvOffsetBasis, data, body)) {
    return common::Status::DataLoss("payload checksum mismatch");
  }
  return common::Status::Ok();
}

}  // namespace lpvs::common::wire

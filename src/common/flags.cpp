#include "lpvs/common/flags.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

namespace lpvs::common {

Flags Flags::parse(int argc, const char* const* argv,
                   const std::vector<std::string>& known_flags) {
  Flags flags;
  auto is_known = [&](const std::string& name) {
    return std::find(known_flags.begin(), known_flags.end(), name) !=
           known_flags.end();
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
      has_value = true;
    }
    // --no-foo is sugar for --foo=false.
    if (!has_value && arg.rfind("no-", 0) == 0 && is_known(arg.substr(3))) {
      flags.values_[arg.substr(3)] = "false";
      continue;
    }
    if (!is_known(arg)) {
      flags.errors_.push_back("unknown flag --" + arg);
      continue;
    }
    if (!has_value) {
      // Take the next token as the value unless it looks like a flag;
      // bare boolean flags read as "true".
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    flags.values_[arg] = std::move(value);
  }
  return flags;
}

bool Flags::has(const std::string& name) const {
  return values_.contains(name);
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

long Flags::get_int(const std::string& name, long fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long value = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    errors_.push_back("flag --" + name + " expects an integer, got '" +
                      it->second + "'");
    return fallback;
  }
  return value;
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    errors_.push_back("flag --" + name + " expects a number, got '" +
                      it->second + "'");
    return fallback;
  }
  return value;
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  if (it->second == "true" || it->second == "1" || it->second == "yes") {
    return true;
  }
  if (it->second == "false" || it->second == "0" || it->second == "no") {
    return false;
  }
  errors_.push_back("flag --" + name + " expects a boolean, got '" +
                    it->second + "'");
  return fallback;
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string CsvWriter::str() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out << ',';
      out << escape(cells[i]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << str();
  return static_cast<bool>(out);
}

}  // namespace lpvs::common

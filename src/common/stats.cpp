#include "lpvs/common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace lpvs::common {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width);
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_lo(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

double Histogram::fraction(std::size_t bin) const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(counts_[bin]) /
                           static_cast<double>(total_);
}

std::size_t Histogram::mode_bin() const {
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  if (peak == 0) peak = 1;
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out << '[';
    out.width(8);
    out << bin_lo(b) << ',';
    out.width(8);
    out << bin_hi(b) << ") ";
    out << std::string(bar, '#');
    out << ' ' << counts_[b] << '\n';
  }
  return out.str();
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  LinearFit fit;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return fit;
  double sx = 0.0;
  double sy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double resid = ys[i] - (fit.slope * xs[i] + fit.intercept);
      ss_res += resid * resid;
    }
    fit.r_squared = 1.0 - ss_res / syy;
  } else {
    fit.r_squared = 1.0;  // all ys identical and perfectly fit by slope 0
  }
  return fit;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  RunningStats x_stats;
  RunningStats y_stats;
  for (std::size_t i = 0; i < n; ++i) {
    x_stats.add(xs[i]);
    y_stats.add(ys[i]);
  }
  double cov = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (xs[i] - x_stats.mean()) * (ys[i] - y_stats.mean());
  }
  cov /= static_cast<double>(n - 1);
  const double denom = x_stats.stddev() * y_stats.stddev();
  return denom == 0.0 ? 0.0 : cov / denom;
}

}  // namespace lpvs::common

#include "lpvs/common/status.hpp"

namespace lpvs::common {

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kInfeasible:
      return "INFEASIBLE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string out = lpvs::common::to_string(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace lpvs::common

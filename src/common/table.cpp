#include "lpvs/common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <utility>

namespace lpvs::common {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << "  ";
      out << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    out << '\n';
  };
  emit_row(header_);
  std::vector<std::string> rule(header_.size());
  for (std::size_t c = 0; c < rule.size(); ++c) {
    rule[c] = std::string(widths[c], '-');
  }
  emit_row(rule);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace lpvs::common

// Synthetic Twitch-like live-streaming trace (SVI-A).
//
// The paper drives its emulator with a 2014 Twitch dataset: 5-minute
// sampling, filtered to channels lasting <= 10 hours, leaving 1,566 live
// channels and 4,761 live video sessions (Fig. 5 shows the session-duration
// histogram).  The raw dataset is not redistributable, so this module
// synthesizes a trace with the published aggregates: the same channel and
// session counts, 5-minute sampling, a heavy-tailed duration distribution
// capped at 10 h, Zipf channel popularity, and per-slot viewer-count curves
// with ramp-up/decay.  The scheduler only ever consumes per-slot
// viewer/bitrate/chunk streams, so an aggregate-faithful synthesis
// exercises the exact code paths the original data would.
#pragma once

#include <cstdint>
#include <vector>

#include "lpvs/common/rng.hpp"
#include "lpvs/common/stats.hpp"
#include "lpvs/common/units.hpp"
#include "lpvs/media/video.hpp"

namespace lpvs::trace {

/// One live channel of the platform.
struct Channel {
  common::ChannelId id;
  media::Genre genre = media::Genre::kIrlChat;
  double bitrate_mbps = 3.0;
  /// Popularity rank weight (Zipf); larger means more viewers.
  double popularity = 1.0;
};

/// One live session of a channel: a contiguous run of 5-minute slots.
struct Session {
  common::SessionId id;
  common::ChannelId channel;
  int start_slot = 0;
  /// Viewer count sampled at each slot of the session; size = duration in
  /// slots (<= 120 given the 10-hour cap).
  std::vector<int> viewers;

  int duration_slots() const { return static_cast<int>(viewers.size()); }
  double duration_minutes() const { return duration_slots() * 5.0; }
  int end_slot() const { return start_slot + duration_slots(); }
  bool live_at(int slot) const {
    return slot >= start_slot && slot < end_slot();
  }
  int viewers_at(int slot) const {
    return live_at(slot) ? viewers[static_cast<std::size_t>(slot - start_slot)]
                         : 0;
  }
};

struct TraceConfig {
  int channel_count = 1566;   ///< paper: 1,566 live channels
  int session_count = 4761;   ///< paper: 4,761 live video sessions
  int max_duration_slots = 120;  ///< 10-hour filter at 5-min sampling
  int horizon_slots = 288;       ///< one day of 5-minute slots
  /// Log-normal duration parameters in minutes (median ~ exp(mu)).
  double duration_log_mean = 4.5;   ///< median ~ 90 minutes
  double duration_log_sigma = 0.85;
  /// Zipf exponent for channel popularity.
  double zipf_exponent = 1.15;
  /// Mean viewers of the most popular channel.
  double top_channel_viewers = 2000.0;
};

/// The generated dataset.
class Trace {
 public:
  /// Empty trace (no channels, zero horizon) — the inert value a
  /// StatusOr<Trace> holds on the error path.  Every populated trace comes
  /// from the main constructor below.
  Trace() = default;

  Trace(std::vector<Channel> channels, std::vector<Session> sessions,
        int horizon_slots);

  const std::vector<Channel>& channels() const { return channels_; }
  const std::vector<Session>& sessions() const { return sessions_; }
  int horizon_slots() const { return horizon_slots_; }

  const Channel& channel(common::ChannelId id) const;

  /// Sessions live at the given slot.
  std::vector<const Session*> live_sessions(int slot) const;

  /// Total viewers across all sessions at the given slot.
  long total_viewers(int slot) const;

  /// Fig. 5: histogram of session durations (minutes), 12 x 50-minute bins
  /// spanning (0, 600].
  common::Histogram duration_histogram(std::size_t bins = 12) const;

  /// Summary stats of session durations in minutes.
  common::RunningStats duration_stats() const;

 private:
  std::vector<Channel> channels_;
  std::vector<Session> sessions_;
  int horizon_slots_ = 0;
};

/// Deterministic trace synthesis from a seed.
class TwitchLikeGenerator {
 public:
  explicit TwitchLikeGenerator(TraceConfig config = {}) : config_(config) {}

  Trace generate(std::uint64_t seed) const;

  const TraceConfig& config() const { return config_; }

 private:
  TraceConfig config_;
};

}  // namespace lpvs::trace

// Text serialization for traces (satellite of the fleet PR): a generated
// trace can be saved once and replayed by later runs — federation tests,
// benches, external tooling — without regenerating it.
//
// Format, line-oriented and diff-friendly:
//
//   lpvs-trace v1 horizon=288
//   C <id> <genre> <bitrate_mbps> <popularity>
//   S <id> <channel> <start_slot> <n> <v1> ... <vn>
//
// load() returns StatusOr instead of aborting: a missing file or a foreign
// header is kInvalidArgument/kNotFound, and *malformed body lines are
// skipped, not fatal* — real trace dumps grow truncated tails and stray
// comments, and one bad row should not discard the other 4,760 sessions.
// Each skipped line increments lpvs_trace_skipped_lines_total on the
// optional registry, so silent decay is visible in the metrics.
#pragma once

#include <iosfwd>
#include <string>

#include "lpvs/common/status.hpp"
#include "lpvs/obs/metrics.hpp"
#include "lpvs/trace/trace.hpp"

namespace lpvs::trace {

/// Writes the trace in the v1 text format.
void save(const Trace& trace, std::ostream& out);
common::Status save_file(const Trace& trace, const std::string& path);

/// Parses the v1 text format.  Malformed or out-of-range body lines are
/// skipped (counted on `registry` when given); a bad header, an empty
/// channel set, or a session referencing no valid channel fails the load.
common::StatusOr<Trace> load(std::istream& in,
                             obs::MetricsRegistry* registry = nullptr);
common::StatusOr<Trace> load_file(const std::string& path,
                                  obs::MetricsRegistry* registry = nullptr);

}  // namespace lpvs::trace

#include "lpvs/trace/trace.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace lpvs::trace {
namespace {

/// Streaming-ladder bitrates typical of live platforms (Mbps).
constexpr double kBitrateLadder[] = {1.0, 1.8, 2.5, 3.5, 5.0};

/// Session viewer-count envelope: quick ramp-up, plateau, slow decay.
double session_shape(double progress) {
  if (progress < 0.15) return 0.4 + 4.0 * progress;          // ramp to 1.0
  if (progress < 0.75) return 1.0;                           // plateau
  return 1.0 - 0.8 * (progress - 0.75) / 0.25;               // decay to 0.2
}

}  // namespace

Trace::Trace(std::vector<Channel> channels, std::vector<Session> sessions,
             int horizon_slots)
    : channels_(std::move(channels)),
      sessions_(std::move(sessions)),
      horizon_slots_(horizon_slots) {
  assert(horizon_slots_ > 0);
}

const Channel& Trace::channel(common::ChannelId id) const {
  assert(id.value < channels_.size());
  return channels_[id.value];
}

std::vector<const Session*> Trace::live_sessions(int slot) const {
  std::vector<const Session*> live;
  for (const Session& s : sessions_) {
    if (s.live_at(slot)) live.push_back(&s);
  }
  return live;
}

long Trace::total_viewers(int slot) const {
  long total = 0;
  for (const Session& s : sessions_) total += s.viewers_at(slot);
  return total;
}

common::Histogram Trace::duration_histogram(std::size_t bins) const {
  common::Histogram hist(0.0, 600.0, bins);
  for (const Session& s : sessions_) hist.add(s.duration_minutes());
  return hist;
}

common::RunningStats Trace::duration_stats() const {
  common::RunningStats stats;
  for (const Session& s : sessions_) stats.add(s.duration_minutes());
  return stats;
}

Trace TwitchLikeGenerator::generate(std::uint64_t seed) const {
  common::Rng rng(seed);
  const TraceConfig& cfg = config_;
  assert(cfg.channel_count > 0 && cfg.session_count > 0);

  std::vector<Channel> channels;
  channels.reserve(static_cast<std::size_t>(cfg.channel_count));
  for (int c = 0; c < cfg.channel_count; ++c) {
    Channel channel;
    channel.id = common::ChannelId{static_cast<std::uint32_t>(c)};
    channel.genre = static_cast<media::Genre>(
        rng.uniform_int(0, media::kGenreCount - 1));
    channel.bitrate_mbps = kBitrateLadder[static_cast<std::size_t>(
        rng.uniform_int(0, std::ssize(kBitrateLadder) - 1))];
    // Popularity by rank: channel 0 is rank 1.  Shuffling is unnecessary
    // since channel ids are arbitrary labels.
    channel.popularity =
        1.0 / std::pow(static_cast<double>(c + 1), cfg.zipf_exponent);
    channels.push_back(channel);
  }

  std::vector<Session> sessions;
  sessions.reserve(static_cast<std::size_t>(cfg.session_count));
  for (int s = 0; s < cfg.session_count; ++s) {
    Session session;
    session.id = common::SessionId{static_cast<std::uint32_t>(s)};
    // Popular channels also stream more sessions: pick via Zipf over ranks.
    const auto channel_rank = rng.zipf(cfg.channel_count, cfg.zipf_exponent);
    session.channel =
        common::ChannelId{static_cast<std::uint32_t>(channel_rank - 1)};

    // Heavy-tailed duration, capped by the paper's 10-hour filter.
    const double minutes = rng.lognormal(cfg.duration_log_mean,
                                         cfg.duration_log_sigma);
    const int slots = std::clamp(
        static_cast<int>(std::lround(minutes / 5.0)), 1,
        cfg.max_duration_slots);
    session.start_slot = static_cast<int>(
        rng.uniform_int(0, std::max(0, cfg.horizon_slots - slots)));

    const Channel& channel = channels[session.channel.value];
    const double base_viewers =
        cfg.top_channel_viewers * channel.popularity;
    session.viewers.resize(static_cast<std::size_t>(slots));
    for (int k = 0; k < slots; ++k) {
      const double progress =
          slots > 1 ? static_cast<double>(k) / static_cast<double>(slots - 1)
                    : 0.5;
      const double mean = base_viewers * session_shape(progress);
      const double noisy = rng.normal(mean, 0.15 * mean + 0.5);
      session.viewers[static_cast<std::size_t>(k)] =
          std::max(1, static_cast<int>(std::lround(noisy)));
    }
    sessions.push_back(std::move(session));
  }

  return Trace(std::move(channels), std::move(sessions), cfg.horizon_slots);
}

}  // namespace lpvs::trace

#include "lpvs/trace/trace_io.hpp"

#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace lpvs::trace {
namespace {

constexpr const char* kHeaderTag = "lpvs-trace";
constexpr const char* kVersionTag = "v1";

}  // namespace

void save(const Trace& trace, std::ostream& out) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << kHeaderTag << ' ' << kVersionTag << " horizon="
      << trace.horizon_slots() << '\n';
  for (const Channel& channel : trace.channels()) {
    out << "C " << channel.id.value << ' '
        << static_cast<int>(channel.genre) << ' ' << channel.bitrate_mbps
        << ' ' << channel.popularity << '\n';
  }
  for (const Session& session : trace.sessions()) {
    out << "S " << session.id.value << ' ' << session.channel.value << ' '
        << session.start_slot << ' ' << session.viewers.size();
    for (const int v : session.viewers) out << ' ' << v;
    out << '\n';
  }
}

common::Status save_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return common::Status::InvalidArgument("cannot open trace file for write: " +
                                           path);
  }
  save(trace, out);
  out.flush();
  if (!out) return common::Status::Internal("short write saving trace: " + path);
  return common::Status::Ok();
}

common::StatusOr<Trace> load(std::istream& in,
                             obs::MetricsRegistry* registry) {
  obs::Counter* skipped = nullptr;
  if (registry != nullptr) {
    skipped = &registry->counter(
        "lpvs_trace_skipped_lines_total",
        "Malformed trace lines skipped (not fatal) during load");
  }

  std::string header;
  if (!std::getline(in, header)) {
    return common::Status::InvalidArgument("empty trace stream");
  }
  std::istringstream header_stream(header);
  std::string tag;
  std::string version;
  std::string horizon_field;
  header_stream >> tag >> version >> horizon_field;
  if (tag != kHeaderTag) {
    return common::Status::InvalidArgument("not an lpvs trace stream");
  }
  if (version != kVersionTag) {
    return common::Status::InvalidArgument("unsupported trace version: " +
                                           version);
  }
  int horizon = 0;
  if (horizon_field.rfind("horizon=", 0) != 0 ||
      (horizon = std::atoi(horizon_field.c_str() + 8)) <= 0) {
    return common::Status::InvalidArgument("bad trace horizon field");
  }

  std::vector<Channel> channels;
  std::vector<Session> sessions;
  const auto skip = [&] {
    if (skipped != nullptr) skipped->add(1);
  };

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string kind;
    row >> kind;
    if (kind == "C") {
      Channel channel;
      std::uint32_t id = 0;
      int genre = -1;
      if (!(row >> id >> genre >> channel.bitrate_mbps >>
            channel.popularity) ||
          genre < 0 || genre >= media::kGenreCount ||
          channel.bitrate_mbps <= 0.0) {
        skip();
        continue;
      }
      // Channels are addressed by index; out-of-order rows would silently
      // rewire every session, so they are skipped instead.
      if (id != channels.size()) {
        skip();
        continue;
      }
      channel.id = common::ChannelId{id};
      channel.genre = static_cast<media::Genre>(genre);
      channels.push_back(channel);
    } else if (kind == "S") {
      Session session;
      std::uint32_t id = 0;
      std::uint32_t channel = 0;
      std::size_t count = 0;
      if (!(row >> id >> channel >> session.start_slot >> count) ||
          channel >= channels.size() || session.start_slot < 0 ||
          count == 0) {
        skip();
        continue;
      }
      session.viewers.reserve(count);
      bool ok = true;
      for (std::size_t i = 0; i < count; ++i) {
        int viewers = 0;
        if (!(row >> viewers) || viewers < 0) {
          ok = false;
          break;
        }
        session.viewers.push_back(viewers);
      }
      if (!ok) {
        skip();
        continue;
      }
      session.id = common::SessionId{id};
      session.channel = common::ChannelId{channel};
      sessions.push_back(std::move(session));
    } else {
      skip();
    }
  }

  if (channels.empty()) {
    return common::Status::InvalidArgument("trace has no valid channels");
  }
  return Trace(std::move(channels), std::move(sessions), horizon);
}

common::StatusOr<Trace> load_file(const std::string& path,
                                  obs::MetricsRegistry* registry) {
  std::ifstream in(path);
  if (!in) return common::Status::NotFound("trace file not found: " + path);
  return load(in, registry);
}

}  // namespace lpvs::trace

// Battery model (SIV-C).  Tracks remaining energy of a device, supplies the
// energy status e_{n,m}(kappa) driving the anxiety function, and enforces
// the physical invariants the property tests check: level in [0, 1],
// monotone non-increasing during playback.
#pragma once

#include <cassert>

#include "lpvs/common/units.hpp"

namespace lpvs::battery {

class Battery {
 public:
  Battery() = default;

  /// `capacity` is the full-charge energy; `initial_fraction` in [0, 1].
  Battery(common::MilliwattHours capacity, double initial_fraction);

  /// Remaining energy.
  common::MilliwattHours remaining() const { return remaining_; }
  common::MilliwattHours capacity() const { return capacity_; }

  /// Battery level as a fraction in [0, 1] (the paper's energy status).
  double fraction() const;

  /// Battery level as a percentage in [0, 100].
  double percent() const { return fraction() * 100.0; }

  bool empty() const { return remaining_.value <= 0.0; }

  /// True when the level is at or below the given percentage threshold
  /// (the paper calls <= 40% users "low-battery users" in Fig. 9).
  bool at_or_below_percent(double threshold) const {
    return percent() <= threshold;
  }

  /// Drains energy for drawing `power` over `duration`; clamps at zero and
  /// reports the energy actually drawn (less than requested only if the
  /// battery died mid-interval).
  common::MilliwattHours drain(common::Milliwatts power,
                               common::Seconds duration);

  /// Direct energy withdrawal (used by the compacted-model cross-checks).
  common::MilliwattHours drain_energy(common::MilliwattHours amount);

  /// How long the battery lasts at a constant draw.
  common::Seconds time_to_empty(common::Milliwatts power) const;

 private:
  common::MilliwattHours capacity_{10000.0};
  common::MilliwattHours remaining_{5000.0};
};

}  // namespace lpvs::battery

#include "lpvs/battery/battery.hpp"

#include <algorithm>

namespace lpvs::battery {

Battery::Battery(common::MilliwattHours capacity, double initial_fraction)
    : capacity_(capacity),
      remaining_{capacity.value * std::clamp(initial_fraction, 0.0, 1.0)} {
  assert(capacity.value > 0.0);
}

double Battery::fraction() const {
  if (capacity_.value <= 0.0) return 0.0;
  return std::clamp(remaining_.value / capacity_.value, 0.0, 1.0);
}

common::MilliwattHours Battery::drain(common::Milliwatts power,
                                      common::Seconds duration) {
  return drain_energy(common::energy(power, duration));
}

common::MilliwattHours Battery::drain_energy(common::MilliwattHours amount) {
  const double drawn =
      std::clamp(amount.value, 0.0, std::max(remaining_.value, 0.0));
  remaining_.value -= drawn;
  return {drawn};
}

common::Seconds Battery::time_to_empty(common::Milliwatts power) const {
  if (power.value <= 0.0) return {1e18};  // effectively forever
  return {remaining_.value / power.value * 3600.0};
}

}  // namespace lpvs::battery

#include "lpvs/solver/revised_lp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lpvs::solver {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::uint8_t kAtLower = 0;
constexpr std::uint8_t kAtUpper = 1;
constexpr std::uint8_t kBasic = 2;

}  // namespace

bool RevisedLpSolver::load(const LpProblem& problem) {
  const std::size_t n = problem.num_vars();
  const std::size_t m = problem.num_rows();
  if (problem.upper.size() != n || problem.rhs.size() != m) return false;
  for (const auto& row : problem.rows) {
    if (row.size() != n) return false;
  }
  for (double u : problem.upper) {
    if (std::isnan(u) || !(u >= 0.0)) return false;
  }
  for (double b : problem.rhs) {
    if (!std::isfinite(b)) return false;
  }
  n_ = n;
  m_ = m;
  total_ = n + m;
  cols_.assign(n * m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      cols_[j * m + i] = problem.rows[i][j];
    }
  }
  obj_ = problem.objective;
  rhs_ = problem.rhs;
  problem_upper_ = problem.upper;
  lower_.assign(total_, 0.0);
  upper_.assign(total_, kInf);
  for (std::size_t j = 0; j < n; ++j) upper_[j] = problem.upper[j];
  basis_.assign(m, 0);
  state_.assign(total_, kAtLower);
  binv_.assign(m * m, 0.0);
  xb_.assign(m, 0.0);
  y_.assign(m, 0.0);
  w_.assign(m, 0.0);
  pivots_since_refactor_ = 0;
  return true;
}

void RevisedLpSolver::set_bounds(std::size_t var, double lower, double upper) {
  lower_[var] = lower;
  upper_[var] = upper;
}

void RevisedLpSolver::reset_bounds() {
  for (std::size_t j = 0; j < n_; ++j) {
    lower_[j] = 0.0;
    upper_[j] = problem_upper_[j];
  }
}

double RevisedLpSolver::column_entry(std::size_t var, std::size_t row) const {
  if (var < n_) return cols_[var * m_ + row];
  return var - n_ == row ? 1.0 : 0.0;
}

double RevisedLpSolver::nonbasic_value(std::size_t var) const {
  return state_[var] == kAtUpper ? upper_[var] : lower_[var];
}

void RevisedLpSolver::compute_column(std::size_t var,
                                     std::vector<double>& w) const {
  if (var < n_) {
    const double* col = &cols_[var * m_];
    for (std::size_t i = 0; i < m_; ++i) {
      double v = 0.0;
      const double* brow = &binv_[i * m_];
      for (std::size_t k = 0; k < m_; ++k) v += brow[k] * col[k];
      w[i] = v;
    }
  } else {
    const std::size_t r = var - n_;
    for (std::size_t i = 0; i < m_; ++i) w[i] = binv_[i * m_ + r];
  }
}

bool RevisedLpSolver::refactorize() {
  // Gauss-Jordan inversion of the basis matrix with partial pivoting,
  // matching the dense solver's invert() numerics.
  std::vector<double> a(m_ * m_, 0.0);
  for (std::size_t c = 0; c < m_; ++c) {
    for (std::size_t i = 0; i < m_; ++i) {
      a[i * m_ + c] = column_entry(basis_[c], i);
    }
  }
  std::vector<double> inv(m_ * m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) inv[i * m_ + i] = 1.0;
  for (std::size_t col = 0; col < m_; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < m_; ++r) {
      if (std::fabs(a[r * m_ + col]) > std::fabs(a[pivot * m_ + col])) {
        pivot = r;
      }
    }
    if (std::fabs(a[pivot * m_ + col]) < 1e-12) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < m_; ++c) {
        std::swap(a[pivot * m_ + c], a[col * m_ + c]);
        std::swap(inv[pivot * m_ + c], inv[col * m_ + c]);
      }
    }
    const double scale = a[col * m_ + col];
    for (std::size_t c = 0; c < m_; ++c) {
      a[col * m_ + c] /= scale;
      inv[col * m_ + c] /= scale;
    }
    for (std::size_t r = 0; r < m_; ++r) {
      if (r == col) continue;
      const double factor = a[r * m_ + col];
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < m_; ++c) {
        a[r * m_ + c] -= factor * a[col * m_ + c];
        inv[r * m_ + c] -= factor * inv[col * m_ + c];
      }
    }
  }
  binv_ = std::move(inv);
  pivots_since_refactor_ = 0;
  return true;
}

void RevisedLpSolver::compute_basic_values() {
  // x_B = Binv * (b - sum over nonbasic j of A_j * value_j).
  std::vector<double> residual = rhs_;
  for (std::size_t j = 0; j < total_; ++j) {
    if (state_[j] == kBasic) continue;
    const double v = nonbasic_value(j);
    if (v == 0.0) continue;
    if (j < n_) {
      const double* col = &cols_[j * m_];
      for (std::size_t i = 0; i < m_; ++i) residual[i] -= col[i] * v;
    } else {
      residual[j - n_] -= v;
    }
  }
  for (std::size_t i = 0; i < m_; ++i) {
    double v = 0.0;
    const double* brow = &binv_[i * m_];
    for (std::size_t k = 0; k < m_; ++k) v += brow[k] * residual[k];
    xb_[i] = v;
  }
}

void RevisedLpSolver::eta_update(const std::vector<double>& w,
                                 std::size_t row) {
  // B^-1 <- E * B^-1 where E is the eta matrix of the pivot column.
  const double inv_pivot = 1.0 / w[row];
  double* prow = &binv_[row * m_];
  for (std::size_t k = 0; k < m_; ++k) prow[k] *= inv_pivot;
  for (std::size_t i = 0; i < m_; ++i) {
    if (i == row) continue;
    const double f = w[i];
    if (f == 0.0) continue;
    double* irow = &binv_[i * m_];
    for (std::size_t k = 0; k < m_; ++k) irow[k] -= f * prow[k];
  }
  ++pivots_since_refactor_;
}

bool RevisedLpSolver::primal_feasible() const {
  const double ftol = options_.tolerance * 100.0;
  for (std::size_t i = 0; i < m_; ++i) {
    const std::size_t b = basis_[i];
    if (xb_[i] < lower_[b] - ftol) return false;
    if (xb_[i] > upper_[b] + ftol) return false;
  }
  return true;
}

void RevisedLpSolver::compute_y(const std::vector<double>& costs) {
  for (std::size_t k = 0; k < m_; ++k) y_[k] = 0.0;
  for (std::size_t i = 0; i < m_; ++i) {
    const double cb = costs[basis_[i]];
    if (cb == 0.0) continue;
    const double* brow = &binv_[i * m_];
    for (std::size_t k = 0; k < m_; ++k) y_[k] += cb * brow[k];
  }
}

double RevisedLpSolver::reduced_cost(std::size_t var,
                                     const std::vector<double>& costs) const {
  double d = costs[var];
  if (var < n_) {
    const double* col = &cols_[var * m_];
    for (std::size_t k = 0; k < m_; ++k) d -= y_[k] * col[k];
  } else {
    d -= y_[var - n_];
  }
  return d;
}

std::vector<double> RevisedLpSolver::shifted_costs() {
  // Cost shifting: subtract each nonbasic variable's dual infeasibility
  // from its cost so the current basis is dual feasible by construction.
  // The dual phase then runs under the shifted vector; the infeasibility
  // certificate it may produce is objective-independent, and the final
  // primal phase restores the true costs.  When the basis is already dual
  // feasible (the hot B&B re-solve path) this is the identity.
  const double tol = options_.tolerance;
  std::vector<double> costs(total_, 0.0);
  for (std::size_t j = 0; j < n_; ++j) costs[j] = obj_[j];
  compute_y(costs);
  for (std::size_t j = 0; j < total_; ++j) {
    if (state_[j] == kBasic) continue;
    const double d = reduced_cost(j, costs);
    if (state_[j] == kAtLower ? d > tol : d < -tol) costs[j] -= d;
  }
  return costs;
}

LpStatus RevisedLpSolver::primal_phase(const std::vector<double>& costs,
                                       int& iters) {
  const double tol = options_.tolerance;
  int degenerate_streak = 0;
  while (true) {
    if (iters >= options_.max_iterations) return LpStatus::kIterationLimit;
    compute_y(costs);

    // Pricing: Dantzig normally, Bland (lowest index) when degenerate.
    const bool bland = degenerate_streak > 64;
    std::ptrdiff_t entering = -1;
    double best_score = tol;
    for (std::size_t j = 0; j < total_; ++j) {
      if (state_[j] == kBasic) continue;
      if (!(upper_[j] - lower_[j] > 0.0)) continue;  // fixed in place
      const double d = reduced_cost(j, costs);
      const bool improving = state_[j] == kAtLower ? d > tol : d < -tol;
      if (!improving) continue;
      if (bland) {
        entering = static_cast<std::ptrdiff_t>(j);
        break;
      }
      if (std::fabs(d) > best_score) {
        best_score = std::fabs(d);
        entering = static_cast<std::ptrdiff_t>(j);
      }
    }
    if (entering < 0) return LpStatus::kOptimal;
    ++iters;

    const auto e = static_cast<std::size_t>(entering);
    const double sigma = state_[e] == kAtLower ? 1.0 : -1.0;
    compute_column(e, w_);

    // Ratio test: basic i moves by -sigma * w_i per unit of t.
    const double span = upper_[e] - lower_[e];
    double t_max = span;  // bound-flip distance, may be +inf
    std::ptrdiff_t leaving = -1;
    bool leaving_to_upper = false;
    for (std::size_t i = 0; i < m_; ++i) {
      const double delta = -sigma * w_[i];
      const std::size_t bi = basis_[i];
      if (delta < -tol) {  // decreases toward its lower bound
        const double limit = std::max(xb_[i] - lower_[bi], 0.0) / -delta;
        if (limit < t_max - tol || (limit < t_max + tol && leaving < 0)) {
          t_max = std::min(t_max, limit);
          leaving = static_cast<std::ptrdiff_t>(i);
          leaving_to_upper = false;
        }
      } else if (delta > tol) {  // increases toward its upper bound
        const double hi = upper_[bi];
        if (!std::isfinite(hi)) continue;
        const double limit = std::max(hi - xb_[i], 0.0) / delta;
        if (limit < t_max - tol || (limit < t_max + tol && leaving < 0)) {
          t_max = std::min(t_max, limit);
          leaving = static_cast<std::ptrdiff_t>(i);
          leaving_to_upper = true;
        }
      }
    }
    if (!std::isfinite(t_max)) return LpStatus::kUnbounded;
    degenerate_streak = t_max < tol ? degenerate_streak + 1 : 0;

    if (leaving < 0 || (std::isfinite(span) && t_max >= span - tol)) {
      // Bound flip: the entering variable traverses its whole span.
      for (std::size_t i = 0; i < m_; ++i) xb_[i] -= sigma * w_[i] * span;
      state_[e] = state_[e] == kAtLower ? kAtUpper : kAtLower;
      continue;
    }

    // Pivot: basis[leaving] exits to a bound, e becomes basic.
    const auto lrow = static_cast<std::size_t>(leaving);
    for (std::size_t i = 0; i < m_; ++i) xb_[i] -= sigma * w_[i] * t_max;
    const double enter_value = nonbasic_value(e) + sigma * t_max;
    const std::size_t bl = basis_[lrow];
    state_[bl] = leaving_to_upper ? kAtUpper : kAtLower;
    basis_[lrow] = static_cast<std::uint32_t>(e);
    state_[e] = kBasic;
    xb_[lrow] = enter_value;
    eta_update(w_, lrow);
    if (pivots_since_refactor_ >= options_.refactor_interval) {
      if (!refactorize()) return LpStatus::kMalformed;
      compute_basic_values();
    }
  }
}

LpStatus RevisedLpSolver::dual_phase(const std::vector<double>& costs,
                                     int& iters) {
  const double tol = options_.tolerance;
  const double ftol = tol * 100.0;
  int degenerate_streak = 0;
  while (true) {
    if (iters >= options_.max_iterations) return LpStatus::kIterationLimit;

    // Leaving: the basic variable with the largest bound violation (lowest
    // row index under the Bland fallback).
    const bool bland = degenerate_streak > 64;
    std::ptrdiff_t r = -1;
    bool below = false;
    double worst = ftol;
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t b = basis_[i];
      if (xb_[i] < lower_[b] - ftol) {
        const double v = lower_[b] - xb_[i];
        if (v > worst) {
          worst = v;
          r = static_cast<std::ptrdiff_t>(i);
          below = true;
        }
      } else if (xb_[i] > upper_[b] + ftol) {
        const double v = xb_[i] - upper_[b];
        if (v > worst) {
          worst = v;
          r = static_cast<std::ptrdiff_t>(i);
          below = false;
        }
      }
      if (bland && r >= 0) break;
    }
    if (r < 0) return LpStatus::kOptimal;  // primal feasible: phase done
    ++iters;

    const auto row = static_cast<std::size_t>(r);
    compute_y(costs);
    const double* rho = &binv_[row * m_];

    // Entering: dual ratio test over the movable nonbasic candidates whose
    // pivot direction repairs the violation.  All candidate ratios share a
    // sign, so min |d/alpha| keeps every reduced cost on its feasible side;
    // ties prefer larger |alpha| (stability) then lowest index, and the
    // Bland fallback drops the |alpha| preference.
    std::ptrdiff_t entering = -1;
    double best_ratio = 0.0;
    double best_alpha = 0.0;
    for (std::size_t j = 0; j < total_; ++j) {
      if (state_[j] == kBasic) continue;
      if (!(upper_[j] - lower_[j] > 0.0)) continue;  // fixed: cannot move
      double alpha;
      if (j < n_) {
        const double* col = &cols_[j * m_];
        alpha = 0.0;
        for (std::size_t k = 0; k < m_; ++k) alpha += rho[k] * col[k];
      } else {
        alpha = rho[j - n_];
      }
      const bool candidate =
          below ? (state_[j] == kAtLower ? alpha < -tol : alpha > tol)
                : (state_[j] == kAtLower ? alpha > tol : alpha < -tol);
      if (!candidate) continue;
      const double ratio = std::fabs(reduced_cost(j, costs) / alpha);
      const bool better =
          entering < 0 || ratio < best_ratio - tol ||
          (!bland && ratio < best_ratio + tol &&
           std::fabs(alpha) > best_alpha);
      if (better) {
        entering = static_cast<std::ptrdiff_t>(j);
        best_ratio = ratio;
        best_alpha = std::fabs(alpha);
      }
    }
    if (entering < 0) return LpStatus::kInfeasible;  // Farkas certificate

    const auto e = static_cast<std::size_t>(entering);
    compute_column(e, w_);
    const double alpha_e = w_[row];
    if (std::fabs(alpha_e) < 1e-12) return LpStatus::kMalformed;

    // The leaving variable lands exactly on its violated bound.
    const std::size_t bl = basis_[row];
    const double target = below ? lower_[bl] : upper_[bl];
    const double delta_e = (xb_[row] - target) / alpha_e;
    const double enter_value = nonbasic_value(e) + delta_e;
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == row) continue;
      xb_[i] -= w_[i] * delta_e;
    }
    state_[bl] = below ? kAtLower : kAtUpper;
    basis_[row] = static_cast<std::uint32_t>(e);
    state_[e] = kBasic;
    xb_[row] = enter_value;
    eta_update(w_, row);
    degenerate_streak = best_ratio < tol ? degenerate_streak + 1 : 0;
    if (pivots_since_refactor_ >= options_.refactor_interval) {
      if (!refactorize()) return LpStatus::kMalformed;
      compute_basic_values();
    }
  }
}

LpSolution RevisedLpSolver::run() {
  int iters = 0;
  if (!refactorize()) return extract(LpStatus::kMalformed, iters);
  compute_basic_values();
  if (!primal_feasible()) {
    const std::vector<double> costs = shifted_costs();
    const LpStatus status = dual_phase(costs, iters);
    if (status != LpStatus::kOptimal) return extract(status, iters);
  }
  std::vector<double> costs(total_, 0.0);
  for (std::size_t j = 0; j < n_; ++j) costs[j] = obj_[j];
  return extract(primal_phase(costs, iters), iters);
}

LpSolution RevisedLpSolver::solve() {
  for (std::size_t j = 0; j < total_; ++j) state_[j] = kAtLower;
  for (std::size_t i = 0; i < m_; ++i) {
    basis_[i] = static_cast<std::uint32_t>(n_ + i);
    state_[n_ + i] = kBasic;
  }
  return run();
}

LpSolution RevisedLpSolver::resolve(const SimplexBasis& from) {
  if (from.basic.size() != m_ || from.state.size() != total_) return solve();
  std::size_t basic_count = 0;
  for (std::size_t j = 0; j < total_; ++j) {
    if (from.state[j] == kBasic) ++basic_count;
  }
  if (basic_count != m_) return solve();
  for (std::size_t i = 0; i < m_; ++i) {
    const std::uint32_t b = from.basic[i];
    if (b >= total_ || from.state[b] != kBasic) return solve();
  }
  basis_ = from.basic;
  state_ = from.state;
  // A nonbasic variable cannot sit at an infinite upper bound.
  for (std::size_t j = 0; j < total_; ++j) {
    if (state_[j] == kAtUpper && !std::isfinite(upper_[j])) {
      state_[j] = kAtLower;
    }
  }
  LpSolution solution = run();
  if (solution.status == LpStatus::kMalformed) {
    // Singular under the new coefficients (or numeric breakdown): the
    // snapshot is useless, solve cold.  Deterministic — singularity is a
    // pure function of the inputs.
    return solve();
  }
  return solution;
}

SimplexBasis RevisedLpSolver::basis() const {
  SimplexBasis snapshot;
  snapshot.basic = basis_;
  snapshot.state = state_;
  return snapshot;
}

LpSolution RevisedLpSolver::extract(LpStatus status, int iters) const {
  LpSolution solution;
  solution.status = status;
  solution.iterations = iters;
  if (status != LpStatus::kOptimal) return solution;
  solution.x.assign(n_, 0.0);
  for (std::size_t j = 0; j < n_; ++j) {
    if (state_[j] != kBasic) solution.x[j] = nonbasic_value(j);
  }
  for (std::size_t i = 0; i < m_; ++i) {
    const std::size_t b = basis_[i];
    if (b < n_) solution.x[b] = std::clamp(xb_[i], lower_[b], upper_[b]);
  }
  solution.objective = 0.0;
  for (std::size_t j = 0; j < n_; ++j) {
    solution.objective += obj_[j] * solution.x[j];
  }
  return solution;
}

}  // namespace lpvs::solver

#include "lpvs/solver/solve_cache.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <numeric>

namespace lpvs::solver {
namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

void mix(std::uint64_t& h, std::uint64_t word) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (word >> (8 * byte)) & 0xFFu;
    h *= kFnvPrime;
  }
}

void mix(std::uint64_t& h, double value) {
  // +0.0 and -0.0 compare equal but hash differently; canonicalize so two
  // numerically identical problems cannot miss on a signed zero.
  if (value == 0.0) value = 0.0;
  mix(h, std::bit_cast<std::uint64_t>(value));
}

/// Density of item j under `problem` — the same value/normalized-cost
/// ordering GreedySolver uses, so repair and cold greedy agree on what a
/// "good" item is.  Negative means "never pick".
double item_density(const BinaryProgram& problem, std::size_t j) {
  if (!problem.is_eligible(j) || problem.objective[j] <= 0.0) return -1.0;
  double normalized_cost = 1e-12;
  for (std::size_t i = 0; i < problem.rows.size(); ++i) {
    if (problem.rhs[i] > 0.0) {
      normalized_cost += problem.rows[i][j] / problem.rhs[i];
    } else if (problem.rows[i][j] > 0.0) {
      return -1.0;  // positive cost against a zero/negative capacity
    }
  }
  return problem.objective[j] / normalized_cost;
}

}  // namespace

std::uint64_t fingerprint(const BinaryProgram& problem) {
  std::uint64_t h = kFnvOffset;
  mix(h, static_cast<std::uint64_t>(problem.num_vars()));
  mix(h, static_cast<std::uint64_t>(problem.rows.size()));
  for (double c : problem.objective) mix(h, c);
  for (const std::vector<double>& row : problem.rows) {
    for (double a : row) mix(h, a);
  }
  for (double b : problem.rhs) mix(h, b);
  mix(h, static_cast<std::uint64_t>(problem.eligible.size()));
  for (std::uint8_t e : problem.eligible) {
    mix(h, static_cast<std::uint64_t>(e != 0 ? 1 : 0));
  }
  return h;
}

std::uint64_t budget_fingerprint(
    const BranchAndBoundSolver::Options& options) {
  std::uint64_t h = kFnvOffset;
  mix(h, static_cast<std::uint64_t>(options.max_nodes));
  mix(h, options.tolerance);
  mix(h, options.relative_gap);
  mix(h, static_cast<std::uint64_t>(options.lp.max_iterations));
  mix(h, options.lp.tolerance);
  // The relaxation engine changes node counts and can change tie-broken
  // assignments, so a dense entry must never exact-hit a revised lookup.
  // Mixed only for non-default engines to keep every pre-existing dense
  // fingerprint bit-stable.
  if (options.engine != LpEngine::kDense) {
    mix(h, static_cast<std::uint64_t>(options.engine));
  }
  return h;
}

std::uint64_t combine_fingerprints(std::uint64_t problem_fp,
                                   std::uint64_t budget_fp) {
  if (budget_fp == 0) return problem_fp;
  std::uint64_t h = problem_fp;
  mix(h, budget_fp);
  return h;
}

std::vector<int> repair_assignment(const BinaryProgram& problem,
                                   const std::vector<int>& stale) {
  const std::size_t n = problem.num_vars();
  const std::size_t m = problem.rows.size();
  std::vector<int> x(n, 0);

  std::vector<double> density(n);
  for (std::size_t j = 0; j < n; ++j) density[j] = item_density(problem, j);

  // Keep the stale picks that still make sense under the new problem.
  std::vector<double> used(m, 0.0);
  for (std::size_t j = 0; j < n && j < stale.size(); ++j) {
    if (stale[j] == 0 || density[j] < 0.0) continue;
    x[j] = 1;
    for (std::size_t i = 0; i < m; ++i) used[i] += problem.rows[i][j];
  }

  // Evict the worst-density survivors until every row fits.  Coefficients
  // are non-negative, so each eviction only ever reduces usage.
  auto overloaded = [&] {
    for (std::size_t i = 0; i < m; ++i) {
      if (used[i] > problem.rhs[i] + 1e-9) return true;
    }
    return false;
  };
  while (overloaded()) {
    std::ptrdiff_t worst = -1;
    for (std::size_t j = 0; j < n; ++j) {
      if (!x[j]) continue;
      if (worst < 0 || density[j] < density[static_cast<std::size_t>(worst)]) {
        worst = static_cast<std::ptrdiff_t>(j);
      }
    }
    if (worst < 0) break;  // nothing selected yet a row overflows: rhs < 0
    const auto w = static_cast<std::size_t>(worst);
    x[w] = 0;
    for (std::size_t i = 0; i < m; ++i) used[i] -= problem.rows[i][w];
  }

  // Re-pack leftover capacity with the best unselected items (the slot
  // deltas that freed or added room).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return density[a] > density[b];
  });
  for (std::size_t j : order) {
    if (x[j] || density[j] < 0.0) continue;
    bool fits = true;
    for (std::size_t i = 0; i < m; ++i) {
      if (used[i] + problem.rows[i][j] > problem.rhs[i] + 1e-9) {
        fits = false;
        break;
      }
    }
    if (!fits) continue;
    x[j] = 1;
    for (std::size_t i = 0; i < m; ++i) used[i] += problem.rows[i][j];
  }

  // Swap polish: first-improvement 1-for-1 swaps close most of the gap the
  // slot deltas opened in the marginal band near the capacity boundary.
  // Incumbent quality is what makes warm starts prune — an incumbent a few
  // tenths of a percent off the optimum cuts the B&B tree by a third or
  // more, while one a few percent off loses to the root LP rounding and
  // saves nothing.  The work budget (feasibility probes, ~O(n) per pass)
  // keeps repair linear-ish for fleet-sized problems.
  long budget = 64 * static_cast<long>(n) + 256;
  for (int pass = 0; pass < 4 && budget > 0; ++pass) {
    bool improved = false;
    for (std::size_t j : order) {
      if (budget <= 0) break;
      if (x[j] || density[j] < 0.0) continue;
      // Scanning selected items by ascending objective means the first
      // feasible swap found is also the largest-gain one.
      std::ptrdiff_t take_out = -1;
      double best_gain = 1e-9;
      for (std::size_t k = 0; k < n && budget > 0; ++k) {
        if (!x[k]) continue;
        const double gain = problem.objective[j] - problem.objective[k];
        if (gain <= best_gain) continue;
        --budget;
        bool ok = true;
        for (std::size_t i = 0; i < m; ++i) {
          if (used[i] - problem.rows[i][k] + problem.rows[i][j] >
              problem.rhs[i] + 1e-9) {
            ok = false;
            break;
          }
        }
        if (ok) {
          best_gain = gain;
          take_out = static_cast<std::ptrdiff_t>(k);
        }
      }
      if (take_out >= 0) {
        const auto k = static_cast<std::size_t>(take_out);
        x[k] = 0;
        x[j] = 1;
        for (std::size_t i = 0; i < m; ++i) {
          used[i] += problem.rows[i][j] - problem.rows[i][k];
        }
        improved = true;
      }
    }
    if (!improved) break;
  }
  return x;
}

SolveCache::Hint SolveCache::lookup(std::uint64_t key,
                                    const BinaryProgram& problem,
                                    std::uint64_t problem_fingerprint) {
  Hint hint;
  IlpSolution previous;
  bool have_previous = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.lookups;
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (it->second.fingerprint == problem_fingerprint &&
          it->second.solution.x.size() == problem.num_vars()) {
        ++stats_.exact_hits;
        hint.exact_hit = true;
        hint.solution = it->second.solution;
        return hint;
      }
      previous = it->second.solution;
      hint.basis = it->second.basis;
      have_previous = true;
      ++stats_.warm_starts;
    } else {
      ++stats_.cold_starts;
    }
  }
  // Repair outside the lock: it reads only the caller's problem and the
  // copied predecessor.
  if (have_previous) {
    hint.incumbent = repair_assignment(problem, previous.x);
  }
  return hint;
}

void SolveCache::store(std::uint64_t key, std::uint64_t problem_fingerprint,
                       const IlpSolution& solution, const BasisHint* basis) {
  if (solution.status != IlpStatus::kOptimal &&
      solution.status != IlpStatus::kFeasible) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[key];
  entry.fingerprint = problem_fingerprint;
  entry.solution = solution;
  entry.basis = basis != nullptr ? *basis : BasisHint{};
}

std::vector<int> SolveCache::previous_assignment(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return {};
  return it->second.solution.x;
}

SolveCacheStats SolveCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t SolveCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void SolveCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  stats_ = SolveCacheStats{};
}

std::vector<SolveCache::ExportedEntry> SolveCache::export_entries() const {
  std::vector<ExportedEntry> exported;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    exported.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) {
      exported.push_back({key, entry.fingerprint, entry.solution});
    }
  }
  std::sort(exported.begin(), exported.end(),
            [](const ExportedEntry& a, const ExportedEntry& b) {
              return a.key < b.key;
            });
  return exported;
}

void SolveCache::import_entries(const std::vector<ExportedEntry>& entries) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const ExportedEntry& exported : entries) {
    Entry& entry = entries_[exported.key];
    entry.fingerprint = exported.fingerprint;
    entry.solution = exported.solution;
  }
}

CachedSolve solve_with_cache(const BranchAndBoundSolver& solver,
                             const BinaryProgram& problem, SolveCache* cache,
                             std::uint64_t key, std::uint64_t budget_fp) {
  CachedSolve result;
  if (cache == nullptr) {
    result.solution = solver.solve(problem);
    return result;
  }
  const std::uint64_t fp =
      combine_fingerprints(fingerprint(problem), budget_fp);
  SolveCache::Hint hint = cache->lookup(key, problem, fp);
  if (hint.exact_hit) {
    result.solution = std::move(hint.solution);
    result.solution.nodes_explored = 0;  // no search happened this slot
    result.exact_hit = true;
    return result;
  }
  // Basis memory rides along with the warm start: the revised engine
  // re-solves the root relaxation dually from the previous slot's basis
  // and writes this slot's back; the dense engine clears it.
  BasisHint basis = std::move(hint.basis);
  if (!hint.incumbent.empty()) {
    result.warm_started = true;
    result.incumbent_objective = problem.value(hint.incumbent);
    result.solution =
        solver.solve_with_memory(problem, &hint.incumbent, &basis);
  } else {
    result.solution = solver.solve_with_memory(problem, nullptr, &basis);
  }
  cache->store(key, fp, result.solution, &basis);
  return result;
}

}  // namespace lpvs::solver

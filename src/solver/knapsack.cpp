#include "lpvs/solver/knapsack.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lpvs::solver {

IlpSolution KnapsackDpSolver::solve(const BinaryProgram& problem) const {
  IlpSolution solution;
  if (problem.rows.size() != 1 || problem.rhs.size() != 1 ||
      problem.rhs[0] < 0.0) {
    solution.status = IlpStatus::kMalformed;
    return solution;
  }
  const std::size_t n = problem.num_vars();
  const double capacity = problem.rhs[0];
  const int resolution = std::max(options_.resolution, 1);

  if (capacity <= 0.0) {
    // Only weightless valuable items can be taken.
    solution.x.assign(n, 0);
    for (std::size_t j = 0; j < n; ++j) {
      if (problem.is_eligible(j) && problem.objective[j] > 0.0 &&
          problem.rows[0][j] <= 0.0) {
        solution.x[j] = 1;
      }
    }
    solution.objective = problem.value(solution.x);
    solution.status = IlpStatus::kOptimal;
    return solution;
  }

  // Discretize: weight buckets rounded *up* so any DP-feasible selection
  // is feasible for the real capacities too.
  std::vector<int> weights(n, 0);
  std::vector<bool> usable(n, false);
  const double bucket =
      capacity > 0.0 ? capacity / static_cast<double>(resolution) : 1.0;
  for (std::size_t j = 0; j < n; ++j) {
    if (!problem.is_eligible(j) || problem.objective[j] <= 0.0) continue;
    const double w = problem.rows[0][j];
    if (w < 0.0) {
      solution.status = IlpStatus::kMalformed;
      return solution;
    }
    const double scaled = std::ceil(w / bucket - 1e-12);
    if (scaled > static_cast<double>(resolution)) continue;  // never fits
    weights[j] = std::max(0, static_cast<int>(scaled));
    usable[j] = true;
  }

  // Classic 1D value table over capacity buckets, with per-item parent
  // tracking via a bitset-free backward reconstruction: we store, for each
  // item, the table *before* processing it is too memory-hungry; instead
  // keep choice bits packed per item in a rolling fashion.
  //
  // Memory: (n * (resolution+1)) bits packed into 64-bit words.
  const std::size_t columns = static_cast<std::size_t>(resolution) + 1;
  std::vector<double> value(columns, 0.0);
  const std::size_t words_per_item = (columns + 63) / 64;
  std::vector<std::uint64_t> taken(words_per_item * n, 0);

  for (std::size_t j = 0; j < n; ++j) {
    if (!usable[j]) continue;
    const int w = weights[j];
    const double v = problem.objective[j];
    std::uint64_t* bits = &taken[j * words_per_item];
    for (std::size_t c = columns; c-- > static_cast<std::size_t>(w);) {
      const double candidate = value[c - static_cast<std::size_t>(w)] + v;
      if (candidate > value[c]) {
        value[c] = candidate;
        bits[c / 64] |= std::uint64_t{1} << (c % 64);
      }
    }
  }

  // Reconstruct from the best column.
  std::size_t best_column = 0;
  for (std::size_t c = 1; c < columns; ++c) {
    if (value[c] > value[best_column]) best_column = c;
  }
  solution.x.assign(n, 0);
  std::size_t column = best_column;
  for (std::size_t j = n; j-- > 0;) {
    if (!usable[j]) continue;
    const std::uint64_t* bits = &taken[j * words_per_item];
    if (bits[column / 64] >> (column % 64) & 1) {
      solution.x[j] = 1;
      column -= static_cast<std::size_t>(weights[j]);
    }
  }
  solution.objective = problem.value(solution.x);
  solution.status = IlpStatus::kOptimal;
  assert(problem.feasible(solution.x));
  return solution;
}

}  // namespace lpvs::solver

#include "lpvs/solver/lp.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace lpvs::solver {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class VarState : unsigned char { kAtLower, kAtUpper, kBasic };

/// Inverts an m x m matrix in place via Gauss-Jordan with partial pivoting.
/// Returns false on (numerical) singularity.
bool invert(std::vector<std::vector<double>>& a) {
  const std::size_t m = a.size();
  std::vector<std::vector<double>> inv(m, std::vector<double>(m, 0.0));
  for (std::size_t i = 0; i < m; ++i) inv[i][i] = 1.0;
  for (std::size_t col = 0; col < m; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < m; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[pivot], a[col]);
    std::swap(inv[pivot], inv[col]);
    const double scale = a[col][col];
    for (std::size_t c = 0; c < m; ++c) {
      a[col][c] /= scale;
      inv[col][c] /= scale;
    }
    for (std::size_t r = 0; r < m; ++r) {
      if (r == col) continue;
      const double factor = a[r][col];
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < m; ++c) {
        a[r][c] -= factor * a[col][c];
        inv[r][c] -= factor * inv[col][c];
      }
    }
  }
  a = std::move(inv);
  return true;
}

}  // namespace

bool LpProblem::well_formed() const {
  if (upper.size() != objective.size()) return false;
  if (rhs.size() != rows.size()) return false;
  for (const auto& row : rows) {
    if (row.size() != objective.size()) return false;
  }
  for (double b : rhs) {
    if (!(b >= 0.0)) return false;  // slack basis must be feasible
  }
  for (double u : upper) {
    if (!(u >= 0.0) || std::isnan(u)) return false;  // +inf allowed
  }
  return true;
}

std::string to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kUnbounded:
      return "unbounded";
    case LpStatus::kIterationLimit:
      return "iteration-limit";
    case LpStatus::kMalformed:
      return "malformed";
    case LpStatus::kInfeasible:
      return "infeasible";
  }
  return "unknown";
}

std::string to_string(LpEngine engine) {
  switch (engine) {
    case LpEngine::kDense:
      return "dense";
    case LpEngine::kRevised:
      return "revised";
  }
  return "unknown";
}

common::Status to_status(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return common::Status::Ok();
    case LpStatus::kUnbounded:
      return common::Status::Internal("lp relaxation unbounded");
    case LpStatus::kIterationLimit:
      return common::Status::ResourceExhausted("simplex iteration limit");
    case LpStatus::kMalformed:
      return common::Status::InvalidArgument("malformed lp problem");
    case LpStatus::kInfeasible:
      return common::Status::Infeasible("no point satisfies the lp rows");
  }
  return common::Status::Internal("unknown lp status");
}

LpSolution LpSolver::solve(const LpProblem& problem) const {
  LpSolution solution;
  if (!problem.well_formed()) {
    solution.status = LpStatus::kMalformed;
    return solution;
  }
  const std::size_t n = problem.num_vars();
  const std::size_t m = problem.num_rows();
  const std::size_t total = n + m;  // structural + slack variables
  const double tol = options_.tolerance;

  // Column access: structural columns come from `rows`; slack j has a
  // single 1.0 in row j.
  auto column_entry = [&](std::size_t var, std::size_t row) -> double {
    if (var < n) return problem.rows[row][var];
    return var - n == row ? 1.0 : 0.0;
  };
  auto cost = [&](std::size_t var) -> double {
    return var < n ? problem.objective[var] : 0.0;
  };
  auto upper = [&](std::size_t var) -> double {
    return var < n ? problem.upper[var] : kInfinity;
  };

  std::vector<VarState> state(total, VarState::kAtLower);
  std::vector<std::size_t> basis(m);
  for (std::size_t i = 0; i < m; ++i) {
    basis[i] = n + i;
    state[n + i] = VarState::kBasic;
  }

  std::vector<double> basic_value(m, 0.0);
  std::vector<std::vector<double>> binv;

  auto refresh_basis = [&]() -> bool {
    binv.assign(m, std::vector<double>(m, 0.0));
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        binv[i][j] = column_entry(basis[j], i);
      }
    }
    if (!invert(binv)) return false;
    // x_B = Binv * (b - A_N x_N); only at-upper nonbasics contribute.
    std::vector<double> residual = problem.rhs;
    for (std::size_t j = 0; j < total; ++j) {
      if (state[j] != VarState::kAtUpper) continue;
      const double value = upper(j);
      for (std::size_t i = 0; i < m; ++i) {
        residual[i] -= column_entry(j, i) * value;
      }
    }
    for (std::size_t i = 0; i < m; ++i) {
      double v = 0.0;
      for (std::size_t k = 0; k < m; ++k) v += binv[i][k] * residual[k];
      basic_value[i] = v;
    }
    return true;
  };

  if (!refresh_basis()) {
    solution.status = LpStatus::kMalformed;
    return solution;
  }

  int degenerate_streak = 0;
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    // Simplex multipliers y = c_B^T Binv.
    std::vector<double> y(m, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      const double cb = cost(basis[i]);
      if (cb == 0.0) continue;
      for (std::size_t k = 0; k < m; ++k) y[k] += cb * binv[i][k];
    }

    // Pricing: Dantzig normally, Bland (lowest index) when degenerate.
    const bool bland = degenerate_streak > 64;
    std::ptrdiff_t entering = -1;
    double best_score = tol;
    for (std::size_t j = 0; j < total; ++j) {
      if (state[j] == VarState::kBasic) continue;
      double d = cost(j);
      for (std::size_t i = 0; i < m; ++i) {
        const double a = column_entry(j, i);
        if (a != 0.0) d -= y[i] * a;
      }
      const bool improving = state[j] == VarState::kAtLower ? d > tol
                                                            : d < -tol;
      if (!improving) continue;
      if (bland) {
        entering = static_cast<std::ptrdiff_t>(j);
        break;
      }
      if (std::fabs(d) > best_score) {
        best_score = std::fabs(d);
        entering = static_cast<std::ptrdiff_t>(j);
      }
    }

    if (entering < 0) {  // optimal
      solution.status = LpStatus::kOptimal;
      solution.iterations = iter;
      solution.x.assign(n, 0.0);
      for (std::size_t j = 0; j < n; ++j) {
        if (state[j] == VarState::kAtUpper) solution.x[j] = upper(j);
      }
      for (std::size_t i = 0; i < m; ++i) {
        if (basis[i] < n) {
          solution.x[basis[i]] = std::clamp(basic_value[i], 0.0,
                                            upper(basis[i]));
        }
      }
      solution.objective = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        solution.objective += problem.objective[j] * solution.x[j];
      }
      return solution;
    }

    const auto e = static_cast<std::size_t>(entering);
    const double sigma = state[e] == VarState::kAtLower ? 1.0 : -1.0;

    // w = Binv * A_e; basic i moves by -sigma * w_i per unit of t.
    std::vector<double> w(m, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      double v = 0.0;
      for (std::size_t k = 0; k < m; ++k) {
        v += binv[i][k] * column_entry(e, k);
      }
      w[i] = v;
    }

    double t_max = upper(e);  // bound-flip distance (span = upper - 0)
    std::ptrdiff_t leaving = -1;
    bool leaving_at_upper = false;
    for (std::size_t i = 0; i < m; ++i) {
      const double delta = -sigma * w[i];
      if (delta < -tol) {  // basic value decreases toward 0
        const double limit = std::max(basic_value[i], 0.0) / -delta;
        if (limit < t_max - tol ||
            (limit < t_max + tol && leaving < 0)) {
          t_max = std::min(t_max, limit);
          leaving = static_cast<std::ptrdiff_t>(i);
          leaving_at_upper = false;
        }
      } else if (delta > tol) {  // basic value increases toward its upper
        const double ub = upper(basis[i]);
        if (!std::isfinite(ub)) continue;
        const double limit = std::max(ub - basic_value[i], 0.0) / delta;
        if (limit < t_max - tol ||
            (limit < t_max + tol && leaving < 0)) {
          t_max = std::min(t_max, limit);
          leaving = static_cast<std::ptrdiff_t>(i);
          leaving_at_upper = true;
        }
      }
    }

    if (!std::isfinite(t_max)) {
      solution.status = LpStatus::kUnbounded;
      solution.iterations = iter;
      return solution;
    }

    degenerate_streak = t_max < tol ? degenerate_streak + 1 : 0;

    if (leaving < 0 || t_max >= upper(e) - tol) {
      // Bound flip: the entering variable traverses its whole span.
      state[e] = state[e] == VarState::kAtLower ? VarState::kAtUpper
                                                : VarState::kAtLower;
      if (!refresh_basis()) {
        solution.status = LpStatus::kMalformed;
        return solution;
      }
      continue;
    }

    // Pivot: basis[leaving] exits to a bound, e becomes basic.
    const auto leave_index = static_cast<std::size_t>(leaving);
    state[basis[leave_index]] =
        leaving_at_upper ? VarState::kAtUpper : VarState::kAtLower;
    basis[leave_index] = e;
    state[e] = VarState::kBasic;
    if (!refresh_basis()) {
      solution.status = LpStatus::kMalformed;
      return solution;
    }
  }

  solution.status = LpStatus::kIterationLimit;
  solution.iterations = options_.max_iterations;
  return solution;
}

}  // namespace lpvs::solver

#include "lpvs/solver/ilp.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <vector>

#include "lpvs/solver/presolve.hpp"
#include "lpvs/solver/revised_lp.hpp"

namespace lpvs::solver {
namespace {

/// Per-node variable fixing: -1 free, 0 or 1 fixed.
using Fixing = std::vector<signed char>;

struct Node {
  Fixing fixing;
};

/// Builds the LP relaxation of `problem` under `fixing`.  Fixed-to-1
/// variables are substituted out (their cost moves into `base_objective`,
/// their row coefficients into the rhs).  Returns false when the fixings
/// alone already violate a row (all coefficients are non-negative, so a
/// negative adjusted rhs is a proof of infeasibility).
bool build_relaxation(const BinaryProgram& problem, const Fixing& fixing,
                      LpProblem& lp, double& base_objective, double tol) {
  const std::size_t n = problem.num_vars();
  const std::size_t m = problem.rows.size();
  lp.objective = problem.objective;
  lp.rows = problem.rows;
  lp.rhs = problem.rhs;
  lp.upper.assign(n, 1.0);
  base_objective = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const bool forced_zero = !problem.is_eligible(j) || fixing[j] == 0;
    if (forced_zero) {
      lp.upper[j] = 0.0;
      lp.objective[j] = 0.0;
      continue;
    }
    if (fixing[j] == 1) {
      base_objective += problem.objective[j];
      for (std::size_t i = 0; i < m; ++i) {
        lp.rhs[i] -= problem.rows[i][j];
      }
      lp.upper[j] = 0.0;
      lp.objective[j] = 0.0;
    }
  }
  for (double& b : lp.rhs) {
    if (b < -tol) return false;
    b = std::max(b, 0.0);
  }
  return true;
}

}  // namespace

bool BinaryProgram::feasible(const std::vector<int>& x, double tol) const {
  assert(x.size() == num_vars());
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (x[j] != 0 && !is_eligible(j)) return false;
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    double lhs = 0.0;
    for (std::size_t j = 0; j < x.size(); ++j) {
      if (x[j]) lhs += rows[i][j];
    }
    if (lhs > rhs[i] + tol) return false;
  }
  return true;
}

double BinaryProgram::value(const std::vector<int>& x) const {
  double total = 0.0;
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (x[j]) total += objective[j];
  }
  return total;
}

std::string to_string(IlpStatus status) {
  switch (status) {
    case IlpStatus::kOptimal:
      return "optimal";
    case IlpStatus::kFeasible:
      return "feasible";
    case IlpStatus::kInfeasible:
      return "infeasible";
    case IlpStatus::kMalformed:
      return "malformed";
  }
  return "unknown";
}

common::Status to_status(IlpStatus status) {
  switch (status) {
    case IlpStatus::kOptimal:
    case IlpStatus::kFeasible:
      return common::Status::Ok();
    case IlpStatus::kInfeasible:
      return common::Status::Infeasible("no 0/1 point satisfies the rows");
    case IlpStatus::kMalformed:
      return common::Status::InvalidArgument("malformed binary program");
  }
  return common::Status::Internal("unknown ilp status");
}

IlpSolution GreedySolver::solve(const BinaryProgram& problem) const {
  const std::size_t n = problem.num_vars();
  const std::size_t m = problem.rows.size();
  IlpSolution solution;
  solution.x.assign(n, 0);

  // Density = value / sum of capacity-normalized costs.
  std::vector<double> density(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    if (!problem.is_eligible(j) || problem.objective[j] <= 0.0) {
      density[j] = -1.0;
      continue;
    }
    double normalized_cost = 1e-12;
    for (std::size_t i = 0; i < m; ++i) {
      if (problem.rhs[i] > 0.0) {
        normalized_cost += problem.rows[i][j] / problem.rhs[i];
      } else if (problem.rows[i][j] > 0.0) {
        normalized_cost = std::numeric_limits<double>::infinity();
      }
    }
    density[j] = problem.objective[j] / normalized_cost;
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return density[a] > density[b];
  });

  std::vector<double> used(m, 0.0);
  for (std::size_t j : order) {
    if (density[j] < 0.0) continue;
    bool fits = true;
    for (std::size_t i = 0; i < m; ++i) {
      if (used[i] + problem.rows[i][j] > problem.rhs[i] + 1e-9) {
        fits = false;
        break;
      }
    }
    if (!fits) continue;
    solution.x[j] = 1;
    for (std::size_t i = 0; i < m; ++i) used[i] += problem.rows[i][j];
  }
  solution.objective = problem.value(solution.x);
  // Greedy only ever adds items that fit, so the one way the result can be
  // infeasible is a negative rhs rejecting even the all-zeros point.
  solution.status = problem.feasible(solution.x) ? IlpStatus::kFeasible
                                                 : IlpStatus::kInfeasible;
  return solution;
}

IlpSolution ExhaustiveSolver::solve(const BinaryProgram& problem) const {
  IlpSolution solution;
  const std::size_t n = problem.num_vars();
  if (n > max_vars_) {
    solution.status = IlpStatus::kMalformed;
    return solution;
  }
  solution.x.assign(n, 0);
  // Do NOT pre-seed all-zeros as the incumbent: when some rhs[i] < 0 even
  // the empty selection violates that row and the problem is infeasible.
  solution.objective = 0.0;
  solution.status = IlpStatus::kInfeasible;
  bool found_feasible = false;
  std::vector<int> candidate(n, 0);
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    for (std::size_t j = 0; j < n; ++j) {
      candidate[j] = (mask >> j) & 1 ? 1 : 0;
    }
    ++solution.nodes_explored;
    if (!problem.feasible(candidate)) continue;
    const double value = problem.value(candidate);
    if (!found_feasible || value > solution.objective) {
      found_feasible = true;
      solution.objective = value;
      solution.x = candidate;
      solution.status = IlpStatus::kOptimal;
    }
  }
  return solution;
}

IlpSolution BranchAndBoundSolver::solve(const BinaryProgram& problem) const {
  return solve_impl(problem, nullptr, nullptr);
}

IlpSolution BranchAndBoundSolver::solve(
    const BinaryProgram& problem, const std::vector<int>& incumbent) const {
  return solve_impl(problem, &incumbent, nullptr);
}

IlpSolution BranchAndBoundSolver::solve_with_memory(
    const BinaryProgram& problem, const std::vector<int>* incumbent,
    BasisHint* basis_memory) const {
  return solve_impl(problem, incumbent, basis_memory);
}

common::StatusOr<IlpSolution> BranchAndBoundSolver::try_solve(
    const BinaryProgram& problem) const {
  IlpSolution solution = solve_impl(problem, nullptr, nullptr);
  if (common::Status status = to_status(solution.status); !status.ok()) {
    return status;
  }
  return solution;
}

common::StatusOr<IlpSolution> BranchAndBoundSolver::try_solve(
    const BinaryProgram& problem, const std::vector<int>& incumbent) const {
  IlpSolution solution = solve_impl(problem, &incumbent, nullptr);
  if (common::Status status = to_status(solution.status); !status.ok()) {
    return status;
  }
  return solution;
}

IlpSolution BranchAndBoundSolver::solve_impl(
    const BinaryProgram& problem, const std::vector<int>* incumbent,
    BasisHint* basis_memory) const {
  if (options_.engine == LpEngine::kRevised) {
    return solve_revised(problem, incumbent, basis_memory);
  }
  if (basis_memory != nullptr) {
    *basis_memory = BasisHint{};  // dense solves carry no basis forward
  }
  return solve_dense(problem, incumbent);
}

IlpSolution BranchAndBoundSolver::solve_dense(
    const BinaryProgram& problem, const std::vector<int>* incumbent) const {
  const std::size_t n = problem.num_vars();
  const std::size_t m = problem.rows.size();
  const double tol = options_.tolerance;
  IlpSolution best;
  if (incumbent != nullptr && incumbent->size() == n &&
      problem.feasible(*incumbent)) {
    // Warm start: a caller-supplied incumbent (e.g. the previous slot's
    // repaired assignment) replaces the greedy seed and tightens pruning
    // from the first node on.
    best.x = *incumbent;
    best.objective = problem.value(*incumbent);
    best.status = IlpStatus::kFeasible;
  } else {
    best = GreedySolver().solve(problem);  // cold warm start
  }
  best.nodes_explored = 0;

  // LP-guided rounding: floor the relaxation, then greedily pack the
  // remaining fractional/free variables by LP value.  Run at every node so
  // the incumbent tracks the bound closely and pruning stays effective.
  auto try_round = [&](const Fixing& fixing, const std::vector<double>& lp_x) {
    std::vector<int> candidate(n, 0);
    std::vector<double> used(m, 0.0);
    auto fits = [&](std::size_t j) {
      for (std::size_t i = 0; i < m; ++i) {
        if (used[i] + problem.rows[i][j] > problem.rhs[i] + 1e-9) {
          return false;
        }
      }
      return true;
    };
    auto take = [&](std::size_t j) {
      candidate[j] = 1;
      for (std::size_t i = 0; i < m; ++i) used[i] += problem.rows[i][j];
    };
    std::vector<std::pair<double, std::size_t>> rest;
    for (std::size_t j = 0; j < n; ++j) {
      if (fixing[j] == 1) {
        take(j);  // fixed by the node, feasible by construction
      } else if (fixing[j] == -1 && problem.is_eligible(j)) {
        if (lp_x[j] > 1.0 - 1e-6) {
          if (fits(j)) take(j);
        } else if (lp_x[j] > 1e-9 && problem.objective[j] > 0.0) {
          rest.emplace_back(lp_x[j] * problem.objective[j], j);
        }
      }
    }
    std::sort(rest.begin(), rest.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [score, j] : rest) {
      if (fits(j)) take(j);
    }
    const double value = problem.value(candidate);
    if (value > best.objective + tol && problem.feasible(candidate)) {
      best.objective = value;
      best.x = std::move(candidate);
    }
  };

  LpSolver lp_solver(options_.lp);
  std::vector<Node> stack;
  stack.push_back(Node{Fixing(n, -1)});
  long nodes = 0;
  bool exhausted_within_limit = true;

  while (!stack.empty()) {
    if (nodes >= options_.max_nodes) {
      exhausted_within_limit = false;
      break;
    }
    const Node node = std::move(stack.back());
    stack.pop_back();
    ++nodes;

    LpProblem lp;
    double base = 0.0;
    if (!build_relaxation(problem, node.fixing, lp, base, tol)) {
      continue;  // fixings alone violate a capacity row
    }
    const LpSolution relaxed = lp_solver.solve(lp);
    if (!relaxed.optimal()) continue;  // treat as prune (cannot bound)
    const double bound = base + relaxed.objective;
    const double prune_margin =
        std::max(tol, options_.relative_gap * std::fabs(best.objective));
    if (bound <= best.objective + prune_margin) continue;

    try_round(node.fixing, relaxed.x);
    if (bound <= best.objective + prune_margin) continue;

    // Find the most fractional variable.
    std::ptrdiff_t branch_var = -1;
    double best_fractionality = tol;
    for (std::size_t j = 0; j < n; ++j) {
      if (node.fixing[j] != -1 || !problem.is_eligible(j)) continue;
      const double frac = std::fabs(relaxed.x[j] - std::round(relaxed.x[j]));
      if (frac > best_fractionality) {
        best_fractionality = frac;
        branch_var = static_cast<std::ptrdiff_t>(j);
      }
    }
    if (branch_var < 0) continue;  // integral: try_round already recorded it

    // Branch: explore x=1 first (pushed last, popped first).
    Node down = node;
    down.fixing[static_cast<std::size_t>(branch_var)] = 0;
    Node up = std::move(node);
    up.fixing[static_cast<std::size_t>(branch_var)] = 1;
    stack.push_back(std::move(down));
    stack.push_back(std::move(up));
  }

  best.nodes_explored = nodes;
  if (!problem.feasible(best.x)) {
    // Only reachable when some rhs[i] < 0: the greedy fallback returned
    // the (infeasible) all-zeros point and every node pruned at the root.
    best.status = IlpStatus::kInfeasible;
  } else {
    best.status =
        exhausted_within_limit ? IlpStatus::kOptimal : IlpStatus::kFeasible;
  }
  return best;
}

IlpSolution BranchAndBoundSolver::solve_revised(
    const BinaryProgram& problem, const std::vector<int>* incumbent,
    BasisHint* basis_memory) const {
  const std::size_t n = problem.num_vars();
  const double tol = options_.tolerance;
  IlpSolution out;

  PresolveResult pre = presolve_binary_program(problem, tol);
  if (pre.malformed) {
    out.status = IlpStatus::kMalformed;
    return out;
  }
  if (pre.infeasible) {
    // Some rhs < -tol: even the all-zeros point violates a row.  Report it
    // immediately — in particular a budget-truncated solve must say
    // kInfeasible here, never hand back a stale incumbent.
    out.status = IlpStatus::kInfeasible;
    out.x.assign(n, 0);
    out.nodes_explored = 0;
    if (basis_memory != nullptr) *basis_memory = BasisHint{};
    return out;
  }

  const BinaryProgram& red = pre.reduced;
  const std::size_t rn = red.num_vars();
  const std::size_t rm = red.rows.size();

  if (rn == 0) {
    // Presolve decided everything.
    out.x = expand_solution(pre, {});
    out.objective = problem.value(out.x);
    out.nodes_explored = 0;
    out.status = problem.feasible(out.x) ? IlpStatus::kOptimal
                                         : IlpStatus::kInfeasible;
    if (basis_memory != nullptr) *basis_memory = BasisHint{};
    return out;
  }

  // Incumbent seeding in reduced space.  A feasible full-space incumbent
  // projects to a reduced-feasible point (fixed-to-one variables have zero
  // coefficients on every active row), and the projection never loses
  // objective: fix-0 strips only non-positive or infeasible entries and
  // fix-1 only adds profitable ones.
  IlpSolution best_r;
  bool seeded = false;
  if (incumbent != nullptr && incumbent->size() == n &&
      problem.feasible(*incumbent)) {
    std::vector<int> projected(rn, 0);
    for (std::size_t r = 0; r < rn; ++r) {
      projected[r] = (*incumbent)[pre.var_map[r]];
    }
    if (red.feasible(projected)) {
      best_r.x = std::move(projected);
      best_r.objective = red.value(best_r.x);
      best_r.status = IlpStatus::kFeasible;
      seeded = true;
    }
  }
  if (!seeded) best_r = GreedySolver().solve(red);

  // The relaxation engine holds the reduced problem once; branch fixings
  // are bound overrides, never a rebuild.
  LpProblem lp;
  lp.objective = red.objective;
  lp.rows = red.rows;
  lp.rhs = red.rhs;
  lp.upper.assign(rn, 1.0);
  RevisedLpSolver::Options lp_options;
  lp_options.max_iterations = options_.lp.max_iterations;
  lp_options.tolerance = options_.lp.tolerance;
  RevisedLpSolver engine(lp_options);
  if (!engine.load(lp)) {
    out.status = IlpStatus::kMalformed;
    return out;
  }

  // Cross-solve root-basis memory: valid only when the caller's previous
  // solve presolved to the same variable/row maps (coefficient values may
  // differ arbitrarily — that delta is what the dual re-solve absorbs).
  const bool reuse_memory = basis_memory != nullptr &&
                            !basis_memory->empty() &&
                            basis_memory->var_map == pre.var_map &&
                            basis_memory->row_map == pre.row_map;

  // LP-guided rounding over the reduced space (mirror of the dense
  // engine's try_round).
  auto try_round = [&](const Fixing& fixing, const std::vector<double>& lp_x) {
    std::vector<int> candidate(rn, 0);
    std::vector<double> used(rm, 0.0);
    auto fits = [&](std::size_t j) {
      for (std::size_t i = 0; i < rm; ++i) {
        if (used[i] + red.rows[i][j] > red.rhs[i] + 1e-9) return false;
      }
      return true;
    };
    auto take = [&](std::size_t j) {
      candidate[j] = 1;
      for (std::size_t i = 0; i < rm; ++i) used[i] += red.rows[i][j];
    };
    std::vector<std::pair<double, std::size_t>> rest;
    for (std::size_t j = 0; j < rn; ++j) {
      if (fixing[j] == 1) {
        take(j);  // fixed by the node, feasible by construction
      } else if (fixing[j] == -1) {
        if (lp_x[j] > 1.0 - 1e-6) {
          if (fits(j)) take(j);
        } else if (lp_x[j] > 1e-9 && red.objective[j] > 0.0) {
          rest.emplace_back(lp_x[j] * red.objective[j], j);
        }
      }
    }
    std::sort(rest.begin(), rest.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [score, j] : rest) {
      if (fits(j)) take(j);
    }
    const double value = red.value(candidate);
    if (value > best_r.objective + tol && red.feasible(candidate)) {
      best_r.objective = value;
      best_r.x = std::move(candidate);
    }
  };

  // Best-first node heap: highest parent bound first, FIFO (sequence
  // number) among ties so exploration order — and with it the node count —
  // is a pure function of the input.
  struct HeapNode {
    double bound;
    std::uint64_t seq;
    Fixing fixing;
    std::shared_ptr<const SimplexBasis> parent_basis;
  };
  auto heap_before = [](const HeapNode& a, const HeapNode& b) {
    if (a.bound != b.bound) return a.bound < b.bound;
    return a.seq > b.seq;  // max-heap: lower seq pops first on bound ties
  };
  std::vector<HeapNode> heap;
  std::uint64_t next_seq = 0;
  heap.push_back(HeapNode{std::numeric_limits<double>::infinity(), next_seq++,
                          Fixing(rn, -1), nullptr});

  long nodes = 0;
  bool exhausted_within_limit = true;
  bool root = true;

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), heap_before);
    HeapNode node = std::move(heap.back());
    heap.pop_back();

    const double prune_margin =
        std::max(tol, options_.relative_gap * std::fabs(best_r.objective));
    if (node.bound <= best_r.objective + prune_margin) {
      continue;  // stale: incumbent moved past it while queued (not counted)
    }
    if (nodes >= options_.max_nodes) {
      exhausted_within_limit = false;
      break;
    }
    ++nodes;

    engine.reset_bounds();
    for (std::size_t j = 0; j < rn; ++j) {
      if (node.fixing[j] != -1) {
        const double v = node.fixing[j] == 1 ? 1.0 : 0.0;
        engine.set_bounds(j, v, v);
      }
    }
    LpSolution relaxed;
    if (node.parent_basis != nullptr) {
      relaxed = engine.resolve(*node.parent_basis);
    } else if (root && reuse_memory) {
      relaxed = engine.resolve(basis_memory->basis);
    } else {
      relaxed = engine.solve();
    }
    if (root) {
      root = false;
      if (basis_memory != nullptr) {
        if (relaxed.optimal()) {
          *basis_memory =
              BasisHint{engine.basis(), pre.var_map, pre.row_map};
        } else {
          *basis_memory = BasisHint{};
        }
      }
    }
    if (!relaxed.optimal()) continue;  // infeasible/limit: prune (counted)
    const double bound = relaxed.objective;
    if (bound <= best_r.objective + prune_margin) continue;

    try_round(node.fixing, relaxed.x);
    if (bound <= best_r.objective + prune_margin) continue;

    // Most fractional variable, lowest index on ties.
    std::ptrdiff_t branch_var = -1;
    double best_fractionality = tol;
    for (std::size_t j = 0; j < rn; ++j) {
      if (node.fixing[j] != -1) continue;
      const double frac = std::fabs(relaxed.x[j] - std::round(relaxed.x[j]));
      if (frac > best_fractionality) {
        best_fractionality = frac;
        branch_var = static_cast<std::ptrdiff_t>(j);
      }
    }
    if (branch_var < 0) continue;  // integral: try_round already recorded it

    // Children inherit this node's optimal basis — one refactorization and
    // typically a couple of dual pivots each instead of a cold solve.
    auto basis = std::make_shared<const SimplexBasis>(engine.basis());
    const auto bv = static_cast<std::size_t>(branch_var);
    HeapNode up{bound, next_seq++, node.fixing, basis};
    up.fixing[bv] = 1;
    HeapNode down{bound, next_seq++, std::move(node.fixing), basis};
    down.fixing[bv] = 0;
    heap.push_back(std::move(up));
    std::push_heap(heap.begin(), heap.end(), heap_before);
    heap.push_back(std::move(down));
    std::push_heap(heap.begin(), heap.end(), heap_before);
  }

  out.x = expand_solution(pre, best_r.x);
  out.objective = problem.value(out.x);
  out.nodes_explored = nodes;
  if (!problem.feasible(out.x)) {
    // Only reachable in the rhs-within-tolerance gray zone where presolve
    // accepts a row that feasible() rejects; mirror the dense verdict.
    out.status = IlpStatus::kInfeasible;
  } else {
    out.status =
        exhausted_within_limit ? IlpStatus::kOptimal : IlpStatus::kFeasible;
  }
  return out;
}

}  // namespace lpvs::solver

#include "lpvs/solver/presolve.hpp"

#include <algorithm>
#include <cstddef>

namespace lpvs::solver {

PresolveResult presolve_binary_program(const BinaryProgram& problem,
                                       double tol) {
  PresolveResult result;
  const std::size_t n = problem.num_vars();
  const std::size_t m = problem.rows.size();
  if (problem.rhs.size() != m ||
      (!problem.eligible.empty() && problem.eligible.size() != n)) {
    result.malformed = true;
    return result;
  }
  for (const auto& row : problem.rows) {
    if (row.size() != n) {
      result.malformed = true;
      return result;
    }
  }
  for (double b : problem.rhs) {
    if (b < -tol) {
      result.infeasible = true;
      return result;
    }
  }

  result.fixed.assign(n, -1);
  std::vector<signed char>& fixed = result.fixed;
  std::vector<std::uint8_t> row_active(m, 1);

  // Constraint (11)'s compacted eligibility mask, plus: a non-positive
  // objective entry can never help a maximization over non-negative rows.
  for (std::size_t j = 0; j < n; ++j) {
    if (!problem.is_eligible(j) || problem.objective[j] <= 0.0) fixed[j] = 0;
  }

  auto zero_on_active_rows = [&](std::size_t j) {
    for (std::size_t i = 0; i < m; ++i) {
      if (row_active[i] && problem.rows[i][j] != 0.0) return false;
    }
    return true;
  };

  // Each pass only ever fixes variables or deactivates rows, so a fixed
  // point arrives within n + m passes; in practice 2-3.  The cap is a
  // safety net, not a truncation anyone should hit.
  bool changed = true;
  for (int pass = 0; changed && pass < 64; ++pass) {
    changed = false;

    // Coefficient domination: a single coefficient larger than its row's
    // rhs means the variable alone overflows the row.
    for (std::size_t i = 0; i < m; ++i) {
      if (!row_active[i]) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (fixed[j] == -1 && problem.rows[i][j] > problem.rhs[i] + tol) {
          fixed[j] = 0;
          changed = true;
        }
      }
    }

    // Variable fixing: a profitable variable consuming nothing on any
    // active row is always worth taking.  (Deactivated rows stay
    // satisfied: their elimination proofs summed over the then-free
    // variables, which included this one.)
    for (std::size_t j = 0; j < n; ++j) {
      if (fixed[j] == -1 && problem.objective[j] > 0.0 &&
          zero_on_active_rows(j)) {
        fixed[j] = 1;
        result.fixed_objective += problem.objective[j];
        changed = true;
      }
    }

    // Trivial-row elimination: a row slack enough to absorb every free
    // variable at once constrains nothing.  Exact compare — conservative.
    for (std::size_t i = 0; i < m; ++i) {
      if (!row_active[i]) continue;
      double free_sum = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (fixed[j] == -1) free_sum += problem.rows[i][j];
      }
      if (free_sum <= problem.rhs[i]) {
        row_active[i] = 0;
        changed = true;
      }
    }

    // Row domination: if A_i / rhs_i >= A_k / rhs_k componentwise over the
    // free variables, satisfying row i implies satisfying row k.  Compared
    // cross-multiplied to avoid division; on mutual domination the lower
    // index survives.
    for (std::size_t i = 0; i < m; ++i) {
      if (!row_active[i] || !(problem.rhs[i] > 0.0)) continue;
      for (std::size_t k = 0; k < m; ++k) {
        if (k == i || !row_active[k] || !(problem.rhs[k] > 0.0)) continue;
        bool i_implies_k = true;
        bool k_implies_i = true;
        for (std::size_t j = 0; j < n; ++j) {
          if (fixed[j] != -1) continue;
          const double scaled_k = problem.rows[k][j] * problem.rhs[i];
          const double scaled_i = problem.rows[i][j] * problem.rhs[k];
          if (scaled_k > scaled_i) i_implies_k = false;
          if (scaled_i > scaled_k) k_implies_i = false;
          if (!i_implies_k && !k_implies_i) break;
        }
        if (i_implies_k && (!k_implies_i || i < k)) {
          row_active[k] = 0;
          changed = true;
        }
      }
    }
  }

  for (std::size_t j = 0; j < n; ++j) {
    if (fixed[j] == -1) {
      result.var_map.push_back(static_cast<std::uint32_t>(j));
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (row_active[i]) {
      result.row_map.push_back(static_cast<std::uint32_t>(i));
    }
  }

  // Assemble the reduced program.  Fixed-to-one variables have zero
  // coefficients on every active row, so the active rhs values carry over
  // unchanged and the reduction is a pure projection.
  BinaryProgram& red = result.reduced;
  const std::size_t rn = result.var_map.size();
  const std::size_t rm = result.row_map.size();
  red.objective.resize(rn);
  for (std::size_t r = 0; r < rn; ++r) {
    red.objective[r] = problem.objective[result.var_map[r]];
  }
  red.rows.assign(rm, std::vector<double>(rn, 0.0));
  red.rhs.resize(rm);
  for (std::size_t i = 0; i < rm; ++i) {
    const std::vector<double>& row = problem.rows[result.row_map[i]];
    for (std::size_t r = 0; r < rn; ++r) {
      red.rows[i][r] = row[result.var_map[r]];
    }
    red.rhs[i] = problem.rhs[result.row_map[i]];
  }
  return result;
}

std::vector<int> expand_solution(const PresolveResult& presolve,
                                 const std::vector<int>& reduced_x) {
  std::vector<int> x(presolve.fixed.size(), 0);
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (presolve.fixed[j] == 1) x[j] = 1;
  }
  const std::size_t rn =
      std::min(presolve.var_map.size(), reduced_x.size());
  for (std::size_t r = 0; r < rn; ++r) {
    x[presolve.var_map[r]] = reduced_x[r];
  }
  return x;
}

}  // namespace lpvs::solver

#include "lpvs/solver/lagrangian.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace lpvs::solver {
namespace {

/// Drops selected items (lowest value per storage unit first) until the
/// storage row is satisfied; the compute row is already feasible because
/// the inner knapsack enforces it.
void repair_storage(const BinaryProgram& problem, std::vector<int>& x) {
  const auto& storage = problem.rows[1];
  const double budget = problem.rhs[1];
  double used = 0.0;
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (x[j]) used += storage[j];
  }
  if (used <= budget + 1e-9) return;
  std::vector<std::size_t> selected;
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (x[j]) selected.push_back(j);
  }
  std::sort(selected.begin(), selected.end(),
            [&](std::size_t a, std::size_t b) {
              const double da =
                  problem.objective[a] / std::max(storage[a], 1e-12);
              const double db =
                  problem.objective[b] / std::max(storage[b], 1e-12);
              return da < db;  // worst storage-density first
            });
  for (std::size_t j : selected) {
    if (used <= budget + 1e-9) break;
    x[j] = 0;
    used -= storage[j];
  }
}

/// Exact optimum of the *fractional* single-row knapsack: greedy by value
/// density with a fractional final item.  Upper-bounds the integer inner
/// problem, so the dual value built from it is a valid bound on the
/// original program (the round-up DP is NOT: its rounded weights shrink
/// the inner feasible region).
double fractional_knapsack_bound(const BinaryProgram& inner) {
  const std::size_t n = inner.num_vars();
  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    if (!inner.is_eligible(j) || inner.objective[j] <= 0.0) continue;
    order.push_back(j);
  }
  const auto& weights = inner.rows[0];
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return inner.objective[a] * std::max(weights[b], 1e-12) >
           inner.objective[b] * std::max(weights[a], 1e-12);
  });
  double remaining = inner.rhs[0];
  double bound = 0.0;
  for (std::size_t j : order) {
    const double w = weights[j];
    if (w <= 1e-12) {
      bound += inner.objective[j];  // weightless value is free
      continue;
    }
    if (w <= remaining) {
      bound += inner.objective[j];
      remaining -= w;
    } else {
      bound += inner.objective[j] * remaining / w;
      break;
    }
  }
  return bound;
}

}  // namespace

LagrangianSolution LagrangianSolver::solve(
    const BinaryProgram& problem) const {
  LagrangianSolution result;
  if (problem.rows.size() != 2) {
    result.incumbent.status = IlpStatus::kMalformed;
    return result;
  }
  const std::size_t n = problem.num_vars();
  const KnapsackDpSolver inner(options_.dp);

  result.incumbent.x.assign(n, 0);
  result.incumbent.objective = 0.0;
  result.incumbent.status = IlpStatus::kFeasible;
  result.upper_bound = std::numeric_limits<double>::infinity();

  double mu = 0.0;
  for (int iter = 0; iter < options_.iterations; ++iter) {
    // Inner single-row knapsack with penalized values.
    BinaryProgram relaxed;
    relaxed.objective.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      relaxed.objective[j] = problem.objective[j] - mu * problem.rows[1][j];
    }
    relaxed.rows = {problem.rows[0]};
    relaxed.rhs = {problem.rhs[0]};
    relaxed.eligible = problem.eligible;
    const IlpSolution relaxed_solution = inner.solve(relaxed);
    if (relaxed_solution.status == IlpStatus::kMalformed) {
      result.incumbent.status = IlpStatus::kMalformed;
      return result;
    }
    ++result.iterations;

    // Valid dual value: the fractional inner optimum dominates the integer
    // one, so L_frac(mu) >= L(mu) >= OPT for every mu >= 0.
    const double dual_value =
        fractional_knapsack_bound(relaxed) + mu * problem.rhs[1];
    if (dual_value < result.upper_bound) {
      result.upper_bound = dual_value;
      result.best_mu = mu;
    }

    // Feasibility + incumbent update (with repair for the storage row).
    std::vector<int> candidate = relaxed_solution.x;
    repair_storage(problem, candidate);
    if (problem.feasible(candidate)) {
      const double value = problem.value(candidate);
      if (value > result.incumbent.objective) {
        result.incumbent.objective = value;
        result.incumbent.x = candidate;
      }
    }

    // Projected subgradient step on mu: g = r1.x* - b1 (violation).
    double storage_used = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (relaxed_solution.x[j]) storage_used += problem.rows[1][j];
    }
    const double g = storage_used - problem.rhs[1];
    if (std::fabs(g) < 1e-12) break;  // storage row tight: done
    const double step =
        options_.step_scale *
        std::max(result.upper_bound - result.incumbent.objective, 1e-6) /
        (g * g);
    mu = std::max(0.0, mu + step * g);
  }
  result.incumbent.nodes_explored = result.iterations;
  return result;
}

}  // namespace lpvs::solver

// Presolve for the per-slot binary program: cheap, provably-safe
// reductions applied before branch-and-bound touches a single LP node.
//
// The slot ILPs produced by phase1_program() have a lot of exploitable
// structure: constraint (11)'s compacted eligibility mask already fixes the
// ineligible devices to zero, non-positive objective entries can never help
// a maximization, a single coefficient larger than its row's rhs dominates
// the variable out of the problem, rows slack enough to absorb every free
// variable are redundant, and one capacity row can dominate another
// outright.  Running these to a fixed point routinely shrinks loose
// instances to the point where the root LP relaxation is already integral
// (a 0-node solve).
//
// Every rule is conservative: reductions never cut off an optimal solution
// of the original program, and expand_solution() lifts a reduced solution
// back losslessly.  Determinism: the reductions are pure index-ordered
// scans, so identical inputs always produce identical maps — which is what
// lets SolveCache basis memory key on (var_map, row_map) equality.
#pragma once

#include <cstdint>
#include <vector>

#include "lpvs/solver/ilp.hpp"

namespace lpvs::solver {

/// Outcome of presolving a BinaryProgram.
struct PresolveResult {
  bool malformed = false;   ///< shapes inconsistent; nothing else is valid
  bool infeasible = false;  ///< some rhs < -tol: no binary point fits

  /// Per-original-variable fixing: -1 free, 0 fixed to zero, 1 fixed to one.
  std::vector<signed char> fixed;
  /// Objective contributed by the variables fixed to one.
  double fixed_objective = 0.0;

  std::vector<std::uint32_t> var_map;  ///< reduced var -> original var
  std::vector<std::uint32_t> row_map;  ///< reduced row -> original row

  /// The surviving program over the free variables and active rows.  Its
  /// eligibility mask is empty (every surviving variable is eligible).
  BinaryProgram reduced;
};

/// Runs the reduction rules to a fixed point.  `tol` is the feasibility
/// tolerance used for rhs sign checks and domination comparisons.
PresolveResult presolve_binary_program(const BinaryProgram& problem,
                                       double tol);

/// Lifts a reduced-space assignment back to the original index space
/// (fixed variables take their fixed values).
std::vector<int> expand_solution(const PresolveResult& presolve,
                                 const std::vector<int>& reduced_x);

}  // namespace lpvs::solver

// 0/1 integer programming on top of the LP relaxation (lp.hpp).
//
// Phase-1 of the LPVS heuristic is a pure binary program: maximize the
// total power saving subject to the two edge-capacity rows (6)(7), with the
// compacted energy-feasibility constraint (11) acting as a per-device
// eligibility filter.  The paper feeds this to CPLEX/Gurobi; we provide an
// exact branch-and-bound over our own simplex, plus a greedy heuristic and
// an exhaustive enumerator used as ground truth in tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lpvs/common/status.hpp"
#include "lpvs/solver/lp.hpp"
#include "lpvs/solver/revised_lp.hpp"

namespace lpvs::solver {

/// max c.x  s.t.  A x <= b,  x_j in {0,1},  x_j = 0 where !eligible[j].
/// All row coefficients must be non-negative (true for capacity rows).
struct BinaryProgram {
  std::vector<double> objective;
  std::vector<std::vector<double>> rows;
  std::vector<double> rhs;
  std::vector<std::uint8_t> eligible;  ///< empty means all eligible

  std::size_t num_vars() const { return objective.size(); }
  bool is_eligible(std::size_t j) const {
    return eligible.empty() || eligible[j] != 0;
  }
  /// Feasibility of a concrete selection against all rows.
  bool feasible(const std::vector<int>& x, double tol = 1e-9) const;
  /// Objective value of a concrete selection.
  double value(const std::vector<int>& x) const;
};

enum class IlpStatus {
  kOptimal,
  kFeasible,      ///< node limit hit; best incumbent returned
  kInfeasible,    ///< no 0/1 point satisfies the rows.  With non-negative
                  ///< row coefficients this happens exactly when some
                  ///< rhs[i] < 0, which makes even all-zeros infeasible.
  kMalformed,
};

std::string to_string(IlpStatus status);

/// Canonical-status view of an ILP outcome.  kOptimal *and* kFeasible map
/// to OK — a node-limit incumbent is a usable schedule, and the precise
/// status stays on IlpSolution::status.  kInfeasible maps to kInfeasible,
/// kMalformed to kInvalidArgument.
common::Status to_status(IlpStatus status);

struct IlpSolution {
  IlpStatus status = IlpStatus::kMalformed;
  std::vector<int> x;
  double objective = 0.0;
  long nodes_explored = 0;

  bool optimal() const { return status == IlpStatus::kOptimal; }
};

/// Exact branch-and-bound with LP bounding, most-fractional branching, and
/// a greedy warm start.  Two relaxation engines (see LpEngine):
///
///   kDense    depth-first, branch-up-first, per-node dense LP from
///             scratch — the historical path, kept bit-for-bit as the
///             differential oracle.
///   kRevised  presolve + best-first node heap + per-node dual-simplex
///             re-solve from the parent basis (RevisedLpSolver), with
///             optional cross-solve root-basis memory (BasisHint).
///
/// Both engines are deterministic: node counts and objectives are pure
/// functions of (problem, options, incumbent, basis memory) — no wall
/// clocks, no thread-count dependence — which is what keeps SolveCache
/// budget fingerprints and the degradation ladder's node budgets stable.
/// The returned objective additionally never depends on the incumbent or
/// the basis memory (they only steer pruning); the differential tests
/// enforce this.
class BranchAndBoundSolver {
 public:
  struct Options {
    long max_nodes = 500'000;
    double tolerance = 1e-7;
    /// Prune nodes whose bound is within this relative gap of the
    /// incumbent.  0 gives a fully exact solve; schedulers use a small
    /// positive gap (e.g. 1e-5) to avoid chasing ties through an
    /// exponential frontier of equivalent optima.
    double relative_gap = 0.0;
    /// Which per-node relaxation engine to run.  Defaults to the dense
    /// oracle; scheduler_ilp_defaults() selects kRevised for the serving
    /// hot path.
    LpEngine engine = LpEngine::kDense;
    LpSolver::Options lp;
  };

  BranchAndBoundSolver() : BranchAndBoundSolver(Options{}) {}
  explicit BranchAndBoundSolver(Options options) : options_(options) {}

  /// Cold solve: the incumbent is seeded by GreedySolver.
  IlpSolution solve(const BinaryProgram& problem) const;

  /// Warm-started solve: `incumbent` (typically the previous slot's
  /// assignment repaired by solver::repair_assignment) replaces the greedy
  /// warm start.  It must be sized num_vars() and feasible; otherwise the
  /// solver silently falls back to the greedy seed.  The incumbent only
  /// tightens pruning — the returned objective matches a cold solve under
  /// the same options (the differential tests enforce this).
  IlpSolution solve(const BinaryProgram& problem,
                    const std::vector<int>& incumbent) const;

  /// Status-typed solve: OK carries the solution (optimal or node-limit
  /// incumbent), non-OK carries why there is none (kInfeasible,
  /// kInvalidArgument).  Preferred over inspecting IlpSolution::status at
  /// call sites that propagate errors.
  common::StatusOr<IlpSolution> try_solve(const BinaryProgram& problem) const;
  common::StatusOr<IlpSolution> try_solve(
      const BinaryProgram& problem, const std::vector<int>& incumbent) const;

  /// Full-control solve: optional warm incumbent (nullptr for greedy) plus
  /// optional cross-solve basis memory.  With the revised engine,
  /// `basis_memory` seeds the root relaxation when its presolve maps match
  /// this problem's, and is overwritten with this solve's root basis for
  /// the next slot; with the dense engine it is cleared.  Results never
  /// depend on the memory's content — only the pivot path does.
  IlpSolution solve_with_memory(const BinaryProgram& problem,
                                const std::vector<int>* incumbent,
                                BasisHint* basis_memory) const;

 private:
  IlpSolution solve_impl(const BinaryProgram& problem,
                         const std::vector<int>* incumbent,
                         BasisHint* basis_memory) const;
  IlpSolution solve_dense(const BinaryProgram& problem,
                          const std::vector<int>* incumbent) const;
  IlpSolution solve_revised(const BinaryProgram& problem,
                            const std::vector<int>* incumbent,
                            BasisHint* basis_memory) const;

  Options options_;
};

/// Density greedy: sorts by objective divided by the normalized sum of row
/// costs, admits greedily.  The "cannot be optimal" baseline of SIII-C and
/// the cold B&B warm start.  Reports kInfeasible when even its all-zeros
/// fallback violates a row (some rhs[i] < 0).
class GreedySolver {
 public:
  IlpSolution solve(const BinaryProgram& problem) const;
};

/// Brute force over all 2^n selections; ground truth for n <= ~22.
/// Reports kInfeasible when no candidate passes (some rhs[i] < 0).
class ExhaustiveSolver {
 public:
  explicit ExhaustiveSolver(std::size_t max_vars = 22) : max_vars_(max_vars) {}

  IlpSolution solve(const BinaryProgram& problem) const;

 private:
  std::size_t max_vars_;
};

}  // namespace lpvs::solver

// Warm-started solve cache for consecutive-slot binary programs.
//
// The edge scheduler re-solves a Phase-1 ILP every slot for every virtual
// cluster, and adjacent slots differ only by small deltas (battery drain,
// gamma posterior updates, a handful of arrivals/departures).  This module
// exploits that repetition two ways:
//
//   - Exact hit: each problem is fingerprinted (a 64-bit hash over its
//     coefficient bit patterns).  When a stream re-submits a bit-identical
//     problem the stored solution is returned verbatim, skipping the solve
//     entirely — sound because BranchAndBoundSolver is deterministic.
//   - Warm start: otherwise the stream's previous assignment is
//     greedy-repaired against the new problem (drop what no longer fits or
//     is no longer eligible, re-pack leftover capacity by density) and
//     seeded into BranchAndBoundSolver as the incumbent, replacing the
//     cold greedy seed.  A near-optimal incumbent prunes the search from
//     node one; the returned objective is unchanged (differential-tested).
//
// Streams are identified by a caller-chosen 64-bit key (one per virtual
// cluster / problem stream).  The cache is thread-safe; concurrent solves
// for *distinct* keys are deterministic.  Two in-flight solves sharing a
// key race on the stored entry — correctness survives (a stale or fresher
// incumbent only changes pruning), determinism does not, so batch layers
// must keep keys unique within a batch (core::BatchScheduler asserts it).
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "lpvs/solver/ilp.hpp"

namespace lpvs::solver {

/// Order-sensitive 64-bit FNV-1a over the problem's shape and coefficient
/// bit patterns.  Equal fingerprints are treated as equal problems (the
/// 2^-64 collision risk is accepted; a collision can only replay a stored
/// assignment for the wrong problem, and exact hits additionally match on
/// variable count before reuse).
std::uint64_t fingerprint(const BinaryProgram& problem);

/// Fingerprint of the solve budget a solution was produced under (node
/// limit, tolerance, relative gap, LP iteration cap).  The degradation
/// ladder truncates budgets under deadline pressure; mixing the budget into
/// the cache fingerprint keeps a truncated solve from ever replaying as an
/// exact hit for a full-budget solve of the same problem, and vice versa.
std::uint64_t budget_fingerprint(const BranchAndBoundSolver::Options& options);

/// Order-sensitive fingerprint combination.  By convention a zero
/// `budget_fp` means "untagged" and leaves `problem_fp` unchanged, so
/// callers that never vary the budget keep their stored entries valid.
std::uint64_t combine_fingerprints(std::uint64_t problem_fp,
                                   std::uint64_t budget_fp);

/// Greedy-repairs a stale 0/1 assignment against a (slightly different)
/// problem: forces out ineligible and non-positive-value picks, evicts the
/// lowest-density picks until every row fits, re-packs leftover capacity
/// by density, then polishes with budgeted 1-for-1 swap improvement (the
/// marginal band near the capacity boundary is where the slot deltas bite,
/// and incumbent quality there is what makes warm starts prune).  Always
/// returns a feasible selection when one exists (all-zeros), sized
/// problem.num_vars().
std::vector<int> repair_assignment(const BinaryProgram& problem,
                                   const std::vector<int>& stale);

/// Running totals of what lookups found; retrievable for tests/benches
/// (the schedulers additionally export them per-solve to the obs registry).
struct SolveCacheStats {
  long lookups = 0;
  long exact_hits = 0;    ///< fingerprint matched; solve skipped
  long warm_starts = 0;   ///< predecessor repaired into an incumbent
  long cold_starts = 0;   ///< no predecessor for the stream key
};

/// Per-stream memory of the last solved problem and its assignment.
class SolveCache {
 public:
  /// What a lookup produced for the caller to act on.
  struct Hint {
    bool exact_hit = false;      ///< `solution` can be reused verbatim
    IlpSolution solution;        ///< valid when exact_hit
    std::vector<int> incumbent;  ///< repaired warm start; empty = cold
    /// Root-relaxation basis memory from the stream's previous solve (see
    /// BasisHint); empty when none was stored.  Feed it back through
    /// BranchAndBoundSolver::solve_with_memory — the revised engine's
    /// cross-slot dual re-solve runs off it.
    BasisHint basis;
  };

  SolveCache() = default;
  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// Looks up stream `key` for `problem` (whose fingerprint the caller
  /// already computed, so stores can reuse it without re-hashing).
  Hint lookup(std::uint64_t key, const BinaryProgram& problem,
              std::uint64_t problem_fingerprint);

  /// Records the solved assignment for stream `key`; ignored unless the
  /// solution is usable as a future incumbent (right size, solved status).
  /// `basis` optionally attaches the solve's root-relaxation basis memory
  /// (nullptr or empty clears any stored basis).  Basis memory is
  /// in-memory only: it never affects results, only the pivot path, so
  /// checkpoints do not carry it and a failed-over peer simply rebuilds it
  /// on its first solve.
  void store(std::uint64_t key, std::uint64_t problem_fingerprint,
             const IlpSolution& solution, const BasisHint* basis = nullptr);

  /// The raw assignment last stored for stream `key` (empty when none).
  /// The degradation ladder's replay rung reuses it verbatim when there is
  /// no time to solve at all; callers must re-check feasibility against the
  /// current problem themselves.
  std::vector<int> previous_assignment(std::uint64_t key) const;

  SolveCacheStats stats() const;
  std::size_t size() const;
  void clear();

  /// One stream's stored entry as plain data — what a server checkpoint
  /// carries (fleet::Checkpoint) so a failed-over peer warm-starts exactly
  /// where the crashed server left off.
  struct ExportedEntry {
    std::uint64_t key = 0;
    std::uint64_t fingerprint = 0;
    IlpSolution solution;
  };

  /// Snapshot of every stored entry, sorted by key (deterministic order).
  std::vector<ExportedEntry> export_entries() const;

  /// Re-installs exported entries verbatim (fingerprints included), so a
  /// restore followed by the same lookups behaves exactly like the cache
  /// the entries came from.  Existing entries under the same keys are
  /// overwritten; stats are not restored (they are observability).
  void import_entries(const std::vector<ExportedEntry>& entries);

 private:
  struct Entry {
    std::uint64_t fingerprint = 0;
    IlpSolution solution;
    BasisHint basis;  ///< in-memory only; not exported/imported
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  SolveCacheStats stats_;
};

/// One warm-started solve through the cache, with the bookkeeping callers
/// need for metrics.  With `cache == nullptr` this is exactly
/// `solver.solve(problem)`.
struct CachedSolve {
  IlpSolution solution;
  bool exact_hit = false;
  bool warm_started = false;
  /// Objective of the repaired incumbent (valid when warm_started); the
  /// incumbent-quality gap is solution.objective - incumbent_objective.
  double incumbent_objective = 0.0;
};

/// `budget_fp` tags the cache entry with the solve budget that produced it
/// (see budget_fingerprint); 0 means untagged.  Entries stored under one
/// budget never exact-hit lookups under another, but still warm-start them.
CachedSolve solve_with_cache(const BranchAndBoundSolver& solver,
                             const BinaryProgram& problem, SolveCache* cache,
                             std::uint64_t key, std::uint64_t budget_fp = 0);

}  // namespace lpvs::solver

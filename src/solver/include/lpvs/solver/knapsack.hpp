// Exact dynamic-programming solver for single-constraint 0/1 knapsacks
// (reproduction extension).  When the edge bottleneck is one resource —
// compute in every experiment of the paper, since staging storage is
// plentiful — Phase-1 degenerates to a classic knapsack, and a
// weight-discretized DP provides an independent exact reference against
// the LP-based branch-and-bound, plus a solver for much larger instances
// than exhaustive enumeration can check.
#pragma once

#include <cstdint>
#include <vector>

#include "lpvs/solver/ilp.hpp"

namespace lpvs::solver {

/// Exact DP over discretized weights: weights are scaled to integers with
/// `resolution` buckets across the capacity; the solution is exact for the
/// discretized instance and feasible for the original (weights are rounded
/// *up*, so the capacity can never be violated).
class KnapsackDpSolver {
 public:
  struct Options {
    /// Number of integer weight buckets the capacity is divided into.
    /// Accuracy and memory are both linear in this.
    int resolution = 100000;
  };

  KnapsackDpSolver() : KnapsackDpSolver(Options{}) {}
  explicit KnapsackDpSolver(Options options) : options_(options) {}

  /// Requires exactly one row.  Returns kMalformed otherwise.
  IlpSolution solve(const BinaryProgram& problem) const;

  /// How much value the rounding can cost at most, relative to optimum:
  /// items' weights each grow by at most one bucket, so at most
  /// n / resolution of the capacity is wasted.
  double worst_case_capacity_loss(std::size_t items) const {
    return static_cast<double>(items) /
           static_cast<double>(options_.resolution);
  }

 private:
  Options options_;
};

}  // namespace lpvs::solver

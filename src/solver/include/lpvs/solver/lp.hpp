// Dense linear-programming solver: maximize c^T x subject to A x <= b and
// box bounds 0 <= x <= u, via the bounded-variable primal simplex method.
//
// This is the reproduction's stand-in for the off-the-shelf solvers the
// paper calls (CPLEX / Gurobi / CVX, SV-C).  The Phase-1 problem has only a
// handful of rows (two capacity constraints plus the compacted feasibility
// pre-filter), so a dense simplex with an explicitly inverted basis is both
// simple and fast: the basis is m x m with m <= ~8 while n can be in the
// thousands (Fig. 10 scales the VC to 5,000 devices).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lpvs/common/status.hpp"

namespace lpvs::solver {

/// max c.x  s.t.  A x <= b,  0 <= x <= upper.
struct LpProblem {
  std::vector<double> objective;            ///< c, size n
  std::vector<std::vector<double>> rows;    ///< A, m rows of size n
  std::vector<double> rhs;                  ///< b, size m
  std::vector<double> upper;                ///< u, size n (>= 0)

  std::size_t num_vars() const { return objective.size(); }
  std::size_t num_rows() const { return rows.size(); }

  /// Structural sanity (matching sizes, every row with rhs >= 0 so the
  /// trivial slack basis is feasible; callers with negative rhs must
  /// pre-scale or use RevisedLpSolver, which runs its own dual phase 1).
  /// Upper bounds may be +infinity.  Asserted by the solver.
  bool well_formed() const;
};

enum class LpStatus {
  kOptimal,
  kUnbounded,
  kIterationLimit,
  kMalformed,
  kInfeasible,  ///< no point satisfies the rows within the bounds.  Only the
                ///< revised engine can report it: the dense solver requires
                ///< rhs >= 0, which makes the slack basis always feasible.
};

std::string to_string(LpStatus status);

/// Which LP relaxation engine BranchAndBoundSolver runs per node.
///
///   kDense    the historical bounded-variable primal simplex (LpSolver):
///             every node rebuilds the relaxation and re-inverts the basis
///             from scratch.  Retained bit-for-bit as the differential
///             oracle.
///   kRevised  the revised/dual-simplex engine (RevisedLpSolver): one
///             factorized basis per solve, per-node dual re-solve from the
///             parent basis after bound tightening, presolve, best-first
///             node ordering, and cross-slot root-basis reuse.
enum class LpEngine : unsigned char {
  kDense,
  kRevised,
};

std::string to_string(LpEngine engine);

/// Canonical-status view of an LP outcome: kOptimal maps to OK,
/// kIterationLimit to kResourceExhausted (raise Options::max_iterations),
/// kUnbounded to kInternal (capacity rows cannot produce it), kMalformed
/// to kInvalidArgument.
common::Status to_status(LpStatus status);

struct LpSolution {
  LpStatus status = LpStatus::kMalformed;
  double objective = 0.0;
  std::vector<double> x;
  int iterations = 0;

  bool optimal() const { return status == LpStatus::kOptimal; }
};

class LpSolver {
 public:
  struct Options {
    int max_iterations = 200000;
    double tolerance = 1e-9;
  };

  LpSolver() : LpSolver(Options{}) {}
  explicit LpSolver(Options options) : options_(options) {}

  LpSolution solve(const LpProblem& problem) const;

 private:
  Options options_;
};

}  // namespace lpvs::solver

// Revised simplex with bounded variables, a maintained factorized basis,
// and a dual-simplex re-solve path.
//
// The dense LpSolver (lp.hpp) rebuilds and re-inverts the basis from
// scratch on every pivot of every solve, which is fine for one-off LPs but
// is the measured wall for branch-and-bound over fleet-sized slot problems:
// each B&B node pays O(n) bound-flip iterations with an O(m * (n+m))
// refresh apiece.  This engine keeps the problem loaded across solves and
// maintains B^-1 explicitly, updated by a product-form (eta) transformation
// per pivot with periodic refactorization, so
//
//   - a cold solve runs the bounded primal simplex with incremental basic
//     values (no per-pivot re-inversion), and
//   - a re-solve from a known basis (the B&B parent node's, or the
//     previous slot's root basis after coefficient deltas) refactorizes
//     once and then runs the bounded *dual* simplex: after a branch fixes a
//     variable's bounds the parent basis stays dual feasible and only a
//     couple of primal violations need pivoting out, which is why the dual
//     method is the natural warm-start engine.
//
// Feasibility phase: when a starting basis is neither primal nor dual
// feasible (negative rhs, shifted bounds), reduced costs are temporarily
// shifted just enough to make the basis dual feasible ("cost shifting"),
// the dual simplex then drives it to primal feasibility or proves the rows
// infeasible (the certificate is objective-independent), and the true
// objective is restored for the final primal clean-up.  This gives the
// engine something the dense solver lacks: it accepts rhs < 0 and reports
// LpStatus::kInfeasible instead of requiring well-formed non-negative rhs.
//
// Determinism: identical inputs produce identical pivot sequences (Dantzig
// pricing with a Bland fallback after a degeneracy streak, index-ordered
// tie-breaks), so solves are bit-reproducible across runs and thread
// counts.  The engine is not thread-safe; create one per solve or guard
// externally (BranchAndBoundSolver creates one per solve() call).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lpvs/solver/lp.hpp"

namespace lpvs::solver {

/// A simplex basis snapshot: which variable occupies each basis slot and
/// the lower/upper/basic state of every variable (structural then slack).
/// Cheap to copy; B&B child nodes share their parent's snapshot.
struct SimplexBasis {
  std::vector<std::uint32_t> basic;  ///< size m: variable index per row
  std::vector<std::uint8_t> state;   ///< size n+m: 0 lower, 1 upper, 2 basic

  bool empty() const { return basic.empty(); }
  bool operator==(const SimplexBasis&) const = default;
};

/// Cross-solve basis memory: the root-relaxation basis of a solved binary
/// program plus the presolve maps it was expressed under.  The next slot's
/// solve reuses it only when its own presolve produces identical maps
/// (same free variables, same active rows) — coefficient values may differ
/// arbitrarily; that is exactly the delta the dual re-solve absorbs.
/// In-memory only: checkpoints (SolveCache::ExportedEntry) do not carry it,
/// a failed-over peer just rebuilds basis memory on its first solve.
struct BasisHint {
  SimplexBasis basis;
  std::vector<std::uint32_t> var_map;  ///< reduced var -> original var
  std::vector<std::uint32_t> row_map;  ///< reduced row -> original row

  bool empty() const { return basis.empty(); }
};

/// Bounded-variable revised simplex over a loaded problem.
///
///   max c.x  s.t.  A x <= b,  lower <= x <= upper
///
/// load() takes an LpProblem (bounds [0, upper]); set_bounds() then
/// tightens individual variables (how B&B applies branch fixings without
/// rebuilding anything).  solve() starts cold from the slack basis;
/// resolve() starts from a caller-provided basis snapshot.
class RevisedLpSolver {
 public:
  struct Options {
    int max_iterations = 200000;
    double tolerance = 1e-9;
    /// Rebuild B^-1 from scratch every this many eta updates (numerical
    /// hygiene; eta round-off compounds).
    int refactor_interval = 64;
  };

  RevisedLpSolver() : RevisedLpSolver(Options{}) {}
  explicit RevisedLpSolver(Options options) : options_(options) {}

  /// Loads the problem (copied, column-major).  Returns false on shape
  /// mismatch or NaN bounds.  Negative rhs is accepted (unlike
  /// LpProblem::well_formed) — the dual phase 1 handles it.
  bool load(const LpProblem& problem);

  /// Overrides variable j's box to [lower, upper] (0 <= j < num_vars()).
  /// B&B branch fixings are set_bounds(j, 0, 0) / set_bounds(j, 1, 1).
  void set_bounds(std::size_t var, double lower, double upper);

  /// Restores every variable's box to the loaded problem's [0, upper_j].
  void reset_bounds();

  /// Cold solve from the slack basis.
  LpSolution solve();

  /// Warm re-solve from `from` (typically the parent node's or previous
  /// slot's optimal basis; bounds/coefficients may have changed since).
  /// Falls back to a cold solve when the snapshot does not fit the loaded
  /// problem or its basis matrix is singular under the new coefficients.
  LpSolution resolve(const SimplexBasis& from);

  /// Snapshot of the current basis (valid after solve()/resolve()).
  SimplexBasis basis() const;

  std::size_t num_vars() const { return n_; }
  std::size_t num_rows() const { return m_; }

 private:
  bool refactorize();
  void compute_basic_values();
  double column_entry(std::size_t var, std::size_t row) const;
  double nonbasic_value(std::size_t var) const;
  void compute_column(std::size_t var, std::vector<double>& w) const;
  void eta_update(const std::vector<double>& w, std::size_t row);
  bool primal_feasible() const;
  void compute_y(const std::vector<double>& costs);
  double reduced_cost(std::size_t var, const std::vector<double>& costs) const;
  /// Shifts nonbasic reduced costs into dual feasibility; returns the
  /// shifted cost vector (size n+m) to run the dual phase under.
  std::vector<double> shifted_costs();
  LpStatus primal_phase(const std::vector<double>& costs, int& iters);
  LpStatus dual_phase(const std::vector<double>& costs, int& iters);
  LpSolution run();
  LpSolution extract(LpStatus status, int iters) const;

  Options options_;
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  std::size_t total_ = 0;
  std::vector<double> cols_;   ///< structural columns, column-major n*m
  std::vector<double> obj_;    ///< size n
  std::vector<double> rhs_;    ///< size m
  std::vector<double> lower_;  ///< size n+m (slack lower = 0)
  std::vector<double> upper_;  ///< size n+m (slack upper = +inf)
  std::vector<double> problem_upper_;  ///< loaded uppers for reset_bounds

  std::vector<std::uint32_t> basis_;  ///< size m
  std::vector<std::uint8_t> state_;   ///< size n+m
  std::vector<double> binv_;          ///< m*m row-major
  std::vector<double> xb_;            ///< basic values, size m
  int pivots_since_refactor_ = 0;

  // Scratch (sized in load, reused across solves).
  std::vector<double> y_;
  std::vector<double> w_;
};

}  // namespace lpvs::solver

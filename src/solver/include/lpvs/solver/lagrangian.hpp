// Lagrangian relaxation for the two-row Phase-1 program (reproduction
// extension).
//
// Phase-1 is max c.x s.t. r0.x <= b0 (compute), r1.x <= b1 (storage),
// x binary.  Dualizing the storage row with multiplier mu >= 0 leaves a
// *single-row* knapsack
//     L(mu) = mu*b1 + max { (c - mu*r1).x : r0.x <= b0, x binary },
// solvable exactly by the DP of knapsack.hpp; L(mu) upper-bounds the
// optimum for every mu, and projected-subgradient descent on mu tightens
// it.  Feasible incumbents come from the relaxed solutions themselves
// (when they happen to satisfy the storage row) plus a density-based
// repair.  This is the classic alternative to LP-based branch-and-bound
// for multi-constrained knapsacks, included as an independent exact-bound
// cross-check and as an ablation subject (bench_solver_compare).
#pragma once

#include "lpvs/solver/ilp.hpp"
#include "lpvs/solver/knapsack.hpp"

namespace lpvs::solver {

struct LagrangianSolution {
  IlpSolution incumbent;      ///< best feasible selection found
  double upper_bound = 0.0;   ///< min over tried mu of L(mu)
  double best_mu = 0.0;
  int iterations = 0;

  /// Relative duality gap of the incumbent (0 = provably optimal).
  double gap() const {
    return upper_bound > 0.0
               ? (upper_bound - incumbent.objective) / upper_bound
               : 0.0;
  }
};

class LagrangianSolver {
 public:
  struct Options {
    int iterations = 50;
    /// Subgradient step scale (Polyak-style: step = scale * (L - best) /
    /// ||g||^2).
    double step_scale = 1.0;
    KnapsackDpSolver::Options dp;
  };

  LagrangianSolver() : LagrangianSolver(Options{}) {}
  explicit LagrangianSolver(Options options) : options_(options) {}

  /// Requires exactly two rows; returns kMalformed otherwise.
  LagrangianSolution solve(const BinaryProgram& problem) const;

 private:
  Options options_;
};

}  // namespace lpvs::solver

#include "lpvs/emu/metrics_io.hpp"

namespace lpvs::emu {

common::Json to_json(const RunMetrics& metrics) {
  common::Json root = common::Json::object();
  root.set("total_energy_mwh", metrics.total_energy_mwh);
  root.set("mean_anxiety", metrics.mean_anxiety);
  root.set("mean_scheduler_ms", metrics.mean_scheduler_ms);
  root.set("total_selected", static_cast<double>(metrics.total_selected));
  root.set("slots_run", metrics.slots_run);
  root.set("anxiety_samples",
           static_cast<double>(metrics.anxiety_samples));
  // Flat per-device columns (plotting scripts index these directly),
  // serialized via the shared common::to_json array path.
  root.set("tpv_minutes", common::to_json(metrics.tpv_minutes));
  root.set("start_fractions", common::to_json(metrics.start_fractions));
  root.set("final_fractions", common::to_json(metrics.final_fractions));
  common::Json devices = common::Json::array();
  for (std::size_t n = 0; n < metrics.tpv_minutes.size(); ++n) {
    common::Json device = common::Json::object();
    device.set("tpv_minutes", metrics.tpv_minutes[n]);
    device.set("start_fraction", metrics.start_fractions[n]);
    device.set("final_fraction", metrics.final_fractions[n]);
    device.set("served", metrics.served[n] != 0);
    device.set("gamma_estimate", metrics.last_gamma_estimate[n]);
    device.set("true_gamma", metrics.mean_true_gamma[n]);
    devices.push(std::move(device));
  }
  root.set("devices", std::move(devices));
  return root;
}

common::Json to_json(const PairedMetrics& paired) {
  common::Json root = common::Json::object();
  root.set("energy_saving_ratio", paired.energy_saving_ratio());
  root.set("anxiety_reduction_ratio", paired.anxiety_reduction_ratio());
  root.set("with_lpvs", to_json(paired.with_lpvs));
  root.set("without_lpvs", to_json(paired.without_lpvs));
  return root;
}

common::Json to_json(const ReplayReport& report) {
  common::Json root = common::Json::object();
  root.set("energy_saving_ratio", report.energy_saving_ratio());
  root.set("anxiety_reduction_ratio", report.anxiety_reduction_ratio());
  root.set("energy_with_mwh", report.energy_with_mwh);
  root.set("energy_without_mwh", report.energy_without_mwh);
  root.set("total_devices", static_cast<double>(report.total_devices));
  root.set("mean_scheduler_ms", report.mean_scheduler_ms);
  common::Json clusters = common::Json::array();
  for (const ClusterOutcome& outcome : report.clusters) {
    common::Json cluster = common::Json::object();
    cluster.set("channel", static_cast<double>(outcome.channel.value));
    cluster.set("session", static_cast<double>(outcome.session.value));
    cluster.set("group_size", outcome.group_size);
    cluster.set("slots", outcome.slots);
    cluster.set("energy_saving_ratio",
                outcome.metrics.energy_saving_ratio());
    cluster.set("anxiety_reduction_ratio",
                outcome.metrics.anxiety_reduction_ratio());
    clusters.push(std::move(cluster));
  }
  root.set("clusters", std::move(clusters));
  return root;
}

}  // namespace lpvs::emu

#include "lpvs/emu/replay.hpp"

#include <algorithm>
#include <cassert>

#include "lpvs/common/thread_pool.hpp"

namespace lpvs::emu {

double ReplayReport::anxiety_reduction_ratio() const {
  double weighted = 0.0;
  double weight = 0.0;
  for (const ClusterOutcome& cluster : clusters) {
    const double w = static_cast<double>(cluster.group_size);
    weighted += w * cluster.metrics.anxiety_reduction_ratio();
    weight += w;
  }
  return weight > 0.0 ? weighted / weight : 0.0;
}

double ReplayReport::mean_low_battery_tpv(bool with_lpvs) const {
  double total = 0.0;
  int counted = 0;
  for (const ClusterOutcome& cluster : clusters) {
    const double tpv =
        with_lpvs
            ? cluster.metrics.with_lpvs.mean_tpv(0.4, /*require_served=*/true)
            : cluster.metrics.without_lpvs.mean_tpv(0.4, false);
    if (tpv > 0.0) {
      total += tpv;
      ++counted;
    }
  }
  return counted > 0 ? total / counted : 0.0;
}

ReplayReport replay_city(const trace::Trace& trace,
                         const core::Scheduler& scheduler,
                         const core::RunContext& context,
                         const ReplayConfig& config) {
  ReplayReport report;

  // Per-cluster wall times; the registry is thread-safe, so worker threads
  // record concurrently without perturbing the (seed-determined) results.
  obs::Histogram* cluster_ms_hist = nullptr;
  if (context.metrics != nullptr) {
    cluster_ms_hist = &context.metrics->histogram(
        "lpvs_replay_cluster_ms", obs::MetricsRegistry::time_buckets_ms(),
        "Wall-clock time of one cluster's paired emulation");
  }

  // Candidate clusters: live sessions with enough audience, biggest first.
  std::vector<const trace::Session*> candidates;
  for (const trace::Session* session :
       trace.live_sessions(config.start_slot)) {
    if (session->viewers_at(config.start_slot) >= config.min_viewers) {
      candidates.push_back(session);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](const trace::Session* a, const trace::Session* b) {
              return a->viewers_at(config.start_slot) >
                     b->viewers_at(config.start_slot);
            });
  if (config.max_clusters > 0 &&
      candidates.size() > static_cast<std::size_t>(config.max_clusters)) {
    candidates.resize(static_cast<std::size_t>(config.max_clusters));
  }

  // Per-cluster emulations are independent and individually seeded, so
  // they can run on any number of threads with bit-identical results;
  // outcomes land in pre-assigned slots to keep ordering deterministic.
  std::vector<ClusterOutcome> outcomes(candidates.size());
  auto run_one = [&](std::size_t i) {
    const obs::ScopedTimer timer(cluster_ms_hist);
    const trace::Session* session = candidates[i];
    ClusterOutcome outcome;
    outcome.channel = session->channel;
    outcome.session = session->id;
    outcome.group_size = std::min(session->viewers_at(config.start_slot),
                                  config.max_group_size);
    outcome.slots = std::clamp(session->end_slot() - config.start_slot, 1,
                               config.max_slots);

    EmulatorConfig emu_config;
    // Forward the whole shared-knob slice in one go (the point of
    // ClusterParams: a knob added there flows through automatically)...
    static_cast<ClusterParams&>(emu_config) = config;
    // ...then the per-cluster specifics on top.
    emu_config.group_size = outcome.group_size;
    emu_config.slots = outcome.slots;
    emu_config.seed =
        config.seed ^ (static_cast<std::uint64_t>(session->id.value) << 20);
    outcome.metrics = run_paired(emu_config, scheduler, context);
    outcomes[i] = std::move(outcome);
  };

  if (config.threads == 1 || candidates.size() <= 1) {
    for (std::size_t i = 0; i < candidates.size(); ++i) run_one(i);
  } else {
    common::ThreadPool pool(config.threads);
    common::parallel_for(pool, candidates.size(), run_one);
  }

  double scheduler_ms = 0.0;
  for (ClusterOutcome& outcome : outcomes) {
    report.energy_with_mwh += outcome.metrics.with_lpvs.total_energy_mwh;
    report.energy_without_mwh +=
        outcome.metrics.without_lpvs.total_energy_mwh;
    report.total_devices += outcome.group_size;
    report.total_served_slots += outcome.metrics.with_lpvs.total_selected;
    scheduler_ms += outcome.metrics.with_lpvs.mean_scheduler_ms;
    report.clusters.push_back(std::move(outcome));
  }
  report.mean_scheduler_ms =
      outcomes.empty() ? 0.0
                       : scheduler_ms / static_cast<double>(outcomes.size());
  if (context.metrics != nullptr) {
    context.metrics
        ->counter("lpvs_replay_clusters_total", "Virtual clusters replayed")
        .add(static_cast<long>(report.clusters.size()));
    context.metrics
        ->gauge("lpvs_replay_total_devices",
                "Devices across all clusters of the last replay")
        .set(static_cast<double>(report.total_devices));
  }
  return report;
}

}  // namespace lpvs::emu

// Trace-driven multi-cluster replay (reproduction extension).
//
// The paper evaluates LPVS per virtual cluster; a deployment serves many
// base stations at once.  CityReplay walks the synthetic Twitch trace,
// forms one virtual cluster per sufficiently-viewed live session at a
// chosen slot (each with its own edge server, as in SIV-A), runs the
// paired with/without-LPVS emulation for every cluster, and aggregates the
// city-wide outcome — energy saved, anxiety reduced, low-battery watch
// time gained, and scheduler cost.
#pragma once

#include <vector>

#include "lpvs/core/run_context.hpp"
#include "lpvs/core/scheduler.hpp"
#include "lpvs/emu/cluster_params.hpp"
#include "lpvs/emu/emulator.hpp"
#include "lpvs/survey/lba_curve.hpp"
#include "lpvs/trace/trace.hpp"

namespace lpvs::emu {

/// Cluster-shared knobs (capacities, lambda, give-up, group-size cap,
/// seed) live in the ClusterParams base, shared with EmulatorConfig; the
/// replay forwards its whole ClusterParams slice into every per-cluster
/// emulation, so the two run kinds cannot drift apart.
struct ReplayConfig : ClusterParams {
  ReplayConfig() { seed = 1; }

  /// Slot of the trace at which clusters are formed.
  int start_slot = 144;  // midday of a 288-slot day
  /// Only sessions with at least this many viewers form a cluster.
  int min_viewers = 30;
  /// Cap on clusters replayed (largest sessions first); 0 = no cap.
  int max_clusters = 16;
  /// Per-cluster emulation horizon cap, slots (bounded by session end).
  int max_slots = 24;
  /// Worker threads for the per-cluster emulations (clusters are
  /// independent and seeded per session, so any thread count produces
  /// bit-identical reports); 0 = hardware concurrency.
  unsigned threads = 1;
};

/// One cluster's paired outcome.
struct ClusterOutcome {
  common::ChannelId channel;
  common::SessionId session;
  int group_size = 0;
  int slots = 0;
  PairedMetrics metrics;
};

/// City-wide aggregate.
struct ReplayReport {
  std::vector<ClusterOutcome> clusters;
  double energy_with_mwh = 0.0;
  double energy_without_mwh = 0.0;
  long total_devices = 0;
  long total_served_slots = 0;
  double mean_scheduler_ms = 0.0;

  double energy_saving_ratio() const {
    return energy_without_mwh > 0.0
               ? (energy_without_mwh - energy_with_mwh) / energy_without_mwh
               : 0.0;
  }
  /// Viewer-weighted mean anxiety reduction across clusters.
  double anxiety_reduction_ratio() const;
  /// Mean low-battery TPV across clusters (served users, <= 40% start).
  double mean_low_battery_tpv(bool with_lpvs) const;
};

/// Runs the replay.  Deterministic in (trace, config.seed) — with or
/// without observability sinks in the context, and at any thread count.
/// With a registry attached, per-cluster wall times land in the
/// lpvs_replay_cluster_ms histogram (aggregated across the ThreadPool).
ReplayReport replay_city(const trace::Trace& trace,
                         const core::Scheduler& scheduler,
                         const core::RunContext& context,
                         const ReplayConfig& config);

}  // namespace lpvs::emu

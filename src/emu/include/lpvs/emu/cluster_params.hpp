// ClusterParams: the knobs every virtual-cluster run shares (API redesign).
//
// EmulatorConfig (single cluster) and ReplayConfig (city-wide, many
// clusters) used to duplicate these fields, so a default changed in one
// could silently drift from the other.  Both now embed this struct as a
// base; the replay forwards its whole ClusterParams slice into each
// per-cluster EmulatorConfig in one assignment, so a knob added here flows
// through automatically.
#pragma once

#include <cstdint>

namespace lpvs::emu {

struct ClusterParams {
  /// Edge transform capacity C of constraint (6), compute units.
  double compute_capacity = 45.0;
  /// Edge staging storage S of constraint (7), megabytes.
  double storage_capacity_mb = 32.0 * 1024.0;
  /// Objective regularizer of (8a)/(13).
  double lambda = 2000.0;
  /// Users leave when battery hits their survey give-up level.
  bool enable_giveup = true;
  /// Warm-start consecutive-slot ILP solves from the previous slot's
  /// assignment (solver::SolveCache).  Changes which optimal assignment
  /// ties resolve to and the nodes explored, never the objective achieved;
  /// off reproduces the historical every-solve-cold behavior exactly.
  bool warm_start = true;
  /// Devices per virtual cluster: the replay caps each cluster at this
  /// size; the single-cluster Emulator sets its exact group size via
  /// EmulatorConfig::group_size (which may legitimately exceed this cap in
  /// stress scenarios) and treats this field as documentation of the
  /// deployment's per-edge-server budget.
  int max_group_size = 100;
  std::uint64_t seed = 42;
};

}  // namespace lpvs::emu

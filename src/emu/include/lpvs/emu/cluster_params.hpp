// ClusterParams: the knobs every virtual-cluster run shares (API redesign).
//
// EmulatorConfig (single cluster) and ReplayConfig (city-wide, many
// clusters) used to duplicate these fields, so a default changed in one
// could silently drift from the other.  Both now embed this struct as a
// base; the replay forwards its whole ClusterParams slice into each
// per-cluster EmulatorConfig in one assignment, so a knob added here flows
// through automatically.
//
// The slot-problem knobs themselves (capacities, lambda, chunk shape,
// session budget, seed, warm start) live one layer lower, in
// core::SlotProblemConfig — the single type the emulator, replay,
// federation, and serving daemon all assemble slot problems from.  This
// struct only adds what is cluster-lifecycle-specific.
#pragma once

#include "lpvs/core/slot_problem_config.hpp"

namespace lpvs::emu {

struct ClusterParams : core::SlotProblemConfig {
  /// Users leave when battery hits their survey give-up level.
  bool enable_giveup = true;
  /// Devices per virtual cluster: the replay caps each cluster at this
  /// size; the single-cluster Emulator sets its exact group size via
  /// EmulatorConfig::group_size (which may legitimately exceed this cap in
  /// stress scenarios) and treats this field as documentation of the
  /// deployment's per-edge-server budget.
  int max_group_size = 100;
};

}  // namespace lpvs::emu

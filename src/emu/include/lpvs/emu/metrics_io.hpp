// JSON export of emulation results (reproduction extension): serializes
// RunMetrics / PairedMetrics / ReplayReport for external analysis and
// plotting, via the dependency-free common::Json builder.  The obs
// snapshot exporter rides the same path and is re-exported here, so one
// include gives the full to_json overload set for a run's outputs.
#pragma once

#include "lpvs/common/json.hpp"
#include "lpvs/emu/emulator.hpp"
#include "lpvs/emu/replay.hpp"
#include "lpvs/obs/metrics.hpp"

namespace lpvs::emu {

/// Full per-run record, including the per-device rows.
common::Json to_json(const RunMetrics& metrics);

/// Paired record with derived ratios.
common::Json to_json(const PairedMetrics& paired);

/// City replay record with per-cluster summaries.
common::Json to_json(const ReplayReport& report);

/// Metrics snapshots serialize through the same common::Json path; make
/// emu::to_json(registry.snapshot()) work alongside the overloads above.
using obs::to_json;

}  // namespace lpvs::emu

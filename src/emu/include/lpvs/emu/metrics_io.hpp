// JSON export of emulation results (reproduction extension): serializes
// RunMetrics / PairedMetrics / ReplayReport for external analysis and
// plotting, via the dependency-free common::Json builder.
#pragma once

#include "lpvs/common/json.hpp"
#include "lpvs/emu/emulator.hpp"
#include "lpvs/emu/replay.hpp"

namespace lpvs::emu {

/// Full per-run record, including the per-device rows.
common::Json to_json(const RunMetrics& metrics);

/// Paired record with derived ratios.
common::Json to_json(const PairedMetrics& paired);

/// City replay record with per-cluster summaries.
common::Json to_json(const ReplayReport& report);

}  // namespace lpvs::emu

// The LPVS emulator (SVI-B): wires every substrate together and replays the
// paper's experiment loop.
//
// Per slot (5 minutes): (1) information gathering — each still-watching
// device's next chunks are generated, prefetched from the CDN into the edge
// cache, and priced with the display power models; (2) request scheduling —
// the pluggable scheduler (LPVS two-phase or a baseline) picks the
// transform subset under the edge capacity; (3) video transforming &
// playback — selected streams play at their device's *true* physics-derived
// gamma, batteries drain, anxiety is accumulated, users give up when their
// battery hits their personal give-up level (from the survey), and each
// device's Bayesian gamma estimate is updated with the slot's observed
// power reduction.
//
// Determinism: the entire run is a function of EmulatorConfig::seed, so a
// paired run with a different scheduler but the same seed sees the same
// devices, batteries, and content — the paper's with/without-LPVS
// comparisons are computed from such pairs.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "lpvs/battery/battery.hpp"
#include "lpvs/bayes/gamma_estimator.hpp"
#include "lpvs/bayes/nig_estimator.hpp"
#include "lpvs/core/run_context.hpp"
#include "lpvs/core/scheduler.hpp"
#include "lpvs/display/display.hpp"
#include "lpvs/emu/cluster_params.hpp"
#include "lpvs/media/video.hpp"
#include "lpvs/streaming/streaming.hpp"
#include "lpvs/survey/lba_curve.hpp"
#include "lpvs/survey/population.hpp"
#include "lpvs/transform/transform.hpp"

namespace lpvs::emu {

/// How the scheduler learns gamma_n (the SV-D ablation axis).
enum class GammaMode {
  kBayesian,     ///< paper: conjugate updates from per-slot observations
  kNigBayesian,  ///< extension: Normal-Inverse-Gamma (noise also learned)
  kFixedPrior,   ///< never update; always use the Table I prior mean
  kOracle,       ///< cheat: use the slot's true physics-derived gamma
};

/// Cluster-shared knobs (compute/storage capacity, lambda, chunk shape,
/// give-up, seed) live in the ClusterParams base (itself built on
/// core::SlotProblemConfig), shared with ReplayConfig so the two can no
/// longer drift apart.
struct EmulatorConfig : ClusterParams {
  int group_size = 100;             ///< N devices in the virtual cluster
  int slots = 36;                   ///< 3 hours of 5-minute slots
  /// Initial energy status ~ Gaussian (SVI-B), truncated to [0.05, 1].
  double initial_battery_mean = 0.5;
  double initial_battery_std = 0.2;
  /// Edge prefetch window in chunks; windows shorter than a slot create the
  /// partial-availability situation of Fig. 4.
  int prefetch_window_min = 18;
  int prefetch_window_max = 30;
  /// SVI-B "one-slot-ahead" working mode: the decision executed in slot t
  /// was computed during slot t-1 from *predicted* battery states (initial
  /// energy minus the expected consumption of the in-flight slot).  When
  /// false, decisions use the exact state at the slot boundary — an
  /// idealized scheduler with zero solve time.
  bool one_slot_ahead = false;
  GammaMode gamma_mode = GammaMode::kBayesian;
  /// Remark 1: probability that a user switches videos mid-slot.  The
  /// scheduling decision persists until the next scheduling point, so the
  /// slot is played partly on content the scheduler never priced — a
  /// realistic source of gamma-estimation error.
  double switch_probability = 0.0;
  /// Noise on the per-slot observed power reduction fed to Bayes.
  double observation_noise = 0.02;
};

/// One emulated viewer and phone.
struct DeviceState {
  common::DeviceId id;
  display::DisplaySpec spec;
  battery::Battery battery;
  double start_fraction = 0.5;
  int giveup_percent = 10;       ///< from the survey answers
  media::Genre genre = media::Genre::kIrlChat;
  double bitrate_mbps = 3.0;
  bayes::GammaEstimator estimator;
  bayes::NigGammaEstimator nig_estimator;
  bool watching = true;
  double watch_minutes = 0.0;
  bool ever_served = false;
  int slots_served = 0;
};

/// Everything a run reports; the benches turn these into the paper's rows.
struct RunMetrics {
  double total_energy_mwh = 0.0;
  /// Mean anxiety degree over all (device, chunk) samples while watching.
  double mean_anxiety = 0.0;
  /// Mean scheduler wall time per slot, milliseconds.
  double mean_scheduler_ms = 0.0;
  long total_selected = 0;
  int slots_run = 0;
  long anxiety_samples = 0;

  // Per-device outcome rows (index = device id).
  std::vector<double> tpv_minutes;
  std::vector<double> start_fractions;
  std::vector<double> final_fractions;
  std::vector<std::uint8_t> served;
  std::vector<double> last_gamma_estimate;
  std::vector<double> mean_true_gamma;

  /// Mean watch time of devices matching a predicate; the Fig. 9 metric.
  double mean_tpv(double max_start_fraction, bool require_served) const;
};

/// The emulator.  Construct once, `run()` replays the whole scenario.
///
/// The RunContext carries the anxiety model plus optional observability
/// sinks; with sinks attached the run additionally reports per-slot
/// energy/anxiety/give-up metrics and structured events, without changing
/// RunMetrics (tests assert bit-identical results on/off).
class Emulator {
 public:
  Emulator(EmulatorConfig config, const core::Scheduler& scheduler,
           core::RunContext context);

  RunMetrics run();

  /// The device states after run() (for inspection in tests/examples).
  const std::vector<DeviceState>& devices() const { return devices_; }
  const EmulatorConfig& config() const { return config_; }

 private:
  void setup_devices();
  media::Video slot_video(const DeviceState& device, int slot);

  EmulatorConfig config_;
  const core::Scheduler& scheduler_;
  core::RunContext context_;
  common::Rng rng_;
  std::vector<DeviceState> devices_;
  transform::TransformEngine engine_;
  media::PowerRateEstimator estimator_;
};

/// Convenience: run the same config with LPVS and with the no-transform
/// baseline (same seed, same world) and report both.
struct PairedMetrics {
  RunMetrics with_lpvs;
  RunMetrics without_lpvs;

  double energy_saving_ratio() const;
  double anxiety_reduction_ratio() const;
};
PairedMetrics run_paired(const EmulatorConfig& config,
                         const core::Scheduler& scheduler,
                         const core::RunContext& context);

}  // namespace lpvs::emu

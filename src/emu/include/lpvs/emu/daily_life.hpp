// Multi-day daily-life simulation (reproduction extension).
//
// The paper measures LBA within single watching sessions; the anxiety a
// user actually lives with accumulates over days — sessions drain the
// battery, idle hours drain it slowly, overnight (and opportunistic)
// charging resets it.  This module simulates that daily rhythm at
// minute granularity for a fleet of devices and integrates the anxiety
// curve over time, so LPVS's effect can be reported in the unit that
// matters long-run: *anxiety-minutes avoided per user per day*.
//
// The charging behavior reuses the survey module's behavioral model
// (anxiety-threshold charging + opportunistic top-ups), closing the loop
// between the survey and the emulation.
#pragma once

#include <cstdint>
#include <vector>

#include "lpvs/battery/battery.hpp"
#include "lpvs/display/display.hpp"
#include "lpvs/media/video.hpp"
#include "lpvs/survey/lba_curve.hpp"
#include "lpvs/survey/population.hpp"
#include "lpvs/transform/transform.hpp"

namespace lpvs::emu {

struct DailyLifeConfig {
  int users = 50;
  int days = 7;
  /// Mean viewing sessions per user per day (Poisson-ish via Bernoulli
  /// per candidate hour).
  double sessions_per_day = 2.5;
  /// Session length: log-normal in minutes (median ~ exp(mu)).
  double session_log_mean = 3.9;  ///< median ~ 50 minutes
  double session_log_sigma = 0.6;
  /// Idle (non-viewing) device drain.
  double idle_mw = 28.0;
  /// Whether LPVS transforms the streams (true) or not (false).
  bool lpvs_enabled = true;
  /// Fraction of sessions actually served by LPVS (capacity share).
  double served_fraction = 1.0;
  /// Probability per day of an opportunistic daytime top-up to 100%.
  double opportunistic_charge_rate = 0.35;
  std::uint64_t seed = 1;
};

struct DailyLifeReport {
  /// Mean over users of integral phi(level(t)) dt, per day, in
  /// anxiety-minutes.
  double anxiety_minutes_per_day = 0.0;
  /// Minutes per day spent at or below 20% battery (the warning zone).
  double warning_zone_minutes_per_day = 0.0;
  long sessions_started = 0;
  long sessions_abandoned = 0;  ///< user hit their give-up level
  double mean_viewing_minutes_per_day = 0.0;

  double abandon_ratio() const {
    return sessions_started > 0
               ? static_cast<double>(sessions_abandoned) / sessions_started
               : 0.0;
  }
};

/// Runs the simulation; deterministic in the config seed.
DailyLifeReport simulate_daily_life(const DailyLifeConfig& config,
                                    const survey::AnxietyModel& anxiety);

}  // namespace lpvs::emu

// Multi-day daily-life simulation (reproduction extension).
//
// The paper measures LBA within single watching sessions; the anxiety a
// user actually lives with accumulates over days — sessions drain the
// battery, idle hours drain it slowly, overnight (and opportunistic)
// charging resets it.  This module simulates that daily rhythm at
// minute granularity for a fleet of devices and integrates the anxiety
// curve over time, so LPVS's effect can be reported in the unit that
// matters long-run: *anxiety-minutes avoided per user per day*.
//
// The charging behavior reuses the survey module's behavioral model
// (anxiety-threshold charging + opportunistic top-ups), closing the loop
// between the survey and the emulation.
#pragma once

#include <cstdint>
#include <vector>

#include "lpvs/battery/battery.hpp"
#include "lpvs/core/run_context.hpp"
#include "lpvs/core/scheduler.hpp"
#include "lpvs/core/slot_problem_config.hpp"
#include "lpvs/display/display.hpp"
#include "lpvs/media/video.hpp"
#include "lpvs/solver/solve_cache.hpp"
#include "lpvs/survey/lba_curve.hpp"
#include "lpvs/survey/population.hpp"
#include "lpvs/transform/transform.hpp"

namespace lpvs::emu {

struct DailyLifeConfig {
  int users = 50;
  int days = 7;
  /// Mean viewing sessions per user per day (Poisson-ish via Bernoulli
  /// per candidate hour).
  double sessions_per_day = 2.5;
  /// Session length: log-normal in minutes (median ~ exp(mu)).
  double session_log_mean = 3.9;  ///< median ~ 50 minutes
  double session_log_sigma = 0.6;
  /// Idle (non-viewing) device drain.
  double idle_mw = 28.0;
  /// Whether LPVS transforms the streams (true) or not (false).
  bool lpvs_enabled = true;
  /// Fraction of sessions actually served by LPVS (capacity share).
  double served_fraction = 1.0;
  /// Probability per day of an opportunistic daytime top-up to 100%.
  double opportunistic_charge_rate = 0.35;
  std::uint64_t seed = 1;
};

struct DailyLifeReport {
  /// Mean over users of integral phi(level(t)) dt, per day, in
  /// anxiety-minutes.
  double anxiety_minutes_per_day = 0.0;
  /// Minutes per day spent at or below 20% battery (the warning zone).
  double warning_zone_minutes_per_day = 0.0;
  long sessions_started = 0;
  long sessions_abandoned = 0;  ///< user hit their give-up level
  double mean_viewing_minutes_per_day = 0.0;

  double abandon_ratio() const {
    return sessions_started > 0
               ? static_cast<double>(sessions_abandoned) / sessions_started
               : 0.0;
  }
};

/// Runs the simulation; deterministic in the config seed.
DailyLifeReport simulate_daily_life(const DailyLifeConfig& config,
                                    const survey::AnxietyModel& anxiety);

/// Fleet mode: instead of serving a fixed fraction of sessions by coin
/// flip, concurrent sessions compete for real edge capacity.  Users are
/// assigned round-robin to `edge_servers` edge boxes; at every 5-minute
/// slot boundary each box's active viewers form one SlotProblem and the
/// whole fleet is solved in one core::BatchScheduler call — sharded across
/// the pool, with consecutive slots warm-starting each box's ILP from its
/// previous assignment (one solver::SolveCache stream key per box).
/// Per-box capacities (constraints (6)(7)), the anxiety regularizer, and
/// warm-start come from the shared core::SlotProblemConfig base; the fleet
/// constructor only shrinks the defaults to daily-life edge boxes.
struct FleetEdgeConfig : core::SlotProblemConfig {
  FleetEdgeConfig() {
    compute_capacity = 18.0;
    storage_capacity_mb = 4096.0;
  }

  int edge_servers = 2;
  /// Shard threads for the batch solve (0 = hardware concurrency,
  /// 1 = inline).  Any value yields bit-identical reports.
  unsigned threads = 1;
};

struct FleetDailyReport {
  DailyLifeReport life;
  long slot_batches = 0;   ///< 5-minute boundaries with at least one viewer
  long requests = 0;       ///< user-slots wanting the transform
  long admissions = 0;     ///< user-slots granted it
  solver::SolveCacheStats cache;  ///< warm/cold split across the run

  double admission_ratio() const {
    return requests > 0 ? static_cast<double>(admissions) / requests : 0.0;
  }
};

/// Runs the fleet simulation; deterministic in (config.seed, edge) at any
/// thread count.  The scheduler decides per-box admission each slot; the
/// context's metrics/event sinks observe the batch and solver layers.
FleetDailyReport simulate_daily_life_fleet(const DailyLifeConfig& config,
                                           const FleetEdgeConfig& edge,
                                           const core::Scheduler& scheduler,
                                           const core::RunContext& context);

}  // namespace lpvs::emu

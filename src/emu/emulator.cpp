#include "lpvs/emu/emulator.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

#include "lpvs/core/signaling.hpp"
#include "lpvs/solver/solve_cache.hpp"

namespace lpvs::emu {
namespace {

/// Independent deterministic stream for a (seed, device, slot) triple.
/// All per-device-per-slot randomness (content, prefetch window, gamma
/// observation noise) comes from such streams so that paired runs with
/// different schedulers see byte-identical worlds even when devices drop
/// out at different times.
common::Rng derived_rng(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  return common::Rng(seed ^ (a + 1) * 0x9E3779B97F4A7C15ULL ^
                     (b + 1) * 0xC2B2AE3D27D4EB4FULL);
}

constexpr double kBitrateLadder[] = {1.8, 2.5, 3.5, 5.0};

}  // namespace

double RunMetrics::mean_tpv(double max_start_fraction,
                            bool require_served) const {
  double sum = 0.0;
  long count = 0;
  for (std::size_t n = 0; n < tpv_minutes.size(); ++n) {
    if (start_fractions[n] > max_start_fraction) continue;
    if (require_served && !served[n]) continue;
    sum += tpv_minutes[n];
    ++count;
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

Emulator::Emulator(EmulatorConfig config, const core::Scheduler& scheduler,
                   core::RunContext context)
    : config_(config),
      scheduler_(scheduler),
      context_(context),
      rng_(config.seed) {
  assert(config_.group_size > 0);
  assert(config_.slots > 0);
  assert(config_.chunks_per_slot > 0);
  assert(context_.anxiety != nullptr);
}

void Emulator::setup_devices() {
  devices_.clear();
  devices_.reserve(static_cast<std::size_t>(config_.group_size));

  // Give-up thresholds come from the survey answer model so the emulated
  // audience behaves like the surveyed one (SVII-C).
  common::Rng setup_rng = derived_rng(config_.seed, 0xDEu, 0xADu);
  const survey::SyntheticPopulation population;
  const std::vector<survey::Participant> participants =
      population.generate(config_.group_size, setup_rng);

  const auto& catalog = display::DeviceCatalog::standard();
  for (int n = 0; n < config_.group_size; ++n) {
    common::Rng device_rng = derived_rng(config_.seed, 0xD0u,
                                         static_cast<std::uint64_t>(n));
    DeviceState device;
    device.id = common::DeviceId{static_cast<std::uint32_t>(n)};
    const auto& profile = catalog.sample(device_rng);
    device.spec = profile.spec;
    device.start_fraction = device_rng.truncated_normal(
        config_.initial_battery_mean, config_.initial_battery_std, 0.05, 1.0);
    device.battery = battery::Battery(
        common::MilliwattHours{profile.battery_mwh * config_.effective_capacity_scale},
        device.start_fraction);
    device.giveup_percent =
        participants[static_cast<std::size_t>(n)].giveup_level;
    device.genre = static_cast<media::Genre>(
        device_rng.uniform_int(0, media::kGenreCount - 1));
    device.bitrate_mbps = kBitrateLadder[static_cast<std::size_t>(
        device_rng.uniform_int(0, std::ssize(kBitrateLadder) - 1))];
    devices_.push_back(std::move(device));
  }
}

media::Video Emulator::slot_video(const DeviceState& device, int slot) {
  // Content is a pure function of (seed, device, slot): paired runs see
  // identical chunks.
  common::Rng content_seed_rng =
      derived_rng(config_.seed, device.id.value,
                  static_cast<std::uint64_t>(slot));
  media::ContentGenerator generator(content_seed_rng());
  const auto vid = common::VideoId{static_cast<std::uint32_t>(
      device.id.value * 100000u + static_cast<std::uint32_t>(slot))};
  return generator.generate(vid, device.genre, config_.chunks_per_slot,
                            device.bitrate_mbps,
                            common::Seconds{config_.chunk_seconds});
}

RunMetrics Emulator::run() {
  setup_devices();

  const auto n_devices = static_cast<std::size_t>(config_.group_size);
  RunMetrics metrics;
  metrics.tpv_minutes.assign(n_devices, 0.0);
  metrics.start_fractions.assign(n_devices, 0.0);
  metrics.final_fractions.assign(n_devices, 0.0);
  metrics.served.assign(n_devices, 0);
  metrics.last_gamma_estimate.assign(n_devices, 0.0);
  metrics.mean_true_gamma.assign(n_devices, 0.0);
  for (std::size_t n = 0; n < n_devices; ++n) {
    metrics.start_fractions[n] = devices_[n].start_fraction;
  }

  streaming::CdnServer cdn;
  streaming::EdgeCache cache(/*capacity_mb=*/8.0 * 1024.0);
  const transform::ResourceModel resources;
  const survey::AnxietyModel& anxiety = context_.anxiety_model();

  // Observability handles, resolved once (names are looked up under the
  // registry mutex; the slot loop then writes lock-free).  All of this is
  // purely observational: RunMetrics is computed from the same variables
  // with or without a registry attached.
  obs::MetricsRegistry* registry = context_.metrics;
  obs::EventTrace* events = context_.events;
  obs::Counter* obs_giveups = nullptr;
  obs::Counter* obs_depleted = nullptr;
  obs::Counter* obs_bayes_updates = nullptr;
  obs::Counter* obs_slots = nullptr;
  obs::Gauge* obs_active = nullptr;
  obs::Gauge* obs_cache_used = nullptr;
  obs::Gauge* obs_cache_evictions = nullptr;
  obs::Histogram* obs_slot_energy = nullptr;
  obs::Histogram* obs_availability = nullptr;
  if (registry != nullptr) {
    obs_giveups = &registry->counter(
        "lpvs_emu_giveups_total",
        "Users who abandoned the stream at their give-up level");
    obs_depleted = &registry->counter("lpvs_emu_battery_depleted_total",
                                      "Devices that ran the battery empty");
    obs_bayes_updates = &registry->counter(
        "lpvs_emu_bayes_updates_total",
        "Per-slot gamma observations fed to the Bayesian estimators");
    obs_slots = &registry->counter("lpvs_emu_slots_total",
                                   "Emulated slots executed");
    obs_active = &registry->gauge("lpvs_emu_active_devices",
                                  "Devices still watching (last slot)");
    obs_cache_used = &registry->gauge("lpvs_edge_cache_used_mb",
                                      "Edge chunk cache occupancy, MB");
    obs_cache_evictions = &registry->gauge(
        "lpvs_edge_cache_evictions", "Cumulative edge cache evictions");
    obs_slot_energy = &registry->histogram(
        "lpvs_emu_slot_energy_mwh",
        obs::MetricsRegistry::linear_buckets(0.0, 50.0, 24),
        "Cluster-wide battery energy drained per slot, mWh");
    obs_availability = &registry->histogram(
        "lpvs_emu_chunk_availability",
        obs::MetricsRegistry::linear_buckets(0.0, 0.1, 11),
        "Fraction of a slot's chunks available at the edge per device");
  }

  // Fault layer (tentpole): with an active injector in the context, each
  // device's per-slot report exchange crosses a lossy signaling link (with
  // retry + accounted backoff), CDN-to-edge chunk deliveries can drop, and
  // the end-of-slot Bayes report can be lost or corrupted in transit.
  // Every decision is keyed on (device, slot), so a replay under the same
  // injector config is bit-identical; with a null or disabled injector
  // every fault branch below is skipped — including the signaling energy
  // drain, which is only modeled when the link is allowed to be lossy —
  // so RunMetrics match the fault-free pipeline bit for bit.
  const fault::FaultInjector* faults = context_.faults;
  const bool faults_active = context_.faults_active();
  const core::SignalingLink signaling{};
  obs::Counter* obs_signaling_retries = nullptr;
  obs::Counter* obs_signaling_failures = nullptr;
  obs::Counter* obs_bayes_lost = nullptr;
  if (registry != nullptr && faults_active) {
    obs_signaling_retries = &registry->counter(
        "lpvs_signaling_retries_total",
        "Report-exchange delivery retries under injected faults");
    obs_signaling_failures = &registry->counter(
        "lpvs_signaling_failures_total",
        "Report exchanges that failed after the whole retry budget");
    obs_bayes_lost = &registry->counter(
        "lpvs_emu_bayes_reports_lost_total",
        "Gamma observations lost to injected report faults");
  }

  // Warm-start plumbing: this cluster's slot solves form one problem
  // stream, so consecutive slots seed each other's ILP incumbents.  The
  // cache lives for the run; a caller-provided cache (e.g. a batch layer's)
  // takes precedence so cross-run reuse stays possible.
  solver::SolveCache run_cache;
  core::RunContext scheduling_context = context_;
  if (config_.warm_start && scheduling_context.solve_cache == nullptr) {
    scheduling_context =
        context_.with_solve_cache(&run_cache, /*key=*/config_.seed);
  }

  double anxiety_accumulator = 0.0;
  double scheduler_ms_total = 0.0;
  std::vector<long> true_gamma_samples(n_devices, 0);
  // One-slot-ahead mode: the decision executed in slot t was computed in
  // slot t-1.  Slot 0 bootstraps with conventional (untransformed)
  // streaming, exactly as a freshly attached scheduler would.
  std::vector<std::int8_t> pending_decision(n_devices, 0);

  for (int slot = 0; slot < config_.slots; ++slot) {
    // --- (1) Information gathering ---------------------------------
    std::vector<std::size_t> active;
    std::vector<media::Video> videos;
    // Maps each active device to its row in problem.devices, or -1 when
    // its report exchange failed: the edge cannot schedule a device it
    // never heard from, so that device plays the slot untransformed while
    // staying in the playback loop.  Without faults this is the identity.
    std::vector<std::ptrdiff_t> problem_index;
    core::SlotProblem problem;
    problem.compute_capacity = config_.compute_capacity;
    problem.storage_capacity = config_.storage_capacity_mb;
    problem.lambda = config_.lambda;
    long slot_chunks_available = 0;

    for (std::size_t n = 0; n < n_devices; ++n) {
      DeviceState& device = devices_[n];
      if (!device.watching || device.battery.empty()) continue;

      media::Video video = slot_video(device, slot);
      cdn.publish(video);
      common::Rng slot_rng = derived_rng(config_.seed ^ 0xF00Du,
                                         device.id.value,
                                         static_cast<std::uint64_t>(slot));
      const int window = static_cast<int>(slot_rng.uniform_int(
          config_.prefetch_window_min, config_.prefetch_window_max));
      streaming::Prefetcher(window).prefetch(cdn, cache, video.id, 0, faults,
                                             /*fault_key=*/device.id.value);
      const streaming::ChunkRequest request = streaming::available_request(
          cdn, cache, video.id, 0,
          static_cast<std::size_t>(config_.chunks_per_slot));
      slot_chunks_available += static_cast<long>(request.chunk_count());
      if (obs_availability != nullptr) {
        obs_availability->observe(
            static_cast<double>(request.chunk_count()) /
            static_cast<double>(config_.chunks_per_slot));
      }

      // Report exchange over the (lossy) signaling link.  The radio energy
      // of every attempt — retries included — comes out of the battery
      // before the report is priced, so the edge sees the post-exchange
      // energy status.
      bool report_delivered = true;
      if (faults_active) {
        const common::StatusOr<core::SignalingOutcome> exchange =
            signaling.exchange(faults, device.id.value,
                               static_cast<std::uint64_t>(slot),
                               request.chunk_count());
        double signaling_mwh = 0.0;
        if (exchange.ok()) {
          const core::SignalingOutcome& outcome = exchange.value();
          signaling_mwh = outcome.energy.value;
          if (outcome.retries() > 0) {
            if (obs_signaling_retries != nullptr) {
              obs_signaling_retries->add(outcome.retries());
            }
            if (events != nullptr) {
              events->record({obs::EventKind::kRetry, slot,
                              static_cast<int>(device.id.value),
                              {{"attempts", static_cast<double>(
                                                outcome.uplink_attempts +
                                                outcome.downlink_attempts)},
                               {"backoff_ms", outcome.backoff_ms}}});
            }
          }
        } else {
          report_delivered = false;
          // The whole retry budget was burned before giving up; charge the
          // clean per-attempt cost for each attempt.
          signaling_mwh =
              core::SignalingCostModel{}
                  .report_energy(signaling.schema(), request.chunk_count())
                  .value *
              signaling.backoff().max_attempts;
          if (obs_signaling_failures != nullptr) {
            obs_signaling_failures->add(1);
          }
          if (events != nullptr) {
            events->record(
                {obs::EventKind::kFaultInjected, slot,
                 static_cast<int>(device.id.value),
                 {{"site", static_cast<double>(static_cast<int>(
                               fault::FaultSite::kSignalingUplink))}}});
          }
        }
        metrics.total_energy_mwh +=
            device.battery
                .drain_energy(common::MilliwattHours{signaling_mwh})
                .value;
      }
      if (!report_delivered) {
        problem_index.push_back(-1);
        active.push_back(n);
        videos.push_back(std::move(video));
        continue;
      }

      core::DeviceSlotInput input;
      input.id = device.id;
      // Price only the chunks available at the edge (Fig. 4): the paper
      // estimates power rates over the available window.
      const std::size_t known = std::max<std::size_t>(request.chunk_count(),
                                                      1);
      input.power_rates_mw.reserve(known);
      input.chunk_durations_s.reserve(known);
      for (std::size_t k = 0; k < known && k < video.chunks.size(); ++k) {
        input.power_rates_mw.push_back(
            estimator_.rate(device.spec, video.chunks[k]).value);
        input.chunk_durations_s.push_back(video.chunks[k].duration.value);
      }
      input.initial_energy_mwh = device.battery.remaining().value;
      input.battery_capacity_mwh = device.battery.capacity().value;
      if (config_.one_slot_ahead) {
        // The schedule we compute now executes next slot; predict the
        // battery at that boundary: current energy minus the expected
        // spend of the in-flight slot under the pending decision.
        const double gamma_estimate =
            device.estimator.expected_gamma();  // best current knowledge
        double spend_mwh = 0.0;
        for (std::size_t k = 0; k < input.power_rates_mw.size(); ++k) {
          const double psi =
              pending_decision[device.id.value]
                  ? (1.0 - gamma_estimate) * input.power_rates_mw[k]
                  : input.power_rates_mw[k];
          spend_mwh += psi * input.chunk_durations_s[k] / 3600.0;
        }
        input.initial_energy_mwh =
            std::max(input.initial_energy_mwh - spend_mwh, 0.0);
      }
      switch (config_.gamma_mode) {
        case GammaMode::kBayesian:
          input.gamma = device.estimator.expected_gamma();
          break;
        case GammaMode::kNigBayesian:
          input.gamma = device.nig_estimator.expected_gamma();
          break;
        case GammaMode::kFixedPrior:
          input.gamma = device.estimator.prior().mean;
          break;
        case GammaMode::kOracle:
          input.gamma = engine_.video_gamma(device.spec, video);
          break;
      }
      input.compute_cost = resources.compute_cost(device.spec, video);
      input.storage_cost = resources.storage_cost(video);

      problem_index.push_back(
          static_cast<std::ptrdiff_t>(problem.devices.size()));
      problem.devices.push_back(std::move(input));
      active.push_back(n);
      videos.push_back(std::move(video));
    }

    if (active.empty()) break;

    // --- (2) Request scheduling ------------------------------------
    const auto t0 = std::chrono::steady_clock::now();
    const core::Schedule schedule =
        scheduler_.schedule(problem, scheduling_context.with_slot(slot));
    const auto t1 = std::chrono::steady_clock::now();
    scheduler_ms_total +=
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    ++metrics.slots_run;
    if (obs_slots != nullptr) {
      obs_slots->add(1);
      obs_active->set(static_cast<double>(active.size()));
      obs_cache_used->set(cache.used_mb());
      obs_cache_evictions->set(static_cast<double>(cache.evictions()));
    }
    if (events != nullptr) {
      events->record(
          {obs::EventKind::kCacheAccess, slot, /*device=*/-1,
           {{"chunks_available", static_cast<double>(slot_chunks_available)},
            {"chunks_requested",
             static_cast<double>(active.size()) *
                 static_cast<double>(config_.chunks_per_slot)},
            {"cache_used_mb", cache.used_mb()},
            {"evictions", static_cast<double>(cache.evictions())}}});
    }
    double slot_energy_mwh = 0.0;

    // --- (3) Transforming & playback -------------------------------
    for (std::size_t i = 0; i < active.size(); ++i) {
      DeviceState& device = devices_[active[i]];
      media::Video video = videos[i];
      // One-slot-ahead: execute last slot's decision; record this slot's
      // for the next.  Otherwise execute immediately.  A device whose
      // report never reached the edge (problem_index -1) was not in the
      // problem and plays untransformed.
      const std::ptrdiff_t pi = problem_index[i];
      bool selected =
          pi >= 0 && schedule.x[static_cast<std::size_t>(pi)] != 0;
      if (config_.one_slot_ahead) {
        const bool execute_now = pending_decision[device.id.value] != 0;
        pending_decision[device.id.value] = static_cast<std::int8_t>(
            pi >= 0 ? schedule.x[static_cast<std::size_t>(pi)] : 0);
        selected = execute_now;
      }

      // Remark 1: the user may switch videos mid-slot; LPVS keeps the
      // decision for this user until the next scheduling point, so the
      // transform applies to content the scheduler never priced.
      if (config_.switch_probability > 0.0) {
        common::Rng switch_rng = derived_rng(
            config_.seed ^ 0x5717C4u, device.id.value,
            static_cast<std::uint64_t>(slot));
        if (switch_rng.bernoulli(config_.switch_probability) &&
            video.chunks.size() > 1) {
          const auto cut = static_cast<std::size_t>(switch_rng.uniform_int(
              1, static_cast<std::int64_t>(video.chunks.size()) - 1));
          const auto new_genre = static_cast<media::Genre>(
              switch_rng.uniform_int(0, media::kGenreCount - 1));
          media::ContentGenerator other(switch_rng());
          const media::Video replacement = other.generate(
              common::VideoId{video.id.value + 50000u}, new_genre,
              static_cast<int>(video.chunks.size() - cut),
              device.bitrate_mbps,
              common::Seconds{config_.chunk_seconds});
          for (std::size_t k = cut; k < video.chunks.size(); ++k) {
            video.chunks[k] = replacement.chunks[k - cut];
            video.chunks[k].id =
                common::ChunkId{static_cast<std::uint32_t>(k)};
          }
        }
      }

      const double true_gamma = engine_.video_gamma(device.spec, video);
      metrics.mean_true_gamma[active[i]] += true_gamma;
      ++true_gamma_samples[active[i]];
      if (selected) {
        device.ever_served = true;
        ++device.slots_served;
        ++metrics.total_selected;
        metrics.served[active[i]] = 1;
      }

      for (const media::VideoChunk& chunk : video.chunks) {
        const double rate = estimator_.rate(device.spec, chunk).value;
        const double psi = selected ? (1.0 - true_gamma) * rate : rate;
        anxiety_accumulator += anxiety(device.battery.fraction());
        ++metrics.anxiety_samples;
        const common::MilliwattHours drawn = device.battery.drain(
            common::Milliwatts{psi}, chunk.duration);
        metrics.total_energy_mwh += drawn.value;
        slot_energy_mwh += drawn.value;
        device.watch_minutes += chunk.duration.value / 60.0;
        if (device.battery.empty()) {
          device.watching = false;
          if (obs_depleted != nullptr) obs_depleted->add(1);
          break;
        }
        if (config_.enable_giveup && device.giveup_percent > 0 &&
            device.battery.percent() <=
                static_cast<double>(device.giveup_percent)) {
          device.watching = false;  // the user gives up on the video
          if (obs_giveups != nullptr) obs_giveups->add(1);
          if (events != nullptr) {
            events->record(
                {obs::EventKind::kGiveUp, slot,
                 static_cast<int>(device.id.value),
                 {{"battery_percent", device.battery.percent()},
                  {"watch_minutes", device.watch_minutes}}});
          }
          break;
        }
      }

      // End-of-slot gamma observation (SV-D): the realized per-slot power
      // reduction, noisy because measurement happens on a live device.
      if (selected) {
        common::Rng noise_rng = derived_rng(config_.seed ^ 0xBA1Eu,
                                            device.id.value,
                                            static_cast<std::uint64_t>(slot));
        double observed =
            true_gamma + noise_rng.normal(0.0, config_.observation_noise);
        // The observation travels the same lossy path as the report: an
        // injected drop loses it (the posterior simply doesn't move), a
        // corruption garbles the accepted measurement.
        bool observation_delivered = true;
        if (faults_active) {
          const fault::FaultDecision decision =
              faults->decide(fault::FaultSite::kBayesReport, device.id.value,
                             static_cast<std::uint64_t>(slot));
          if (decision.dropped()) {
            observation_delivered = false;
            if (obs_bayes_lost != nullptr) obs_bayes_lost->add(1);
            if (events != nullptr) {
              events->record(
                  {obs::EventKind::kFaultInjected, slot,
                   static_cast<int>(device.id.value),
                   {{"site", static_cast<double>(static_cast<int>(
                                 fault::FaultSite::kBayesReport))}}});
            }
          } else if (decision.corrupted()) {
            observed += decision.corrupt_factor;
          }
        }
        if (!observation_delivered) continue;
        device.estimator.observe(observed);
        device.nig_estimator.observe(observed);
        if (obs_bayes_updates != nullptr) obs_bayes_updates->add(1);
        if (events != nullptr) {
          events->record({obs::EventKind::kBayesUpdate, slot,
                          static_cast<int>(device.id.value),
                          {{"observed_gamma", observed},
                           {"posterior_mean",
                            device.estimator.expected_gamma()}}});
        }
      }
    }

    if (obs_slot_energy != nullptr) obs_slot_energy->observe(slot_energy_mwh);
    if (events != nullptr) {
      events->record({obs::EventKind::kBatteryDrain, slot, /*device=*/-1,
                      {{"energy_mwh", slot_energy_mwh},
                       {"active_devices",
                        static_cast<double>(active.size())}}});
    }
  }

  for (std::size_t n = 0; n < n_devices; ++n) {
    metrics.tpv_minutes[n] = devices_[n].watch_minutes;
    metrics.final_fractions[n] = devices_[n].battery.fraction();
    metrics.last_gamma_estimate[n] = devices_[n].estimator.expected_gamma();
    if (true_gamma_samples[n] > 0) {
      metrics.mean_true_gamma[n] /=
          static_cast<double>(true_gamma_samples[n]);
    }
  }
  metrics.mean_anxiety =
      metrics.anxiety_samples > 0
          ? anxiety_accumulator / static_cast<double>(metrics.anxiety_samples)
          : 0.0;
  metrics.mean_scheduler_ms =
      metrics.slots_run > 0
          ? scheduler_ms_total / static_cast<double>(metrics.slots_run)
          : 0.0;
  return metrics;
}

double PairedMetrics::energy_saving_ratio() const {
  return without_lpvs.total_energy_mwh > 0.0
             ? (without_lpvs.total_energy_mwh - with_lpvs.total_energy_mwh) /
                   without_lpvs.total_energy_mwh
             : 0.0;
}

double PairedMetrics::anxiety_reduction_ratio() const {
  return without_lpvs.mean_anxiety > 0.0
             ? (without_lpvs.mean_anxiety - with_lpvs.mean_anxiety) /
                   without_lpvs.mean_anxiety
             : 0.0;
}

PairedMetrics run_paired(const EmulatorConfig& config,
                         const core::Scheduler& scheduler,
                         const core::RunContext& context) {
  PairedMetrics paired;
  Emulator with(config, scheduler, context);
  paired.with_lpvs = with.run();
  // The baseline leg runs un-observed: its no-op schedules would only
  // dilute the metrics of the leg being studied.
  const core::NoTransformScheduler baseline;
  Emulator without(config, baseline, core::RunContext(context.anxiety_model()));
  paired.without_lpvs = without.run();
  return paired;
}

}  // namespace lpvs::emu

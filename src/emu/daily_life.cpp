#include "lpvs/emu/daily_life.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "lpvs/common/rng.hpp"
#include "lpvs/media/video.hpp"

namespace lpvs::emu {
namespace {

constexpr int kMinutesPerDay = 16 * 60;  // waking hours simulated

struct UserState {
  display::DisplaySpec spec;
  battery::Battery battery;
  int giveup_percent = 10;
  media::Genre genre = media::Genre::kIrlChat;
  double playback_mw = 900.0;  ///< untransformed average playback power
  double gamma = 0.3;          ///< device's realized saving when served
};

}  // namespace

DailyLifeReport simulate_daily_life(const DailyLifeConfig& config,
                                    const survey::AnxietyModel& anxiety) {
  assert(config.users > 0 && config.days > 0);
  common::Rng rng(config.seed);
  const auto& catalog = display::DeviceCatalog::standard();
  const media::PowerRateEstimator estimator;
  const transform::TransformEngine engine;

  // Build the fleet: hardware from the catalog, give-up levels from the
  // survey population, playback power and gamma from the physics models
  // over genre-typical content.
  const survey::SyntheticPopulation population;
  common::Rng population_rng = rng.fork(1);
  const auto participants =
      population.generate(config.users, population_rng);
  std::vector<UserState> users;
  users.reserve(static_cast<std::size_t>(config.users));
  for (int u = 0; u < config.users; ++u) {
    common::Rng user_rng = rng.fork(100 + static_cast<std::uint64_t>(u));
    UserState user;
    const auto& profile = catalog.sample(user_rng);
    user.spec = profile.spec;
    // Same session-scale battery budget as the slot emulator.
    user.battery = battery::Battery(
        common::MilliwattHours{profile.battery_mwh * 0.25}, 1.0);
    user.giveup_percent =
        participants[static_cast<std::size_t>(u)].giveup_level;
    user.genre = static_cast<media::Genre>(
        user_rng.uniform_int(0, media::kGenreCount - 1));
    media::ContentGenerator content(user_rng());
    const media::Video sample_video = content.generate(
        common::VideoId{static_cast<std::uint32_t>(u)}, user.genre, 30,
        3.0);
    double mw = 0.0;
    for (const auto& chunk : sample_video.chunks) {
      mw += estimator.rate(user.spec, chunk).value;
    }
    user.playback_mw = mw / static_cast<double>(sample_video.chunks.size());
    user.gamma = engine.video_gamma(user.spec, sample_video);
    users.push_back(std::move(user));
  }

  DailyLifeReport report;
  double anxiety_minutes = 0.0;
  double warning_minutes = 0.0;
  double viewing_minutes = 0.0;

  for (int u = 0; u < config.users; ++u) {
    UserState& user = users[static_cast<std::size_t>(u)];
    common::Rng day_rng = rng.fork(5000 + static_cast<std::uint64_t>(u));
    for (int day = 0; day < config.days; ++day) {
      // Overnight charge to full.
      user.battery = battery::Battery(user.battery.capacity(), 1.0);
      // Plan today's sessions: starts uniform over waking minutes.
      const int session_count = [&] {
        int count = 0;
        for (int h = 0; h < 16; ++h) {
          if (day_rng.bernoulli(config.sessions_per_day / 16.0)) ++count;
        }
        return count;
      }();
      std::vector<std::pair<int, int>> sessions;  // (start_min, length_min)
      for (int s = 0; s < session_count; ++s) {
        const int length = std::clamp(
            static_cast<int>(std::lround(day_rng.lognormal(
                config.session_log_mean, config.session_log_sigma))),
            5, 4 * 60);
        const int start = static_cast<int>(
            day_rng.uniform_int(0, kMinutesPerDay - 1));
        sessions.emplace_back(start, length);
      }
      std::sort(sessions.begin(), sessions.end());

      // Possible opportunistic top-up at a random daytime minute.
      const int topup_minute =
          day_rng.bernoulli(config.opportunistic_charge_rate)
              ? static_cast<int>(day_rng.uniform_int(0, kMinutesPerDay - 1))
              : -1;

      std::size_t next_session = 0;
      int session_remaining = 0;
      bool session_abandoned = false;
      bool session_served = false;
      for (int minute = 0; minute < kMinutesPerDay; ++minute) {
        if (minute == topup_minute) {
          user.battery = battery::Battery(user.battery.capacity(), 1.0);
        }
        // Session management.
        if (session_remaining == 0 && next_session < sessions.size() &&
            minute >= sessions[next_session].first) {
          session_remaining = sessions[next_session].second;
          // Serving decision keyed by (seed, user, day, session) so that
          // with/without-LPVS runs see identical worlds.
          common::Rng serve_rng(config.seed ^
                                (static_cast<std::uint64_t>(u) << 40) ^
                                (static_cast<std::uint64_t>(day) << 20) ^
                                next_session);
          session_served = config.lpvs_enabled &&
                           serve_rng.uniform() < config.served_fraction;
          ++next_session;
          ++report.sessions_started;
          session_abandoned = false;
        }
        double draw_mw = config.idle_mw;
        if (session_remaining > 0 && !session_abandoned) {
          draw_mw = session_served
                        ? (1.0 - user.gamma) * user.playback_mw
                        : user.playback_mw;
          viewing_minutes += 1.0;
        }
        user.battery.drain(common::Milliwatts{draw_mw},
                           common::Seconds{60.0});
        if (session_remaining > 0) {
          --session_remaining;
          if (!session_abandoned && user.giveup_percent > 0 &&
              user.battery.percent() <=
                  static_cast<double>(user.giveup_percent)) {
            ++report.sessions_abandoned;
            session_abandoned = true;
            session_remaining = 0;  // the user stops watching
          }
        }
        const double level = user.battery.fraction();
        anxiety_minutes += anxiety(level);
        if (level <= 0.20) warning_minutes += 1.0;
      }
    }
  }

  const double user_days =
      static_cast<double>(config.users) * static_cast<double>(config.days);
  report.anxiety_minutes_per_day = anxiety_minutes / user_days;
  report.warning_zone_minutes_per_day = warning_minutes / user_days;
  report.mean_viewing_minutes_per_day = viewing_minutes / user_days;
  return report;
}

}  // namespace lpvs::emu

#include "lpvs/emu/daily_life.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "lpvs/common/rng.hpp"
#include "lpvs/core/batch_scheduler.hpp"
#include "lpvs/core/slot_problem.hpp"
#include "lpvs/media/video.hpp"

namespace lpvs::emu {
namespace {

constexpr int kMinutesPerDay = 16 * 60;  // waking hours simulated
constexpr int kSlotMinutes = 5;          // fleet-mode scheduling cadence

struct UserState {
  display::DisplaySpec spec;
  battery::Battery battery;
  int giveup_percent = 10;
  media::Genre genre = media::Genre::kIrlChat;
  double playback_mw = 900.0;  ///< untransformed average playback power
  double gamma = 0.3;          ///< device's realized saving when served
  /// Edge resource costs of transforming this user's stream (fleet mode).
  double compute_cost = 0.45;
  double storage_cost = 75.0;
};

/// Builds the fleet: hardware from the catalog, give-up levels from the
/// survey population, playback power and gamma from the physics models
/// over genre-typical content.  Consumes rng.fork(1) then one fork per
/// user, in user order — both entry points share this so their fleets
/// (and the coin-flip path's historical outputs) are identical.
std::vector<UserState> build_users(const DailyLifeConfig& config,
                                   common::Rng& rng) {
  const auto& catalog = display::DeviceCatalog::standard();
  const media::PowerRateEstimator estimator;
  const transform::TransformEngine engine;

  const survey::SyntheticPopulation population;
  common::Rng population_rng = rng.fork(1);
  const auto participants = population.generate(config.users, population_rng);
  std::vector<UserState> users;
  users.reserve(static_cast<std::size_t>(config.users));
  for (int u = 0; u < config.users; ++u) {
    common::Rng user_rng = rng.fork(100 + static_cast<std::uint64_t>(u));
    UserState user;
    const auto& profile = catalog.sample(user_rng);
    user.spec = profile.spec;
    // Same session-scale battery budget as the slot emulator.
    user.battery = battery::Battery(
        common::MilliwattHours{profile.battery_mwh * 0.25}, 1.0);
    user.giveup_percent =
        participants[static_cast<std::size_t>(u)].giveup_level;
    user.genre = static_cast<media::Genre>(
        user_rng.uniform_int(0, media::kGenreCount - 1));
    media::ContentGenerator content(user_rng());
    const media::Video sample_video = content.generate(
        common::VideoId{static_cast<std::uint32_t>(u)}, user.genre, 30,
        3.0);
    double mw = 0.0;
    for (const auto& chunk : sample_video.chunks) {
      mw += estimator.rate(user.spec, chunk).value;
    }
    user.playback_mw = mw / static_cast<double>(sample_video.chunks.size());
    user.gamma = engine.video_gamma(user.spec, sample_video);
    // Extra draws past the original sequence, so the coin-flip path's
    // fleet is unchanged: edge costs only matter to the fleet mode.
    user.compute_cost = user_rng.uniform(0.3, 0.8);
    user.storage_cost = user_rng.uniform(50.0, 150.0);
    users.push_back(std::move(user));
  }
  return users;
}

/// One user's plan for one day: session (start, length) pairs sorted by
/// start, plus an optional opportunistic top-up minute.
struct DayPlan {
  std::vector<std::pair<int, int>> sessions;
  int topup_minute = -1;
};

/// Draws a day plan; consumes `day_rng` exactly as the original
/// user-major loop did (hour coins, then per-session length/start, then
/// the top-up coin), so both entry points see the same worlds.
DayPlan plan_day(const DailyLifeConfig& config, common::Rng& day_rng) {
  DayPlan plan;
  int session_count = 0;
  for (int h = 0; h < 16; ++h) {
    if (day_rng.bernoulli(config.sessions_per_day / 16.0)) ++session_count;
  }
  for (int s = 0; s < session_count; ++s) {
    const int length = std::clamp(
        static_cast<int>(std::lround(day_rng.lognormal(
            config.session_log_mean, config.session_log_sigma))),
        5, 4 * 60);
    const int start =
        static_cast<int>(day_rng.uniform_int(0, kMinutesPerDay - 1));
    plan.sessions.emplace_back(start, length);
  }
  std::sort(plan.sessions.begin(), plan.sessions.end());
  plan.topup_minute =
      day_rng.bernoulli(config.opportunistic_charge_rate)
          ? static_cast<int>(day_rng.uniform_int(0, kMinutesPerDay - 1))
          : -1;
  return plan;
}

}  // namespace

DailyLifeReport simulate_daily_life(const DailyLifeConfig& config,
                                    const survey::AnxietyModel& anxiety) {
  assert(config.users > 0 && config.days > 0);
  common::Rng rng(config.seed);
  std::vector<UserState> users = build_users(config, rng);

  DailyLifeReport report;
  double anxiety_minutes = 0.0;
  double warning_minutes = 0.0;
  double viewing_minutes = 0.0;

  for (int u = 0; u < config.users; ++u) {
    UserState& user = users[static_cast<std::size_t>(u)];
    common::Rng day_rng = rng.fork(5000 + static_cast<std::uint64_t>(u));
    for (int day = 0; day < config.days; ++day) {
      // Overnight charge to full.
      user.battery = battery::Battery(user.battery.capacity(), 1.0);
      const DayPlan plan = plan_day(config, day_rng);

      std::size_t next_session = 0;
      int session_remaining = 0;
      bool session_abandoned = false;
      bool session_served = false;
      for (int minute = 0; minute < kMinutesPerDay; ++minute) {
        if (minute == plan.topup_minute) {
          user.battery = battery::Battery(user.battery.capacity(), 1.0);
        }
        // Session management.
        if (session_remaining == 0 && next_session < plan.sessions.size() &&
            minute >= plan.sessions[next_session].first) {
          session_remaining = plan.sessions[next_session].second;
          // Serving decision keyed by (seed, user, day, session) so that
          // with/without-LPVS runs see identical worlds.
          common::Rng serve_rng(config.seed ^
                                (static_cast<std::uint64_t>(u) << 40) ^
                                (static_cast<std::uint64_t>(day) << 20) ^
                                next_session);
          session_served = config.lpvs_enabled &&
                           serve_rng.uniform() < config.served_fraction;
          ++next_session;
          ++report.sessions_started;
          session_abandoned = false;
        }
        double draw_mw = config.idle_mw;
        if (session_remaining > 0 && !session_abandoned) {
          draw_mw = session_served
                        ? (1.0 - user.gamma) * user.playback_mw
                        : user.playback_mw;
          viewing_minutes += 1.0;
        }
        user.battery.drain(common::Milliwatts{draw_mw},
                           common::Seconds{60.0});
        if (session_remaining > 0) {
          --session_remaining;
          if (!session_abandoned && user.giveup_percent > 0 &&
              user.battery.percent() <=
                  static_cast<double>(user.giveup_percent)) {
            ++report.sessions_abandoned;
            session_abandoned = true;
            session_remaining = 0;  // the user stops watching
          }
        }
        const double level = user.battery.fraction();
        anxiety_minutes += anxiety(level);
        if (level <= 0.20) warning_minutes += 1.0;
      }
    }
  }

  const double user_days =
      static_cast<double>(config.users) * static_cast<double>(config.days);
  report.anxiety_minutes_per_day = anxiety_minutes / user_days;
  report.warning_zone_minutes_per_day = warning_minutes / user_days;
  report.mean_viewing_minutes_per_day = viewing_minutes / user_days;
  return report;
}

FleetDailyReport simulate_daily_life_fleet(const DailyLifeConfig& config,
                                           const FleetEdgeConfig& edge,
                                           const core::Scheduler& scheduler,
                                           const core::RunContext& context) {
  assert(config.users > 0 && config.days > 0 && edge.edge_servers > 0);
  common::Rng rng(config.seed);
  std::vector<UserState> users = build_users(config, rng);
  const std::size_t n_users = users.size();

  // Per-user day streams, forked in user order exactly once so the whole
  // simulation stays a function of config.seed regardless of how the
  // time-major loop below interleaves users.
  std::vector<common::Rng> day_rngs;
  day_rngs.reserve(n_users);
  for (std::size_t u = 0; u < n_users; ++u) {
    day_rngs.push_back(rng.fork(5000 + static_cast<std::uint64_t>(u)));
  }

  core::BatchScheduler::Options batch_options;
  batch_options.threads = edge.threads;
  batch_options.warm_start = edge.warm_start;
  core::BatchScheduler batch(batch_options);

  FleetDailyReport report;
  double anxiety_minutes = 0.0;
  double warning_minutes = 0.0;
  double viewing_minutes = 0.0;

  struct MinuteState {
    std::size_t next_session = 0;
    int session_remaining = 0;
    bool abandoned = false;
    bool served = false;  ///< admitted at the last slot boundary
  };

  for (int day = 0; day < config.days; ++day) {
    std::vector<DayPlan> plans;
    plans.reserve(n_users);
    for (std::size_t u = 0; u < n_users; ++u) {
      users[u].battery = battery::Battery(users[u].battery.capacity(), 1.0);
      plans.push_back(plan_day(config, day_rngs[u]));
    }
    std::vector<MinuteState> states(n_users);

    for (int minute = 0; minute < kMinutesPerDay; ++minute) {
      // Per-user top-ups and session starts first, so the slot boundary
      // sees everyone who wants the coming window.
      for (std::size_t u = 0; u < n_users; ++u) {
        UserState& user = users[u];
        MinuteState& state = states[u];
        const DayPlan& plan = plans[u];
        if (minute == plan.topup_minute) {
          user.battery = battery::Battery(user.battery.capacity(), 1.0);
        }
        if (state.session_remaining == 0 &&
            state.next_session < plan.sessions.size() &&
            minute >= plan.sessions[state.next_session].first) {
          state.session_remaining = plan.sessions[state.next_session].second;
          ++state.next_session;
          ++report.life.sessions_started;
          state.abandoned = false;
          // Admission only changes at slot boundaries; a session starting
          // mid-slot plays untransformed until the next boundary.
          state.served = false;
        }
      }

      // Slot boundary: the whole fleet's admission is one batch solve,
      // sharded across edge servers, each warm-started from its own
      // previous slot (stream key = server index).
      if (config.lpvs_enabled && minute % kSlotMinutes == 0) {
        std::vector<core::BatchItem> items(
            static_cast<std::size_t>(edge.edge_servers));
        std::vector<std::vector<std::size_t>> members(
            static_cast<std::size_t>(edge.edge_servers));
        for (std::size_t s = 0; s < items.size(); ++s) {
          items[s].stream_key = static_cast<std::uint64_t>(s);
          items[s].problem.compute_capacity = edge.compute_capacity;
          items[s].problem.storage_capacity = edge.storage_capacity_mb;
          items[s].problem.lambda = edge.lambda;
        }
        for (std::size_t u = 0; u < n_users; ++u) {
          if (states[u].session_remaining <= 0) continue;
          const auto s = u % static_cast<std::size_t>(edge.edge_servers);
          const UserState& user = users[u];
          core::DeviceSlotInput device;
          device.id = common::DeviceId{static_cast<std::uint32_t>(u)};
          device.power_rates_mw.assign(kSlotMinutes, user.playback_mw);
          device.chunk_durations_s.assign(kSlotMinutes, 60.0);
          device.initial_energy_mwh = user.battery.remaining().value;
          device.battery_capacity_mwh = user.battery.capacity().value;
          device.gamma = user.gamma;
          device.compute_cost = user.compute_cost;
          device.storage_cost = user.storage_cost;
          items[s].problem.devices.push_back(std::move(device));
          members[s].push_back(u);
          ++report.requests;
        }
        bool any = false;
        for (const auto& item : items) any |= !item.problem.devices.empty();
        if (any) {
          ++report.slot_batches;
          const std::vector<core::Schedule> schedules =
              batch.schedule_batch(items, scheduler, context);
          for (std::size_t s = 0; s < schedules.size(); ++s) {
            for (std::size_t d = 0; d < members[s].size(); ++d) {
              const bool admit = d < schedules[s].x.size() &&
                                 schedules[s].x[d] != 0;
              states[members[s][d]].served = admit;
              if (admit) ++report.admissions;
            }
          }
        }
      }

      // Drain, abandonment, anxiety integration — as the coin-flip mode.
      for (std::size_t u = 0; u < n_users; ++u) {
        UserState& user = users[u];
        MinuteState& state = states[u];
        double draw_mw = config.idle_mw;
        if (state.session_remaining > 0 && !state.abandoned) {
          draw_mw = state.served ? (1.0 - user.gamma) * user.playback_mw
                                 : user.playback_mw;
          viewing_minutes += 1.0;
        }
        user.battery.drain(common::Milliwatts{draw_mw},
                           common::Seconds{60.0});
        if (state.session_remaining > 0) {
          --state.session_remaining;
          if (!state.abandoned && user.giveup_percent > 0 &&
              user.battery.percent() <=
                  static_cast<double>(user.giveup_percent)) {
            ++report.life.sessions_abandoned;
            state.abandoned = true;
            state.session_remaining = 0;
          }
        }
        const double level = user.battery.fraction();
        anxiety_minutes += context.anxiety_model()(level);
        if (level <= 0.20) warning_minutes += 1.0;
      }
    }
  }

  const double user_days =
      static_cast<double>(config.users) * static_cast<double>(config.days);
  report.life.anxiety_minutes_per_day = anxiety_minutes / user_days;
  report.life.warning_zone_minutes_per_day = warning_minutes / user_days;
  report.life.mean_viewing_minutes_per_day = viewing_minutes / user_days;
  report.cache = batch.cache().stats();
  return report;
}

}  // namespace lpvs::emu

#include "lpvs/transform/pixel_pipeline.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lpvs::transform {
namespace {

std::uint8_t scale_channel(std::uint8_t value, double factor) {
  return media::linear_to_srgb(
      std::clamp(media::srgb_to_linear(value) * factor, 0.0, 1.0));
}

}  // namespace

common::Milliwatts oled_power_per_pixel(const display::OledPowerModel& model,
                                        const display::DisplaySpec& spec,
                                        const media::Frame& frame) {
  const auto& c = model.coefficients();
  double weighted_sum = 0.0;
  for (int y = 0; y < frame.height(); ++y) {
    for (int x = 0; x < frame.width(); ++x) {
      const media::Pixel p = frame.at(x, y);
      weighted_sum += c.red_weight * media::srgb_to_linear(p.r) +
                      c.green_weight * media::srgb_to_linear(p.g) +
                      c.blue_weight * media::srgb_to_linear(p.b);
    }
  }
  // Normalize the frame's pixel sum to the *panel's* pixel count: the
  // frame is a (possibly downsampled) proxy for what the panel shows.
  const double frame_pixels =
      std::max<double>(1.0, static_cast<double>(frame.pixel_count()));
  const double panel_megapixels =
      static_cast<double>(spec.pixel_count()) / 1.0e6;
  const double mean_weighted = weighted_sum / frame_pixels;
  const double emission = c.mw_per_megapixel_unit * panel_megapixels *
                          std::clamp(spec.brightness, 0.0, 1.0) *
                          mean_weighted;
  return {emission + c.static_mw_per_sq_in * spec.area_sq_inches()};
}

media::Frame apply_color_transform(const media::Frame& frame,
                                   const QualityBudget& budget) {
  media::Frame out = frame;
  const double fr = budget.darken * budget.red_scale;
  const double fg = budget.darken;
  const double fb = budget.darken * budget.blue_scale;
  for (int y = 0; y < out.height(); ++y) {
    for (int x = 0; x < out.width(); ++x) {
      const media::Pixel p = out.at(x, y);
      out.set(x, y,
              {scale_channel(p.r, fr), scale_channel(p.g, fg),
               scale_channel(p.b, fb)});
    }
  }
  return out;
}

media::Frame apply_backlight_compensation(const media::Frame& frame,
                                          double original_backlight,
                                          double scaled_backlight) {
  assert(scaled_backlight > 0.0);
  const double boost = original_backlight / scaled_backlight;
  media::Frame out = frame;
  for (int y = 0; y < out.height(); ++y) {
    for (int x = 0; x < out.width(); ++x) {
      const media::Pixel p = out.at(x, y);
      out.set(x, y,
              {scale_channel(p.r, boost), scale_channel(p.g, boost),
               scale_channel(p.b, boost)});
    }
  }
  return out;
}

media::Frame perceived_lcd_frame(const media::Frame& frame,
                                 double backlight_level) {
  media::Frame out = frame;
  for (int y = 0; y < out.height(); ++y) {
    for (int x = 0; x < out.width(); ++x) {
      const media::Pixel p = out.at(x, y);
      out.set(x, y,
              {scale_channel(p.r, backlight_level),
               scale_channel(p.g, backlight_level),
               scale_channel(p.b, backlight_level)});
    }
  }
  return out;
}

PixelPipeline::PixelPipeline(display::DevicePowerModel device_model,
                             QualityBudget budget)
    : device_model_(device_model), budget_(budget) {}

PixelTransformReport PixelPipeline::transform_frame(
    const display::DisplaySpec& spec, const media::Frame& frame) const {
  PixelTransformReport report;
  if (spec.type == display::DisplayType::kOled) {
    report.transformed = apply_color_transform(frame, budget_);
    report.display_power_before =
        oled_power_per_pixel(device_model_.oled(), spec, frame);
    report.display_power_after =
        oled_power_per_pixel(device_model_.oled(), spec, report.transformed);
    // OLED shows pixels directly: quality is measured frame-to-frame.
    report.psnr_db = media::psnr(frame, report.transformed);
    report.ssim = media::ssim_luma(frame, report.transformed);
    return report;
  }

  // LCD: choose the backlight from the frame's measured statistics (the
  // same policy BacklightScaling applies to chunk statistics), then
  // compensate pixel values and compare *perceived* images.
  const display::FrameStats stats = media::compute_stats(frame);
  const BacklightScaling scaling(device_model_.lcd(), budget_);
  const ChunkTransform decision = scaling.apply(spec, stats);
  report.backlight_level = decision.backlight_level;
  report.transformed = apply_backlight_compensation(frame, spec.brightness,
                                                    decision.backlight_level);
  report.display_power_before = decision.display_power_before;
  report.display_power_after = decision.display_power_after;
  const media::Frame seen_before =
      perceived_lcd_frame(frame, spec.brightness);
  const media::Frame seen_after =
      perceived_lcd_frame(report.transformed, decision.backlight_level);
  report.psnr_db = media::psnr(seen_before, seen_after);
  report.ssim = media::ssim_luma(seen_before, seen_after);
  return report;
}

}  // namespace lpvs::transform

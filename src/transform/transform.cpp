#include "lpvs/transform/transform.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lpvs::transform {

ChunkTransform BacklightScaling::apply(
    const display::DisplaySpec& spec,
    const display::FrameStats& stats) const {
  const display::FrameStats s = stats.clamped();
  // Target backlight: cover peak_coverage of the content's peak luminance,
  // never below the floor and never above the user's current setting.
  const double wanted = s.peak_luminance * budget_.peak_coverage;
  const double floor = budget_.min_backlight_fraction * spec.brightness;
  const double scaled =
      std::clamp(wanted, std::min(floor, spec.brightness), spec.brightness);

  ChunkTransform out;
  out.backlight_level = scaled;
  // Luminance compensation: pixel values are boosted so perceived
  // brightness is preserved; only highlights above the new backlight clip.
  out.transformed_stats = s;
  out.transformed_stats.peak_luminance =
      std::min(s.peak_luminance, scaled / std::max(spec.brightness, 1e-9));
  out.display_power_before = model_.power(spec, spec.brightness);
  out.display_power_after = model_.power(spec, scaled);
  // Distortion proxy: fraction of the luminance range that clipped.
  const double clipped =
      std::max(0.0, s.peak_luminance * spec.brightness - scaled);
  out.distortion = std::clamp(
      clipped / std::max(s.peak_luminance * spec.brightness, 1e-9), 0.0, 1.0);
  return out;
}

ChunkTransform OledColorTransform::apply(
    const display::DisplaySpec& spec,
    const display::FrameStats& stats) const {
  const display::FrameStats s = stats.clamped();
  ChunkTransform out;
  display::FrameStats t = s;
  t.mean_r = s.mean_r * budget_.darken * budget_.red_scale;
  t.mean_g = s.mean_g * budget_.darken;
  t.mean_b = s.mean_b * budget_.darken * budget_.blue_scale;
  // Rec.709 relative luminance of the transformed channel means.
  t.mean_luminance =
      0.2126 * t.mean_r + 0.7152 * t.mean_g + 0.0722 * t.mean_b;
  t.peak_luminance = s.peak_luminance * budget_.darken;
  out.transformed_stats = t.clamped();
  out.display_power_before = model_.power(spec, s);
  out.display_power_after = model_.power(spec, out.transformed_stats);
  // Perceptual distortion proxy: luminance-weighted channel deviation
  // (green dominates perceived lightness, blue the least).
  out.distortion = std::clamp(0.30 * (s.mean_r - t.mean_r) +
                                  0.55 * (s.mean_g - t.mean_g) +
                                  0.15 * (s.mean_b - t.mean_b),
                              0.0, 1.0);
  return out;
}

TransformEngine::TransformEngine(display::DevicePowerModel device_model,
                                 QualityBudget budget)
    : device_model_(device_model), budget_(budget) {}

ChunkTransform TransformEngine::transform_chunk(
    const display::DisplaySpec& spec, const media::VideoChunk& chunk) const {
  if (spec.type == display::DisplayType::kLcd) {
    return BacklightScaling(device_model_.lcd(), budget_)
        .apply(spec, chunk.stats);
  }
  return OledColorTransform(device_model_.oled(), budget_)
      .apply(spec, chunk.stats);
}

double TransformEngine::chunk_gamma(const display::DisplaySpec& spec,
                                    const media::VideoChunk& chunk) const {
  const ChunkTransform result = transform_chunk(spec, chunk);
  const double total =
      device_model_.playback_power(spec, chunk.stats, chunk.bitrate_mbps)
          .value;
  if (total <= 0.0) return 0.0;
  const double saved = result.display_power_before.value -
                       result.display_power_after.value;
  return std::clamp(saved / total, 0.0, 1.0);
}

double TransformEngine::video_gamma(const display::DisplaySpec& spec,
                                    const media::Video& video) const {
  if (video.chunks.empty()) return 0.0;
  // Energy-weighted average: gamma over a slot is total energy saved over
  // total energy that would have been drawn untransformed.
  double saved_mwh = 0.0;
  double base_mwh = 0.0;
  for (const media::VideoChunk& chunk : video.chunks) {
    const double total =
        device_model_.playback_power(spec, chunk.stats, chunk.bitrate_mbps)
            .value;
    const ChunkTransform result = transform_chunk(spec, chunk);
    const double saved = result.display_power_before.value -
                         result.display_power_after.value;
    base_mwh += total * chunk.duration.value;
    saved_mwh += saved * chunk.duration.value;
  }
  return base_mwh > 0.0 ? std::clamp(saved_mwh / base_mwh, 0.0, 1.0) : 0.0;
}

StrategyRegistry::StrategyRegistry(std::vector<StrategyEntry> entries)
    : entries_(std::move(entries)) {
  assert(!entries_.empty());
}

const StrategyRegistry& StrategyRegistry::table1() {
  using display::DisplayType;
  static const StrategyRegistry registry({
      {"quality adapted backlight scaling [18]", DisplayType::kLcd, 0.27, 0.42},
      {"dynamic backlight scaling [19]", DisplayType::kLcd, 0.15, 0.49},
      {"dynamic backlight luminance scaling [20]", DisplayType::kLcd, 0.20,
       0.80},
      {"brightness & contrast scaling [21]", DisplayType::kLcd, 0.00, 0.50},
      {"luminance dimming & compensation [22]", DisplayType::kLcd, 0.20, 0.38},
      {"color and shape transforming [17]", DisplayType::kOled, 0.25, 0.66},
      {"color transforming and darkening [23]", DisplayType::kOled, 0.00,
       0.60},
      {"color transforming with constraints [12]", DisplayType::kOled, 0.00,
       0.64},
      {"pixel disabling & resolution scaling [24]", DisplayType::kOled, 0.00,
       0.26},
      {"image pixel scaling [25]", DisplayType::kOled, 0.38, 0.42},
      {"redundant subpixel shutoff [6]", DisplayType::kOled, 0.00, 0.21},
  });
  return registry;
}

double StrategyRegistry::average_min() const {
  double sum = 0.0;
  for (const StrategyEntry& e : entries_) sum += e.min_saving;
  return sum / static_cast<double>(entries_.size());
}

double StrategyRegistry::average_max() const {
  double sum = 0.0;
  for (const StrategyEntry& e : entries_) sum += e.max_saving;
  return sum / static_cast<double>(entries_.size());
}

double ResourceModel::compute_cost(const display::DisplaySpec& spec,
                                   const media::Video& video) const {
  // Transform work is per displayed pixel per frame; normalize to a
  // 1080p30 stream (~62.2 megapixel/s) as one compute unit's worth.
  (void)video;  // bitrate does not change the per-pixel transform cost
  const double megapixels =
      static_cast<double>(spec.pixel_count()) / 1.0e6;
  constexpr double kFps = 30.0;
  constexpr double kReferenceMegapixelRate = 1920.0 * 1080.0 / 1.0e6 * 30.0;
  return coefficients_.compute_units_per_megapixel30 * megapixels * kFps /
         kReferenceMegapixelRate;
}

double ResourceModel::storage_cost(const media::Video& video) const {
  double megabytes = 0.0;
  for (const media::VideoChunk& chunk : video.chunks) {
    megabytes += chunk.bitrate_mbps * chunk.duration.value / 8.0;
  }
  return megabytes * coefficients_.storage_overhead;
}

}  // namespace lpvs::transform

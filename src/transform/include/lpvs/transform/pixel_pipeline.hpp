// Per-pixel transform pipeline (reproduction extension).
//
// The statistics-based transforms in transform.hpp predict power and
// quality from channel means; this module performs the actual per-pixel
// work those predictions summarize — the computation that is "operated on
// a per-pixel basis and thus computation intensive" (SII-B), i.e. exactly
// what LPVS offloads from phones to the edge server:
//
//  * OLED color transform: scale each pixel's linear-light channels
//    (darken, blue/red attenuation) and re-encode to sRGB;
//  * LCD backlight scaling with luminance compensation: boost pixel values
//    by the backlight ratio, clipping only the highlights the quality
//    budget sacrificed.
//
// Because the OLED power model is linear in per-pixel channel values, the
// per-pixel power sum must equal the stats-based model evaluated on the
// frame's measured statistics — a property the test suite checks exactly.
#pragma once

#include "lpvs/common/units.hpp"
#include "lpvs/display/display.hpp"
#include "lpvs/media/frame.hpp"
#include "lpvs/transform/transform.hpp"

namespace lpvs::transform {

/// Exact per-pixel OLED panel power of a frame: the Riemann sum the
/// stats-based OledPowerModel::power integrates in closed form.
common::Milliwatts oled_power_per_pixel(const display::OledPowerModel& model,
                                        const display::DisplaySpec& spec,
                                        const media::Frame& frame);

/// Applies the OLED color transform pixel-by-pixel (linear-light domain).
media::Frame apply_color_transform(const media::Frame& frame,
                                   const QualityBudget& budget);

/// Applies LCD luminance compensation for a backlight scaled from
/// `original_backlight` down to `scaled_backlight`: every pixel's linear
/// channels are multiplied by original/scaled and clipped at white.
media::Frame apply_backlight_compensation(const media::Frame& frame,
                                          double original_backlight,
                                          double scaled_backlight);

/// What a frame looks like on screen: linear pixel values attenuated by
/// the backlight level (identity for OLED).  Used to verify that
/// compensation preserves perceived luminance except for clipping.
media::Frame perceived_lcd_frame(const media::Frame& frame,
                                 double backlight_level);

/// Full per-pixel transform of one frame for one device, with measured
/// power and quality.
struct PixelTransformReport {
  media::Frame transformed;
  common::Milliwatts display_power_before;
  common::Milliwatts display_power_after;
  double psnr_db = 0.0;   ///< vs the *perceived* original
  double ssim = 0.0;      ///< vs the *perceived* original
  double backlight_level = 1.0;  ///< LCD only

  double display_saving_fraction() const {
    return display_power_before.value > 0.0
               ? (display_power_before.value - display_power_after.value) /
                     display_power_before.value
               : 0.0;
  }
};

/// Runs the device-appropriate per-pixel transform on a frame and measures
/// power (per-pixel for OLED, backlight model for LCD) and quality.
class PixelPipeline {
 public:
  explicit PixelPipeline(display::DevicePowerModel device_model = {},
                         QualityBudget budget = {});

  PixelTransformReport transform_frame(const display::DisplaySpec& spec,
                                       const media::Frame& frame) const;

  const QualityBudget& budget() const { return budget_; }

 private:
  display::DevicePowerModel device_model_;
  QualityBudget budget_;
};

}  // namespace lpvs::transform

// On-device vs edge transform cost analysis (SI/SII-B's motivating
// argument).
//
// The paper's case for LPVS rests on one observation: content transforms
// save display power, but they are per-pixel computations, so running them
// *on the phone* burns CPU/GPU power that can "offset or even negate" the
// display saving — while running them at the edge keeps the full saving.
// This module quantifies that argument: a cost model for executing the
// per-pixel transform on the handset SoC, combined with the display power
// models, yields the net on-device saving vs the net edge-offloaded saving
// for any device/content pair (bench_offload sweeps resolutions and
// genres).
#pragma once

#include "lpvs/common/units.hpp"
#include "lpvs/display/display.hpp"
#include "lpvs/media/video.hpp"
#include "lpvs/transform/transform.hpp"

namespace lpvs::transform {

/// Energy cost of running the per-pixel transform on the phone itself.
class OnDeviceCostModel {
 public:
  struct Coefficients {
    /// Arithmetic per pixel: gamma decode, 3 channel multiplies, gamma
    /// encode (LCD compensation is comparable).
    double ops_per_pixel = 22.0;
    /// Effective energy per op on a 2019-era mobile SoC.  The workload is
    /// memory-bound (two full frame buffers through DRAM per frame), so
    /// the effective cost per arithmetic op, amortizing DRAM traffic at
    /// ~100 pJ/byte, is two orders above the ALU's raw pJ/op.
    double picojoules_per_op = 180.0;
    /// Frames actually transformed per second (every frame of the video).
    double frames_per_second = 30.0;
    /// Fixed overhead: waking the GPU/DSP path, extra memory controller
    /// activity while the pipeline runs.
    double overhead_mw = 45.0;
  };

  OnDeviceCostModel() : OnDeviceCostModel(Coefficients{}) {}
  explicit OnDeviceCostModel(Coefficients coefficients)
      : coefficients_(coefficients) {}

  /// Average extra device power while transforming this display's pixel
  /// stream locally.
  common::Milliwatts transform_power(const display::DisplaySpec& spec) const;

  const Coefficients& coefficients() const { return coefficients_; }

 private:
  Coefficients coefficients_;
};

/// The net comparison for one device playing one video.
struct OffloadAnalysis {
  common::Milliwatts playback_power;        ///< untransformed device power
  common::Milliwatts display_saving;        ///< transform's display saving
  common::Milliwatts on_device_cost;        ///< CPU cost if run locally
  common::Milliwatts net_on_device_saving;  ///< saving - cost (can be < 0)
  common::Milliwatts net_edge_saving;       ///< saving (cost paid at edge)

  /// Fraction of the display saving the on-device cost eats.
  double offset_fraction() const {
    return display_saving.value > 0.0
               ? on_device_cost.value / display_saving.value
               : 0.0;
  }
  bool on_device_negated() const { return net_on_device_saving.value <= 0.0; }
};

/// Computes the on-device vs edge comparison for a device/video pair.
OffloadAnalysis analyze_offload(const TransformEngine& engine,
                                const OnDeviceCostModel& cost_model,
                                const display::DisplaySpec& spec,
                                const media::Video& video);

}  // namespace lpvs::transform

// Energy-saving content transforms (SII-B) and the edge-side resource cost
// model g(.)/h(.) (SIV-D).
//
// Gamma semantics.  The paper defines gamma_n as the "power reduction
// ratio" with 0 < gamma_n < 1 and initializes its prior mean from Table I's
// *saving* bands (mu = (0.13+0.49)/2 = 0.31), and reports ~35% device
// energy saving.  Equation (3) literally multiplies p by gamma when the
// transform is on, which with mu = 0.31 would mean 69% saving and
// contradict every reported number.  We therefore adopt the semantics the
// paper's numbers imply: gamma is the *fraction of device power saved*, and
// the effective power rate is (1 - gamma) * p.  See DESIGN.md.
#pragma once

#include <string>
#include <vector>

#include "lpvs/common/units.hpp"
#include "lpvs/display/display.hpp"
#include "lpvs/media/video.hpp"

namespace lpvs::transform {

/// Result of transforming one chunk for one device.
struct ChunkTransform {
  display::FrameStats transformed_stats;  ///< content after the transform
  double backlight_level = 1.0;           ///< LCD only: scaled backlight
  common::Milliwatts display_power_before;
  common::Milliwatts display_power_after;
  /// Perceptual distortion proxy in [0, 1]; the literature keeps this under
  /// a small threshold for "negligible/tolerable" quality loss.
  double distortion = 0.0;

  double display_saving_fraction() const {
    return display_power_before.value > 0.0
               ? (display_power_before.value - display_power_after.value) /
                     display_power_before.value
               : 0.0;
  }
};

/// Quality budget for transforms; tighter budgets save less power.
struct QualityBudget {
  /// LCD: the backlight is scaled to cover this fraction of the chunk's
  /// peak luminance ("quality-adapted" scaling [18]: the brightest few
  /// percent of highlights clip, everything else is compensated).
  double peak_coverage = 0.55;
  /// LCD: floor on the scaled backlight (never dim below this fraction of
  /// the user's setting).
  double min_backlight_fraction = 0.22;
  /// OLED: global darkening factor applied to all channels ([23]).
  double darken = 0.70;
  /// OLED: extra attenuation of the power-hungry blue channel ([12],[17]).
  double blue_scale = 0.50;
  /// OLED: attenuation of red (between green's 1.0 and blue's scale).
  double red_scale = 0.75;
};

/// LCD: quality-adapted backlight scaling with luminance compensation
/// ([18]-[22]).  The backlight is lowered to just cover the chunk's peak
/// luminance; pixel values are compensated upward (free for the panel).
class BacklightScaling {
 public:
  BacklightScaling(display::LcdPowerModel model, QualityBudget budget)
      : model_(model), budget_(budget) {}

  ChunkTransform apply(const display::DisplaySpec& spec,
                       const display::FrameStats& stats) const;

 private:
  display::LcdPowerModel model_;
  QualityBudget budget_;
};

/// OLED: color transforming and darkening ([12], [17], [23]): scale the
/// blue/red channels toward the efficient green and darken slightly.
class OledColorTransform {
 public:
  OledColorTransform(display::OledPowerModel model, QualityBudget budget)
      : model_(model), budget_(budget) {}

  ChunkTransform apply(const display::DisplaySpec& spec,
                       const display::FrameStats& stats) const;

 private:
  display::OledPowerModel model_;
  QualityBudget budget_;
};

/// Facade dispatching on the device's panel type and lifting the
/// display-level saving to the device-level gamma the scheduler uses.
class TransformEngine {
 public:
  explicit TransformEngine(display::DevicePowerModel device_model = {},
                           QualityBudget budget = {});

  ChunkTransform transform_chunk(const display::DisplaySpec& spec,
                                 const media::VideoChunk& chunk) const;

  /// Device-level power saving fraction (gamma) achieved by transforming
  /// this chunk: display savings divided by total playback power.
  double chunk_gamma(const display::DisplaySpec& spec,
                     const media::VideoChunk& chunk) const;

  /// Average gamma over a whole video — the realized gamma_n observation
  /// that feeds the Bayesian update at the end of a slot (SV-D).
  double video_gamma(const display::DisplaySpec& spec,
                     const media::Video& video) const;

  const display::DevicePowerModel& device_model() const {
    return device_model_;
  }
  const QualityBudget& budget() const { return budget_; }

 private:
  display::DevicePowerModel device_model_;
  QualityBudget budget_;
};

/// One row of Table I.
struct StrategyEntry {
  std::string name;
  display::DisplayType display_type;
  double min_saving;  ///< lower bound of the published band (0 for "<= x")
  double max_saving;
};

/// The Table I registry: the eleven published strategies with their saving
/// bands.  The band average (13%-49%) seeds the Bayesian prior on gamma.
class StrategyRegistry {
 public:
  static const StrategyRegistry& table1();

  const std::vector<StrategyEntry>& entries() const { return entries_; }

  /// Mean lower / upper bound across all strategies; the paper's
  /// "Average 13%-49%" row, from which mu = (0.13+0.49)/2 = 0.31.
  double average_min() const;
  double average_max() const;
  double prior_mean() const { return 0.5 * (average_min() + average_max()); }

  explicit StrategyRegistry(std::vector<StrategyEntry> entries);

 private:
  std::vector<StrategyEntry> entries_;
};

/// Edge resource cost of transforming d_n(t) (SIV-D).  g(.) is measured in
/// abstract compute units where 1.0 = one 1080p30 real-time transform
/// stream; h(.) in megabytes of staging storage for the slot's chunks.
class ResourceModel {
 public:
  struct Coefficients {
    double compute_units_per_megapixel30 = 0.45;  ///< pixel-rate scaling
    double storage_overhead = 2.0;  ///< input + transformed copies
  };

  ResourceModel() : ResourceModel(Coefficients{}) {}
  explicit ResourceModel(Coefficients coefficients)
      : coefficients_(coefficients) {}

  /// g(d_n(t)): compute units to transform this video in real time on the
  /// given display (transform work scales with the *display* pixel rate).
  double compute_cost(const display::DisplaySpec& spec,
                      const media::Video& video) const;

  /// h(d_n(t)): staging storage in MB for the slot's chunks.
  double storage_cost(const media::Video& video) const;

 private:
  Coefficients coefficients_;
};

}  // namespace lpvs::transform

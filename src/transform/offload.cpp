#include "lpvs/transform/offload.hpp"

namespace lpvs::transform {

common::Milliwatts OnDeviceCostModel::transform_power(
    const display::DisplaySpec& spec) const {
  const double pixels_per_second =
      static_cast<double>(spec.pixel_count()) *
      coefficients_.frames_per_second;
  // pJ/s = 1e-9 mW.
  const double compute_mw = pixels_per_second * coefficients_.ops_per_pixel *
                            coefficients_.picojoules_per_op * 1e-9;
  return {compute_mw + coefficients_.overhead_mw};
}

OffloadAnalysis analyze_offload(const TransformEngine& engine,
                                const OnDeviceCostModel& cost_model,
                                const display::DisplaySpec& spec,
                                const media::Video& video) {
  OffloadAnalysis analysis;
  double base_mw_seconds = 0.0;
  double saved_mw_seconds = 0.0;
  double seconds = 0.0;
  for (const media::VideoChunk& chunk : video.chunks) {
    const double total =
        engine.device_model()
            .playback_power(spec, chunk.stats, chunk.bitrate_mbps)
            .value;
    const ChunkTransform result = engine.transform_chunk(spec, chunk);
    base_mw_seconds += total * chunk.duration.value;
    saved_mw_seconds += (result.display_power_before.value -
                         result.display_power_after.value) *
                        chunk.duration.value;
    seconds += chunk.duration.value;
  }
  if (seconds <= 0.0) return analysis;
  analysis.playback_power = {base_mw_seconds / seconds};
  analysis.display_saving = {saved_mw_seconds / seconds};
  analysis.on_device_cost = cost_model.transform_power(spec);
  analysis.net_on_device_saving =
      analysis.display_saving - analysis.on_device_cost;
  analysis.net_edge_saving = analysis.display_saving;
  return analysis;
}

}  // namespace lpvs::transform

#include "lpvs/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace lpvs::obs {
namespace {

void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

/// Integers print without a decimal point so expositions are stable and
/// diff-friendly; everything else gets 9 significant digits.
std::string format_number(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

/// Interpolated quantile over per-bucket counts; shared by the live
/// histogram and its snapshot.
double quantile_from_buckets(const std::vector<double>& bounds,
                             const std::vector<long>& counts, long total,
                             double q) {
  if (total <= 0 || bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < bounds.size(); ++b) {
    const double in_bucket = static_cast<double>(counts[b]);
    if (cumulative + in_bucket >= rank) {
      const double lower = b == 0 ? 0.0 : bounds[b - 1];
      if (in_bucket <= 0.0) return lower;
      const double fraction = (rank - cumulative) / in_bucket;
      return lower + fraction * (bounds[b] - lower);
    }
    cumulative += in_bucket;
  }
  // Overflow bucket: attribute to the last finite bound.
  return bounds.back();
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      buckets_(upper_bounds_.size() + 1) {
  assert(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()));
}

void Histogram::observe(double value) {
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value);
  const auto index =
      static_cast<std::size_t>(it - upper_bounds_.begin());  // == size: overflow
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
}

double Histogram::quantile(double q) const {
  std::vector<long> counts(buckets_.size());
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return quantile_from_buckets(upper_bounds_, counts, count(), q);
}

double HistogramSample::quantile(double q) const {
  return quantile_from_buckets(upper_bounds, bucket_counts, count, q);
}

const CounterSample* MetricsSnapshot::counter(std::string_view name) const {
  for (const CounterSample& sample : counters) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

const GaugeSample* MetricsSnapshot::gauge(std::string_view name) const {
  for (const GaugeSample& sample : gauges) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

const HistogramSample* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const HistogramSample& sample : histograms) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

long MetricsSnapshot::counter_value(std::string_view name,
                                    long fallback) const {
  const CounterSample* sample = counter(name);
  return sample != nullptr ? sample->value : fallback;
}

double MetricsSnapshot::gauge_value(std::string_view name,
                                    double fallback) const {
  const GaugeSample* sample = gauge(name);
  return sample != nullptr ? sample->value : fallback;
}

double MetricsSnapshot::histogram_quantile(std::string_view name, double q,
                                           double fallback) const {
  const HistogramSample* sample = histogram(name);
  return sample != nullptr ? sample->quantile(q) : fallback;
}

MetricsDelta delta_since(const MetricsSnapshot& older,
                         const MetricsSnapshot& newer) {
  MetricsDelta delta;
  delta.sequence = newer.sequence;
  delta.base_sequence = older.sequence;

  // Registration is append-only, so the older snapshot's entries are a
  // prefix of the newer's in the same order; walk both with an index and
  // fall back to a by-name probe only if that invariant ever breaks.
  const auto base_counter = [&](std::size_t i,
                                const std::string& name) -> long {
    if (i < older.counters.size() && older.counters[i].name == name) {
      return older.counters[i].value;
    }
    return older.counter_value(name, 0);
  };
  for (std::size_t i = 0; i < newer.counters.size(); ++i) {
    const CounterSample& sample = newer.counters[i];
    const long increment = sample.value - base_counter(i, sample.name);
    if (increment != 0) delta.counters.push_back({sample.name, increment});
  }

  for (std::size_t i = 0; i < newer.gauges.size(); ++i) {
    const GaugeSample& sample = newer.gauges[i];
    const GaugeSample* base =
        i < older.gauges.size() && older.gauges[i].name == sample.name
            ? &older.gauges[i]
            : older.gauge(sample.name);
    // Bit comparison, not ==: a gauge rewritten to the same value stays
    // omitted, while NaN (which != itself) still exports once.
    if (base != nullptr &&
        std::bit_cast<std::uint64_t>(base->value) ==
            std::bit_cast<std::uint64_t>(sample.value)) {
      continue;
    }
    delta.gauges.push_back({sample.name, sample.value});
  }

  for (std::size_t i = 0; i < newer.histograms.size(); ++i) {
    const HistogramSample& sample = newer.histograms[i];
    const HistogramSample* base =
        i < older.histograms.size() && older.histograms[i].name == sample.name
            ? &older.histograms[i]
            : older.histogram(sample.name);
    const long base_count = base != nullptr ? base->count : 0;
    if (sample.count == base_count) continue;
    HistogramDelta h;
    h.name = sample.name;
    h.upper_bounds = sample.upper_bounds;
    h.bucket_increments.resize(sample.bucket_counts.size());
    for (std::size_t b = 0; b < sample.bucket_counts.size(); ++b) {
      const long base_bucket =
          base != nullptr && b < base->bucket_counts.size()
              ? base->bucket_counts[b]
              : 0;
      h.bucket_increments[b] = sample.bucket_counts[b] - base_bucket;
    }
    h.count_increment = sample.count - base_count;
    h.sum_increment = sample.sum - (base != nullptr ? base->sum : 0.0);
    delta.histograms.push_back(std::move(h));
  }
  return delta;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return *counters_[it->second].metric;
  counter_index_.emplace(name, counters_.size());
  counters_.push_back({name, help, std::make_unique<Counter>()});
  return *counters_.back().metric;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return *gauges_[it->second].metric;
  gauge_index_.emplace(name, gauges_.size());
  gauges_.push_back({name, help, std::make_unique<Gauge>()});
  return *gauges_.back().metric;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds,
                                      const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) return *histograms_[it->second].metric;
  histogram_index_.emplace(name, histograms_.size());
  histograms_.push_back(
      {name, help, std::make_unique<Histogram>(std::move(upper_bounds))});
  return *histograms_.back().metric;
}

std::vector<double> MetricsRegistry::time_buckets_ms() {
  return {0.05, 0.1, 0.25, 0.5, 1.0,   2.5,   5.0,
          10.0, 25.0, 50.0, 100.0, 250.0, 1000.0};
}

std::vector<double> MetricsRegistry::linear_buckets(double start, double step,
                                                    int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    bounds.push_back(start + step * static_cast<double>(i));
  }
  return bounds;
}

MetricsSnapshot MetricsRegistry::snapshot_all() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.sequence = ++snapshot_sequence_;
  snap.counters.reserve(counters_.size());
  for (const auto& entry : counters_) {
    snap.counters.push_back({entry.name, entry.help, entry.metric->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& entry : gauges_) {
    snap.gauges.push_back({entry.name, entry.help, entry.metric->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& entry : histograms_) {
    HistogramSample sample;
    sample.name = entry.name;
    sample.help = entry.help;
    sample.upper_bounds = entry.metric->upper_bounds();
    sample.bucket_counts.resize(sample.upper_bounds.size() + 1);
    // Consistent read under concurrent observe(): retry the bucket pass
    // until the live total is unchanged across it (bounded — a failed pass
    // means a writer landed mid-copy, which cannot repeat at snapshot
    // cadence), then derive count from the buckets just read.  Within one
    // sample the invariant `count == sum(bucket_counts)` therefore always
    // holds, so an exporter delta can never mix bucket and count reads
    // from different instants.
    for (int attempt = 0; attempt < 4; ++attempt) {
      const long before = entry.metric->count();
      for (std::size_t b = 0; b < sample.bucket_counts.size(); ++b) {
        sample.bucket_counts[b] = entry.metric->bucket_count(b);
      }
      sample.sum = entry.metric->sum();
      if (entry.metric->count() == before) break;
    }
    sample.count = std::accumulate(sample.bucket_counts.begin(),
                                   sample.bucket_counts.end(), 0L);
    snap.histograms.push_back(std::move(sample));
  }
  return snap;
}

std::string MetricsRegistry::exposition() const {
  return obs::exposition(snapshot());
}

std::string exposition(const MetricsSnapshot& snapshot) {
  std::string out;
  auto header = [&out](const std::string& name, const std::string& help,
                       const char* type) {
    if (!help.empty()) out += "# HELP " + name + " " + help + "\n";
    out += "# TYPE " + name + " ";
    out += type;
    out += "\n";
  };
  for (const CounterSample& c : snapshot.counters) {
    header(c.name, c.help, "counter");
    out += c.name + " " + format_number(static_cast<double>(c.value)) + "\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    header(g.name, g.help, "gauge");
    out += g.name + " " + format_number(g.value) + "\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    header(h.name, h.help, "histogram");
    long cumulative = 0;
    for (std::size_t b = 0; b < h.upper_bounds.size(); ++b) {
      cumulative += h.bucket_counts[b];
      out += h.name + "_bucket{le=\"" + format_number(h.upper_bounds[b]) +
             "\"} " + format_number(static_cast<double>(cumulative)) + "\n";
    }
    cumulative += h.bucket_counts.back();
    out += h.name + "_bucket{le=\"+Inf\"} " +
           format_number(static_cast<double>(cumulative)) + "\n";
    out += h.name + "_sum " + format_number(h.sum) + "\n";
    out += h.name + "_count " + format_number(static_cast<double>(h.count)) +
           "\n";
  }
  return out;
}

common::Json to_json(const MetricsSnapshot& snapshot) {
  common::Json root = common::Json::object();
  common::Json counters = common::Json::object();
  for (const CounterSample& c : snapshot.counters) {
    counters.set(c.name, c.value);
  }
  root.set("counters", std::move(counters));
  common::Json gauges = common::Json::object();
  for (const GaugeSample& g : snapshot.gauges) {
    gauges.set(g.name, g.value);
  }
  root.set("gauges", std::move(gauges));
  common::Json histograms = common::Json::object();
  for (const HistogramSample& h : snapshot.histograms) {
    common::Json hist = common::Json::object();
    hist.set("count", h.count);
    hist.set("sum", h.sum);
    hist.set("upper_bounds", common::to_json(h.upper_bounds));
    hist.set("bucket_counts", common::to_json(h.bucket_counts));
    hist.set("p50", h.quantile(0.5));
    hist.set("p95", h.quantile(0.95));
    hist.set("p99", h.quantile(0.99));
    histograms.set(h.name, std::move(hist));
  }
  root.set("histograms", std::move(histograms));
  return root;
}

}  // namespace lpvs::obs

#include "lpvs/obs/event_trace.hpp"

namespace lpvs::obs {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kScheduleSolve:
      return "schedule_solve";
    case EventKind::kPhase2Swap:
      return "phase2_swap";
    case EventKind::kCacheAccess:
      return "cache_access";
    case EventKind::kBatteryDrain:
      return "battery_drain";
    case EventKind::kGiveUp:
      return "give_up";
    case EventKind::kBayesUpdate:
      return "bayes_update";
    case EventKind::kFaultInjected:
      return "fault_injected";
    case EventKind::kRetry:
      return "retry";
    case EventKind::kDegradation:
      return "degradation";
  }
  return "unknown";
}

void EventTrace::record(Event event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

std::size_t EventTrace::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::size_t EventTrace::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void EventTrace::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_ = 0;
}

std::vector<Event> EventTrace::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::string EventTrace::to_jsonl() const {
  const std::vector<Event> copy = events();
  std::string out;
  for (const Event& event : copy) {
    out += to_json(event).dump();
    out += "\n";
  }
  return out;
}

common::Json to_json(const Event& event) {
  common::Json record = common::Json::object();
  record.set("kind", event_kind_name(event.kind));
  record.set("slot", event.slot);
  record.set("device", event.device);
  for (const auto& [key, value] : event.fields) {
    record.set(key, value);
  }
  return record;
}

}  // namespace lpvs::obs

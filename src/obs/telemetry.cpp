#include "lpvs/obs/telemetry.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <chrono>
#include <utility>

#include "lpvs/common/io.hpp"
#include "lpvs/common/wire.hpp"

namespace lpvs::obs {
namespace telemetry {

void encode_into(const Frame& frame, std::vector<std::uint8_t>& out) {
  common::wire::Writer writer(&out);
  writer.u32(0);  // length prefix, patched below
  const std::size_t payload_start = out.size();
  writer.u32(kMagic);
  writer.u32(kVersion);
  writer.u8(static_cast<std::uint8_t>(frame.type));
  writer.u64(frame.source_id);
  if (frame.type == FrameType::kHello) {
    writer.str(frame.label);
  } else {
    writer.u64(frame.delta.sequence);
    writer.u64(frame.delta.base_sequence);
    writer.i64(frame.time_ms);
    writer.varint(frame.delta.counters.size());
    for (const CounterDelta& c : frame.delta.counters) {
      writer.str(c.name);
      writer.varint(static_cast<std::uint64_t>(c.increment));
    }
    writer.varint(frame.delta.gauges.size());
    for (const GaugeDelta& g : frame.delta.gauges) {
      writer.str(g.name);
      writer.f64(g.value);
    }
    writer.varint(frame.delta.histograms.size());
    for (const HistogramDelta& h : frame.delta.histograms) {
      writer.str(h.name);
      writer.varint(h.upper_bounds.size());
      for (double bound : h.upper_bounds) writer.f64(bound);
      for (long inc : h.bucket_increments) {
        writer.varint(static_cast<std::uint64_t>(inc));
      }
      writer.f64(h.sum_increment);
    }
  }
  common::wire::seal(out, payload_start);
  const auto payload_size =
      static_cast<std::uint32_t>(out.size() - payload_start);
  for (int i = 0; i < 4; ++i) {
    out[payload_start - 4 + i] =
        static_cast<std::uint8_t>((payload_size >> (8 * i)) & 0xFFu);
  }
}

common::StatusOr<Frame> decode_payload(const std::uint8_t* data,
                                       std::size_t size) {
  const common::Status sealed = common::wire::verify_seal(data, size);
  if (!sealed.ok()) return sealed;
  common::wire::Reader reader(data, size - sizeof(std::uint64_t));

  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint8_t raw_type = 0;
  Frame frame;
  if (!reader.u32(magic) || !reader.u32(version) || !reader.u8(raw_type) ||
      !reader.u64(frame.source_id)) {
    return common::Status::DataLoss("telemetry frame truncated");
  }
  if (magic != kMagic) {
    return common::Status::InvalidArgument("telemetry frame: bad magic");
  }
  if (version != kVersion) {
    return common::Status::InvalidArgument(
        "telemetry frame: unsupported version");
  }
  if (raw_type != static_cast<std::uint8_t>(FrameType::kHello) &&
      raw_type != static_cast<std::uint8_t>(FrameType::kDelta)) {
    return common::Status::InvalidArgument("telemetry frame: unknown type");
  }
  frame.type = static_cast<FrameType>(raw_type);

  if (frame.type == FrameType::kHello) {
    if (!reader.str(frame.label)) {
      return common::Status::DataLoss("telemetry hello truncated");
    }
  } else {
    std::uint64_t n = 0;
    if (!reader.u64(frame.delta.sequence) ||
        !reader.u64(frame.delta.base_sequence) ||
        !reader.i64(frame.time_ms) || !reader.varint(n)) {
      return common::Status::DataLoss("telemetry delta truncated");
    }
    frame.delta.counters.resize(n);
    for (CounterDelta& c : frame.delta.counters) {
      std::uint64_t inc = 0;
      if (!reader.str(c.name) || !reader.varint(inc)) {
        return common::Status::DataLoss("telemetry delta: counter truncated");
      }
      c.increment = static_cast<long>(inc);
    }
    if (!reader.varint(n)) {
      return common::Status::DataLoss("telemetry delta truncated");
    }
    frame.delta.gauges.resize(n);
    for (GaugeDelta& g : frame.delta.gauges) {
      if (!reader.str(g.name) || !reader.f64(g.value)) {
        return common::Status::DataLoss("telemetry delta: gauge truncated");
      }
    }
    if (!reader.varint(n)) {
      return common::Status::DataLoss("telemetry delta truncated");
    }
    frame.delta.histograms.resize(n);
    for (HistogramDelta& h : frame.delta.histograms) {
      std::uint64_t bounds = 0;
      if (!reader.str(h.name) || !reader.varint(bounds)) {
        return common::Status::DataLoss(
            "telemetry delta: histogram truncated");
      }
      if (bounds > kMaxFrameBytes / sizeof(double)) {
        return common::Status::InvalidArgument(
            "telemetry delta: implausible bound count");
      }
      h.upper_bounds.resize(bounds);
      for (double& bound : h.upper_bounds) {
        if (!reader.f64(bound)) {
          return common::Status::DataLoss(
              "telemetry delta: histogram truncated");
        }
      }
      h.bucket_increments.resize(bounds + 1);
      h.count_increment = 0;
      for (long& inc : h.bucket_increments) {
        std::uint64_t raw = 0;
        if (!reader.varint(raw)) {
          return common::Status::DataLoss(
              "telemetry delta: histogram truncated");
        }
        inc = static_cast<long>(raw);
        h.count_increment += inc;
      }
      if (!reader.f64(h.sum_increment)) {
        return common::Status::DataLoss(
            "telemetry delta: histogram truncated");
      }
    }
  }
  if (!reader.exhausted()) {
    return common::Status::InvalidArgument(
        "telemetry frame: trailing garbage");
  }
  return frame;
}

}  // namespace telemetry

namespace {

/// Blocking loopback connect (flush thread only; publishers never reach
/// here).  -1 on failure — the flush thread retries on the next frame.
int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    common::io::close_fd(fd);
    return -1;
  }
  (void)common::io::set_tcp_nodelay(fd);
  return fd;
}

std::int64_t wall_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TelemetryExporter::TelemetryExporter(TelemetryConfig config,
                                     MetricsRegistry& registry)
    : config_(std::move(config)),
      registry_(registry),
      ring_(config_.ring_capacity),
      metric_published_(registry.counter(
          "lpvs_telemetry_published_total",
          "Metric deltas offered to the telemetry export ring")),
      metric_dropped_(registry.counter(
          "lpvs_telemetry_dropped_total",
          "Metric deltas lost to ring overflow or injected link drops")),
      metric_sent_frames_(registry.counter(
          "lpvs_telemetry_sent_frames_total",
          "Telemetry frames written to the collector connection")),
      metric_send_failures_(registry.counter(
          "lpvs_telemetry_send_failures_total",
          "Telemetry frames lost to connect/write failures")) {
  common::io::ignore_sigpipe();
}

TelemetryExporter::~TelemetryExporter() { stop(); }

common::Status TelemetryExporter::start() {
  if (running_.load(std::memory_order_acquire)) {
    return common::Status::Internal("telemetry exporter already running");
  }
  running_.store(true, std::memory_order_release);
  flusher_ = std::thread([this] { flush_loop(); });
  return common::Status::Ok();
}

bool TelemetryExporter::publish() { return publish_at(wall_ms()); }

bool TelemetryExporter::publish(std::int64_t time_ms) {
  return publish_at(time_ms);
}

bool TelemetryExporter::publish_at(std::int64_t time_ms) {
  auto item = std::make_unique<Item>();
  bool enqueued = false;
  {
    std::lock_guard<std::mutex> lock(publish_mutex_);
    MetricsSnapshot current = registry_.snapshot_all();
    item->time_ms = time_ms;
    item->delta = delta_since(baseline_, current);
    // The export sequence is consumed whether or not the enqueue lands, so
    // a ring overflow is visible at the collector as a sequence gap whose
    // base_sequence proves no increments were lost (only time resolution).
    item->delta.sequence = next_sequence_++;
    item->delta.base_sequence = last_enqueued_sequence_;
    published_.fetch_add(1, std::memory_order_relaxed);
    metric_published_.add();
    if (ring_.try_push(std::move(item))) {
      enqueued = true;
      last_enqueued_sequence_ = next_sequence_ - 1;
      baseline_ = std::move(current);
      pending_.fetch_add(1, std::memory_order_release);
    } else {
      // Baseline stays put: the dropped delta's increments ride the next
      // one.  Never block, never retry — observability must not apply
      // backpressure to the serving path.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      metric_dropped_.add();
    }
  }
  if (enqueued) {
    {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      work_pending_ = true;
    }
    wake_.notify_one();
  }
  return enqueued;
}

common::Status TelemetryExporter::flush(int timeout_ms) {
  if (!running_.load(std::memory_order_acquire)) {
    return common::Status::Internal("telemetry exporter not running");
  }
  publish();  // export the tail of the run
  std::unique_lock<std::mutex> lock(wake_mutex_);
  const bool drained = drained_.wait_for(
      lock, std::chrono::milliseconds(timeout_ms), [this] {
        return pending_.load(std::memory_order_acquire) == 0 ||
               !running_.load(std::memory_order_acquire);
      });
  if (!drained) {
    return common::Status::DeadlineExceeded("telemetry ring did not drain");
  }
  return common::Status::Ok();
}

void TelemetryExporter::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    work_pending_ = true;
  }
  wake_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  if (fd_ >= 0) {
    common::io::close_fd(fd_);
    fd_ = -1;
  }
}

TelemetryStats TelemetryExporter::stats() const {
  TelemetryStats stats;
  stats.published = published_.load(std::memory_order_relaxed);
  stats.dropped = dropped_.load(std::memory_order_relaxed);
  stats.sent_frames = sent_frames_.load(std::memory_order_relaxed);
  stats.sent_bytes = sent_bytes_.load(std::memory_order_relaxed);
  stats.send_failures = send_failures_.load(std::memory_order_relaxed);
  return stats;
}

bool TelemetryExporter::ensure_connected() {
  if (fd_ >= 0) return true;
  fd_ = connect_loopback(config_.port);
  if (fd_ < 0) return false;
  telemetry::Frame hello;
  hello.type = telemetry::FrameType::kHello;
  hello.source_id = config_.source_id;
  hello.label = config_.source_label;
  encode_buffer_.clear();
  telemetry::encode_into(hello, encode_buffer_);
  if (!common::io::write_all(fd_, encode_buffer_.data(),
                             encode_buffer_.size())
           .ok()) {
    common::io::close_fd(fd_);
    fd_ = -1;
    return false;
  }
  return true;
}

bool TelemetryExporter::send_frame(const telemetry::Frame& frame) {
  if (!ensure_connected()) return false;
  encode_buffer_.clear();
  telemetry::encode_into(frame, encode_buffer_);
  const common::Status written =
      common::io::write_all(fd_, encode_buffer_.data(), encode_buffer_.size());
  if (!written.ok()) {
    common::io::close_fd(fd_);
    fd_ = -1;
    return false;
  }
  sent_frames_.fetch_add(1, std::memory_order_relaxed);
  metric_sent_frames_.add();
  sent_bytes_.fetch_add(static_cast<long>(encode_buffer_.size()),
                        std::memory_order_relaxed);
  return true;
}

void TelemetryExporter::flush_loop() {
  while (running_.load(std::memory_order_acquire)) {
    std::unique_ptr<Item> item;
    while (ring_.try_pop(item)) {
      const bool injected_drop =
          config_.faults != nullptr &&
          config_.faults->should_drop(fault::FaultSite::kTelemetryExport,
                                      config_.source_id,
                                      item->delta.sequence);
      if (injected_drop) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        metric_dropped_.add();
      } else {
        telemetry::Frame frame;
        frame.type = telemetry::FrameType::kDelta;
        frame.source_id = config_.source_id;
        frame.time_ms = item->time_ms;
        frame.delta = std::move(item->delta);
        if (!send_frame(frame)) {
          send_failures_.fetch_add(1, std::memory_order_relaxed);
          metric_send_failures_.add();
        }
      }
      item.reset();
      pending_.fetch_sub(1, std::memory_order_release);
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    drained_.notify_all();
    if (config_.interval_ms > 0) {
      const bool woken = wake_.wait_for(
          lock, std::chrono::milliseconds(config_.interval_ms), [this] {
            return work_pending_ ||
                   !running_.load(std::memory_order_acquire);
          });
      work_pending_ = false;
      lock.unlock();
      if (!woken && running_.load(std::memory_order_acquire)) {
        publish_at(wall_ms());  // interval self-publish (MPSC: safe here)
      }
    } else {
      wake_.wait(lock, [this] {
        return work_pending_ || !running_.load(std::memory_order_acquire);
      });
      work_pending_ = false;
    }
  }
  // Orderly shutdown: offer whatever is still enqueued before exiting so
  // stop()-after-flush() never strands sealed frames in the ring.
  std::unique_ptr<Item> item;
  while (ring_.try_pop(item)) {
    const bool injected_drop =
        config_.faults != nullptr &&
        config_.faults->should_drop(fault::FaultSite::kTelemetryExport,
                                    config_.source_id, item->delta.sequence);
    if (injected_drop) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      metric_dropped_.add();
    } else {
      telemetry::Frame frame;
      frame.type = telemetry::FrameType::kDelta;
      frame.source_id = config_.source_id;
      frame.time_ms = item->time_ms;
      frame.delta = std::move(item->delta);
      if (!send_frame(frame)) {
        send_failures_.fetch_add(1, std::memory_order_relaxed);
        metric_send_failures_.add();
      }
    }
    item.reset();
    pending_.fetch_sub(1, std::memory_order_release);
  }
  drained_.notify_all();
}

}  // namespace lpvs::obs

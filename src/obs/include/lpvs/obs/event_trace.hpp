// Bounded structured event trace (reproduction extension).
//
// Where the MetricsRegistry answers "how much / how fast", the event trace
// answers "what happened to slot 17": per-slot structured records of
// schedule solves, Phase-2 swaps, cache hits/misses, battery drains,
// give-ups and Bayes updates, exportable as JSONL for external analysis.
// The trace is bounded — once `capacity` events are recorded, further
// events are counted as dropped instead of growing memory — so it is safe
// to leave attached on long replays.
//
// Thread safety: record() takes a mutex.  Tracing is opt-in (a null
// EventTrace* at the instrumentation sites disables it at the cost of one
// branch), so the lock is never touched on un-instrumented runs.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "lpvs/common/json.hpp"

namespace lpvs::obs {

enum class EventKind {
  kScheduleSolve,  ///< one scheduler invocation (nodes, swaps, selected...)
  kPhase2Swap,     ///< one anxiety-driven swap (in, out)
  kCacheAccess,    ///< per-slot chunk availability at the edge
  kBatteryDrain,   ///< per-slot aggregate energy drained
  kGiveUp,         ///< a user abandoned the stream at their give-up level
  kBayesUpdate,    ///< one posterior update from an observed gamma
  kFaultInjected,  ///< an injected fault fired at some site (site, kind)
  kRetry,          ///< a delivery needed retries (site, attempts, backoff)
  kDegradation,    ///< the scheduler left rung 0 (rung, forced)
};

/// Stable lowercase label used in the JSONL export.
const char* event_kind_name(EventKind kind);

/// One structured record.  `slot`/`device` are -1 when not applicable
/// (device -1 = cluster-wide).  `fields` carries the kind-specific numeric
/// payload under stable snake_case keys.
struct Event {
  EventKind kind = EventKind::kScheduleSolve;
  int slot = -1;
  int device = -1;
  std::vector<std::pair<const char*, double>> fields;
};

class EventTrace {
 public:
  explicit EventTrace(std::size_t capacity = 65536) : capacity_(capacity) {}
  EventTrace(const EventTrace&) = delete;
  EventTrace& operator=(const EventTrace&) = delete;

  /// Appends if under capacity, else counts the event as dropped.
  void record(Event event);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  std::size_t dropped() const;
  void clear();

  /// Copy of the recorded events (in record order).
  std::vector<Event> events() const;

  /// One compact JSON object per line:
  ///   {"kind":"give_up","slot":12,"device":3,"battery_percent":10}
  std::string to_jsonl() const;

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::size_t dropped_ = 0;
};

/// The shared common::Json rendering of one event (used by to_jsonl and
/// available for callers embedding events in larger documents).
common::Json to_json(const Event& event);

}  // namespace lpvs::obs

// Fleet observability substrate (reproduction extension).
//
// The ROADMAP's target is an edge service for millions of viewers; the
// only way later scaling PRs can be *measured* instead of guessed is a
// first-class metrics pipeline (EVSO-style per-component accounting; the
// QoMEX'22 crowdsourcing line of work makes the same point for energy/QoE
// models).  This header provides:
//
//   - MetricsRegistry: thread-safe named counters, gauges and fixed-bucket
//     histograms.  Handles returned by the registry are stable for its
//     lifetime, and every mutation is lock-free (atomics), so hot paths
//     resolve a handle once and write without contention.
//   - ScopedTimer: RAII wall-clock section timer feeding a histogram.
//   - MetricsSnapshot: a plain-data copy of the registry with *typed named
//     lookups* (counter_value / gauge_value / histogram views) and a
//     monotonic sequence number, with Prometheus-style text exposition and
//     a common::Json export sharing the same serialization path as
//     emu/metrics_io.  Consumers read fields by name through the typed
//     accessors — never by parsing exposition text.
//   - MetricsDelta: the change between two snapshots of the same registry
//     (counter increments, gauge last-values, histogram bucket
//     increments), cheap to compute and small to ship — the unit the
//     telemetry exporter (telemetry.hpp) moves off-process.
//
// Design contract (enforced by tests/obs_test.cpp): instrumentation is
// *observational only* — attaching or detaching a registry must never
// change what an instrumented run computes.  A null registry pointer is
// the disabled state; every instrumentation site guards on it, so the
// disabled cost is one branch.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "lpvs/common/json.hpp"

namespace lpvs::obs {

/// Monotone event count.  Lock-free.
class Counter {
 public:
  void add(long delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  long value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<long> value_{0};
};

/// Last-write-wins instantaneous value.  Lock-free.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram over non-negative samples: per-bucket atomic
/// counts plus running sum/count, with Prometheus-style interpolated
/// quantile estimates.  Bucket bounds are upper bounds (le semantics); an
/// implicit overflow bucket catches everything above the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  long count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  long bucket_count(std::size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

  /// Interpolated q-quantile estimate (q in [0, 1]); samples landing in
  /// the overflow bucket are attributed to the last finite bound.
  double quantile(double q) const;

 private:
  std::vector<double> upper_bounds_;                 // sorted, finite
  std::vector<std::atomic<long>> buckets_;           // size bounds + 1
  std::atomic<long> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Plain-data copies of one metric each; what snapshot_all() returns.
struct CounterSample {
  std::string name;
  std::string help;
  long value = 0;
};

struct GaugeSample {
  std::string name;
  std::string help;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::string help;
  std::vector<double> upper_bounds;
  std::vector<long> bucket_counts;  ///< per-bucket, size upper_bounds + 1
  long count = 0;
  double sum = 0.0;

  double quantile(double q) const;
};

/// A point-in-time copy of every registered metric, in registration order,
/// stamped with a per-registry monotonic sequence number.
///
/// The typed accessors are the supported way to read a metric by name;
/// scanning the vectors (or worse, parsing exposition() text) is what this
/// API replaced.  Lookups are linear — registries hold tens of metrics,
/// not thousands, and a snapshot is plain data with no index to keep
/// coherent.
struct MetricsSnapshot {
  /// Monotonic per-registry snapshot counter (1 for the first snapshot).
  /// Two snapshots of one registry order by it; the exporter uses it to
  /// stamp deltas so the collector can detect loss.
  std::uint64_t sequence = 0;

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Typed named lookups; null when `name` was never registered.
  const CounterSample* counter(std::string_view name) const;
  const GaugeSample* gauge(std::string_view name) const;
  const HistogramSample* histogram(std::string_view name) const;

  /// Value shorthands for the overwhelmingly common "read one number"
  /// case; `fallback` when the metric is absent.
  long counter_value(std::string_view name, long fallback = 0) const;
  double gauge_value(std::string_view name, double fallback = 0.0) const;
  /// Interpolated quantile of a named histogram; `fallback` when absent.
  double histogram_quantile(std::string_view name, double q,
                            double fallback = 0.0) const;
};

/// One counter's change between two snapshots: `increment` is always
/// >= 0 (counters are monotone within a registry's lifetime).
struct CounterDelta {
  std::string name;
  long increment = 0;
};

/// Gauges are last-write-wins, so the delta carries the new value.
struct GaugeDelta {
  std::string name;
  double value = 0.0;
};

/// One histogram's change: per-bucket count increments plus the sum
/// increment.  Bounds ride along so every delta frame is self-describing
/// (a collector can join mid-stream).
struct HistogramDelta {
  std::string name;
  std::vector<double> upper_bounds;
  std::vector<long> bucket_increments;  ///< size upper_bounds + 1
  long count_increment = 0;
  double sum_increment = 0.0;
};

/// The change from one snapshot of a registry to a later one.  Metrics
/// that did not move are omitted (gauges: omitted when bit-identical), so
/// a quiet interval costs a near-empty frame on the wire.
struct MetricsDelta {
  std::uint64_t sequence = 0;       ///< the newer snapshot's sequence
  std::uint64_t base_sequence = 0;  ///< the older snapshot's sequence
  std::vector<CounterDelta> counters;
  std::vector<GaugeDelta> gauges;
  std::vector<HistogramDelta> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// The change from `older` to `newer`.  Both must come from the same
/// registry (metrics matched by name; a metric absent from `older` is
/// treated as starting from zero).
MetricsDelta delta_since(const MetricsSnapshot& older,
                         const MetricsSnapshot& newer);

/// Thread-safe metric registry.  Registration takes a mutex; returned
/// references stay valid (and lock-free to mutate) for the registry's
/// lifetime.  Re-registering a name returns the existing metric.
///
/// Naming convention (docs/observability.md): lpvs_<module>_<what>[_<unit>]
/// with counters suffixed _total, e.g. lpvs_scheduler_solve_ms,
/// lpvs_emu_giveups_total, lpvs_cache_lru_hits_total.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  /// `upper_bounds` must be sorted ascending; ignored (the existing
  /// histogram wins) when `name` is already registered.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds,
                       const std::string& help = "");

  /// Bucket ladders for the common cases.
  static std::vector<double> time_buckets_ms();
  static std::vector<double> linear_buckets(double start, double step,
                                            int count);

  /// A consistent point-in-time copy of every metric: the registration
  /// lock is held across the whole pass (no registration can interleave),
  /// and each histogram is read with a bounded retry loop that re-checks
  /// its total count, so within one HistogramSample the bucket counts sum
  /// to `count` even while writers are observing concurrently.  Stamps the
  /// next monotonic sequence number.
  MetricsSnapshot snapshot_all() const;

  /// Alias for snapshot_all() — the historical name.
  MetricsSnapshot snapshot() const { return snapshot_all(); }

  /// Prometheus text exposition of a fresh snapshot.
  std::string exposition() const;

 private:
  template <typename Metric>
  struct Entry {
    std::string name;
    std::string help;
    std::unique_ptr<Metric> metric;
  };

  mutable std::mutex mutex_;
  mutable std::uint64_t snapshot_sequence_ = 0;  ///< guarded by mutex_
  std::vector<Entry<Counter>> counters_;
  std::vector<Entry<Gauge>> gauges_;
  std::vector<Entry<Histogram>> histograms_;
  std::unordered_map<std::string, std::size_t> counter_index_;
  std::unordered_map<std::string, std::size_t> gauge_index_;
  std::unordered_map<std::string, std::size_t> histogram_index_;
};

/// RAII wall-clock timer: observes elapsed milliseconds into `sink` on
/// destruction.  A null sink skips the clock reads entirely, so a timer
/// on a disabled registry costs one branch.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* sink) : sink_(sink) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (sink_ != nullptr) sink_->observe(elapsed_ms());
  }

  double elapsed_ms() const {
    if (sink_ == nullptr) return 0.0;
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_;
};

/// Prometheus text exposition format (# HELP / # TYPE / samples, with
/// cumulative le buckets for histograms).
std::string exposition(const MetricsSnapshot& snapshot);

/// JSON export via the same common::Json path as emu/metrics_io (also
/// re-exported there as emu::to_json alongside the RunMetrics overloads).
common::Json to_json(const MetricsSnapshot& snapshot);

}  // namespace lpvs::obs

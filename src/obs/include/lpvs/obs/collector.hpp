// Telemetry collector: the consuming half of the continuous export path
// (telemetry.hpp is the producing half).
//
// CollectorDaemon is a single-reactor loopback TCP daemon — the same
// EventLoop + wake-pipe skeleton as the edge-server dispatcher — that
// accepts TelemetryExporter connections, decodes sealed
// lpvs-wire/telemetry frames, and folds every MetricsDelta into two views:
//
//   - Running totals per metric (counters summed, gauges last-write-wins,
//     histogram buckets accumulated), dumped as Prometheus exposition.
//     This is what a scrape of the *collector* shows for the whole fleet.
//   - A windowed time series: deltas are bucketed by their export
//     timestamp (wall or simulated) into fixed windows, each window
//     holding per-metric increments and per-histogram bucket sums from
//     which per-window quantiles (p50/p99) fall out.  This is what the
//     24-hour diurnal soak asserts its SLOs against — one aggregate per
//     simulated minute instead of one number for the whole day.
//
// Loss accounting is first-class: exporters stamp every delta with a
// monotonic export sequence, so the collector detects dropped frames (ring
// overflow on the exporter, injected kTelemetryExport link loss, send
// failures) as sequence gaps and counts them per source as lost_deltas.
// A gap whose base_sequence equals the last *received* sequence proves the
// gap cost only time resolution, not counter increments — the exporter
// re-bases dropped deltas — and the collector tracks the distinction as
// coalesced_gaps vs lost_increment gaps.
//
// Corrupted frames (bad seal, short body, trailing garbage) are counted
// and the connection is closed; a poisoned frame never reaches a series.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "lpvs/common/status.hpp"
#include "lpvs/obs/metrics.hpp"
#include "lpvs/obs/telemetry.hpp"
#include "lpvs/server/event_loop.hpp"

namespace lpvs::obs {

struct CollectorConfig {
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
  /// Time-series window width over the exporters' time_ms clock.  The
  /// compressed soak uses one simulated minute.
  std::int64_t window_ms = 60000;
  server::EventLoop::Backend backend = server::EventLoop::Backend::kAuto;
};

/// One exporter's connection/loss bookkeeping, keyed by source_id.
struct SourceState {
  std::uint64_t source_id = 0;
  std::string label;
  std::uint64_t last_sequence = 0;  ///< highest delta sequence received
  long deltas_received = 0;
  long lost_deltas = 0;      ///< sequence gaps (frames that never arrived)
  long coalesced_gaps = 0;   ///< gaps whose increments rode a later delta
};

/// All deltas whose time_ms landed in [start_ms, end_ms), merged across
/// sources.  Maps are ordered so dumps are deterministic.
struct WindowAggregate {
  std::int64_t start_ms = 0;
  std::int64_t end_ms = 0;
  long deltas = 0;
  std::map<std::string, long> counter_increments;
  std::map<std::string, double> gauges;  ///< last value seen in the window
  /// Per-window histogram slice: bucket_counts hold only this window's
  /// increments, so quantile() is the window-local estimate.
  std::map<std::string, HistogramSample> histograms;

  long counter(const std::string& name, long fallback = 0) const;
  double gauge(const std::string& name, double fallback = 0.0) const;
  /// Window-local quantile; fallback when the metric is absent or empty.
  double quantile(const std::string& name, double q,
                  double fallback = 0.0) const;
};

/// A locked copy of everything the collector has folded so far.
struct TelemetrySeries {
  std::vector<SourceState> sources;
  std::vector<WindowAggregate> windows;  ///< sorted by start_ms
  std::map<std::string, long> counter_totals;
  std::map<std::string, double> gauge_last;
  std::map<std::string, HistogramSample> histogram_totals;
  long frames_received = 0;
  long decode_errors = 0;
  long lost_deltas = 0;  ///< summed over sources

  long counter_total(const std::string& name, long fallback = 0) const;
  const WindowAggregate* window_at(std::int64_t time_ms) const;
};

class CollectorDaemon {
 public:
  explicit CollectorDaemon(CollectorConfig config = {});
  ~CollectorDaemon();
  CollectorDaemon(const CollectorDaemon&) = delete;
  CollectorDaemon& operator=(const CollectorDaemon&) = delete;

  /// Binds the loopback listener and starts the reactor thread.
  common::Status start();

  /// The bound port (after start()).
  std::uint16_t port() const { return port_; }

  /// Waits until every accepted connection has closed and at least
  /// `min_frames` frames have been decoded — the deterministic handshake
  /// the tests use: the exporter's flush() reports how many frames it
  /// offered to the socket, and drain() waits for exactly those.
  common::Status drain(int timeout_ms, long min_frames = 0);

  /// Stops the reactor and closes every connection.  Does not drain.
  void stop();

  TelemetrySeries series() const;

  /// Prometheus exposition of the accumulated totals (fleet view), plus
  /// the collector's own lpvs_collector_* health counters.
  std::string exposition() const;

  /// One compact JSON object per line: a `meta` line (sources, totals,
  /// loss accounting) followed by one line per window.  This is the soak
  /// artifact CI uploads.
  std::string jsonl() const;
  common::Status dump_jsonl(const std::string& path) const;

 private:
  struct Connection {
    int fd = -1;
    std::vector<std::uint8_t> buffer;  ///< bytes read, frames not yet cut
  };

  void run_loop();
  void wake();
  void accept_ready();
  /// Reads until would-block/EOF, cutting and folding complete frames.
  /// False when the connection is finished (EOF or error) and was closed.
  bool service_connection(Connection& conn);
  /// Folds one decoded frame into totals, windows, and source state.
  void fold(const telemetry::Frame& frame);

  CollectorConfig config_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::unique_ptr<server::EventLoop> loop_;
  std::thread reactor_;
  bool running_ = false;  ///< guarded by state_mutex_

  std::map<int, Connection> connections_;  ///< reactor thread only

  mutable std::mutex state_mutex_;
  mutable std::condition_variable progress_;
  long open_connections_ = 0;
  long frames_received_ = 0;
  long decode_errors_ = 0;
  std::map<std::uint64_t, SourceState> sources_;
  std::map<std::int64_t, WindowAggregate> windows_;  ///< keyed by start_ms
  std::map<std::string, long> counter_totals_;
  std::map<std::string, double> gauge_last_;
  std::map<std::string, HistogramSample> histogram_totals_;
};

}  // namespace lpvs::obs

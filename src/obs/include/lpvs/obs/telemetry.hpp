// Continuous telemetry export (tentpole): ship MetricsDelta frames off the
// hot path to an out-of-process collector.
//
// Every metric used to live and die inside one process; "production-scale"
// claims were asserted per-run instead of measured continuously.  This
// header is the producing half of the fix (collector.hpp is the consuming
// half): a TelemetryExporter owns the delta-since-last-export state for one
// MetricsRegistry and streams sealed binary delta frames over loopback TCP
// to an obs::CollectorDaemon, Puffer-log-reporter style.
//
// Hot-path contract — the reason this is not just "a thread that writes
// JSON": publish() NEVER blocks and NEVER touches a socket.  It snapshots
// the registry (a few hundred relaxed atomic loads under the registration
// mutex), computes the delta against the last exported snapshot, and hands
// it to a bounded MPSC ring (common/ring.hpp).  A dedicated flush thread
// drains the ring and does every byte of I/O, including reconnects.  When
// the ring is full (collector slow, link dead) the delta is DROPPED and
// lpvs_telemetry_dropped_total is bumped — the serving reactors are never
// back-pressured by their own observability.  A dropped delta's counter
// increments are not lost: the exporter only advances its baseline on
// successful enqueue, so the next delta re-carries them; what is lost is
// time resolution, which the collector sees as a sequence gap.
//
// Loss model on the link itself is deterministic and testable:
// FaultSite::kTelemetryExport drops are keyed on (source_id, sequence), so
// a chaos run drops the same frames every time, the collector counts the
// gaps, and the exporter-attached run stays bit-identical in every computed
// result (telemetry is observational; tests enforce payload bit-identity
// with the exporter on and off).
//
// Wire format (lpvs-wire/telemetry v1), shared with collector.hpp:
//
//   stream  := frame*
//   frame   := length(u32 LE) payload
//   payload := magic(u32 "LWT1") version(u32) type(u8) body checksum(u64)
//
//   HELLO body := source_id(u64) label(str)
//   DELTA body := source_id(u64) sequence(u64) base_sequence(u64)
//                 time_ms(i64)
//                 n_counters(varint)   { name(str) increment(varint) }*
//                 n_gauges(varint)     { name(str) value(f64) }*
//                 n_histograms(varint) { name(str)
//                                        n_bounds(varint) bound(f64)*
//                                        bucket_increment(varint)^(n+1)
//                                        sum_increment(f64) }*
//
// `time_ms` is the exporter's clock for windowing at the collector — wall
// time by default, or a *simulated* clock passed to publish(), which is how
// the compressed diurnal soak gets 24 hours of time series out of minutes
// of wall time.  Payloads are sealed with the same FNV-1a trailer as the
// session protocol, so a corrupted frame is rejected, counted, and the
// connection dropped instead of poisoning a time series.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "lpvs/common/ring.hpp"
#include "lpvs/common/status.hpp"
#include "lpvs/fault/fault_injector.hpp"
#include "lpvs/obs/metrics.hpp"

namespace lpvs::obs {

namespace telemetry {

/// "LWT1" little-endian: lpvs-wire/telemetry.
inline constexpr std::uint32_t kMagic = 0x3154574Cu;
inline constexpr std::uint32_t kVersion = 1;

/// Delta frames carry every changed metric of a registry; 1 MiB is two
/// orders of magnitude above any real registry and still small enough to
/// reject a hostile length prefix before buffering.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,  ///< exporter -> collector: source identity
  kDelta = 2,  ///< exporter -> collector: one MetricsDelta
};

/// A decoded telemetry frame (HELLO carries only the identity fields).
struct Frame {
  FrameType type = FrameType::kDelta;
  std::uint64_t source_id = 0;
  std::string label;         ///< HELLO only
  std::int64_t time_ms = 0;  ///< DELTA only: export timestamp (wall or sim)
  MetricsDelta delta;        ///< DELTA only
};

/// Appends the frame's full wire form (length prefix + sealed payload).
void encode_into(const Frame& frame, std::vector<std::uint8_t>& out);

/// Decodes one *payload* (the bytes after a length prefix).  kDataLoss on
/// a bad checksum or short body, kInvalidArgument on unknown magic /
/// version / type or trailing garbage.
common::StatusOr<Frame> decode_payload(const std::uint8_t* data,
                                       std::size_t size);

}  // namespace telemetry

struct TelemetryConfig {
  /// Collector port on 127.0.0.1.
  std::uint16_t port = 0;
  /// Identifies this process in the collector's series (sequence gaps are
  /// tracked per source).
  std::uint64_t source_id = 1;
  std::string source_label = "lpvs";
  /// Self-publish cadence of the flush thread; 0 = only explicit
  /// publish() calls export (the mode slot-driven soaks use, stamping
  /// simulated time).
  std::uint32_t interval_ms = 0;
  /// Bounded delta ring between publishers and the flush thread.
  std::size_t ring_capacity = 64;
  /// Optional deterministic link-loss model: kTelemetryExport drops keyed
  /// on (source_id, sequence).  Null = every frame is offered to the
  /// socket.
  const fault::FaultInjector* faults = nullptr;
};

/// Running totals, mirrored as lpvs_telemetry_* metrics in the exported
/// registry itself (so the collector sees the exporter's own health).
struct TelemetryStats {
  long published = 0;      ///< deltas enqueued toward the flush thread
  long dropped = 0;        ///< deltas lost: ring overflow or injected drop
  long sent_frames = 0;    ///< frames handed to the socket
  long sent_bytes = 0;
  long send_failures = 0;  ///< connect/write errors (frame lost)
};

class TelemetryExporter {
 public:
  /// `registry` (and `config.faults`, when set) must outlive the exporter.
  TelemetryExporter(TelemetryConfig config, MetricsRegistry& registry);
  ~TelemetryExporter();
  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  /// Starts the flush thread (which connects — and reconnects — on its
  /// own; a collector that is down costs dropped frames, never an error
  /// on the publishing side).
  common::Status start();

  /// Computes the delta since the last successful publish and enqueues it
  /// for the flush thread, stamped with wall-clock time.  Returns false
  /// when the delta was dropped (full ring).  Never blocks on I/O.
  bool publish();
  /// Same, stamped with a caller-provided (typically simulated) clock.
  bool publish(std::int64_t time_ms);

  /// Drains the ring (one final publish first, so the tail of the run is
  /// exported) and waits until the flush thread has offered everything to
  /// the socket; kDeadlineExceeded if the ring did not empty in time.
  common::Status flush(int timeout_ms = 5000);

  /// Stops the flush thread and closes the connection.  Does not flush.
  void stop();

  TelemetryStats stats() const;

 private:
  struct Item {
    std::int64_t time_ms = 0;
    MetricsDelta delta;
  };

  bool publish_at(std::int64_t time_ms);
  void flush_loop();
  bool send_frame(const telemetry::Frame& frame);
  bool ensure_connected();

  TelemetryConfig config_;
  MetricsRegistry& registry_;

  std::mutex publish_mutex_;  ///< guards baseline_ across publishers
  MetricsSnapshot baseline_;  ///< last snapshot successfully enqueued
  std::uint64_t next_sequence_ = 1;  ///< export sequence (collector gaps)
  std::uint64_t last_enqueued_sequence_ = 0;  ///< base of the next delta

  common::MpscRing<std::unique_ptr<Item>> ring_;
  std::atomic<long> pending_{0};  ///< enqueued but not yet offered to I/O
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  std::condition_variable drained_;
  bool work_pending_ = false;

  std::thread flusher_;
  std::atomic<bool> running_{false};
  int fd_ = -1;  ///< flush-thread-owned socket
  std::vector<std::uint8_t> encode_buffer_;

  std::atomic<long> published_{0};
  std::atomic<long> dropped_{0};
  std::atomic<long> sent_frames_{0};
  std::atomic<long> sent_bytes_{0};
  std::atomic<long> send_failures_{0};

  // Mirrors of the totals above inside the exported registry itself, so the
  // collector (and any Prometheus scrape) sees the exporter's own health:
  // lpvs_telemetry_{published,dropped,sent_frames,send_failures}_total.
  Counter& metric_published_;
  Counter& metric_dropped_;
  Counter& metric_sent_frames_;
  Counter& metric_send_failures_;
};

}  // namespace lpvs::obs

#include "lpvs/obs/collector.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <utility>

#include "lpvs/common/io.hpp"
#include "lpvs/common/json.hpp"

namespace lpvs::obs {

namespace io = common::io;

long WindowAggregate::counter(const std::string& name, long fallback) const {
  const auto it = counter_increments.find(name);
  return it == counter_increments.end() ? fallback : it->second;
}

double WindowAggregate::gauge(const std::string& name,
                              double fallback) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? fallback : it->second;
}

double WindowAggregate::quantile(const std::string& name, double q,
                                 double fallback) const {
  const auto it = histograms.find(name);
  if (it == histograms.end() || it->second.count <= 0) return fallback;
  return it->second.quantile(q);
}

long TelemetrySeries::counter_total(const std::string& name,
                                    long fallback) const {
  const auto it = counter_totals.find(name);
  return it == counter_totals.end() ? fallback : it->second;
}

const WindowAggregate* TelemetrySeries::window_at(
    std::int64_t time_ms) const {
  for (const WindowAggregate& w : windows) {
    if (time_ms >= w.start_ms && time_ms < w.end_ms) return &w;
  }
  return nullptr;
}

CollectorDaemon::CollectorDaemon(CollectorConfig config)
    : config_(config) {
  if (config_.window_ms <= 0) config_.window_ms = 60000;
}

CollectorDaemon::~CollectorDaemon() { stop(); }

common::Status CollectorDaemon::start() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (running_) {
      return common::Status::Internal("collector already running");
    }
  }
  io::ignore_sigpipe();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return common::Status::Unavailable(std::string("socket: ") +
                                       std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return common::Status::Unavailable(std::string("bind: ") +
                                       std::strerror(errno));
  }
  if (::listen(listen_fd_, 16) < 0) {
    return common::Status::Unavailable(std::string("listen: ") +
                                       std::strerror(errno));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  common::Status status = io::set_nonblocking(listen_fd_);
  if (!status.ok()) return status;

  if (::pipe(wake_pipe_) < 0) {
    return common::Status::Internal(std::string("pipe: ") +
                                    std::strerror(errno));
  }
  (void)io::set_nonblocking(wake_pipe_[0]);
  (void)io::set_nonblocking(wake_pipe_[1]);

  loop_ = std::make_unique<server::EventLoop>(config_.backend);
  status = loop_->add(listen_fd_, /*want_read=*/true, /*want_write=*/false);
  if (!status.ok()) return status;
  status = loop_->add(wake_pipe_[0], true, false);
  if (!status.ok()) return status;

  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    running_ = true;
  }
  reactor_ = std::thread([this] { run_loop(); });
  return common::Status::Ok();
}

common::Status CollectorDaemon::drain(int timeout_ms, long min_frames) {
  std::unique_lock<std::mutex> lock(state_mutex_);
  const bool done = progress_.wait_for(
      lock, std::chrono::milliseconds(timeout_ms), [&] {
        return !running_ || (open_connections_ == 0 &&
                             frames_received_ >= min_frames);
      });
  if (!done) {
    return common::Status::DeadlineExceeded(
        "collector drain: connections still open or frames missing");
  }
  return common::Status::Ok();
}

void CollectorDaemon::stop() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (!running_) return;
    running_ = false;
  }
  wake();
  if (reactor_.joinable()) reactor_.join();
  for (auto& [fd, conn] : connections_) io::close_fd(conn.fd);
  connections_.clear();
  if (listen_fd_ >= 0) {
    io::close_fd(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      io::close_fd(fd);
      fd = -1;
    }
  }
  loop_.reset();
  progress_.notify_all();
}

void CollectorDaemon::wake() {
  const std::uint8_t byte = 1;
  if (wake_pipe_[1] >= 0) {
    (void)io::write_retry(wake_pipe_[1], &byte, 1);
  }
}

void CollectorDaemon::run_loop() {
  std::vector<server::LoopEvent> events;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      if (!running_) break;
    }
    auto waited = loop_->wait(200, events);
    if (!waited.ok()) break;
    for (const server::LoopEvent& event : events) {
      if (event.fd == wake_pipe_[0]) {
        std::uint8_t sink[64];
        while (io::read_retry(wake_pipe_[0], sink, sizeof(sink)).ok()) {
        }
        continue;
      }
      if (event.fd == listen_fd_) {
        accept_ready();
        continue;
      }
      const auto it = connections_.find(event.fd);
      if (it == connections_.end()) continue;
      if (event.broken || !service_connection(it->second)) {
        (void)loop_->remove(it->first);
        io::close_fd(it->second.fd);
        connections_.erase(it);
        {
          std::lock_guard<std::mutex> lock(state_mutex_);
          --open_connections_;
        }
        progress_.notify_all();
      }
    }
    progress_.notify_all();
  }
}

void CollectorDaemon::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient error: back to the loop
    }
    (void)io::set_nonblocking(fd);
    (void)io::set_tcp_nodelay(fd);
    if (!loop_->add(fd, /*want_read=*/true, /*want_write=*/false).ok()) {
      io::close_fd(fd);
      continue;
    }
    Connection conn;
    conn.fd = fd;
    connections_.emplace(fd, std::move(conn));
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      ++open_connections_;
    }
    progress_.notify_all();
  }
}

bool CollectorDaemon::service_connection(Connection& conn) {
  std::uint8_t chunk[16384];
  bool peer_done = false;
  for (;;) {
    const io::IoResult got = io::read_retry(conn.fd, chunk, sizeof(chunk));
    if (got.kind == io::IoResult::Kind::kWouldBlock) break;
    if (!got.ok() || got.count == 0) {
      // EOF or transport error: cut whatever complete frames are already
      // buffered, then close.  (A clean exporter shutdown leaves the
      // buffer empty here.)
      peer_done = true;
      break;
    }
    conn.buffer.insert(conn.buffer.end(), chunk, chunk + got.count);
  }

  // Cut complete frames: length(u32 LE) + payload.
  std::size_t cursor = 0;
  bool poisoned = false;
  while (conn.buffer.size() - cursor >= 4) {
    std::uint32_t length = 0;
    for (int i = 0; i < 4; ++i) {
      length |= static_cast<std::uint32_t>(conn.buffer[cursor + i])
                << (8 * i);
    }
    if (length == 0 || length > telemetry::kMaxFrameBytes) {
      poisoned = true;
      break;
    }
    if (conn.buffer.size() - cursor - 4 < length) break;  // incomplete
    const auto decoded =
        telemetry::decode_payload(conn.buffer.data() + cursor + 4, length);
    if (decoded.ok()) {
      fold(*decoded);
    } else {
      std::lock_guard<std::mutex> lock(state_mutex_);
      ++decode_errors_;
      poisoned = true;
    }
    cursor += 4 + length;
    if (poisoned) break;
  }
  if (cursor > 0) {
    conn.buffer.erase(conn.buffer.begin(),
                      conn.buffer.begin() + static_cast<long>(cursor));
  }
  if (poisoned) return false;  // close: the stream cannot be trusted
  return !peer_done;
}

void CollectorDaemon::fold(const telemetry::Frame& frame) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  ++frames_received_;

  SourceState& source = sources_[frame.source_id];
  source.source_id = frame.source_id;
  if (frame.type == telemetry::FrameType::kHello) {
    source.label = frame.label;
    return;
  }

  const MetricsDelta& delta = frame.delta;
  // Loss accounting: every export consumes a sequence, so a gap means
  // frames never arrived.  base_sequence == last received sequence proves
  // the exporter re-based over the gap (increments coalesced, only time
  // resolution lost).
  if (source.last_sequence != 0 &&
      delta.sequence > source.last_sequence + 1) {
    source.lost_deltas +=
        static_cast<long>(delta.sequence - source.last_sequence - 1);
    if (delta.base_sequence == source.last_sequence) ++source.coalesced_gaps;
  } else if (source.last_sequence == 0 && delta.sequence > 1) {
    source.lost_deltas += static_cast<long>(delta.sequence - 1);
  }
  if (delta.sequence <= source.last_sequence) return;  // stale duplicate
  source.last_sequence = delta.sequence;
  ++source.deltas_received;

  // Running totals (fleet view).
  for (const CounterDelta& c : delta.counters) {
    counter_totals_[c.name] += c.increment;
  }
  for (const GaugeDelta& g : delta.gauges) {
    gauge_last_[g.name] = g.value;
  }
  for (const HistogramDelta& h : delta.histograms) {
    HistogramSample& total = histogram_totals_[h.name];
    if (total.upper_bounds.empty()) {
      total.name = h.name;
      total.upper_bounds = h.upper_bounds;
      total.bucket_counts.assign(h.upper_bounds.size() + 1, 0);
    }
    if (total.upper_bounds.size() == h.upper_bounds.size()) {
      for (std::size_t b = 0; b < h.bucket_increments.size(); ++b) {
        total.bucket_counts[b] += h.bucket_increments[b];
      }
      total.count += h.count_increment;
      total.sum += h.sum_increment;
    }
  }

  // Windowed series keyed by the exporter's clock.
  const std::int64_t start =
      (frame.time_ms / config_.window_ms) * config_.window_ms -
      (frame.time_ms < 0 && frame.time_ms % config_.window_ms != 0
           ? config_.window_ms
           : 0);
  WindowAggregate& window = windows_[start];
  window.start_ms = start;
  window.end_ms = start + config_.window_ms;
  ++window.deltas;
  for (const CounterDelta& c : delta.counters) {
    window.counter_increments[c.name] += c.increment;
  }
  for (const GaugeDelta& g : delta.gauges) {
    window.gauges[g.name] = g.value;
  }
  for (const HistogramDelta& h : delta.histograms) {
    HistogramSample& slice = window.histograms[h.name];
    if (slice.upper_bounds.empty()) {
      slice.name = h.name;
      slice.upper_bounds = h.upper_bounds;
      slice.bucket_counts.assign(h.upper_bounds.size() + 1, 0);
    }
    if (slice.upper_bounds.size() == h.upper_bounds.size()) {
      for (std::size_t b = 0; b < h.bucket_increments.size(); ++b) {
        slice.bucket_counts[b] += h.bucket_increments[b];
      }
      slice.count += h.count_increment;
      slice.sum += h.sum_increment;
    }
  }
}

TelemetrySeries CollectorDaemon::series() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  TelemetrySeries out;
  out.sources.reserve(sources_.size());
  for (const auto& [id, source] : sources_) {
    out.sources.push_back(source);
    out.lost_deltas += source.lost_deltas;
  }
  out.windows.reserve(windows_.size());
  for (const auto& [start, window] : windows_) out.windows.push_back(window);
  out.counter_totals = counter_totals_;
  out.gauge_last = gauge_last_;
  out.histogram_totals = histogram_totals_;
  out.frames_received = frames_received_;
  out.decode_errors = decode_errors_;
  return out;
}

std::string CollectorDaemon::exposition() const {
  const TelemetrySeries s = series();
  // Reuse the registry exposition formatter by shaping the totals as a
  // snapshot: the collector *is* a registry whose writers live elsewhere.
  MetricsSnapshot snapshot;
  for (const auto& [name, value] : s.counter_totals) {
    snapshot.counters.push_back({name, "", value});
  }
  snapshot.counters.push_back({"lpvs_collector_frames_total",
                               "Telemetry frames decoded by the collector",
                               s.frames_received});
  snapshot.counters.push_back(
      {"lpvs_collector_decode_errors_total",
       "Telemetry frames rejected (bad seal or malformed body)",
       s.decode_errors});
  snapshot.counters.push_back(
      {"lpvs_collector_lost_deltas_total",
       "Exporter deltas that never arrived (sequence gaps)",
       s.lost_deltas});
  for (const auto& [name, value] : s.gauge_last) {
    snapshot.gauges.push_back({name, "", value});
  }
  for (const auto& [name, hist] : s.histogram_totals) {
    snapshot.histograms.push_back(hist);
  }
  return obs::exposition(snapshot);
}

std::string CollectorDaemon::jsonl() const {
  const TelemetrySeries s = series();
  std::string out;

  common::Json meta = common::Json::object();
  meta.set("record", "meta");
  meta.set("window_ms", static_cast<long>(config_.window_ms));
  meta.set("frames_received", s.frames_received);
  meta.set("decode_errors", s.decode_errors);
  meta.set("lost_deltas", s.lost_deltas);
  common::Json sources = common::Json::array();
  for (const SourceState& src : s.sources) {
    common::Json j = common::Json::object();
    j.set("source_id", static_cast<long>(src.source_id));
    j.set("label", src.label);
    j.set("deltas_received", src.deltas_received);
    j.set("lost_deltas", src.lost_deltas);
    j.set("coalesced_gaps", src.coalesced_gaps);
    sources.push(std::move(j));
  }
  meta.set("sources", std::move(sources));
  common::Json totals = common::Json::object();
  for (const auto& [name, value] : s.counter_totals) {
    totals.set(name, value);
  }
  meta.set("counter_totals", std::move(totals));
  out += meta.dump();
  out += "\n";

  for (const WindowAggregate& window : s.windows) {
    common::Json j = common::Json::object();
    j.set("record", "window");
    j.set("start_ms", static_cast<long>(window.start_ms));
    j.set("end_ms", static_cast<long>(window.end_ms));
    j.set("deltas", window.deltas);
    common::Json counters = common::Json::object();
    for (const auto& [name, inc] : window.counter_increments) {
      counters.set(name, inc);
    }
    j.set("counters", std::move(counters));
    common::Json gauges = common::Json::object();
    for (const auto& [name, value] : window.gauges) {
      gauges.set(name, value);
    }
    j.set("gauges", std::move(gauges));
    common::Json hists = common::Json::object();
    for (const auto& [name, hist] : window.histograms) {
      common::Json h = common::Json::object();
      h.set("count", hist.count);
      h.set("sum", hist.sum);
      h.set("p50", hist.count > 0 ? hist.quantile(0.50) : 0.0);
      h.set("p99", hist.count > 0 ? hist.quantile(0.99) : 0.0);
      hists.set(name, std::move(h));
    }
    j.set("histograms", std::move(hists));
    out += j.dump();
    out += "\n";
  }
  return out;
}

common::Status CollectorDaemon::dump_jsonl(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return common::Status::Unavailable("cannot open " + path);
  }
  file << jsonl();
  file.close();
  if (!file) {
    return common::Status::DataLoss("short write to " + path);
  }
  return common::Status::Ok();
}

}  // namespace lpvs::obs

// Display hardware models (SII-B).
//
// Two panel families with opposite power characteristics:
//  * LCD — power dominated by the backlight; nearly independent of content,
//    roughly affine in backlight level (Chang et al., "DLS" [20]).
//  * OLED — power emitted per sub-pixel; depends on the displayed colors,
//    with blue sub-pixels ~2x the power of green and red in between
//    (Stanley-Marbell et al., "Crayon" [17]).
//
// The reproduction does not ship real video frames; content enters these
// models through FrameStats — per-chunk channel/luminance statistics that
// are exactly the sufficient statistics of the linear-in-pixel power models
// below (see DESIGN.md substitution table).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lpvs/common/rng.hpp"
#include "lpvs/common/units.hpp"

namespace lpvs::display {

enum class DisplayType : std::uint8_t { kLcd, kOled };

std::string to_string(DisplayType type);

/// Sufficient content statistics of one video chunk for power purposes.
/// Channel means are linear-light (already gamma-decoded) in [0, 1].
struct FrameStats {
  double mean_luminance = 0.5;  ///< relative luminance in [0, 1]
  double mean_r = 0.5;
  double mean_g = 0.5;
  double mean_b = 0.5;
  /// Peak luminance the content needs (95th-percentile proxy); bounds how
  /// far an LCD backlight can be scaled without clipping highlights.
  double peak_luminance = 0.9;

  /// Clamps every field into its valid range.
  FrameStats clamped() const;
};

/// Physical description of one phone's panel.
struct DisplaySpec {
  DisplayType type = DisplayType::kOled;
  double diagonal_inches = 6.1;
  int width_px = 1080;
  int height_px = 2340;
  double max_nits = 600.0;
  /// User brightness setting in [0, 1]; video playback typically mid-high.
  double brightness = 0.8;

  double area_sq_inches() const;
  long pixel_count() const { return static_cast<long>(width_px) * height_px; }
};

/// LCD panel power: backlight (affine in backlight level, scaled by panel
/// area) plus a constant panel/driver term.  Coefficients calibrated to the
/// measurements of Carroll & Heiser [9] and Chang et al. [20]: a ~4" panel
/// spans roughly 70 mW (dim) to 420 mW (full backlight).
class LcdPowerModel {
 public:
  struct Coefficients {
    double backlight_floor_mw_per_sq_in = 5.0;   ///< at backlight level 0
    double backlight_range_mw_per_sq_in = 50.0;  ///< added at level 1
    double panel_mw_per_sq_in = 2.5;             ///< drivers, TFT array
  };

  LcdPowerModel() : LcdPowerModel(Coefficients{}) {}
  explicit LcdPowerModel(Coefficients coefficients)
      : coefficients_(coefficients) {}

  /// Panel power at the given backlight level in [0, 1].  Content does not
  /// matter for an LCD: the backlight burns the same regardless of pixels.
  common::Milliwatts power(const DisplaySpec& spec,
                           double backlight_level) const;

  const Coefficients& coefficients() const { return coefficients_; }

 private:
  Coefficients coefficients_;
};

/// OLED panel power: per-channel emission proportional to linear-light
/// channel level, pixel count and brightness, with the Crayon channel
/// weights (blue ~2x green, red in between), plus a static term.
class OledPowerModel {
 public:
  struct Coefficients {
    // Relative channel efficiencies; normalized so a mid-gray frame on a
    // 6" 1080p panel at brightness 0.8 draws a few hundred mW.
    double red_weight = 1.5;
    double green_weight = 1.0;
    double blue_weight = 2.1;
    double mw_per_megapixel_unit = 95.0;  ///< per unit weighted channel sum
    double static_mw_per_sq_in = 1.5;
  };

  OledPowerModel() : OledPowerModel(Coefficients{}) {}
  explicit OledPowerModel(Coefficients coefficients)
      : coefficients_(coefficients) {}

  /// Panel power for the given content at the spec's brightness setting.
  common::Milliwatts power(const DisplaySpec& spec,
                           const FrameStats& stats) const;

  const Coefficients& coefficients() const { return coefficients_; }

 private:
  Coefficients coefficients_;
};

/// Whole-device playback power (display + SoC video decode + radio + base),
/// the model behind the paper's p_{n,m}(kappa).  Also produces the Fig. 1
/// component breakdown.
class DevicePowerModel {
 public:
  struct NonDisplayCoefficients {
    // Calibrated to 2019-era handsets with hardware decode over WiFi so
    // that the display is the dominant component during playback (Fig. 1).
    double base_mw = 40.0;          ///< RAM, sensors, OS housekeeping
    double cpu_decode_mw = 80.0;    ///< hardware decode + playback stack
    double cpu_per_mbps_mw = 4.0;   ///< decode cost grows with bitrate
    double radio_mw = 90.0;         ///< streaming over WiFi/cellular
    double radio_per_mbps_mw = 6.0;
  };

  DevicePowerModel() = default;
  DevicePowerModel(LcdPowerModel lcd, OledPowerModel oled,
                   NonDisplayCoefficients rest)
      : lcd_(lcd), oled_(oled), rest_(rest) {}

  /// Display-only power for this content.
  common::Milliwatts display_power(const DisplaySpec& spec,
                                   const FrameStats& stats) const;

  /// Total device power while streaming this content at `bitrate_mbps`.
  common::Milliwatts playback_power(const DisplaySpec& spec,
                                    const FrameStats& stats,
                                    double bitrate_mbps) const;

  /// Per-component split for Fig. 1.
  struct Breakdown {
    common::Milliwatts display;
    common::Milliwatts cpu;
    common::Milliwatts radio;
    common::Milliwatts base;
    common::Milliwatts total() const {
      return display + cpu + radio + base;
    }
    double display_fraction() const;
  };
  Breakdown breakdown(const DisplaySpec& spec, const FrameStats& stats,
                      double bitrate_mbps) const;

  const LcdPowerModel& lcd() const { return lcd_; }
  const OledPowerModel& oled() const { return oled_; }
  const NonDisplayCoefficients& rest() const { return rest_; }

 private:
  LcdPowerModel lcd_;
  OledPowerModel oled_;
  NonDisplayCoefficients rest_;
};

/// A catalog of representative handset profiles used to randomly assign
/// display specs to emulated devices (SVI-B: "we assign values for each of
/// them by randomly choosing from available display resolutions").
class DeviceCatalog {
 public:
  struct Profile {
    std::string name;
    DisplaySpec spec;
    double battery_mwh;  ///< nominal full-charge energy
  };

  /// Built-in catalog spanning LCD and OLED handsets of 2019-era specs.
  static const DeviceCatalog& standard();

  explicit DeviceCatalog(std::vector<Profile> profiles);

  const Profile& sample(common::Rng& rng) const;
  const Profile& at(std::size_t i) const { return profiles_[i]; }
  std::size_t size() const { return profiles_.size(); }

 private:
  std::vector<Profile> profiles_;
};

}  // namespace lpvs::display

#include "lpvs/display/display.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>
#include <vector>

namespace lpvs::display {

std::string to_string(DisplayType type) {
  return type == DisplayType::kLcd ? "LCD" : "OLED";
}

FrameStats FrameStats::clamped() const {
  FrameStats out = *this;
  out.mean_luminance = std::clamp(out.mean_luminance, 0.0, 1.0);
  out.mean_r = std::clamp(out.mean_r, 0.0, 1.0);
  out.mean_g = std::clamp(out.mean_g, 0.0, 1.0);
  out.mean_b = std::clamp(out.mean_b, 0.0, 1.0);
  out.peak_luminance =
      std::clamp(out.peak_luminance, out.mean_luminance, 1.0);
  return out;
}

double DisplaySpec::area_sq_inches() const {
  assert(width_px > 0 && height_px > 0);
  const double aspect =
      static_cast<double>(std::max(width_px, height_px)) /
      static_cast<double>(std::min(width_px, height_px));
  return diagonal_inches * diagonal_inches * aspect / (1.0 + aspect * aspect);
}

common::Milliwatts LcdPowerModel::power(const DisplaySpec& spec,
                                        double backlight_level) const {
  backlight_level = std::clamp(backlight_level, 0.0, 1.0);
  const double area = spec.area_sq_inches();
  const double backlight =
      (coefficients_.backlight_floor_mw_per_sq_in +
       coefficients_.backlight_range_mw_per_sq_in * backlight_level) *
      area;
  const double panel = coefficients_.panel_mw_per_sq_in * area;
  return {backlight + panel};
}

common::Milliwatts OledPowerModel::power(const DisplaySpec& spec,
                                         const FrameStats& stats) const {
  const FrameStats s = stats.clamped();
  const double weighted = coefficients_.red_weight * s.mean_r +
                          coefficients_.green_weight * s.mean_g +
                          coefficients_.blue_weight * s.mean_b;
  const double megapixels =
      static_cast<double>(spec.pixel_count()) / 1.0e6;
  const double emission = coefficients_.mw_per_megapixel_unit * megapixels *
                          std::clamp(spec.brightness, 0.0, 1.0) * weighted;
  const double static_power =
      coefficients_.static_mw_per_sq_in * spec.area_sq_inches();
  return {emission + static_power};
}

common::Milliwatts DevicePowerModel::display_power(
    const DisplaySpec& spec, const FrameStats& stats) const {
  if (spec.type == DisplayType::kLcd) {
    // Without a content-adaptive transform, the backlight tracks the user's
    // brightness setting regardless of content.
    return lcd_.power(spec, spec.brightness);
  }
  return oled_.power(spec, stats);
}

common::Milliwatts DevicePowerModel::playback_power(
    const DisplaySpec& spec, const FrameStats& stats,
    double bitrate_mbps) const {
  return breakdown(spec, stats, bitrate_mbps).total();
}

double DevicePowerModel::Breakdown::display_fraction() const {
  const double t = total().value;
  return t > 0.0 ? display.value / t : 0.0;
}

DevicePowerModel::Breakdown DevicePowerModel::breakdown(
    const DisplaySpec& spec, const FrameStats& stats,
    double bitrate_mbps) const {
  bitrate_mbps = std::max(bitrate_mbps, 0.0);
  Breakdown split;
  split.display = display_power(spec, stats);
  split.cpu = {rest_.cpu_decode_mw + rest_.cpu_per_mbps_mw * bitrate_mbps};
  split.radio = {rest_.radio_mw + rest_.radio_per_mbps_mw * bitrate_mbps};
  split.base = {rest_.base_mw};
  return split;
}

DeviceCatalog::DeviceCatalog(std::vector<Profile> profiles)
    : profiles_(std::move(profiles)) {
  assert(!profiles_.empty());
}

const DeviceCatalog::Profile& DeviceCatalog::sample(common::Rng& rng) const {
  const auto idx = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(profiles_.size()) - 1));
  return profiles_[idx];
}

const DeviceCatalog& DeviceCatalog::standard() {
  static const DeviceCatalog catalog({
      // name, {type, diagonal, w, h, max_nits, brightness}, battery_mwh
      {"budget-lcd-hd",
       {DisplayType::kLcd, 5.5, 720, 1440, 450.0, 0.8},
       11400.0},
      {"mid-lcd-fhd",
       {DisplayType::kLcd, 6.1, 1080, 2340, 500.0, 0.8},
       13300.0},
      {"large-lcd-fhd",
       {DisplayType::kLcd, 6.5, 1080, 2400, 480.0, 0.8},
       15200.0},
      {"tablet-lcd-qhd",
       {DisplayType::kLcd, 8.0, 1600, 2560, 420.0, 0.75},
       19000.0},
      {"flagship-oled-fhd",
       {DisplayType::kOled, 6.1, 1080, 2340, 700.0, 0.8},
       12540.0},
      {"flagship-oled-qhd",
       {DisplayType::kOled, 6.4, 1440, 3040, 800.0, 0.8},
       14820.0},
      {"compact-oled",
       {DisplayType::kOled, 5.8, 1080, 2244, 650.0, 0.8},
       10260.0},
      {"large-oled-fhd",
       {DisplayType::kOled, 6.7, 1080, 2400, 750.0, 0.85},
       17100.0},
  });
  return catalog;
}

}  // namespace lpvs::display

// Open-loop load generator for the edge-server daemon.
//
// Drives a fleet of lpvs-wire/session clients against an EdgeServerDaemon
// over loopback: clusters of sessions arrive by a Poisson process (open
// loop — arrivals do not wait for the server), each cluster plays its
// slots in lockstep, and every client records the request→schedule latency
// of each slot plus an FNV-1a digest of every payload byte the server sent
// it.
//
// Lockstep is load-bearing, not a convenience: the server barriers slot k
// of a cluster until *all* members' REPORTs arrive, so a client that
// blocked reading its SCHEDULE before its cluster-mates had reported would
// deadlock.  Each worker therefore drives a whole cluster: send every
// member's REPORT, then read every member's SCHEDULE + GRANT (TCP
// preserves per-connection order, so the reads cannot interleave wrongly).
//
// Determinism: all client behavior — battery trajectories, observed
// deltas, give-up decisions — is derived from (seed, user, slot), and the
// server's schedules are pure functions of the reported state, so the
// digest each user accumulates is identical no matter how many worker
// threads carried the traffic.  The serving integration test runs the same
// fleet at two thread counts and asserts exactly that.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lpvs/common/status.hpp"
#include "lpvs/obs/metrics.hpp"

namespace lpvs::loadgen {

struct LoadGenConfig {
  /// Server port on 127.0.0.1.
  std::uint16_t port = 0;

  std::uint32_t clusters = 4;
  std::uint32_t cluster_size = 4;
  /// Slots each session plays (trace mode: the cap on a session's length).
  std::uint32_t slots = 20;
  /// Worker threads; clusters are assigned round-robin.  Payload digests
  /// are independent of this by construction.
  std::uint32_t threads = 2;
  std::uint64_t seed = 1;

  /// Poisson cluster-arrival rate per second; 0 = all clusters arrive
  /// immediately.  Arrival times are precomputed from the seed, so pacing
  /// never perturbs payloads — only timing.
  double arrival_rate_per_s = 0.0;

  /// Replay Twitch-like trace sessions: per-cluster slot counts, genres and
  /// bitrates come from trace::TwitchLikeGenerator instead of being uniform.
  bool use_trace = false;

  /// Clients report watching = 0 (give up) when their simulated battery
  /// falls below this fraction; 0 = never give up.
  double giveup_battery_fraction = 0.0;

  /// Path to an lpvs-throughput v1 trace; every client replays it (each
  /// phase-shifted by its user id) instead of sampling the synthetic
  /// Gilbert-Elliott channel.  Empty = synthetic.
  std::string throughput_trace;

  /// Optional sink for lpvs_loadgen_request_schedule_ms; null = off.
  obs::MetricsRegistry* metrics = nullptr;
};

struct LoadGenReport {
  long sessions = 0;           ///< sessions opened (HELLO sent)
  long completed = 0;          ///< sessions ended with an orderly BYE
  long gave_up = 0;            ///< sessions that left via watching = 0
  long slots_driven = 0;       ///< SCHEDULE+GRANT pairs consumed
  long transport_errors = 0;   ///< connect/read/write failures
  long protocol_errors = 0;    ///< unexpected or ERROR frames

  double elapsed_s = 0.0;
  /// Request→schedule latency over every (session, slot): the wall time
  /// from a member's REPORT write to its SCHEDULE arrival (includes the
  /// cluster barrier — the metric a provider actually experiences).
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  long latency_samples = 0;

  // Client playout accounting: every client simulates its slot's chunk
  // downloads at the granted bitrate over its own stochastic last hop, so
  // the fleet reports startup/rebuffer figures alongside the digests.
  double startup_delay_s = 0.0;    ///< summed across sessions
  double rebuffer_time_s = 0.0;    ///< summed across sessions
  long rebuffer_events = 0;
  /// Mean granted bitrate over every driven slot (the server's rung when
  /// ABR is enabled; the HELLO bitrate otherwise).
  double mean_granted_bitrate_mbps = 0.0;

  /// Per-user FNV-1a digest over every payload byte received, in order.
  /// The cross-run / cross-thread-count determinism witness.
  std::map<std::uint64_t, std::uint64_t> digests;
};

/// Runs the configured fleet to completion.  kInvalidArgument for a
/// nonsensical config; transport failures are counted per session in the
/// report, not fatal to the run.
common::StatusOr<LoadGenReport> run_load(const LoadGenConfig& config);

}  // namespace lpvs::loadgen

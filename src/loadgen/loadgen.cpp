#include "lpvs/loadgen/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "lpvs/common/io.hpp"
#include "lpvs/common/rng.hpp"
#include "lpvs/common/wire.hpp"
#include "lpvs/media/video.hpp"
#include "lpvs/server/protocol.hpp"
#include "lpvs/streaming/network.hpp"
#include "lpvs/trace/trace.hpp"

namespace lpvs::loadgen {
namespace {

namespace io = common::io;
namespace protocol = server::protocol;

using Clock = std::chrono::steady_clock;

/// Same derived-stream construction as the server: client behavior is a
/// pure function of (seed, entity, salt), never of scheduling order.
common::Rng derived_rng(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  return common::Rng(seed ^ (a + 1) * 0x9E3779B97F4A7C15ULL ^
                     (b + 1) * 0xC2B2AE3D27D4EB4FULL);
}

constexpr std::uint64_t kBatterySalt = 0xBA77uLL;
constexpr std::uint64_t kDrainSalt = 0xD4A1uLL;
constexpr std::uint64_t kDeltaSalt = 0xDE17uLL;
constexpr std::uint64_t kArrivalSalt = 0xA221uLL;
constexpr std::uint64_t kNetSalt = 0x4E37uLL;

/// What one cluster's sessions look like before any byte is sent.
struct ClusterPlan {
  std::uint64_t cluster_id = 0;
  std::uint32_t size = 0;
  std::uint32_t slots = 0;
  std::uint8_t genre = 0;
  double bitrate_mbps = 3.0;
  double arrival_offset_s = 0.0;
};

/// One live client connection.
struct Client {
  int fd = -1;
  std::uint64_t user_id = 0;
  double battery_capacity_mwh = 13000.0;
  double battery_fraction = 1.0;
  double drain_per_slot = 0.05;  ///< battery fraction at power_scale = 1
  bool transformed_last = false;
  bool alive = false;    ///< socket usable
  bool watching = true;  ///< still in the cluster barrier
  std::uint64_t digest = common::wire::kFnvOffsetBasis;
  Clock::time_point report_sent{};
  std::vector<std::uint8_t> rx;  ///< buffered unconsumed socket bytes
  std::size_t rx_off = 0;        ///< consumed prefix of rx

  // Playout simulation over the stochastic last hop: the client downloads
  // its granted chunks, keeps a playout buffer, and reports buffer level +
  // throughput estimate in each REPORT (the v2 fields the joint ABR
  // scheduler prices).
  streaming::ThroughputModel net;
  common::Rng net_rng;
  double buffer_s = 0.0;
  bool playing = false;
  bool was_starved = false;
  double granted_bitrate_mbps = 3.0;
  std::deque<double> recent_mbps;  ///< for the harmonic-mean estimate
};

/// Harmonic mean of the client's recent downloads (the standard robust
/// estimator, matching streaming::StreamingSession).
double throughput_estimate(const Client& client) {
  if (client.recent_mbps.empty()) return 0.0;
  double inv_sum = 0.0;
  for (double r : client.recent_mbps) inv_sum += 1.0 / r;
  return static_cast<double>(client.recent_mbps.size()) / inv_sum;
}

void push_recent(Client& client, double mbps) {
  client.recent_mbps.push_back(mbps);
  if (client.recent_mbps.size() > 5) client.recent_mbps.pop_front();
}

struct WorkerResult {
  long sessions = 0;
  long completed = 0;
  long gave_up = 0;
  long slots_driven = 0;
  long transport_errors = 0;
  long protocol_errors = 0;
  double startup_delay_s = 0.0;
  double rebuffer_time_s = 0.0;
  long rebuffer_events = 0;
  double granted_bitrate_sum = 0.0;
  std::vector<double> latencies_ms;
  std::map<std::uint64_t, std::uint64_t> digests;
};

/// Plays one granted slot: downloads `chunks` chunks at the granted
/// bitrate over the client's channel, with the same buffer dynamics as
/// streaming::StreamingSession (startup threshold one chunk, capacity two).
void simulate_slot_playback(Client& client, std::uint32_t chunks,
                            double chunk_seconds, WorkerResult& result) {
  if (chunk_seconds <= 0.0) return;
  const double capacity_s = 2.0 * chunk_seconds;
  for (std::uint32_t k = 0; k < chunks; ++k) {
    const double throughput = client.net.sample_mbps(client.net_rng);
    push_recent(client, throughput);
    const double download_s =
        client.granted_bitrate_mbps * chunk_seconds / throughput;
    if (!client.playing) {
      result.startup_delay_s += download_s;
      client.buffer_s += chunk_seconds;
      if (client.buffer_s >= chunk_seconds) client.playing = true;
    } else {
      if (client.buffer_s >= download_s) {
        client.buffer_s -= download_s;
        client.was_starved = false;
      } else {
        result.rebuffer_time_s += download_s - client.buffer_s;
        if (!client.was_starved) ++result.rebuffer_events;
        client.was_starved = true;
        client.buffer_s = 0.0;
      }
      client.buffer_s =
          std::min(client.buffer_s + chunk_seconds, capacity_s);
    }
  }
}

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    io::close_fd(fd);
    return -1;
  }
  (void)io::set_tcp_nodelay(fd);
  return fd;
}

bool send_frame(Client& client, const protocol::Frame& frame,
                std::vector<std::uint8_t>& scratch) {
  scratch.clear();
  protocol::encode_into(frame, scratch);
  if (!io::write_all(client.fd, scratch.data(), scratch.size()).ok()) {
    client.alive = false;
    return false;
  }
  return true;
}

/// Blocking buffered fill: ensures `need` unconsumed bytes sit in client.rx.
/// One read(2) usually lands a whole coalesced SCHEDULE+GRANT burst, so the
/// per-frame syscall count drops from two (prefix + payload) to amortized
/// well under one.
common::Status fill(Client& client, std::size_t need) {
  while (client.rx.size() - client.rx_off < need) {
    if (client.rx_off > 0) {
      client.rx.erase(client.rx.begin(),
                      client.rx.begin() +
                          static_cast<std::ptrdiff_t>(client.rx_off));
      client.rx_off = 0;
    }
    std::uint8_t chunk[4096];
    const io::IoResult got = io::read_retry(client.fd, chunk, sizeof(chunk));
    if (!got.ok() || got.count == 0) {
      return common::Status::Unavailable(
          got.kind == io::IoResult::Kind::kEof ? "peer closed the connection"
                                               : "read failed");
    }
    client.rx.insert(client.rx.end(), chunk, chunk + got.count);
  }
  return common::Status::Ok();
}

/// Blocking read of one frame; folds the payload bytes into the client's
/// running digest (length prefix excluded: the digest witnesses *content*).
common::StatusOr<protocol::Frame> read_frame(Client& client) {
  common::Status status = fill(client, 4);
  if (!status.ok()) return status;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(client.rx[client.rx_off +
                                                   static_cast<std::size_t>(i)])
              << (8 * i);
  }
  if (length > protocol::kMaxFrameBytes) {
    return common::Status::InvalidArgument("oversized frame from server");
  }
  status = fill(client, 4 + static_cast<std::size_t>(length));
  if (!status.ok()) return status;
  const std::uint8_t* payload = client.rx.data() + client.rx_off + 4;
  client.digest = common::wire::fnv1a(client.digest, payload, length);
  common::StatusOr<protocol::Frame> frame =
      protocol::decode_payload(payload, length);
  client.rx_off += 4 + static_cast<std::size_t>(length);
  if (client.rx_off == client.rx.size()) {
    client.rx.clear();
    client.rx_off = 0;
  }
  return frame;
}

void close_client(Client& client) {
  if (client.fd >= 0) io::close_fd(client.fd);
  client.fd = -1;
  client.alive = false;
}

/// Drives one cluster's whole lifetime (HELLO → slots in lockstep → BYE).
/// `trace_net` non-null = every client replays that trace, phase-shifted
/// by its user id.
void drive_cluster(const LoadGenConfig& config, const ClusterPlan& plan,
                   WorkerResult& result, obs::Histogram* latency_hist,
                   const streaming::ThroughputModel* trace_net) {
  std::vector<Client> clients(plan.size);
  std::vector<std::uint8_t> tx;  // reused encode scratch for every frame

  // --- Connect + HELLO for every member, then read every HELLO_ACK.
  for (std::uint32_t m = 0; m < plan.size; ++m) {
    Client& client = clients[m];
    client.user_id = plan.cluster_id * 1000 + m + 1;
    common::Rng battery_rng =
        derived_rng(config.seed, client.user_id, kBatterySalt);
    client.battery_capacity_mwh = battery_rng.uniform(8000.0, 16000.0);
    common::Rng drain_rng =
        derived_rng(config.seed, client.user_id, kDrainSalt);
    client.drain_per_slot = drain_rng.uniform(0.02, 0.08);

    // Last-hop channel: a private phase of the shared trace, or the
    // synthetic chain off a per-user derived stream.  Three probe samples
    // seed the throughput estimate the first REPORT carries.
    client.net_rng = derived_rng(config.seed, client.user_id, kNetSalt);
    if (trace_net != nullptr) {
      client.net = *trace_net;
      client.net.set_trace_position(static_cast<std::size_t>(
          client.user_id % trace_net->trace().size()));
    }
    client.granted_bitrate_mbps = plan.bitrate_mbps;
    for (int probe = 0; probe < 3; ++probe) {
      push_recent(client, client.net.sample_mbps(client.net_rng));
    }

    client.fd = connect_loopback(config.port);
    if (client.fd < 0) {
      ++result.transport_errors;
      continue;
    }
    client.alive = true;
    ++result.sessions;

    protocol::Hello hello;
    hello.user_id = client.user_id;
    hello.cluster_id = plan.cluster_id;
    hello.cluster_size = plan.size;
    hello.slots_total = plan.slots;
    hello.battery_capacity_mwh = client.battery_capacity_mwh;
    hello.bitrate_mbps = plan.bitrate_mbps;
    hello.genre = plan.genre;
    hello.giveup_percent = static_cast<std::uint8_t>(
        config.giveup_battery_fraction * 100.0);
    if (!send_frame(client, protocol::make_frame(hello), tx)) {
      ++result.transport_errors;
      close_client(client);
    }
  }
  for (Client& client : clients) {
    if (!client.alive) continue;
    common::StatusOr<protocol::Frame> frame = read_frame(client);
    if (!frame.ok()) {
      ++result.transport_errors;
      close_client(client);
      continue;
    }
    if (frame->type != protocol::FrameType::kHelloAck) {
      ++result.protocol_errors;
      close_client(client);
    }
  }

  // --- Slots, in cluster lockstep: all REPORTs out, then all reads.
  for (std::uint32_t slot = 0; slot < plan.slots; ++slot) {
    bool any = false;
    for (Client& client : clients) {
      if (!client.alive || !client.watching) continue;
      const bool giving_up =
          config.giveup_battery_fraction > 0.0 &&
          client.battery_fraction < config.giveup_battery_fraction;

      protocol::Report report;
      report.slot = slot;
      report.battery_fraction = client.battery_fraction;
      if (client.transformed_last) {
        // The realized power reduction of the previous transformed slot —
        // the Bayes observation, drawn from the Table I band.
        common::Rng delta_rng =
            derived_rng(config.seed, client.user_id,
                        kDeltaSalt + static_cast<std::uint64_t>(slot) * 7919);
        report.observed_delta = delta_rng.uniform(0.13, 0.49);
        report.has_delta = 1;
      }
      report.watching = giving_up ? 0 : 1;
      report.buffer_s = client.buffer_s;
      report.throughput_mbps = throughput_estimate(client);
      client.report_sent = Clock::now();
      if (!send_frame(client, protocol::make_frame(report), tx)) {
        ++result.transport_errors;
        close_client(client);
        continue;
      }
      if (giving_up) {
        client.watching = false;
        ++result.gave_up;
      } else {
        any = true;
      }
    }
    if (!any) break;

    for (Client& client : clients) {
      if (!client.alive || !client.watching) continue;
      common::StatusOr<protocol::Frame> schedule = read_frame(client);
      if (!schedule.ok()) {
        ++result.transport_errors;
        close_client(client);
        continue;
      }
      const double latency_ms =
          std::chrono::duration<double, std::milli>(Clock::now() -
                                                    client.report_sent)
              .count();
      if (schedule->type != protocol::FrameType::kSchedule) {
        ++result.protocol_errors;
        close_client(client);
        continue;
      }
      common::StatusOr<protocol::Frame> grant = read_frame(client);
      if (!grant.ok() || grant->type != protocol::FrameType::kGrant) {
        grant.ok() ? ++result.protocol_errors : ++result.transport_errors;
        close_client(client);
        continue;
      }
      result.latencies_ms.push_back(latency_ms);
      if (latency_hist != nullptr) latency_hist->observe(latency_ms);
      ++result.slots_driven;

      // Battery model: drain scales with the granted power level.
      const auto& g = grant->as<protocol::Grant>();
      client.battery_fraction = std::max(
          0.0,
          client.battery_fraction - client.drain_per_slot * g.power_scale);
      const auto& sched = schedule->as<protocol::Schedule>();
      client.transformed_last = sched.transform != 0;

      // Play the granted slot: an ABR-enabled server governs the bitrate
      // (bitrate_mbps > 0); otherwise the client keeps its current rate.
      if (sched.bitrate_mbps > 0.0) {
        client.granted_bitrate_mbps = sched.bitrate_mbps;
      }
      result.granted_bitrate_sum += client.granted_bitrate_mbps;
      simulate_slot_playback(client, g.chunks, g.chunk_seconds, result);
    }
  }

  // --- Orderly close for everyone still connected.
  for (Client& client : clients) {
    if (!client.alive) continue;
    protocol::Bye bye;
    bye.reason = client.watching ? 0 : 1;
    if (send_frame(client, protocol::make_frame(bye), tx)) ++result.completed;
    result.digests[client.user_id] = client.digest;
    close_client(client);
  }
  // Sessions that died mid-flight still witnessed some payload bytes.
  for (Client& client : clients) {
    if (client.user_id != 0 && result.digests.count(client.user_id) == 0 &&
        client.digest != common::wire::kFnvOffsetBasis) {
      result.digests[client.user_id] = client.digest;
    }
  }
}

}  // namespace

common::StatusOr<LoadGenReport> run_load(const LoadGenConfig& config) {
  if (config.port == 0) {
    return common::Status::InvalidArgument("load generator needs a port");
  }
  if (config.clusters == 0 || config.cluster_size == 0 || config.slots == 0) {
    return common::Status::InvalidArgument("empty fleet");
  }
  const std::uint32_t threads = std::max(1u, config.threads);

  // --- Plan every cluster up front (content/arrival independent of the
  // --- worker that ends up carrying it).
  std::vector<ClusterPlan> plans(config.clusters);
  trace::Trace replay;
  if (config.use_trace) {
    trace::TraceConfig trace_config;
    trace_config.channel_count =
        std::max(16, static_cast<int>(config.clusters / 4 + 1));
    trace_config.session_count = static_cast<int>(config.clusters);
    replay = trace::TwitchLikeGenerator(trace_config).generate(config.seed);
  }
  common::Rng arrival_rng = derived_rng(config.seed, kArrivalSalt, 0);
  double arrival_s = 0.0;
  for (std::uint32_t c = 0; c < config.clusters; ++c) {
    ClusterPlan& plan = plans[c];
    plan.cluster_id = c + 1;
    plan.size = config.cluster_size;
    plan.slots = config.slots;
    if (config.use_trace && c < replay.sessions().size()) {
      const trace::Session& session = replay.sessions()[c];
      plan.slots = std::max<std::uint32_t>(
          1, std::min<std::uint32_t>(
                 config.slots,
                 static_cast<std::uint32_t>(session.duration_slots())));
      const trace::Channel& channel = replay.channel(session.channel);
      plan.genre = static_cast<std::uint8_t>(channel.genre);
      plan.bitrate_mbps = channel.bitrate_mbps;
    } else {
      common::Rng genre_rng = derived_rng(config.seed, 0x6E47, c);
      plan.genre =
          static_cast<std::uint8_t>(genre_rng.uniform_int(0,
                                                          media::kGenreCount - 1));
      plan.bitrate_mbps = genre_rng.uniform(2.0, 6.0);
    }
    if (config.arrival_rate_per_s > 0.0) {
      arrival_s +=
          -std::log(1.0 - arrival_rng.uniform()) / config.arrival_rate_per_s;
      plan.arrival_offset_s = arrival_s;
    }
  }

  io::ignore_sigpipe();

  // A shared throughput trace, loaded once; clients copy it and replay
  // their own phase.  A bad path or unusable trace fails the run up front.
  streaming::ThroughputModel trace_model;
  const streaming::ThroughputModel* trace_net = nullptr;
  if (!config.throughput_trace.empty()) {
    common::StatusOr<streaming::ThroughputModel> loaded =
        streaming::ThroughputModel::from_trace_file(config.throughput_trace,
                                                    config.metrics);
    if (!loaded.ok()) return loaded.status();
    trace_model = std::move(loaded).value();
    trace_net = &trace_model;
  }

  obs::Histogram* latency_hist = nullptr;
  if (config.metrics != nullptr) {
    latency_hist = &config.metrics->histogram(
        "lpvs_loadgen_request_schedule_ms",
        obs::MetricsRegistry::time_buckets_ms(),
        "client-observed REPORT to SCHEDULE latency");
  }

  // --- Workers: cluster c belongs to worker c % threads; each worker
  // --- drives its clusters sequentially in arrival order.
  std::vector<WorkerResult> results(threads);
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::uint32_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      for (std::uint32_t c = w; c < config.clusters; c += threads) {
        if (plans[c].arrival_offset_s > 0.0) {
          std::this_thread::sleep_until(
              start + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(
                              plans[c].arrival_offset_s)));
        }
        drive_cluster(config, plans[c], results[w], latency_hist, trace_net);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  // --- Merge.
  LoadGenReport report;
  std::vector<double> latencies;
  double granted_bitrate_sum = 0.0;
  for (WorkerResult& result : results) {
    report.sessions += result.sessions;
    report.completed += result.completed;
    report.gave_up += result.gave_up;
    report.slots_driven += result.slots_driven;
    report.transport_errors += result.transport_errors;
    report.protocol_errors += result.protocol_errors;
    report.startup_delay_s += result.startup_delay_s;
    report.rebuffer_time_s += result.rebuffer_time_s;
    report.rebuffer_events += result.rebuffer_events;
    granted_bitrate_sum += result.granted_bitrate_sum;
    latencies.insert(latencies.end(), result.latencies_ms.begin(),
                     result.latencies_ms.end());
    for (const auto& [user, digest] : result.digests) {
      report.digests[user] = digest;
    }
  }
  if (report.slots_driven > 0) {
    report.mean_granted_bitrate_mbps =
        granted_bitrate_sum / static_cast<double>(report.slots_driven);
  }
  report.elapsed_s = std::chrono::duration<double>(Clock::now() - start).count();
  report.latency_samples = static_cast<long>(latencies.size());
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    const auto at = [&](double q) {
      const auto index = static_cast<std::size_t>(
          q * static_cast<double>(latencies.size() - 1));
      return latencies[index];
    };
    report.latency_p50_ms = at(0.50);
    report.latency_p99_ms = at(0.99);
  }
  return report;
}

}  // namespace lpvs::loadgen

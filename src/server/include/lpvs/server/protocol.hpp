// lpvs-wire/session v2 — the client-facing binary session protocol.
//
// The paper's edge-server deployment (§V) has mobile clients report their
// battery / power state every slot and receive the scheduler's per-slot
// transform decision back.  This header defines the frames that carry that
// conversation over a TCP stream:
//
//   stream    := frame*
//   frame     := length(u32 LE) payload
//   payload   := magic(u32) version(u32) type(u8) body checksum(u64)
//
// `length` counts the payload bytes that follow it (including the FNV-1a
// checksum trailer, excluding the length field itself).  The payload is
// sealed with common::wire::seal — the same codec the fleet's handoff and
// checkpoint payloads use — so a flipped bit anywhere surfaces as kDataLoss
// at the decoder instead of a garbled schedule at the client.
//
// Session conversation (state machine in server.hpp / docs/server.md):
//
//   client                          server
//     HELLO  ──────────────────────▶        (admission control)
//            ◀────────────────────── HELLO_ACK | ERROR+close
//     REPORT(slot k) ──────────────▶        (cluster barrier)
//            ◀────────────────────── SCHEDULE(slot k)
//            ◀────────────────────── GRANT(slot k)
//     ... repeat per slot ...
//     BYE    ──────────────────────▶        (flush + close)
//
// Determinism contract: SCHEDULE/GRANT bodies are pure functions of the
// session's cluster composition and the reported state — never of socket
// interleaving — so the byte stream a session receives is bit-identical
// across runs (the serving integration test asserts it via FNV digests).
//
// Version history.  v2 (the joint ABR scheduler) appends streaming state
// to REPORT (buffer level, throughput estimate) and the granted bitrate
// rung to SCHEDULE.  All additions are strictly appended, so a v2 decoder
// accepts v1 frames by stopping at the old body length and leaving the new
// fields at their defaults (kMinVersion below); frames claiming any other
// version are rejected.  Encoders always emit kVersion.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "lpvs/common/status.hpp"
#include "lpvs/common/wire.hpp"

namespace lpvs::server::protocol {

/// "LWS1" little-endian: lpvs-wire/session.
inline constexpr std::uint32_t kMagic = 0x3153574Cu;
inline constexpr std::uint32_t kVersion = 2;
/// Oldest version this decoder still accepts (fields added since decode to
/// their struct defaults).
inline constexpr std::uint32_t kMinVersion = 1;

/// Hard ceiling on one frame's payload size.  Every body below fits in well
/// under 256 bytes; the slack covers ERROR messages.  A length prefix above
/// this is rejected *before* buffering, so a hostile 4 GiB length cannot
/// balloon the connection's inbound buffer.
inline constexpr std::uint32_t kMaxFrameBytes = 4096;

enum class FrameType : std::uint8_t {
  kHello = 1,     ///< client → server: session open + device description
  kHelloAck = 2,  ///< server → client: admitted
  kReport = 3,    ///< client → server: battery/power state for one slot
  kSchedule = 4,  ///< server → client: the slot's transform decision
  kGrant = 5,     ///< server → client: the slot's chunk grant
  kBye = 6,       ///< client → server: orderly session end
  kError = 7,     ///< server → client: terminal error before close
};

const char* frame_type_name(FrameType type);

/// Session open.  Cluster fields bind the session to its virtual cluster:
/// the server barriers slot k of cluster c until all `cluster_size` members
/// have reported, which is what makes schedule bytes independent of socket
/// arrival order.  All members must agree on cluster_size.
struct Hello {
  std::uint64_t user_id = 0;
  std::uint64_t cluster_id = 0;
  std::uint32_t cluster_size = 1;
  /// Slots this session intends to play (drain bookkeeping; a session may
  /// still BYE early when its battery empties).
  std::uint32_t slots_total = 0;
  double battery_capacity_mwh = 13000.0;
  double bitrate_mbps = 3.0;
  std::uint8_t genre = 0;          ///< media::Genre, as its underlying value
  std::uint8_t giveup_percent = 0; ///< 0 = watches to the end regardless
};

struct HelloAck {
  std::uint64_t user_id = 0;
  /// Slot the cluster will schedule next (0 for a fresh cluster); lets a
  /// client joining a drained-and-reformed cluster resynchronize.
  std::uint32_t next_slot = 0;
};

/// Per-slot battery/power report.  `observed_delta` is the realized power
/// reduction measured while playing the *previous* slot transformed — the
/// Bayes observation of gamma_n (§V-D); has_delta = 0 when the previous
/// slot ran untransformed (no observation exists).
struct Report {
  std::uint32_t slot = 0;
  double battery_fraction = 1.0;
  double observed_delta = 0.0;
  std::uint8_t has_delta = 0;
  std::uint8_t watching = 1;  ///< 0 = giving up; the session will BYE next
  // --- v2: client streaming state for the joint ABR scheduler.  A v1
  // --- client reports neither; 0 throughput reads as "unknown" and keeps
  // --- the granted rung at the ladder floor.
  double buffer_s = 0.0;          ///< playout buffer level, seconds
  double throughput_mbps = 0.0;   ///< client's own throughput estimate
};

/// The scheduler's decision for one session's slot.
struct Schedule {
  std::uint32_t slot = 0;
  std::uint8_t transform = 0;      ///< x_n for this device
  std::uint8_t rung = 0;           ///< core::DegradationRung actually used
  double expected_gamma = 0.0;     ///< the posterior mean the solve used
  double objective = 0.0;          ///< cluster objective (13) achieved
  std::uint32_t selected_count = 0;
  std::uint32_t cluster_devices = 0;
  // --- v2: the granted bitrate-ladder rung from the joint ABR solve.  A
  // --- v1 server grants neither; bitrate_mbps 0 means "no grant, keep
  // --- your current rate" so old-server/new-client sessions stay valid.
  std::uint8_t bitrate_rung = 0;   ///< index into the ladder
  double bitrate_mbps = 0.0;       ///< the rung's bitrate (0 = ungoverned)
};

/// Chunk grant for the slot: what the client may fetch and at what
/// effective power scale (1 - gamma when transformed, 1 otherwise).
struct Grant {
  std::uint32_t slot = 0;
  std::uint32_t chunks = 0;
  double chunk_seconds = 0.0;
  double power_scale = 1.0;
};

struct Bye {
  std::uint8_t reason = 0;  ///< 0 = completed, 1 = gave up, 2 = battery dead
};

struct Error {
  std::uint8_t code = 0;  ///< common::StatusCode, as its underlying value
  std::string message;
};

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kHello;
  std::variant<Hello, HelloAck, Report, Schedule, Grant, Bye, Error> body;

  template <typename T>
  const T& as() const {
    return std::get<T>(body);
  }
};

/// Encodes a frame into its full wire form: length prefix + sealed payload.
std::vector<std::uint8_t> encode(const Frame& frame);

/// Appends the frame's wire form to `out` without intermediate buffers —
/// the serving hot path: a session's outbound vector accumulates
/// SCHEDULE+GRANT back to back and both leave in one write(2).
void encode_into(const Frame& frame, std::vector<std::uint8_t>& out);

/// Convenience constructors (fill Frame::type from the body type).
Frame make_frame(Hello body);
Frame make_frame(HelloAck body);
Frame make_frame(Report body);
Frame make_frame(Schedule body);
Frame make_frame(Grant body);
Frame make_frame(Bye body);
Frame make_frame(Error body);

/// Decodes one *payload* (the bytes after a length prefix).  Rejects bad
/// checksums (kDataLoss), short bodies (kDataLoss), unknown magic/version/
/// type and trailing garbage (kInvalidArgument).
common::StatusOr<Frame> decode_payload(std::vector<std::uint8_t> payload);

/// Span form: decodes a payload in place (no copy, no mutation) — what
/// FrameDecoder uses to parse frames directly out of its receive buffer.
common::StatusOr<Frame> decode_payload(const std::uint8_t* data,
                                       std::size_t size);

/// Incremental frame decoder over a byte stream with partial-I/O handling:
/// feed() whatever the socket produced, then drain next() until it reports
/// kNeedMore.  A non-ok status is terminal for the stream (the server drops
/// the connection); the decoder does not resynchronize mid-stream.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::uint32_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw bytes from the transport.
  void feed(const std::uint8_t* data, std::size_t count);

  struct Result {
    enum class Kind { kFrame, kNeedMore, kError };
    Kind kind = Kind::kNeedMore;
    Frame frame;            ///< valid when kind == kFrame
    common::Status status;  ///< non-ok when kind == kError
  };

  /// Extracts the next complete frame, if any.
  Result next();

  /// Bytes buffered but not yet consumed by a complete frame.
  std::size_t buffered() const { return buffer_.size() - consumed_; }

  /// Returns the decoder to its as-new state, keeping buffer capacity —
  /// pooled connections reuse one decoder across sessions.
  void reset() {
    buffer_.clear();
    consumed_ = 0;
  }

  /// Adjusts the frame-size ceiling (pooled connections are constructed
  /// once with the default and re-limited per daemon config on acquire).
  void set_limit(std::uint32_t max_frame_bytes) {
    max_frame_bytes_ = max_frame_bytes;
  }

  /// Moves out the unconsumed suffix (a partial or pipelined next frame)
  /// and resets the decoder — the dispatcher hands these bytes to the
  /// worker reactor along with the socket.
  std::vector<std::uint8_t> take_unconsumed() {
    std::vector<std::uint8_t> out(
        buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_),
        buffer_.end());
    reset();
    return out;
  }

 private:
  std::uint32_t max_frame_bytes_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< prefix of buffer_ already decoded
};

}  // namespace lpvs::server::protocol

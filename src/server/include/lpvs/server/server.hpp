// EdgeServerDaemon: the networked serving front end.
//
// A single-threaded epoll (poll-fallback) event loop that hosts the LPVS
// slot cadence over real sockets — the paper's §V edge-server deployment
// with actual bytes on the wire instead of in-process calls.  Mobile
// clients connect over TCP, speak lpvs-wire/session v1 (protocol.hpp),
// report battery/power state every slot, and receive the scheduler's
// per-slot transform decision plus a chunk grant.
//
// Per-connection session state machine:
//
//          accept
//            │
//      ┌─────▼──────┐  HELLO ok   ┌─────────┐  BYE / give-up  ┌─────────┐
//      │ AWAIT_HELLO├────────────▶│ ACTIVE  ├────────────────▶│ CLOSING │
//      └─────┬──────┘             └────┬────┘                 └────┬────┘
//            │ bad HELLO / reject      │ decode error /            │ flushed
//            ▼                         │ backpressure overflow     ▼
//        ERROR + close ◀───────────────┘                         close
//
// Slot cadence (the determinism core): sessions belong to virtual clusters
// (HELLO declares cluster id + size).  Slot k of a cluster is scheduled
// only when *every* member's REPORT for k has arrived — a barrier — and
// the slot problem is assembled in user-id order, so the schedule each
// session receives is a pure function of (seed, cluster composition,
// reported state).  Socket timing changes *when* bytes move, never *which*
// bytes.  The serving integration test runs the same fleet at different
// client thread counts and asserts bit-identical per-session payloads.
//
// Overload behavior:
//   - Admission control: past max_sessions, a HELLO is answered with
//     ERROR(kResourceExhausted) and the connection closed.
//   - Backpressure: each session's outbound queue is bounded; a client
//     that stops reading past max_outbound_bytes is closed, not buffered.
//   - Deadline shedding: `deadline` rides into the scheduler's existing
//     degradation ladder deterministically (node-budget truncation).  With
//     shed_ready_depth > 0 the daemon additionally *forces* lower ladder
//     rungs when more than that many cluster barriers complete in one poll
//     batch — bounded latency at the cost of the bit-determinism contract,
//     so it is off by default and the tests for it are behavioral.
//
// Shutdown: drain() stops accepting and lets live sessions finish their
// declared slots (BYE → flush → close); after the timeout any stragglers
// are force-closed.  stop() is immediate.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "lpvs/core/run_context.hpp"
#include "lpvs/core/scheduler.hpp"
#include "lpvs/server/event_loop.hpp"
#include "lpvs/server/protocol.hpp"

namespace lpvs::server {

struct ServerConfig {
  /// TCP port on 127.0.0.1; 0 = pick an ephemeral port (see port()).
  std::uint16_t port = 0;
  int backlog = 128;
  EventLoop::Backend backend = EventLoop::Backend::kAuto;

  /// Admission cap: concurrent sessions beyond this are rejected at HELLO.
  std::uint32_t max_sessions = 1024;
  /// Sanity cap on a HELLO's declared cluster size.
  std::uint32_t max_cluster_size = 512;
  /// Backpressure bound on one session's outbound queue, bytes.
  std::size_t max_outbound_bytes = 256 * 1024;
  std::uint32_t max_frame_bytes = protocol::kMaxFrameBytes;

  /// Slot-problem knobs shared by every cluster (one VC per cluster, as in
  /// emu::ClusterParams; kept inline here so the daemon has no emu dep).
  double compute_capacity = 45.0;
  double storage_capacity_mb = 32768.0;
  double lambda = 2000.0;
  int chunks_per_slot = 3;
  double chunk_seconds = 100.0;
  /// Fraction of the full charge a user budgets for one viewing session
  /// (same convention as the emulator / federation).
  double effective_capacity_scale = 0.25;
  /// Seeds the derived per-(user, slot) content streams.
  std::uint64_t seed = 1;
  bool warm_start = true;

  /// Deterministic per-slot deadline: budget_ms converts to a B&B node
  /// budget (never a wall-clock race), walking the degradation ladder when
  /// exceeded.  Disabled by default.
  core::SlotDeadline deadline{};
  /// Adaptive shedding threshold (ready cluster barriers per poll batch);
  /// 0 = off.  Enabling sacrifices payload bit-determinism under load.
  std::uint32_t shed_ready_depth = 0;

  /// Event-loop wakeup granularity for drain/stop checks, milliseconds.
  int poll_interval_ms = 50;
};

/// Monotonic counters mirrored into the obs registry (when attached).
struct ServerStats {
  long accepted = 0;
  long active = 0;
  long admission_rejects = 0;
  long decode_errors = 0;
  long protocol_errors = 0;
  long backpressure_closes = 0;
  long frames_rx = 0;
  long frames_tx = 0;
  long slots_scheduled = 0;
  long sessions_completed = 0;  ///< orderly BYE + flush + close
  long forced_closes = 0;       ///< cut by stop() or a drain timeout
  long shed_slots = 0;          ///< slots pushed down the ladder by overload
};

class EdgeServerDaemon {
 public:
  /// `scheduler` and everything `context` points at (anxiety model,
  /// registry, trace) must outlive the daemon.  The context's solve-cache /
  /// fault fields are ignored: caches are per-cluster inside the daemon,
  /// and fault injection belongs to the transport tests, not the daemon.
  EdgeServerDaemon(ServerConfig config, const core::Scheduler& scheduler,
                   core::RunContext context);
  ~EdgeServerDaemon();
  EdgeServerDaemon(const EdgeServerDaemon&) = delete;
  EdgeServerDaemon& operator=(const EdgeServerDaemon&) = delete;

  /// Binds 127.0.0.1, starts the loop thread.  kUnavailable when the port
  /// cannot be bound.
  common::Status start();

  /// The bound port (valid after start(); resolves port = 0 requests).
  std::uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Graceful drain: stop accepting, let live sessions finish, then stop
  /// the loop.  Ok when every session ended orderly inside the timeout;
  /// kDeadlineExceeded when stragglers had to be force-closed.
  common::Status drain(int timeout_ms = 30000);

  /// Immediate shutdown (force-closes everything still open).
  void stop();

  ServerStats stats() const;

 private:
  struct Connection;
  struct Cluster;
  class Impl;
  std::unique_ptr<Impl> impl_;

  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
};

}  // namespace lpvs::server

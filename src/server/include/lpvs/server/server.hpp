// EdgeServerDaemon: the networked serving front end.
//
// A multi-reactor epoll (poll-fallback) server that hosts the LPVS slot
// cadence over real sockets — the paper's §V edge-server deployment with
// actual bytes on the wire instead of in-process calls.  Mobile clients
// connect over TCP, speak lpvs-wire/session v1 (protocol.hpp), report
// battery/power state every slot, and receive the scheduler's per-slot
// transform decision plus a chunk grant.
//
// Threading model (docs/server.md has the full picture):
//
//   dispatcher thread                    worker reactors (listener.workers)
//   ┌───────────────────┐   SPSC ring    ┌──────────────────────────────┐
//   │ accept()          │  + wake pipe   │ epoll loop, owns:            │
//   │ read first frame  ├───────────────▶│   connections of its shard   │
//   │ admission control │  (fd, HELLO,   │   clusters (barrier, cache)  │
//   │ route by cluster  │   leftover)    │   slot-problem scratch       │
//   └───────────────────┘                └──────────────────────────────┘
//
// Connections are sharded by cluster id (cluster_id % workers), so every
// per-cluster REPORT barrier, SolveCache, and problem assembly stays
// thread-local: no locks on the serving path, and the schedule bytes a
// session receives are bit-identical at any worker count.
//
// Per-connection session state machine (unchanged from the single-reactor
// daemon):
//
//          accept
//            │
//      ┌─────▼──────┐  HELLO ok   ┌─────────┐  BYE / give-up  ┌─────────┐
//      │ AWAIT_HELLO├────────────▶│ ACTIVE  ├────────────────▶│ CLOSING │
//      └─────┬──────┘             └────┬────┘                 └────┬────┘
//            │ bad HELLO / reject      │ decode error /            │ flushed
//            ▼                         │ backpressure overflow     ▼
//        ERROR + close ◀───────────────┘                         close
//
// Slot cadence (the determinism core): sessions belong to virtual clusters
// (HELLO declares cluster id + size).  Slot k of a cluster is scheduled
// only when *every* member's REPORT for k has arrived — a barrier — and
// the slot problem is assembled in user-id order, so the schedule each
// session receives is a pure function of (seed, cluster composition,
// reported state).  Socket timing changes *when* bytes move, never *which*
// bytes.  The multi-worker test runs the same fleet at 1/2/8 workers and
// 2/8 client threads and asserts bit-identical per-session payloads.
//
// Overload behavior:
//   - Admission control: past admission.max_sessions, a HELLO is answered
//     with ERROR(kResourceExhausted) and the connection closed.
//   - Backpressure: each session's outbound queue is bounded; a client
//     that stops reading past max_outbound_bytes is closed, not buffered.
//     The dispatcher→worker rings are bounded too: a full ring rejects the
//     session instead of queueing without bound.
//   - Deadline shedding: `deadline` rides into the scheduler's existing
//     degradation ladder deterministically (node-budget truncation).  With
//     shed_ready_depth > 0 a worker additionally *forces* lower ladder
//     rungs when more than that many cluster barriers complete in one
//     batch — bounded latency at the cost of the bit-determinism contract,
//     so it is off by default and the tests for it are behavioral.
//
// Shutdown: drain() stops accepting and lets live sessions finish their
// declared slots (BYE → flush → close); after the timeout any stragglers
// are force-closed.  stop() is immediate.  Both are event-driven — a wake
// pipe per loop — so an idle daemon sleeps in epoll_wait indefinitely and
// drain completes the moment the last session does.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "lpvs/core/run_context.hpp"
#include "lpvs/core/scheduler.hpp"
#include "lpvs/obs/metrics.hpp"
#include "lpvs/server/config.hpp"

namespace lpvs::server {

/// A point-in-time view of the daemon's counters, produced from the obs
/// MetricsRegistry — the single source of truth.  Workers count into
/// thread-local blocks; stats() folds them into the registry and reads the
/// typed snapshot back into this struct via named lookups, so the registry
/// a caller attaches via RunContext and the struct returned here can never
/// disagree.
struct ServerStats {
  long accepted = 0;
  long active = 0;
  long admission_rejects = 0;
  long decode_errors = 0;
  long protocol_errors = 0;
  long backpressure_closes = 0;
  long frames_rx = 0;
  long frames_tx = 0;
  long slots_scheduled = 0;
  long sessions_completed = 0;  ///< orderly BYE + flush + close
  long forced_closes = 0;       ///< cut by stop() or a drain timeout
  long shed_slots = 0;          ///< slots pushed down the ladder by overload

  // Data-path syscall budget (event_loop.hpp IoStats, summed over the
  // dispatcher and every worker).
  long io_syscalls = 0;        ///< read + writev + io_uring_enter
  long io_read_syscalls = 0;   ///< syscalls that moved inbound bytes
  long io_write_syscalls = 0;  ///< syscalls that moved outbound bytes
  long io_uring_enters = 0;    ///< batch submissions on the uring backend
  long io_submissions = 0;     ///< ops queued through the submission API
  long io_flushes = 0;         ///< non-empty submission batches
  long backend_fallbacks = 0;  ///< loops degraded from their requested backend

  /// Reads the lpvs_server_* samples out of a typed registry snapshot.
  /// Fields whose metric is absent stay zero.
  static ServerStats from_snapshot(const obs::MetricsSnapshot& snapshot);
};

class EdgeServerDaemon {
 public:
  /// `scheduler` and everything `context` points at (anxiety model,
  /// registry, trace) must outlive the daemon.  The scheduler's schedule()
  /// must be const-thread-safe (core::LpvsScheduler is; the batch layer
  /// already relies on it).  The context's solve-cache / fault fields are
  /// ignored: caches are per-cluster inside the workers, and fault
  /// injection belongs to the transport tests, not the daemon.
  EdgeServerDaemon(ServerConfig config, const core::Scheduler& scheduler,
                   core::RunContext context);
  ~EdgeServerDaemon();
  EdgeServerDaemon(const EdgeServerDaemon&) = delete;
  EdgeServerDaemon& operator=(const EdgeServerDaemon&) = delete;

  /// Binds 127.0.0.1, starts the dispatcher and worker threads.
  /// kUnavailable when the port cannot be bound.
  common::Status start();

  /// The bound port (valid after start(); resolves port = 0 requests).
  std::uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Graceful drain: stop accepting, let live sessions finish, then stop
  /// the loops.  Ok when every session ended orderly inside the timeout;
  /// kDeadlineExceeded when stragglers had to be force-closed.
  common::Status drain(int timeout_ms = 30000);

  /// Immediate shutdown (force-closes everything still open).
  void stop();

  ServerStats stats() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;

  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
};

}  // namespace lpvs::server

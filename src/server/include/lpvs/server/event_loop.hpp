// Readiness event loop for the edge-server daemon.
//
// A thin, allocation-light abstraction over epoll (level-triggered) with a
// portable poll(2) fallback.  The daemon is single-threaded — one loop owns
// every connection — so the interface is deliberately minimal: register an
// fd with its interest set, adjust the interest set as outbound buffers
// fill and drain, wait.  Both backends are built on Linux and the backend
// is runtime-selectable, so the test suite exercises the poll path on the
// same machine that runs epoll in production.
#pragma once

#include <cstdint>
#include <vector>

#include "lpvs/common/status.hpp"

namespace lpvs::server {

/// One fd's readiness, as reported by wait().
struct LoopEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// Error or hangup: the connection is dead regardless of interest set.
  bool broken = false;
};

class EventLoop {
 public:
  enum class Backend {
    kAuto,   ///< epoll where available, poll otherwise
    kEpoll,  ///< fails to construct off Linux
    kPoll,
  };

  explicit EventLoop(Backend backend = Backend::kAuto);
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// The backend actually in use (kAuto resolved).
  Backend backend() const { return backend_; }

  common::Status add(int fd, bool want_read, bool want_write);
  common::Status modify(int fd, bool want_read, bool want_write);
  common::Status remove(int fd);

  /// Blocks up to timeout_ms (-1 = indefinitely) and appends ready fds to
  /// `out` (cleared first).  Returns the number of events, 0 on timeout.
  common::StatusOr<int> wait(int timeout_ms, std::vector<LoopEvent>& out);

  std::size_t watched() const { return watched_; }

 private:
  struct PollEntry {
    int fd;
    short events;
  };

  Backend backend_;
  int epoll_fd_ = -1;            // epoll backend
  std::vector<PollEntry> poll_;  // poll backend: registered interest sets
  std::size_t watched_ = 0;
};

}  // namespace lpvs::server

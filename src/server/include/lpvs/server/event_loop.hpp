// Readiness event loop + batched submission queue for the edge daemon.
//
// Two layers, one object per reactor thread:
//
//   Readiness  — a thin, allocation-light abstraction over epoll
//     (level-triggered) with a portable poll(2) fallback: register an fd
//     with its interest set, adjust it as outbound buffers fill and drain,
//     wait.
//   Submission — a submission-queue-style batch API (submit_read /
//     submit_writev / flush) for the data-path syscalls themselves.  The
//     worker queues every read and every member's SCHEDULE+GRANT burst for
//     a wakeup, then flushes once.  On the io_uring backend the whole
//     batch becomes SQEs completed by a single io_uring_enter(2); on
//     epoll/poll each op costs one read(2)/writev(2) — per-fd iovec
//     gathering still collapses multi-frame bursts into one call, so the
//     coalescing win is layered: fewer write calls on every backend, fewer
//     enter calls on uring.
//
// Backend selection is runtime: kUring probes the kernel at construction
// (a real SQE round trip, not just io_uring_setup) and falls back cleanly
// to epoll when the kernel or a seccomp sandbox lacks it — fell_back()
// reports the degradation so the daemon can count it.  kUring keeps epoll
// for *readiness* (wait() is already one syscall per wakeup; the batching
// target is the per-frame data syscalls) and uses the ring purely as the
// batched data engine.  kAuto resolves to epoll unless the LPVS_IO_BACKEND
// environment variable (uring|epoll|poll) overrides it.
//
// Every flush updates IoStats — the per-backend syscall ledger the daemon
// folds into lpvs_io_*_total — so the syscall budget is observable, not
// inferred.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include <sys/uio.h>

#include "lpvs/common/io.hpp"
#include "lpvs/common/status.hpp"

namespace lpvs::server {

namespace iouring {
class Ring;
struct Op;
}

/// One fd's readiness, as reported by wait().
struct LoopEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// Error or hangup: the connection is dead regardless of interest set.
  bool broken = false;
};

/// Result of one submitted op, reported by flush() in submission order.
struct IoOutcome {
  std::uint64_t tag = 0;  ///< caller's tag, echoed back
  int fd = -1;
  bool is_write = false;
  common::io::IoResult result;
};

/// Data-path syscall ledger for one loop (single-threaded owner; plain
/// counters).  "Direct" syscalls come from the epoll/poll execution path;
/// uring batches cost enter syscalls instead.  The *_path_syscalls fields
/// attribute every data syscall to the direction it served (an enter for a
/// write batch counts as one write-path syscall), so write-syscall budgets
/// compare across backends.
struct IoStats {
  long read_syscalls = 0;        ///< direct read(2) calls
  long write_syscalls = 0;       ///< direct writev(2) calls
  long enter_syscalls = 0;       ///< io_uring_enter(2) calls
  long read_path_syscalls = 0;   ///< syscalls that moved inbound bytes
  long write_path_syscalls = 0;  ///< syscalls that moved outbound bytes
  long submissions = 0;          ///< ops queued through submit_*
  long flushes = 0;              ///< non-empty flush() batches
  long total_syscalls() const {
    return read_syscalls + write_syscalls + enter_syscalls;
  }
};

class EventLoop {
 public:
  enum class Backend {
    kAuto,   ///< LPVS_IO_BACKEND env override, else epoll, else poll
    kEpoll,  ///< falls back to kPoll off Linux
    kPoll,
    kUring,  ///< falls back to kEpoll when the runtime probe fails
  };

  explicit EventLoop(Backend backend = Backend::kAuto);
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// The backend actually in use (kAuto resolved, fallbacks applied).
  Backend backend() const { return backend_; }

  /// True when the requested backend was unavailable and the loop degraded
  /// (kUring without kernel support -> kEpoll; kEpoll without epoll ->
  /// kPoll).  Feeds lpvs_io_backend_fallback_total.
  bool fell_back() const { return fell_back_; }

  /// Cached process-wide probe: does this kernel/sandbox support the ops
  /// the uring backend needs?  (One real SQE round trip on first call.)
  static bool uring_supported();

  /// Test hook: forces uring_supported() to report false process-wide so
  /// the fallback path is testable on uring-capable kernels.
  static void force_uring_unsupported_for_testing(bool unsupported);

  common::Status add(int fd, bool want_read, bool want_write);
  common::Status modify(int fd, bool want_read, bool want_write);
  common::Status remove(int fd);

  /// Blocks up to timeout_ms (-1 = indefinitely) and appends ready fds to
  /// `out` (cleared first).  Returns the number of events, 0 on timeout.
  common::StatusOr<int> wait(int timeout_ms, std::vector<LoopEvent>& out);

  std::size_t watched() const { return watched_; }

  // --- Batched submission API -------------------------------------------
  //
  // Queue ops, then flush() executes the whole batch: one io_uring_enter
  // on uring, one read/writev per op on epoll/poll.  Ops never block (the
  // fds are non-blocking / MSG_DONTWAIT); would-block surfaces per op in
  // its IoOutcome.  Buffers and iovec arrays must stay valid until flush()
  // returns; iovcnt is capped at kMaxIov per op (the iovecs are copied
  // inline at submit time, so the caller's array may be transient).

  static constexpr int kMaxIov = 4;

  void submit_read(int fd, void* buf, std::size_t len, std::uint64_t tag);
  void submit_writev(int fd, const struct iovec* iov, int iovcnt,
                     std::uint64_t tag);

  /// Executes every queued op, appending one IoOutcome per op to `out` in
  /// submission order (out is NOT cleared).  Returns the batch occupancy
  /// (ops executed).
  std::size_t flush(std::vector<IoOutcome>& out);

  std::size_t pending_submissions() const { return pending_.size(); }
  const IoStats& io_stats() const { return stats_; }

 private:
  struct PollEntry {
    int fd;
    short events;
  };
  struct PendingOp {
    int fd;
    bool is_write;
    void* buf;                       // read
    std::size_t len;                 // read
    struct iovec iov[kMaxIov];       // write (copied at submit time)
    int iovcnt;
    std::uint64_t tag;
  };

  bool uses_epoll() const;

  Backend backend_;
  bool fell_back_ = false;
  int epoll_fd_ = -1;            // epoll readiness (also the uring backend)
  std::vector<PollEntry> poll_;  // poll backend: registered interest sets
  std::size_t watched_ = 0;

  std::unique_ptr<iouring::Ring> ring_;  // kUring only
  std::vector<PendingOp> pending_;
  // Flush scratch for the uring path (capacity retained; the hot path must
  // not allocate at steady state).
  std::unique_ptr<std::vector<iouring::Op>> ring_ops_;
  std::vector<common::io::IoResult> ring_results_;
  IoStats stats_;
};

}  // namespace lpvs::server

// Serving configuration (API redesign): the monolithic ServerConfig split
// into composable sections, each owning one concern.
//
//   ListenerConfig   — where and how the daemon accepts: port, backlog,
//                      event-loop backend, and the worker-reactor count.
//   AdmissionConfig  — the protection envelope: session cap, cluster-size
//                      sanity bound, per-session outbound backpressure
//                      bound, frame-size ceiling.
//   SlotProblemConfig (core) — how slot problems are assembled, shared
//                      verbatim with the emulator / replay / federation so
//                      the daemon can no longer drift from them.
//
// ServerConfig composes the three plus the daemon-specific degradation
// knobs (deadline, shed depth), with fluent with_* builders mirroring
// core::RunContext.  There is deliberately no poll_interval_ms any more:
// the loops are fully event-driven (wake pipes), so an idle daemon makes
// zero wakeups and drain latency is bounded by session completion, not by
// a polling granularity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "lpvs/abr/ladder.hpp"
#include "lpvs/core/run_context.hpp"
#include "lpvs/core/slot_problem_config.hpp"
#include "lpvs/server/event_loop.hpp"
#include "lpvs/server/protocol.hpp"

namespace lpvs::server {

/// How a worker flushes coalesced outbound frames through the EventLoop
/// submission queue.  kBurst is the production default; the two finer
/// granularities exist as measurement baselines so the syscall budget in
/// BENCH_server.json compares like against like (the payload bytes are
/// identical in all three — only the write syscall count changes).
enum class FlushMode : std::uint8_t {
  /// One write syscall per frame (SCHEDULE and GRANT flushed separately).
  kPerFrame,
  /// One writev per member per slot (SCHEDULE+GRANT gathered, no
  /// cross-member coalescing) — the pre-batching behavior.
  kPerMember,
  /// Cross-member coalescing: every member's SCHEDULE+GRANT burst across
  /// all clusters ready in a wakeup batch flushes as one submission (one
  /// io_uring_enter on uring; one writev per member on epoll/poll).
  kBurst,
};

struct ListenerConfig {
  /// TCP port on 127.0.0.1; 0 = pick an ephemeral port (see port()).
  std::uint16_t port = 0;
  int backlog = 128;
  EventLoop::Backend backend = EventLoop::Backend::kAuto;
  /// Worker reactors.  Connections are sharded by cluster id, so every
  /// cluster's barrier, solve cache, and problem assembly stay thread-local
  /// and the payload bytes are identical at any worker count.
  std::uint32_t workers = 1;
  /// Outbound flush granularity (see FlushMode).
  FlushMode flush_mode = FlushMode::kBurst;

  ListenerConfig with_port(std::uint16_t v) const {
    ListenerConfig c = *this;
    c.port = v;
    return c;
  }
  ListenerConfig with_backlog(int v) const {
    ListenerConfig c = *this;
    c.backlog = v;
    return c;
  }
  ListenerConfig with_backend(EventLoop::Backend v) const {
    ListenerConfig c = *this;
    c.backend = v;
    return c;
  }
  ListenerConfig with_workers(std::uint32_t v) const {
    ListenerConfig c = *this;
    c.workers = v;
    return c;
  }
  ListenerConfig with_flush_mode(FlushMode v) const {
    ListenerConfig c = *this;
    c.flush_mode = v;
    return c;
  }
};

struct AdmissionConfig {
  /// Admission cap: concurrent sessions beyond this are rejected at HELLO.
  std::uint32_t max_sessions = 1024;
  /// Sanity cap on a HELLO's declared cluster size.
  std::uint32_t max_cluster_size = 512;
  /// Backpressure bound on one session's outbound queue, bytes.
  std::size_t max_outbound_bytes = 256 * 1024;
  std::uint32_t max_frame_bytes = protocol::kMaxFrameBytes;

  AdmissionConfig with_max_sessions(std::uint32_t v) const {
    AdmissionConfig c = *this;
    c.max_sessions = v;
    return c;
  }
  AdmissionConfig with_max_cluster_size(std::uint32_t v) const {
    AdmissionConfig c = *this;
    c.max_cluster_size = v;
    return c;
  }
  AdmissionConfig with_max_outbound_bytes(std::size_t v) const {
    AdmissionConfig c = *this;
    c.max_outbound_bytes = v;
    return c;
  }
  AdmissionConfig with_max_frame_bytes(std::uint32_t v) const {
    AdmissionConfig c = *this;
    c.max_frame_bytes = v;
    return c;
  }
};

/// Joint ABR × transform scheduling (src/abr).  When enabled the daemon
/// solves the joint slot ILP — bitrate rungs coupled to transform
/// decisions — and SCHEDULE frames carry the granted rung; when disabled
/// (the default) the daemon schedules transforms only and grants stay
/// ungoverned (bitrate_mbps 0), exactly the v1 behavior.
struct AbrConfig {
  bool enabled = false;
  abr::LadderModel::Config ladder{};
  /// Cluster-wide incremental receive-energy allowance per slot, mWh.
  double receive_budget_mwh = 1.0e18;
  double qoe_weight = 3000.0;
  double receive_energy_weight = 30.0;
  double qoe_floor = 0.0;
  double throughput_safety = 0.9;

  AbrConfig with_enabled(bool v) const {
    AbrConfig c = *this;
    c.enabled = v;
    return c;
  }
  AbrConfig with_ladder(abr::LadderModel::Config v) const {
    AbrConfig c = *this;
    c.ladder = std::move(v);
    return c;
  }
  AbrConfig with_receive_budget_mwh(double v) const {
    AbrConfig c = *this;
    c.receive_budget_mwh = v;
    return c;
  }
  AbrConfig with_qoe_weight(double v) const {
    AbrConfig c = *this;
    c.qoe_weight = v;
    return c;
  }
};

struct ServerConfig {
  ServerConfig() {
    // The serving slots are long (a few 100-second chunks) compared to the
    // emulator's 30x10s; the wire protocol prices fewer, bigger chunks.
    slot.chunks_per_slot = 3;
    slot.chunk_seconds = 100.0;
    slot.seed = 1;
  }

  ListenerConfig listener;
  AdmissionConfig admission;
  /// Slot-problem knobs shared with emulator / replay / federation — one
  /// type, one set of defaults, no inline duplicates.
  core::SlotProblemConfig slot;

  /// Deterministic per-slot deadline: budget_ms converts to a B&B node
  /// budget (never a wall-clock race), walking the degradation ladder when
  /// exceeded.  Disabled by default.
  core::SlotDeadline deadline{};
  /// Adaptive shedding threshold (ready cluster barriers per worker batch);
  /// 0 = off.  Enabling sacrifices payload bit-determinism under load.
  std::uint32_t shed_ready_depth = 0;
  /// Joint ABR × transform scheduling; off = transform-only (v1 behavior).
  AbrConfig abr{};

  ServerConfig with_listener(ListenerConfig v) const {
    ServerConfig c = *this;
    c.listener = v;
    return c;
  }
  ServerConfig with_admission(AdmissionConfig v) const {
    ServerConfig c = *this;
    c.admission = v;
    return c;
  }
  ServerConfig with_slot_problem(core::SlotProblemConfig v) const {
    ServerConfig c = *this;
    c.slot = v;
    return c;
  }
  ServerConfig with_deadline(core::SlotDeadline v) const {
    ServerConfig c = *this;
    c.deadline = v;
    return c;
  }
  ServerConfig with_shed_ready_depth(std::uint32_t v) const {
    ServerConfig c = *this;
    c.shed_ready_depth = v;
    return c;
  }
  ServerConfig with_abr(AbrConfig v) const {
    ServerConfig c = *this;
    c.abr = std::move(v);
    return c;
  }
  // Shorthands for the most-set leaves.
  ServerConfig with_port(std::uint16_t v) const {
    ServerConfig c = *this;
    c.listener.port = v;
    return c;
  }
  ServerConfig with_backend(EventLoop::Backend v) const {
    ServerConfig c = *this;
    c.listener.backend = v;
    return c;
  }
  ServerConfig with_workers(std::uint32_t v) const {
    ServerConfig c = *this;
    c.listener.workers = v;
    return c;
  }
  ServerConfig with_flush_mode(FlushMode v) const {
    ServerConfig c = *this;
    c.listener.flush_mode = v;
    return c;
  }
  ServerConfig with_seed(std::uint64_t v) const {
    ServerConfig c = *this;
    c.slot.seed = v;
    return c;
  }
};

}  // namespace lpvs::server

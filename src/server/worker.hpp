// Internal machinery of the multi-reactor EdgeServerDaemon: the worker
// reactor, the dispatcher→worker handoff record, the shared control block,
// and the thread-local counter slabs the metrics fold reads.
//
// This header is private to src/server — the public surface is server.hpp.
//
// Share-nothing layout: each Worker owns an event loop, the connections of
// its shard, the clusters those connections form (barrier state + solve
// cache), a connection pool, and slot-problem scratch buffers.  The only
// cross-thread traffic is the SPSC handoff ring (dispatcher → worker), the
// wake pipes, and a handful of shared atomics (session count, drain/stop
// flags).  Everything on the per-frame path is thread-local.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lpvs/abr/joint.hpp"
#include "lpvs/bayes/gamma_estimator.hpp"
#include "lpvs/bayes/nig_estimator.hpp"
#include "lpvs/common/pool.hpp"
#include "lpvs/common/ring.hpp"
#include "lpvs/common/rng.hpp"
#include "lpvs/core/run_context.hpp"
#include "lpvs/core/scheduler.hpp"
#include "lpvs/core/slot_problem.hpp"
#include "lpvs/display/display.hpp"
#include "lpvs/media/video.hpp"
#include "lpvs/obs/metrics.hpp"
#include "lpvs/server/config.hpp"
#include "lpvs/server/event_loop.hpp"
#include "lpvs/server/protocol.hpp"
#include "lpvs/solver/solve_cache.hpp"
#include "lpvs/transform/transform.hpp"

namespace lpvs::server::internal {

/// Same derived-stream construction as the emulator and federation: all
/// per-(entity, slot) randomness is a pure function of (seed, entity, slot),
/// so the daemon's slot problems are independent of socket interleaving —
/// and of which worker serves the cluster.
inline common::Rng derived_rng(std::uint64_t seed, std::uint64_t a,
                               std::uint64_t b) {
  return common::Rng(seed ^ (a + 1) * 0x9E3779B97F4A7C15ULL ^
                     (b + 1) * 0xC2B2AE3D27D4EB4FULL);
}

inline constexpr std::uint64_t kDeviceSalt = 0xD15CuLL;

/// Everything the daemon counts, indexed so the fold loop is table-driven.
enum CounterId : int {
  kAccepted = 0,
  kAdmissionRejects,
  kDecodeErrors,
  kProtocolErrors,
  kBackpressureCloses,
  kFramesRx,
  kFramesTx,
  kSlots,
  kCompleted,
  kForcedCloses,
  kShed,
  kHandoffs,
  kIoSyscalls,
  kIoReadSyscalls,
  kIoWriteSyscalls,
  kIoUringEnters,
  kIoSubmissions,
  kIoFlushes,
  kIoBackendFallback,
  kNumCounters,
};

struct CounterSpec {
  const char* name;
  const char* help;
};

/// Registry names for each CounterId, in enum order.
const std::array<CounterSpec, kNumCounters>& counter_specs();

/// One thread's counter slab.  The owning thread adds with relaxed atomics
/// (no contention: one writer); the fold reads the live values and tracks
/// what it already pushed into the registry in `published` (guarded by the
/// daemon's fold mutex).
struct LocalCounters {
  std::array<std::atomic<long>, kNumCounters> value{};
  std::array<long, kNumCounters> published{};

  void add(CounterId id, long delta = 1) {
    value[static_cast<std::size_t>(id)].fetch_add(delta,
                                                  std::memory_order_relaxed);
  }
};

/// What the dispatcher hands a worker: an admitted socket, its validated
/// HELLO, and whatever bytes followed the HELLO in the receive buffer.
struct ConnectionHandoff {
  int fd = -1;
  protocol::Hello hello{};
  std::vector<std::uint8_t> leftover;
};

/// Control state shared by the dispatcher and every worker.
struct SharedControl {
  /// Every accepted-and-not-yet-closed socket, wherever it currently lives
  /// (dispatcher pending list, handoff ring, or a worker).  The admission
  /// check and the active-sessions gauge read it.
  std::atomic<long> open_connections{0};
  std::atomic<bool> draining{false};
  std::atomic<bool> stopping{false};
  /// Set (release) by the dispatcher after its last possible ring push;
  /// workers acquire-load it before judging their ring empty.
  std::atomic<bool> dispatcher_done{false};
  std::atomic<bool> drain_forced{false};
  /// Written before `draining` is released; read after it is acquired.
  std::chrono::steady_clock::time_point drain_deadline{};
};

/// One worker reactor: an event-loop thread owning a shard of connections.
class Worker {
 public:
  /// `config`, `scheduler`, `control`, and whatever `context` points at must
  /// outlive the worker.  `schedule_ms` may be null (no timing).
  Worker(const ServerConfig& config, const core::Scheduler& scheduler,
         const core::RunContext& context, SharedControl& control,
         obs::Histogram* schedule_ms, obs::Histogram* batch_occupancy);
  ~Worker();
  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  common::Status start();
  void wake();
  void join();

  /// Dispatcher thread only (single producer).  False = ring full; the
  /// caller keeps the handoff and rejects the session.  wake() after.
  bool submit(ConnectionHandoff&& handoff) {
    return ring_.try_push(std::move(handoff));
  }

  /// After join(): closes any handoffs stranded in the ring by an immediate
  /// stop.  Returns how many sockets were cut.
  long close_abandoned();

  LocalCounters& counters() { return counters_; }

 private:
  struct Cluster;

  /// Pooled per-session state.  reset() restores as-new while keeping the
  /// decoder and outbound buffer capacity — steady state recycles these
  /// without touching the allocator.
  struct Connection {
    int fd = -1;
    protocol::FrameDecoder decoder;
    /// Receive scratch for the batched read path: the submission API needs
    /// every buffer in a wakeup's read batch alive until the batch flushes,
    /// so each connection carries its own (pooled, so no steady-state
    /// allocation) instead of sharing one stack buffer.
    std::array<std::uint8_t, 4096> rx_scratch;

    std::vector<std::uint8_t> outbound;
    std::size_t out_offset = 0;
    bool want_write = false;
    bool in_burst = false;  ///< enlisted in the current outbound burst
    bool close_after_flush = false;
    bool orderly = false;  ///< reached BYE; counted as completed on close

    protocol::Hello hello{};
    display::DisplaySpec spec{};
    bayes::GammaEstimator gamma{};
    bayes::NigGammaEstimator nig{};
    Cluster* cluster = nullptr;
    bool has_report = false;
    protocol::Report report{};

    void reset() {
      fd = -1;
      decoder.reset();
      outbound.clear();
      out_offset = 0;
      want_write = false;
      in_burst = false;
      close_after_flush = false;
      orderly = false;
      hello = {};
      gamma = {};
      nig = {};
      cluster = nullptr;
      has_report = false;
    }
  };

  struct Cluster {
    std::uint64_t id = 0;
    std::uint32_t expected_size = 0;
    std::uint32_t next_slot = 0;
    /// Membership in user-id order: the slot problem's device order, which
    /// is what keeps schedules independent of connection arrival order.
    std::map<std::uint64_t, Connection*> members;
    solver::SolveCache cache;
    bool ever_complete = false;
    bool queued = false;  ///< already in this batch's ready list
  };

  void run();
  void drain_wake_pipe();
  void adopt_pending();
  void adopt(ConnectionHandoff&& handoff);
  void service_reads();
  bool drain_decoder(Connection* conn);
  bool handle_frame(Connection* conn, const protocol::Frame& frame);
  bool handle_report(Connection* conn, const protocol::Report& report);
  void mark_ready_if_barrier_met(Cluster* cluster);
  void schedule_ready_clusters();
  int overload_rung(std::size_t batch, std::size_t index) const;
  void schedule_cluster(Cluster* cluster, int forced_rung);
  bool queue_frame(Connection* conn, const protocol::Frame& frame);
  void enlist(Connection* conn);
  void flush_burst();
  void finalize_drained(Connection* conn);
  bool flush(Connection* conn);
  void observe_occupancy(std::size_t ops);
  void sync_io_stats();
  bool fail_session(Connection* conn, common::StatusCode code,
                    std::string message);
  void close_connection(Connection* conn, bool orderly);
  void reap_cluster(Cluster* cluster);

  const ServerConfig& config_;
  const core::Scheduler& scheduler_;
  core::RunContext context_;
  SharedControl& control_;
  obs::Histogram* schedule_ms_ = nullptr;
  obs::Histogram* batch_occupancy_ = nullptr;
  LocalCounters counters_;

  common::SpscRing<ConnectionHandoff> ring_;
  int wake_pipe_[2] = {-1, -1};
  std::unique_ptr<EventLoop> loop_;
  std::thread thread_;

  common::ObjectPool<Connection> pool_;
  std::map<int, Connection*> connections_;  ///< fd → pooled session
  std::map<std::uint64_t, std::unique_ptr<Cluster>> clusters_;
  std::vector<Cluster*> ready_;

  // Batched-I/O state (capacity retained across wakeups).  Reads and
  // writes keep separate outcome scratch because a frame handled while
  // iterating read outcomes may fail_session -> flush_burst, which must
  // not clobber the read batch mid-iteration.
  std::vector<Connection*> burst_;        ///< enlisted for the next flush
  std::vector<Connection*> burst_round_;  ///< one flush round (swap scratch)
  std::vector<int> read_ready_;           ///< fds readable this wakeup
  std::vector<IoOutcome> read_outcomes_;
  std::vector<IoOutcome> write_outcomes_;
  IoStats io_seen_;       ///< loop stats already folded into the slab
  long io_total_seen_ = 0;

  media::PowerRateEstimator rate_estimator_;
  transform::ResourceModel resources_;

  // Slot-problem scratch, reused across every (cluster, slot): the inner
  // vectors keep their capacity, so steady-state assembly allocates nothing.
  core::SlotProblem problem_;
  std::vector<Connection*> order_;
  media::Video video_;

  // Joint ABR × transform path (config_.abr.enabled): the joint scratch
  // borrows problem_ as its base via swap, so both modes share the device
  // assembly above and its pooled capacity.
  abr::JointAbrScheduler joint_scheduler_;
  abr::JointSlotProblem joint_;
  abr::JointSchedule joint_result_;
};

}  // namespace lpvs::server::internal

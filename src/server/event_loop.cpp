#include "lpvs/server/event_loop.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#define LPVS_HAVE_EPOLL 1
#else
#define LPVS_HAVE_EPOLL 0
#endif

namespace lpvs::server {
namespace {

common::Status errno_status(const char* what, int err) {
  return common::Status::Internal(std::string(what) + ": " +
                                  std::strerror(err));
}

#if LPVS_HAVE_EPOLL
std::uint32_t epoll_mask(bool want_read, bool want_write) {
  std::uint32_t mask = 0;
  if (want_read) mask |= EPOLLIN;
  if (want_write) mask |= EPOLLOUT;
  return mask;
}
#endif

short poll_mask(bool want_read, bool want_write) {
  short mask = 0;
  if (want_read) mask |= POLLIN;
  if (want_write) mask |= POLLOUT;
  return mask;
}

}  // namespace

EventLoop::EventLoop(Backend backend) : backend_(backend) {
#if LPVS_HAVE_EPOLL
  if (backend_ == Backend::kAuto) backend_ = Backend::kEpoll;
  if (backend_ == Backend::kEpoll) {
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0) backend_ = Backend::kPoll;  // degraded, still correct
  }
#else
  backend_ = Backend::kPoll;
#endif
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

common::Status EventLoop::add(int fd, bool want_read, bool want_write) {
#if LPVS_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      return errno_status("epoll_ctl(ADD)", errno);
    }
    ++watched_;
    return common::Status::Ok();
  }
#endif
  for (const PollEntry& entry : poll_) {
    if (entry.fd == fd) {
      return common::Status::InvalidArgument("fd already registered");
    }
  }
  poll_.push_back(PollEntry{fd, poll_mask(want_read, want_write)});
  ++watched_;
  return common::Status::Ok();
}

common::Status EventLoop::modify(int fd, bool want_read, bool want_write) {
#if LPVS_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
      return errno_status("epoll_ctl(MOD)", errno);
    }
    return common::Status::Ok();
  }
#endif
  for (PollEntry& entry : poll_) {
    if (entry.fd == fd) {
      entry.events = poll_mask(want_read, want_write);
      return common::Status::Ok();
    }
  }
  return common::Status::NotFound("fd not registered");
}

common::Status EventLoop::remove(int fd) {
#if LPVS_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) < 0) {
      return errno_status("epoll_ctl(DEL)", errno);
    }
    --watched_;
    return common::Status::Ok();
  }
#endif
  for (std::size_t i = 0; i < poll_.size(); ++i) {
    if (poll_[i].fd == fd) {
      poll_[i] = poll_.back();
      poll_.pop_back();
      --watched_;
      return common::Status::Ok();
    }
  }
  return common::Status::NotFound("fd not registered");
}

common::StatusOr<int> EventLoop::wait(int timeout_ms,
                                      std::vector<LoopEvent>& out) {
  out.clear();
#if LPVS_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event events[64];
    int count;
    do {
      count = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    } while (count < 0 && errno == EINTR);
    if (count < 0) return errno_status("epoll_wait", errno);
    out.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      LoopEvent event;
      event.fd = events[i].data.fd;
      event.readable = (events[i].events & EPOLLIN) != 0;
      event.writable = (events[i].events & EPOLLOUT) != 0;
      event.broken = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(event);
    }
    return count;
  }
#endif
  std::vector<pollfd> fds;
  fds.reserve(poll_.size());
  for (const PollEntry& entry : poll_) {
    fds.push_back(pollfd{entry.fd, entry.events, 0});
  }
  int count;
  do {
    count = ::poll(fds.data(), fds.size(), timeout_ms);
  } while (count < 0 && errno == EINTR);
  if (count < 0) return errno_status("poll", errno);
  for (const pollfd& fd : fds) {
    if (fd.revents == 0) continue;
    LoopEvent event;
    event.fd = fd.fd;
    event.readable = (fd.revents & POLLIN) != 0;
    event.writable = (fd.revents & POLLOUT) != 0;
    event.broken = (fd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out.push_back(event);
  }
  return count;
}

}  // namespace lpvs::server

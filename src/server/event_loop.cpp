#include "lpvs/server/event_loop.hpp"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include <poll.h>
#include <unistd.h>

#include "io/uring.hpp"

#if defined(__linux__)
#include <sys/epoll.h>
#define LPVS_HAVE_EPOLL 1
#else
#define LPVS_HAVE_EPOLL 0
#endif

namespace lpvs::server {
namespace {

common::Status errno_status(const char* what, int err) {
  return common::Status::Internal(std::string(what) + ": " +
                                  std::strerror(err));
}

#if LPVS_HAVE_EPOLL
std::uint32_t epoll_mask(bool want_read, bool want_write) {
  std::uint32_t mask = 0;
  if (want_read) mask |= EPOLLIN;
  if (want_write) mask |= EPOLLOUT;
  return mask;
}
#endif

short poll_mask(bool want_read, bool want_write) {
  short mask = 0;
  if (want_read) mask |= POLLIN;
  if (want_write) mask |= POLLOUT;
  return mask;
}

// The worker's per-connection scratch is 4 KiB and clusters top out in the
// hundreds, so 256 SQEs covers a full ready-batch burst in one chunk for
// every realistic fleet; larger batches chunk transparently in the ring.
constexpr unsigned kRingEntries = 256;

std::atomic<bool> g_force_uring_unsupported{false};

EventLoop::Backend env_default_backend() {
  const char* value = std::getenv("LPVS_IO_BACKEND");
  if (value != nullptr) {
    if (std::strcmp(value, "uring") == 0) return EventLoop::Backend::kUring;
    if (std::strcmp(value, "poll") == 0) return EventLoop::Backend::kPoll;
    if (std::strcmp(value, "epoll") == 0) return EventLoop::Backend::kEpoll;
  }
  return EventLoop::Backend::kEpoll;
}

}  // namespace

bool EventLoop::uring_supported() {
  if (g_force_uring_unsupported.load(std::memory_order_relaxed)) return false;
  static const bool supported = iouring::Ring::probe();
  return supported;
}

void EventLoop::force_uring_unsupported_for_testing(bool unsupported) {
  g_force_uring_unsupported.store(unsupported, std::memory_order_relaxed);
}

EventLoop::EventLoop(Backend backend) : backend_(backend) {
  if (backend_ == Backend::kAuto) backend_ = env_default_backend();
  if (backend_ == Backend::kUring) {
    if (uring_supported()) ring_ = iouring::Ring::create(kRingEntries);
    if (ring_ == nullptr) {
      backend_ = Backend::kEpoll;
      fell_back_ = true;
    }
  }
#if LPVS_HAVE_EPOLL
  if (uses_epoll()) {
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0) {  // degraded, still correct
      backend_ = Backend::kPoll;
      fell_back_ = true;
      ring_.reset();
    }
  }
#else
  if (backend_ != Backend::kPoll) {
    backend_ = Backend::kPoll;
    fell_back_ = true;
    ring_.reset();
  }
#endif
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool EventLoop::uses_epoll() const {
  return backend_ == Backend::kEpoll || backend_ == Backend::kUring;
}

common::Status EventLoop::add(int fd, bool want_read, bool want_write) {
#if LPVS_HAVE_EPOLL
  if (uses_epoll()) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      return errno_status("epoll_ctl(ADD)", errno);
    }
    ++watched_;
    return common::Status::Ok();
  }
#endif
  for (const PollEntry& entry : poll_) {
    if (entry.fd == fd) {
      return common::Status::InvalidArgument("fd already registered");
    }
  }
  poll_.push_back(PollEntry{fd, poll_mask(want_read, want_write)});
  ++watched_;
  return common::Status::Ok();
}

common::Status EventLoop::modify(int fd, bool want_read, bool want_write) {
#if LPVS_HAVE_EPOLL
  if (uses_epoll()) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
      return errno_status("epoll_ctl(MOD)", errno);
    }
    return common::Status::Ok();
  }
#endif
  for (PollEntry& entry : poll_) {
    if (entry.fd == fd) {
      entry.events = poll_mask(want_read, want_write);
      return common::Status::Ok();
    }
  }
  return common::Status::NotFound("fd not registered");
}

common::Status EventLoop::remove(int fd) {
#if LPVS_HAVE_EPOLL
  if (uses_epoll()) {
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) < 0) {
      return errno_status("epoll_ctl(DEL)", errno);
    }
    --watched_;
    return common::Status::Ok();
  }
#endif
  for (std::size_t i = 0; i < poll_.size(); ++i) {
    if (poll_[i].fd == fd) {
      poll_[i] = poll_.back();
      poll_.pop_back();
      --watched_;
      return common::Status::Ok();
    }
  }
  return common::Status::NotFound("fd not registered");
}

common::StatusOr<int> EventLoop::wait(int timeout_ms,
                                      std::vector<LoopEvent>& out) {
  out.clear();
#if LPVS_HAVE_EPOLL
  if (uses_epoll()) {
    epoll_event events[64];
    int count;
    do {
      count = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    } while (count < 0 && errno == EINTR);
    if (count < 0) return errno_status("epoll_wait", errno);
    out.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      LoopEvent event;
      event.fd = events[i].data.fd;
      event.readable = (events[i].events & EPOLLIN) != 0;
      event.writable = (events[i].events & EPOLLOUT) != 0;
      event.broken = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(event);
    }
    return count;
  }
#endif
  std::vector<pollfd> fds;
  fds.reserve(poll_.size());
  for (const PollEntry& entry : poll_) {
    fds.push_back(pollfd{entry.fd, entry.events, 0});
  }
  int count;
  do {
    count = ::poll(fds.data(), fds.size(), timeout_ms);
  } while (count < 0 && errno == EINTR);
  if (count < 0) return errno_status("poll", errno);
  for (const pollfd& fd : fds) {
    if (fd.revents == 0) continue;
    LoopEvent event;
    event.fd = fd.fd;
    event.readable = (fd.revents & POLLIN) != 0;
    event.writable = (fd.revents & POLLOUT) != 0;
    event.broken = (fd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out.push_back(event);
  }
  return count;
}

void EventLoop::submit_read(int fd, void* buf, std::size_t len,
                            std::uint64_t tag) {
  PendingOp op{};
  op.fd = fd;
  op.is_write = false;
  op.buf = buf;
  op.len = len;
  op.tag = tag;
  pending_.push_back(op);
  ++stats_.submissions;
}

void EventLoop::submit_writev(int fd, const struct iovec* iov, int iovcnt,
                              std::uint64_t tag) {
  PendingOp op{};
  op.fd = fd;
  op.is_write = true;
  op.iovcnt = iovcnt < kMaxIov ? iovcnt : kMaxIov;
  for (int i = 0; i < op.iovcnt; ++i) op.iov[i] = iov[i];
  op.tag = tag;
  pending_.push_back(op);
  ++stats_.submissions;
}

std::size_t EventLoop::flush(std::vector<IoOutcome>& out) {
  const std::size_t count = pending_.size();
  if (count == 0) return 0;
  ++stats_.flushes;
  const std::size_t base = out.size();
  out.resize(base + count);
  for (std::size_t i = 0; i < count; ++i) {
    out[base + i].tag = pending_[i].tag;
    out[base + i].fd = pending_[i].fd;
    out[base + i].is_write = pending_[i].is_write;
  }

  bool any_read = false;
  bool any_write = false;
  for (const PendingOp& op : pending_) {
    (op.is_write ? any_write : any_read) = true;
  }

  if (ring_ != nullptr) {
    if (ring_ops_ == nullptr) {
      ring_ops_ = std::make_unique<std::vector<iouring::Op>>();
    }
    std::vector<iouring::Op>& ops = *ring_ops_;
    ops.resize(count);
    ring_results_.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      const PendingOp& p = pending_[i];
      ops[i].fd = p.fd;
      ops[i].is_write = p.is_write;
      ops[i].buf = p.buf;
      ops[i].len = p.len;
      ops[i].iov = p.iov;
      ops[i].iovcnt = p.iovcnt;
    }
    const int enters =
        ring_->run_batch(ops.data(), ring_results_.data(), count);
    if (enters >= 0) {
      stats_.enter_syscalls += enters;
      // An enter call serves the whole batch; the worker submits
      // homogeneous batches, so direction attribution charges the enters
      // to each direction present (a mixed batch charges both).
      if (any_read) stats_.read_path_syscalls += enters;
      if (any_write) stats_.write_path_syscalls += enters;
      for (std::size_t i = 0; i < count; ++i) {
        out[base + i].result = ring_results_[i];
      }
      pending_.clear();
      return count;
    }
    // Fatal ring failure mid-run: degrade to the direct path permanently
    // and fall through to execute this batch with plain syscalls.
    ring_.reset();
    backend_ = Backend::kEpoll;
    fell_back_ = true;
  }

  for (std::size_t i = 0; i < count; ++i) {
    const PendingOp& p = pending_[i];
    if (p.is_write) {
      out[base + i].result = common::io::writev_retry(p.fd, p.iov, p.iovcnt);
      ++stats_.write_syscalls;
      ++stats_.write_path_syscalls;
    } else {
      out[base + i].result = common::io::read_retry(p.fd, p.buf, p.len);
      ++stats_.read_syscalls;
      ++stats_.read_path_syscalls;
    }
  }
  pending_.clear();
  return count;
}

}  // namespace lpvs::server

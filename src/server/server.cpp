#include "lpvs/server/server.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "lpvs/bayes/gamma_estimator.hpp"
#include "lpvs/bayes/nig_estimator.hpp"
#include "lpvs/common/io.hpp"
#include "lpvs/common/rng.hpp"
#include "lpvs/display/display.hpp"
#include "lpvs/media/video.hpp"
#include "lpvs/obs/metrics.hpp"
#include "lpvs/solver/solve_cache.hpp"
#include "lpvs/transform/transform.hpp"

namespace lpvs::server {
namespace {

namespace io = common::io;

/// Same derived-stream construction as the emulator and federation: all
/// per-(entity, slot) randomness is a pure function of (seed, entity, slot),
/// so the daemon's slot problems are independent of socket interleaving.
common::Rng derived_rng(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  return common::Rng(seed ^ (a + 1) * 0x9E3779B97F4A7C15ULL ^
                     (b + 1) * 0xC2B2AE3D27D4EB4FULL);
}

constexpr std::uint64_t kDeviceSalt = 0xD15CuLL;

}  // namespace

struct EdgeServerDaemon::Connection {
  enum class Phase { kAwaitHello, kActive, kClosing };

  int fd = -1;
  Phase phase = Phase::kAwaitHello;
  protocol::FrameDecoder decoder;

  std::vector<std::uint8_t> outbound;
  std::size_t out_offset = 0;
  bool want_write = false;
  bool close_after_flush = false;
  bool orderly = false;  ///< reached BYE; counted as completed on close

  // Session state (valid once phase >= kActive).
  protocol::Hello hello;
  display::DisplaySpec spec;
  bayes::GammaEstimator gamma;
  bayes::NigGammaEstimator nig;
  Cluster* cluster = nullptr;
  bool has_report = false;
  protocol::Report report;
  std::uint32_t slots_completed = 0;

  explicit Connection(std::uint32_t max_frame_bytes)
      : decoder(max_frame_bytes) {}
};

struct EdgeServerDaemon::Cluster {
  std::uint64_t id = 0;
  std::uint32_t expected_size = 0;
  std::uint32_t next_slot = 0;
  /// Membership in user-id order: the slot problem's device order, which is
  /// what keeps schedules independent of connection arrival order.
  std::map<std::uint64_t, Connection*> members;
  solver::SolveCache cache;
  bool ever_complete = false;
  bool queued = false;  ///< already in this batch's ready list
};

class EdgeServerDaemon::Impl {
 public:
  Impl(ServerConfig config, const core::Scheduler& scheduler,
       core::RunContext context)
      : config_(std::move(config)), scheduler_(scheduler), context_(context) {
    // The daemon manages its own per-cluster caches and runs no fault
    // injection of its own; scrub those capabilities off the base context.
    context_.solve_cache = nullptr;
    context_.faults = nullptr;
    if (obs::MetricsRegistry* registry = context_.metrics) {
      m_accepted_ = &registry->counter("lpvs_server_accepted_total",
                                       "connections accepted");
      m_rejects_ = &registry->counter("lpvs_server_admission_rejects_total",
                                      "sessions rejected at HELLO");
      m_decode_errors_ = &registry->counter("lpvs_server_decode_errors_total",
                                            "malformed frames dropped");
      m_backpressure_ = &registry->counter(
          "lpvs_server_backpressure_closes_total",
          "sessions closed for an over-limit outbound queue");
      m_frames_rx_ = &registry->counter("lpvs_server_frames_rx_total",
                                        "frames received");
      m_frames_tx_ = &registry->counter("lpvs_server_frames_tx_total",
                                        "frames sent");
      m_slots_ = &registry->counter("lpvs_server_slots_total",
                                    "cluster slots scheduled");
      m_completed_ = &registry->counter("lpvs_server_sessions_completed_total",
                                        "sessions ended with an orderly BYE");
      m_shed_ = &registry->counter(
          "lpvs_server_shed_total",
          "slots forced down the degradation ladder by overload");
      m_active_ = &registry->gauge("lpvs_server_active_sessions",
                                   "currently open sessions");
      m_schedule_ms_ = &registry->histogram(
          "lpvs_server_schedule_ms", obs::MetricsRegistry::time_buckets_ms(),
          "per-cluster slot scheduling wall time");
    }
  }

  ~Impl() { shutdown_fds(); }

  common::Status start(std::uint16_t& bound_port) {
    io::ignore_sigpipe();

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return common::Status::Unavailable("socket: " +
                                         std::string(std::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(config_.port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      return common::Status::Unavailable("bind: " +
                                         std::string(std::strerror(errno)));
    }
    if (::listen(listen_fd_, config_.backlog) < 0) {
      return common::Status::Unavailable("listen: " +
                                         std::string(std::strerror(errno)));
    }
    socklen_t addr_len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      &addr_len) < 0) {
      return common::Status::Internal("getsockname failed");
    }
    bound_port = ntohs(addr.sin_port);

    common::Status status = io::set_nonblocking(listen_fd_);
    if (!status.ok()) return status;

    if (::pipe(wake_pipe_) < 0) {
      return common::Status::Internal("pipe: " +
                                      std::string(std::strerror(errno)));
    }
    (void)io::set_nonblocking(wake_pipe_[0]);
    (void)io::set_nonblocking(wake_pipe_[1]);

    loop_ = std::make_unique<EventLoop>(config_.backend);
    status = loop_->add(listen_fd_, /*want_read=*/true, /*want_write=*/false);
    if (!status.ok()) return status;
    status = loop_->add(wake_pipe_[0], true, false);
    if (!status.ok()) return status;

    thread_ = std::thread([this] { run(); });
    return common::Status::Ok();
  }

  void request_drain(int timeout_ms) {
    drain_deadline_ = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(timeout_ms);
    draining_.store(true, std::memory_order_release);
    wake();
  }

  void request_stop() {
    stopping_.store(true, std::memory_order_release);
    wake();
  }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

  bool drain_forced() const {
    return drain_forced_.load(std::memory_order_acquire);
  }

  ServerStats stats() const {
    ServerStats out;
    out.accepted = accepted_.load();
    out.active = active_.load();
    out.admission_rejects = admission_rejects_.load();
    out.decode_errors = decode_errors_.load();
    out.protocol_errors = protocol_errors_.load();
    out.backpressure_closes = backpressure_closes_.load();
    out.frames_rx = frames_rx_.load();
    out.frames_tx = frames_tx_.load();
    out.slots_scheduled = slots_scheduled_.load();
    out.sessions_completed = sessions_completed_.load();
    out.forced_closes = forced_closes_.load();
    out.shed_slots = shed_slots_.load();
    return out;
  }

 private:
  // ---- Event loop -------------------------------------------------------

  void run() {
    std::vector<LoopEvent> events;
    bool accepting = true;
    while (true) {
      const bool draining = draining_.load(std::memory_order_acquire);
      if (stopping_.load(std::memory_order_acquire)) break;
      if (draining && accepting) {
        (void)loop_->remove(listen_fd_);
        io::close_fd(listen_fd_);
        listen_fd_ = -1;
        accepting = false;
      }
      if (draining && connections_.empty()) break;
      if (draining && std::chrono::steady_clock::now() >= drain_deadline_) {
        drain_forced_.store(true, std::memory_order_release);
        break;
      }

      common::StatusOr<int> waited =
          loop_->wait(config_.poll_interval_ms, events);
      if (!waited.ok()) break;  // loop fd gone; nothing recoverable

      for (const LoopEvent& event : events) {
        if (event.fd == wake_pipe_[0]) {
          drain_wake_pipe();
          continue;
        }
        if (event.fd == listen_fd_ && accepting) {
          accept_ready();
          continue;
        }
        auto it = connections_.find(event.fd);
        if (it == connections_.end()) continue;  // closed earlier this batch
        Connection* conn = it->second.get();
        if (event.broken) {
          close_connection(conn, /*orderly=*/false);
          continue;
        }
        if (event.readable) {
          handle_readable(conn);
          if (connections_.find(event.fd) == connections_.end()) continue;
        }
        if (event.writable) flush(conn);
      }

      schedule_ready_clusters();
    }

    // Loop exit: anything still open is cut short.
    const long leftover = static_cast<long>(connections_.size());
    if (leftover > 0) forced_closes_.fetch_add(leftover);
    while (!connections_.empty()) {
      close_connection(connections_.begin()->second.get(), /*orderly=*/false,
                       /*count_forced=*/false);
    }
  }

  void wake() {
    if (wake_pipe_[1] >= 0) {
      const std::uint8_t byte = 1;
      (void)io::write_retry(wake_pipe_[1], &byte, 1);
    }
  }

  void drain_wake_pipe() {
    std::uint8_t sink[64];
    while (io::read_retry(wake_pipe_[0], sink, sizeof(sink)).ok()) {
    }
  }

  void accept_ready() {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN or transient accept failure: try next wakeup
      }
      if (!io::set_nonblocking(fd).ok()) {
        io::close_fd(fd);
        continue;
      }
      (void)io::set_tcp_nodelay(fd);
      auto conn = std::make_unique<Connection>(config_.max_frame_bytes);
      conn->fd = fd;
      if (!loop_->add(fd, true, false).ok()) {
        io::close_fd(fd);
        continue;
      }
      connections_[fd] = std::move(conn);
      accepted_.fetch_add(1);
      active_.store(static_cast<long>(connections_.size()));
      if (m_accepted_ != nullptr) m_accepted_->add();
      if (m_active_ != nullptr) {
        m_active_->set(static_cast<double>(connections_.size()));
      }
    }
  }

  void handle_readable(Connection* conn) {
    std::uint8_t buffer[4096];
    bool hung_up = false;
    for (;;) {
      const io::IoResult r = io::read_retry(conn->fd, buffer, sizeof(buffer));
      if (r.kind == io::IoResult::Kind::kOk) {
        conn->decoder.feed(buffer, r.count);
        if (r.count < sizeof(buffer)) break;  // drained the socket
        continue;
      }
      if (r.kind == io::IoResult::Kind::kWouldBlock) break;
      // EOF or error.  A peer may BYE and hang up in one burst, so the
      // buffered frames are decoded below *before* the close — otherwise an
      // orderly goodbye would race its own EOF and count as a cut session.
      hung_up = true;
      break;
    }

    for (;;) {
      protocol::FrameDecoder::Result result = conn->decoder.next();
      if (result.kind == protocol::FrameDecoder::Result::Kind::kNeedMore) {
        break;
      }
      if (result.kind == protocol::FrameDecoder::Result::Kind::kError) {
        // Malformed input is terminal: count it and drop the connection.
        decode_errors_.fetch_add(1);
        if (m_decode_errors_ != nullptr) m_decode_errors_->add();
        close_connection(conn, /*orderly=*/false);
        return;
      }
      frames_rx_.fetch_add(1);
      if (m_frames_rx_ != nullptr) m_frames_rx_->add();
      if (!handle_frame(conn, result.frame)) return;  // connection closed
    }
    if (hung_up) close_connection(conn, /*orderly=*/false);
  }

  // ---- Frame handling ---------------------------------------------------

  /// Returns false when the connection was closed.
  bool handle_frame(Connection* conn, const protocol::Frame& frame) {
    switch (frame.type) {
      case protocol::FrameType::kHello:
        return handle_hello(conn, frame.as<protocol::Hello>());
      case protocol::FrameType::kReport:
        return handle_report(conn, frame.as<protocol::Report>());
      case protocol::FrameType::kBye:
        conn->orderly = true;
        close_connection(conn, /*orderly=*/true);
        return false;
      case protocol::FrameType::kHelloAck:
      case protocol::FrameType::kSchedule:
      case protocol::FrameType::kGrant:
      case protocol::FrameType::kError:
        return fail_session(conn, common::StatusCode::kInvalidArgument,
                            "client sent a server-only frame");
    }
    return fail_session(conn, common::StatusCode::kInvalidArgument,
                        "unknown frame type");
  }

  bool handle_hello(Connection* conn, const protocol::Hello& hello) {
    if (conn->phase != Connection::Phase::kAwaitHello) {
      return fail_session(conn, common::StatusCode::kInvalidArgument,
                          "duplicate HELLO");
    }
    if (active_sessions() > config_.max_sessions) {
      admission_rejects_.fetch_add(1);
      if (m_rejects_ != nullptr) m_rejects_->add();
      return fail_session(conn, common::StatusCode::kResourceExhausted,
                          "session limit reached");
    }
    if (hello.cluster_size == 0 ||
        hello.cluster_size > config_.max_cluster_size) {
      return fail_session(conn, common::StatusCode::kInvalidArgument,
                          "cluster size out of range");
    }

    Cluster* cluster = nullptr;
    auto it = clusters_.find(hello.cluster_id);
    if (it == clusters_.end()) {
      auto fresh = std::make_unique<Cluster>();
      fresh->id = hello.cluster_id;
      fresh->expected_size = hello.cluster_size;
      cluster = fresh.get();
      clusters_[hello.cluster_id] = std::move(fresh);
    } else {
      cluster = it->second.get();
      if (cluster->expected_size != hello.cluster_size) {
        return fail_session(conn, common::StatusCode::kInvalidArgument,
                            "cluster size disagrees with existing members");
      }
      if (cluster->members.size() >= cluster->expected_size) {
        return fail_session(conn, common::StatusCode::kResourceExhausted,
                            "cluster already full");
      }
      if (cluster->members.count(hello.user_id) != 0) {
        return fail_session(conn, common::StatusCode::kInvalidArgument,
                            "duplicate user in cluster");
      }
    }

    conn->hello = hello;
    conn->phase = Connection::Phase::kActive;
    conn->cluster = cluster;
    // The panel spec is server-derived (the provider knows the handset
    // catalog); keyed on the user so it is stable across reconnects.
    common::Rng spec_rng = derived_rng(config_.seed, hello.user_id,
                                       kDeviceSalt);
    conn->spec = display::DeviceCatalog::standard().sample(spec_rng).spec;
    cluster->members[hello.user_id] = conn;
    if (cluster->members.size() == cluster->expected_size) {
      cluster->ever_complete = true;
    }

    protocol::HelloAck ack;
    ack.user_id = hello.user_id;
    ack.next_slot = cluster->next_slot;
    if (!send_frame(conn, protocol::make_frame(ack))) return false;
    mark_ready_if_barrier_met(cluster);
    return true;
  }

  bool handle_report(Connection* conn, const protocol::Report& report) {
    if (conn->phase != Connection::Phase::kActive ||
        conn->cluster == nullptr) {
      return fail_session(conn, common::StatusCode::kInvalidArgument,
                          "REPORT before HELLO");
    }
    Cluster* cluster = conn->cluster;
    if (conn->has_report || report.slot != cluster->next_slot) {
      return fail_session(conn, common::StatusCode::kInvalidArgument,
                          "REPORT out of slot order");
    }
    // The Bayes observation of the previous slot's realized saving (§V-D):
    // feed both estimators, as the emulator does.
    if (report.has_delta != 0) {
      conn->gamma.observe(report.observed_delta);
      conn->nig.observe(report.observed_delta);
    }
    if (report.watching == 0) {
      // The user gave up; it leaves the cluster now so remaining members'
      // barrier does not wait on it, and BYE follows.
      cluster->members.erase(conn->hello.user_id);
      conn->cluster = nullptr;
      mark_ready_if_barrier_met(cluster);
      reap_cluster(cluster);
      return true;
    }
    conn->has_report = true;
    conn->report = report;
    mark_ready_if_barrier_met(cluster);
    return true;
  }

  // ---- Slot cadence -----------------------------------------------------

  void mark_ready_if_barrier_met(Cluster* cluster) {
    if (cluster->queued || cluster->members.empty()) return;
    // A cluster schedules only once fully assembled — the composition of
    // slot 0 is fixed by the HELLOs, not by which member's bytes arrived
    // first.  After assembly, members may only leave (give-up, BYE).
    if (!cluster->ever_complete) return;
    for (const auto& [user, member] : cluster->members) {
      if (!member->has_report) return;
    }
    cluster->queued = true;
    ready_.push_back(cluster);
  }

  void schedule_ready_clusters() {
    if (ready_.empty()) return;
    // Stable processing order (map order is by cluster id already, but the
    // ready list fills in arrival order).
    std::sort(ready_.begin(), ready_.end(),
              [](const Cluster* a, const Cluster* b) { return a->id < b->id; });
    const std::size_t batch = ready_.size();
    for (std::size_t i = 0; i < batch; ++i) {
      Cluster* cluster = ready_[i];
      // `queued` stays set while scheduling: it pins the cluster against
      // reap_cluster when a member's close fires mid-send.
      if (!cluster->members.empty()) {
        schedule_cluster(cluster, overload_rung(batch, i));
      }
      cluster->queued = false;
      reap_cluster(cluster);
    }
    ready_.erase(ready_.begin(), ready_.begin() + static_cast<std::ptrdiff_t>(
                                                      batch));
  }

  /// Overload shedding: past the configured ready-queue depth, force slots
  /// down the ladder — deeper backlog, lower rung.  -1 = schedule normally.
  int overload_rung(std::size_t batch, std::size_t index) const {
    if (config_.shed_ready_depth == 0) return -1;
    if (batch <= config_.shed_ready_depth || index < config_.shed_ready_depth) {
      return -1;
    }
    const bool deep = batch > 2 * config_.shed_ready_depth;
    return static_cast<int>(deep ? core::DegradationRung::kReplayPrevious
                                 : core::DegradationRung::kWarmRepair);
  }

  void schedule_cluster(Cluster* cluster, int forced_rung) {
    obs::ScopedTimer timer(m_schedule_ms_);

    core::SlotProblem problem;
    problem.compute_capacity = config_.compute_capacity;
    problem.storage_capacity = config_.storage_capacity_mb;
    problem.lambda = config_.lambda;

    std::vector<Connection*> order;
    order.reserve(cluster->members.size());
    for (auto& [user_id, member] : cluster->members) {
      // Content is a pure function of (seed, user, slot): the same derived
      // streams the emulator and federation use.
      common::Rng content_rng = derived_rng(config_.seed, user_id,
                                            cluster->next_slot);
      media::ContentGenerator generator(content_rng());
      const auto genre = static_cast<media::Genre>(
          member->hello.genre % media::kGenreCount);
      const media::Video video = generator.generate(
          common::VideoId{static_cast<std::uint32_t>(
              user_id * 100000u + cluster->next_slot)},
          genre, config_.chunks_per_slot, member->hello.bitrate_mbps,
          common::Seconds{config_.chunk_seconds});

      core::DeviceSlotInput input;
      input.id = common::DeviceId{static_cast<std::uint32_t>(user_id)};
      input.power_rates_mw.reserve(video.chunks.size());
      input.chunk_durations_s.reserve(video.chunks.size());
      for (const media::VideoChunk& chunk : video.chunks) {
        input.power_rates_mw.push_back(
            rate_estimator_.rate(member->spec, chunk).value);
        input.chunk_durations_s.push_back(chunk.duration.value);
      }
      input.battery_capacity_mwh = member->hello.battery_capacity_mwh;
      input.initial_energy_mwh = member->report.battery_fraction *
                                 member->hello.battery_capacity_mwh *
                                 config_.effective_capacity_scale;
      input.gamma = member->gamma.expected_gamma();
      input.compute_cost = resources_.compute_cost(member->spec, video);
      input.storage_cost = resources_.storage_cost(video);

      order.push_back(member);
      problem.devices.push_back(std::move(input));
    }

    core::RunContext ctx =
        context_.with_slot(static_cast<std::int64_t>(cluster->next_slot));
    if (config_.warm_start) {
      ctx = ctx.with_solve_cache(&cluster->cache, cluster->id);
    }
    core::SlotDeadline deadline = config_.deadline;
    if (forced_rung >= 0 &&
        (deadline.force_rung < 0 || forced_rung > deadline.force_rung)) {
      deadline.force_rung = forced_rung;
      shed_slots_.fetch_add(1);
      if (m_shed_ != nullptr) m_shed_->add();
    }
    ctx = ctx.with_deadline(deadline);

    const core::Schedule schedule = scheduler_.schedule(problem, ctx);
    slots_scheduled_.fetch_add(1);
    if (m_slots_ != nullptr) m_slots_->add();

    const auto selected = static_cast<std::uint32_t>(schedule.selected_count());
    for (std::size_t i = 0; i < order.size(); ++i) {
      Connection* member = order[i];
      const bool transformed = schedule.x[i] != 0;

      protocol::Schedule push;
      push.slot = cluster->next_slot;
      push.transform = transformed ? 1 : 0;
      push.rung = static_cast<std::uint8_t>(schedule.rung);
      push.expected_gamma = problem.devices[i].gamma;
      push.objective = schedule.objective;
      push.selected_count = selected;
      push.cluster_devices = static_cast<std::uint32_t>(order.size());

      protocol::Grant grant;
      grant.slot = cluster->next_slot;
      grant.chunks = static_cast<std::uint32_t>(config_.chunks_per_slot);
      grant.chunk_seconds = config_.chunk_seconds;
      grant.power_scale =
          transformed ? 1.0 - problem.devices[i].gamma : 1.0;

      member->has_report = false;
      ++member->slots_completed;
      if (!send_frame(member, protocol::make_frame(push))) continue;
      (void)send_frame(member, protocol::make_frame(grant));
    }
    ++cluster->next_slot;
  }

  // ---- Outbound path ----------------------------------------------------

  /// Returns false when the connection was closed (backpressure / error).
  bool send_frame(Connection* conn, const protocol::Frame& frame) {
    const std::vector<std::uint8_t> bytes = protocol::encode(frame);
    conn->outbound.insert(conn->outbound.end(), bytes.begin(), bytes.end());
    frames_tx_.fetch_add(1);
    if (m_frames_tx_ != nullptr) m_frames_tx_->add();
    if (conn->outbound.size() - conn->out_offset >
        config_.max_outbound_bytes) {
      // The peer stopped reading; shedding it beats buffering without
      // bound.  Nothing useful can be flushed to a non-reading peer.
      backpressure_closes_.fetch_add(1);
      if (m_backpressure_ != nullptr) m_backpressure_->add();
      close_connection(conn, /*orderly=*/false);
      return false;
    }
    return flush(conn);
  }

  /// Returns false when the connection was closed.
  bool flush(Connection* conn) {
    while (conn->out_offset < conn->outbound.size()) {
      const io::IoResult r =
          io::write_retry(conn->fd, conn->outbound.data() + conn->out_offset,
                          conn->outbound.size() - conn->out_offset);
      if (r.kind == io::IoResult::Kind::kOk) {
        conn->out_offset += r.count;
        continue;
      }
      if (r.kind == io::IoResult::Kind::kWouldBlock) {
        if (!conn->want_write) {
          conn->want_write = true;
          (void)loop_->modify(conn->fd, true, true);
        }
        return true;
      }
      close_connection(conn, /*orderly=*/false);
      return false;
    }
    conn->outbound.clear();
    conn->out_offset = 0;
    if (conn->close_after_flush) {
      close_connection(conn, conn->orderly);
      return false;
    }
    if (conn->want_write) {
      conn->want_write = false;
      (void)loop_->modify(conn->fd, true, false);
    }
    return true;
  }

  /// Terminal protocol failure: best-effort ERROR frame, then close.
  bool fail_session(Connection* conn, common::StatusCode code,
                    std::string message) {
    protocol_errors_.fetch_add(1);
    protocol::Error error;
    error.code = static_cast<std::uint8_t>(code);
    error.message = std::move(message);
    const std::vector<std::uint8_t> bytes =
        protocol::encode(protocol::make_frame(error));
    conn->outbound.insert(conn->outbound.end(), bytes.begin(), bytes.end());
    conn->close_after_flush = true;
    conn->phase = Connection::Phase::kClosing;
    flush(conn);  // closes on full flush; waits for writability otherwise
    return false;
  }

  void close_connection(Connection* conn, bool orderly,
                        bool count_forced = true) {
    (void)count_forced;
    if (conn->cluster != nullptr) {
      Cluster* cluster = conn->cluster;
      cluster->members.erase(conn->hello.user_id);
      conn->cluster = nullptr;
      // Remaining members may now satisfy the barrier without the leaver.
      mark_ready_if_barrier_met(cluster);
      reap_cluster(cluster);
    }
    if (orderly) {
      sessions_completed_.fetch_add(1);
      if (m_completed_ != nullptr) m_completed_->add();
    }
    (void)loop_->remove(conn->fd);
    io::close_fd(conn->fd);
    connections_.erase(conn->fd);  // destroys conn
    active_.store(static_cast<long>(connections_.size()));
    if (m_active_ != nullptr) {
      m_active_->set(static_cast<double>(connections_.size()));
    }
  }

  void reap_cluster(Cluster* cluster) {
    if (cluster->members.empty() && !cluster->queued) {
      clusters_.erase(cluster->id);
    }
  }

  std::uint32_t active_sessions() const {
    return static_cast<std::uint32_t>(connections_.size());
  }

  void shutdown_fds() {
    io::close_fd(listen_fd_);
    io::close_fd(wake_pipe_[0]);
    io::close_fd(wake_pipe_[1]);
    listen_fd_ = wake_pipe_[0] = wake_pipe_[1] = -1;
  }

  ServerConfig config_;
  const core::Scheduler& scheduler_;
  core::RunContext context_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::unique_ptr<EventLoop> loop_;
  std::thread thread_;

  std::map<int, std::unique_ptr<Connection>> connections_;
  std::map<std::uint64_t, std::unique_ptr<Cluster>> clusters_;
  std::vector<Cluster*> ready_;

  media::PowerRateEstimator rate_estimator_;
  transform::ResourceModel resources_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> drain_forced_{false};
  std::chrono::steady_clock::time_point drain_deadline_{};

  std::atomic<long> accepted_{0};
  std::atomic<long> active_{0};
  std::atomic<long> admission_rejects_{0};
  std::atomic<long> decode_errors_{0};
  std::atomic<long> protocol_errors_{0};
  std::atomic<long> backpressure_closes_{0};
  std::atomic<long> frames_rx_{0};
  std::atomic<long> frames_tx_{0};
  std::atomic<long> slots_scheduled_{0};
  std::atomic<long> sessions_completed_{0};
  std::atomic<long> forced_closes_{0};
  std::atomic<long> shed_slots_{0};

  obs::Counter* m_accepted_ = nullptr;
  obs::Counter* m_rejects_ = nullptr;
  obs::Counter* m_decode_errors_ = nullptr;
  obs::Counter* m_backpressure_ = nullptr;
  obs::Counter* m_frames_rx_ = nullptr;
  obs::Counter* m_frames_tx_ = nullptr;
  obs::Counter* m_slots_ = nullptr;
  obs::Counter* m_completed_ = nullptr;
  obs::Counter* m_shed_ = nullptr;
  obs::Gauge* m_active_ = nullptr;
  obs::Histogram* m_schedule_ms_ = nullptr;
};

EdgeServerDaemon::EdgeServerDaemon(ServerConfig config,
                                   const core::Scheduler& scheduler,
                                   core::RunContext context)
    : impl_(std::make_unique<Impl>(std::move(config), scheduler, context)) {}

EdgeServerDaemon::~EdgeServerDaemon() { stop(); }

common::Status EdgeServerDaemon::start() {
  if (running_.load(std::memory_order_acquire)) {
    return common::Status::InvalidArgument("daemon already running");
  }
  const common::Status status = impl_->start(port_);
  if (status.ok()) running_.store(true, std::memory_order_release);
  return status;
}

common::Status EdgeServerDaemon::drain(int timeout_ms) {
  if (!running_.load(std::memory_order_acquire)) return common::Status::Ok();
  impl_->request_drain(timeout_ms);
  impl_->join();
  running_.store(false, std::memory_order_release);
  if (impl_->drain_forced()) {
    return common::Status::DeadlineExceeded(
        "drain timed out; remaining sessions were force-closed");
  }
  return common::Status::Ok();
}

void EdgeServerDaemon::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  impl_->request_stop();
  impl_->join();
  running_.store(false, std::memory_order_release);
}

ServerStats EdgeServerDaemon::stats() const { return impl_->stats(); }

}  // namespace lpvs::server

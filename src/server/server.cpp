#include "lpvs/server/server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "lpvs/common/io.hpp"
#include "worker.hpp"

namespace lpvs::server {
namespace {

namespace io = common::io;
using internal::ConnectionHandoff;
using internal::CounterId;
using internal::LocalCounters;
using internal::SharedControl;
using internal::Worker;

}  // namespace

ServerStats ServerStats::from_snapshot(const obs::MetricsSnapshot& snapshot) {
  ServerStats out;
  out.accepted = snapshot.counter_value("lpvs_server_accepted_total");
  out.admission_rejects =
      snapshot.counter_value("lpvs_server_admission_rejects_total");
  out.decode_errors = snapshot.counter_value("lpvs_server_decode_errors_total");
  out.protocol_errors =
      snapshot.counter_value("lpvs_server_protocol_errors_total");
  out.backpressure_closes =
      snapshot.counter_value("lpvs_server_backpressure_closes_total");
  out.frames_rx = snapshot.counter_value("lpvs_server_frames_rx_total");
  out.frames_tx = snapshot.counter_value("lpvs_server_frames_tx_total");
  out.slots_scheduled = snapshot.counter_value("lpvs_server_slots_total");
  out.sessions_completed =
      snapshot.counter_value("lpvs_server_sessions_completed_total");
  out.forced_closes = snapshot.counter_value("lpvs_server_forced_closes_total");
  out.shed_slots = snapshot.counter_value("lpvs_server_shed_total");
  out.io_syscalls = snapshot.counter_value("lpvs_io_syscalls_total");
  out.io_read_syscalls =
      snapshot.counter_value("lpvs_io_read_syscalls_total");
  out.io_write_syscalls =
      snapshot.counter_value("lpvs_io_write_syscalls_total");
  out.io_uring_enters = snapshot.counter_value("lpvs_io_uring_enters_total");
  out.io_submissions = snapshot.counter_value("lpvs_io_submissions_total");
  out.io_flushes = snapshot.counter_value("lpvs_io_flushes_total");
  out.backend_fallbacks =
      snapshot.counter_value("lpvs_io_backend_fallback_total");
  out.active =
      static_cast<long>(snapshot.gauge_value("lpvs_server_active_sessions"));
  return out;
}

/// The dispatcher: accepts, reads each connection's first frame, applies
/// admission control, and routes admitted sessions to the worker that owns
/// their cluster.  Owns no session state beyond the pre-HELLO window.
class EdgeServerDaemon::Impl {
 public:
  Impl(ServerConfig config, const core::Scheduler& scheduler,
       core::RunContext context)
      : config_(std::move(config)), scheduler_(scheduler), context_(context) {
    // The daemon manages its own per-cluster caches and runs no fault
    // injection of its own; scrub those capabilities off the base context.
    context_.solve_cache = nullptr;
    context_.faults = nullptr;
    if (config_.listener.workers == 0) config_.listener.workers = 1;

    // The registry is the single source of truth for counters: an attached
    // one when the caller provided it, a private one otherwise, so stats()
    // has exactly one code path.
    registry_ = context_.metrics != nullptr ? context_.metrics
                                            : &owned_registry_;
    const auto& specs = internal::counter_specs();
    for (int i = 0; i < internal::kNumCounters; ++i) {
      counters_[i] = &registry_->counter(specs[static_cast<std::size_t>(i)].name,
                                         specs[static_cast<std::size_t>(i)].help);
    }
    m_active_ = &registry_->gauge("lpvs_server_active_sessions",
                                  "currently open sessions");
    m_schedule_ms_ = &registry_->histogram(
        "lpvs_server_schedule_ms", obs::MetricsRegistry::time_buckets_ms(),
        "per-cluster slot scheduling wall time");
    m_batch_occupancy_ = &registry_->histogram(
        "lpvs_io_batch_occupancy",
        {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0},
        "ops per submission-queue flush (worker data path)");
  }

  ~Impl() {
    request_stop();
    join_all();
    shutdown_fds();
  }

  common::Status start(std::uint16_t& bound_port) {
    io::ignore_sigpipe();

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return common::Status::Unavailable("socket: " +
                                         std::string(std::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(config_.listener.port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      return common::Status::Unavailable("bind: " +
                                         std::string(std::strerror(errno)));
    }
    if (::listen(listen_fd_, config_.listener.backlog) < 0) {
      return common::Status::Unavailable("listen: " +
                                         std::string(std::strerror(errno)));
    }
    socklen_t addr_len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      &addr_len) < 0) {
      return common::Status::Internal("getsockname failed");
    }
    bound_port = ntohs(addr.sin_port);

    common::Status status = io::set_nonblocking(listen_fd_);
    if (!status.ok()) return status;

    if (::pipe(wake_pipe_) < 0) {
      return common::Status::Internal("pipe: " +
                                      std::string(std::strerror(errno)));
    }
    (void)io::set_nonblocking(wake_pipe_[0]);
    (void)io::set_nonblocking(wake_pipe_[1]);

    loop_ = std::make_unique<EventLoop>(config_.listener.backend);
    if (loop_->fell_back()) {
      counters_block_.add(internal::kIoBackendFallback);
    }
    status = loop_->add(listen_fd_, /*want_read=*/true, /*want_write=*/false);
    if (!status.ok()) return status;
    status = loop_->add(wake_pipe_[0], true, false);
    if (!status.ok()) return status;

    workers_.reserve(config_.listener.workers);
    for (std::uint32_t i = 0; i < config_.listener.workers; ++i) {
      workers_.push_back(std::make_unique<Worker>(
          config_, scheduler_, context_, control_, m_schedule_ms_,
          m_batch_occupancy_));
      status = workers_.back()->start();
      if (!status.ok()) {
        // Unwind whatever already started.
        control_.stopping.store(true, std::memory_order_release);
        for (auto& worker : workers_) worker->wake();
        for (auto& worker : workers_) worker->join();
        workers_.clear();
        control_.stopping.store(false, std::memory_order_release);
        return status;
      }
    }

    dispatcher_ = std::thread([this] { run_dispatcher(); });
    return common::Status::Ok();
  }

  void request_drain(int timeout_ms) {
    control_.drain_deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(timeout_ms);
    control_.draining.store(true, std::memory_order_release);
    wake();
    for (auto& worker : workers_) worker->wake();
  }

  void request_stop() {
    control_.stopping.store(true, std::memory_order_release);
    wake();
    for (auto& worker : workers_) worker->wake();
  }

  void join_all() {
    if (dispatcher_.joinable()) dispatcher_.join();
    for (auto& worker : workers_) worker->join();
    // An immediate stop can strand routed-but-not-adopted sockets in the
    // handoff rings; with every thread joined, closing them is race-free.
    for (auto& worker : workers_) (void)worker->close_abandoned();
    fold();
  }

  bool drain_forced() const {
    return control_.drain_forced.load(std::memory_order_acquire);
  }

  ServerStats stats() const {
    fold();
    return ServerStats::from_snapshot(registry_->snapshot());
  }

 private:
  /// A connection the dispatcher still owns: accepted, first frame not yet
  /// complete (or an ERROR still flushing).  Pooled like worker sessions.
  struct Pending {
    int fd = -1;
    protocol::FrameDecoder decoder;
    std::vector<std::uint8_t> outbound;
    std::size_t out_offset = 0;
    bool want_write = false;
    bool close_after_flush = false;
    bool orderly = false;

    void reset() {
      fd = -1;
      decoder.reset();
      outbound.clear();
      out_offset = 0;
      want_write = false;
      close_after_flush = false;
      orderly = false;
    }
  };

  // ---- Dispatcher loop ----------------------------------------------------

  void run_dispatcher() {
    std::vector<LoopEvent> events;
    bool accepting = true;
    for (;;) {
      if (control_.stopping.load(std::memory_order_acquire)) break;
      int timeout_ms = -1;
      if (control_.draining.load(std::memory_order_acquire)) {
        if (accepting) {
          (void)loop_->remove(listen_fd_);
          io::close_fd(listen_fd_);
          listen_fd_ = -1;
          accepting = false;
        }
        if (pending_.empty()) break;
        const auto now = std::chrono::steady_clock::now();
        if (now >= control_.drain_deadline) {
          control_.drain_forced.store(true, std::memory_order_release);
          break;
        }
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                control_.drain_deadline - now)
                .count();
        timeout_ms = static_cast<int>(std::max<long long>(1, remaining));
      }

      common::StatusOr<int> waited = loop_->wait(timeout_ms, events);
      if (!waited.ok()) break;

      for (const LoopEvent& event : events) {
        if (event.fd == wake_pipe_[0]) {
          drain_wake_pipe();
          continue;
        }
        if (event.fd == listen_fd_ && accepting) {
          accept_ready();
          continue;
        }
        auto it = pending_.find(event.fd);
        if (it == pending_.end()) continue;  // routed or closed this batch
        Pending* conn = it->second;
        if (event.broken) {
          close_pending(conn, /*orderly=*/false);
          continue;
        }
        if (event.readable) {
          handle_readable(conn);
          if (pending_.find(event.fd) == pending_.end()) continue;
        }
        if (event.writable) flush_pending(conn);
      }
      sync_io_stats();
    }

    // Exit: connections still waiting on their first frame are cut short.
    const long leftover = static_cast<long>(pending_.size());
    if (leftover > 0) counters_block_.add(internal::kForcedCloses, leftover);
    while (!pending_.empty()) {
      close_pending(pending_.begin()->second, /*orderly=*/false);
    }
    sync_io_stats();
    // After this store (release), no further ring pushes can happen; workers
    // acquire it before concluding their ring is dry.
    control_.dispatcher_done.store(true, std::memory_order_release);
    for (auto& worker : workers_) worker->wake();
  }

  void wake() {
    if (wake_pipe_[1] >= 0) {
      const std::uint8_t byte = 1;
      (void)io::write_retry(wake_pipe_[1], &byte, 1);
    }
  }

  void drain_wake_pipe() {
    std::uint8_t sink[64];
    while (io::read_retry(wake_pipe_[0], sink, sizeof(sink)).ok()) {
    }
  }

  void accept_ready() {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN or transient accept failure: try next wakeup
      }
      if (!io::set_nonblocking(fd).ok()) {
        io::close_fd(fd);
        continue;
      }
      (void)io::set_tcp_nodelay(fd);
      Pending* conn = pending_pool_.acquire();
      conn->fd = fd;
      conn->decoder.set_limit(config_.admission.max_frame_bytes);
      if (!loop_->add(fd, true, false).ok()) {
        io::close_fd(fd);
        pending_pool_.release(conn);
        continue;
      }
      pending_[fd] = conn;
      control_.open_connections.fetch_add(1);
      counters_block_.add(internal::kAccepted);
    }
  }

  /// One data-path op through the loop's submission queue.  The dispatcher
  /// handles one first-frame per connection lifetime, so there is nothing
  /// to coalesce — it still routes through the same API as the workers so
  /// its syscalls land in the same lpvs_io_* ledger.
  io::IoResult submit_one(bool is_write, int fd, void* buf, std::size_t len) {
    if (is_write) {
      const struct iovec iov{buf, len};
      loop_->submit_writev(fd, &iov, 1, 0);
    } else {
      loop_->submit_read(fd, buf, len, 0);
    }
    io_scratch_.clear();
    (void)loop_->flush(io_scratch_);
    return io_scratch_.back().result;
  }

  void handle_readable(Pending* conn) {
    std::uint8_t buffer[4096];
    bool hung_up = false;
    for (;;) {
      const io::IoResult r =
          submit_one(/*is_write=*/false, conn->fd, buffer, sizeof(buffer));
      if (r.kind == io::IoResult::Kind::kOk) {
        conn->decoder.feed(buffer, r.count);
        if (r.count < sizeof(buffer)) break;
        continue;
      }
      if (r.kind == io::IoResult::Kind::kWouldBlock) break;
      hung_up = true;  // buffered frames are still decoded before the close
      break;
    }
    const int fd = conn->fd;

    if (!conn->close_after_flush) {
      protocol::FrameDecoder::Result result = conn->decoder.next();
      if (result.kind == protocol::FrameDecoder::Result::Kind::kError) {
        counters_block_.add(internal::kDecodeErrors);
        close_pending(conn, /*orderly=*/false);
        return;
      }
      if (result.kind == protocol::FrameDecoder::Result::Kind::kFrame) {
        counters_block_.add(internal::kFramesRx);
        handle_first_frame(conn, result.frame);
        if (pending_.find(fd) == pending_.end()) return;  // routed or closed
      }
    }
    if (hung_up) {
      auto it = pending_.find(fd);
      if (it != pending_.end()) close_pending(it->second, /*orderly=*/false);
    }
  }

  /// Acts on a connection's first frame: HELLO → admission + route, BYE →
  /// orderly close, anything else → protocol error.
  void handle_first_frame(Pending* conn, const protocol::Frame& frame) {
    switch (frame.type) {
      case protocol::FrameType::kHello:
        route_hello(conn, frame.as<protocol::Hello>());
        return;
      case protocol::FrameType::kBye:
        conn->orderly = true;
        close_pending(conn, /*orderly=*/true);
        return;
      case protocol::FrameType::kReport:
        (void)fail_pending(conn, common::StatusCode::kInvalidArgument,
                           "REPORT before HELLO");
        return;
      case protocol::FrameType::kHelloAck:
      case protocol::FrameType::kSchedule:
      case protocol::FrameType::kGrant:
      case protocol::FrameType::kError:
        (void)fail_pending(conn, common::StatusCode::kInvalidArgument,
                           "client sent a server-only frame");
        return;
    }
    (void)fail_pending(conn, common::StatusCode::kInvalidArgument,
                       "unknown frame type");
  }

  void route_hello(Pending* conn, const protocol::Hello& hello) {
    // open_connections counts this connection already, so the check reads
    // "would admitting leave more than max_sessions open" — the same
    // boundary the single-reactor daemon enforced.
    if (control_.open_connections.load(std::memory_order_relaxed) >
        static_cast<long>(config_.admission.max_sessions)) {
      counters_block_.add(internal::kAdmissionRejects);
      (void)fail_pending(conn, common::StatusCode::kResourceExhausted,
                         "session limit reached");
      return;
    }
    if (hello.cluster_size == 0 ||
        hello.cluster_size > config_.admission.max_cluster_size) {
      (void)fail_pending(conn, common::StatusCode::kInvalidArgument,
                         "cluster size out of range");
      return;
    }

    // Shard by cluster: every member of a cluster lands on the same worker,
    // which is what keeps barrier and solve state thread-local.
    Worker* worker =
        workers_[hello.cluster_id % workers_.size()].get();
    ConnectionHandoff handoff;
    handoff.fd = conn->fd;
    handoff.hello = hello;
    handoff.leftover = conn->decoder.take_unconsumed();

    (void)loop_->remove(conn->fd);
    if (!worker->submit(std::move(handoff))) {
      // Ring full: reject instead of queueing without bound.
      (void)loop_->add(conn->fd, true, false);
      counters_block_.add(internal::kAdmissionRejects);
      (void)fail_pending(conn, common::StatusCode::kUnavailable,
                         "worker handoff queue full");
      return;
    }
    worker->wake();
    counters_block_.add(internal::kHandoffs);
    pending_.erase(conn->fd);  // the socket now belongs to the worker
    conn->fd = -1;
    pending_pool_.release(conn);
  }

  bool fail_pending(Pending* conn, common::StatusCode code,
                    std::string message) {
    counters_block_.add(internal::kProtocolErrors);
    protocol::Error error;
    error.code = static_cast<std::uint8_t>(code);
    error.message = std::move(message);
    protocol::encode_into(protocol::make_frame(error), conn->outbound);
    conn->close_after_flush = true;
    flush_pending(conn);
    return false;
  }

  bool flush_pending(Pending* conn) {
    while (conn->out_offset < conn->outbound.size()) {
      const io::IoResult r =
          submit_one(/*is_write=*/true, conn->fd,
                     conn->outbound.data() + conn->out_offset,
                     conn->outbound.size() - conn->out_offset);
      if (r.kind == io::IoResult::Kind::kOk && r.count > 0) {
        conn->out_offset += r.count;
        continue;
      }
      if (r.kind == io::IoResult::Kind::kWouldBlock ||
          r.kind == io::IoResult::Kind::kOk) {  // 0-byte acceptance: park
        if (!conn->want_write) {
          conn->want_write = true;
          (void)loop_->modify(conn->fd, true, true);
        }
        return true;
      }
      close_pending(conn, /*orderly=*/false);
      return false;
    }
    conn->outbound.clear();
    conn->out_offset = 0;
    if (conn->close_after_flush) {
      close_pending(conn, conn->orderly);
      return false;
    }
    if (conn->want_write) {
      conn->want_write = false;
      (void)loop_->modify(conn->fd, true, false);
    }
    return true;
  }

  void close_pending(Pending* conn, bool orderly) {
    if (orderly) counters_block_.add(internal::kCompleted);
    (void)loop_->remove(conn->fd);
    io::close_fd(conn->fd);
    pending_.erase(conn->fd);
    pending_pool_.release(conn);
    control_.open_connections.fetch_sub(1);
  }

  /// Mirrors Worker::sync_io_stats for the dispatcher's loop: copies the
  /// IoStats deltas into the dispatcher's counter slab for the fold.
  void sync_io_stats() {
    const IoStats& stats = loop_->io_stats();
    const auto bump = [this](CounterId id, long now, long& seen) {
      if (now != seen) {
        counters_block_.add(id, now - seen);
        seen = now;
      }
    };
    bump(internal::kIoReadSyscalls, stats.read_path_syscalls,
         io_seen_.read_path_syscalls);
    bump(internal::kIoWriteSyscalls, stats.write_path_syscalls,
         io_seen_.write_path_syscalls);
    bump(internal::kIoUringEnters, stats.enter_syscalls,
         io_seen_.enter_syscalls);
    bump(internal::kIoSubmissions, stats.submissions, io_seen_.submissions);
    bump(internal::kIoFlushes, stats.flushes, io_seen_.flushes);
    bump(internal::kIoSyscalls, stats.total_syscalls(), io_total_seen_);
  }

  void shutdown_fds() {
    io::close_fd(listen_fd_);
    io::close_fd(wake_pipe_[0]);
    io::close_fd(wake_pipe_[1]);
    listen_fd_ = wake_pipe_[0] = wake_pipe_[1] = -1;
  }

  // ---- Metrics fold -------------------------------------------------------

  /// Pushes every thread-local counter delta into the registry.  Safe while
  /// the daemon runs (owning threads add with relaxed atomics; `published`
  /// is guarded by the fold mutex) and after it stops.
  void fold() const {
    std::lock_guard<std::mutex> lock(fold_mutex_);
    fold_block(counters_block_);
    for (const auto& worker : workers_) fold_block(worker->counters());
    m_active_->set(
        static_cast<double>(control_.open_connections.load()));
  }

  void fold_block(LocalCounters& block) const {
    for (int i = 0; i < internal::kNumCounters; ++i) {
      const auto index = static_cast<std::size_t>(i);
      const long current = block.value[index].load(std::memory_order_relaxed);
      const long delta = current - block.published[index];
      if (delta != 0) {
        counters_[index]->add(delta);
        block.published[index] = current;
      }
    }
  }

  ServerConfig config_;
  const core::Scheduler& scheduler_;
  core::RunContext context_;

  obs::MetricsRegistry owned_registry_;
  obs::MetricsRegistry* registry_ = nullptr;
  obs::Counter* counters_[internal::kNumCounters] = {};
  obs::Gauge* m_active_ = nullptr;
  obs::Histogram* m_schedule_ms_ = nullptr;
  obs::Histogram* m_batch_occupancy_ = nullptr;
  mutable std::mutex fold_mutex_;
  mutable LocalCounters counters_block_;  ///< the dispatcher's slab
  std::vector<IoOutcome> io_scratch_;     ///< dispatcher submit_one results
  IoStats io_seen_;                       ///< loop stats already folded
  long io_total_seen_ = 0;

  SharedControl control_;
  std::vector<std::unique_ptr<Worker>> workers_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::unique_ptr<EventLoop> loop_;
  std::thread dispatcher_;

  common::ObjectPool<Pending> pending_pool_;
  std::map<int, Pending*> pending_;
};

EdgeServerDaemon::EdgeServerDaemon(ServerConfig config,
                                   const core::Scheduler& scheduler,
                                   core::RunContext context)
    : impl_(std::make_unique<Impl>(std::move(config), scheduler, context)) {}

EdgeServerDaemon::~EdgeServerDaemon() { stop(); }

common::Status EdgeServerDaemon::start() {
  if (running_.load(std::memory_order_acquire)) {
    return common::Status::InvalidArgument("daemon already running");
  }
  const common::Status status = impl_->start(port_);
  if (status.ok()) running_.store(true, std::memory_order_release);
  return status;
}

common::Status EdgeServerDaemon::drain(int timeout_ms) {
  if (!running_.load(std::memory_order_acquire)) return common::Status::Ok();
  impl_->request_drain(timeout_ms);
  impl_->join_all();
  running_.store(false, std::memory_order_release);
  if (impl_->drain_forced()) {
    return common::Status::DeadlineExceeded(
        "drain timed out; remaining sessions were force-closed");
  }
  return common::Status::Ok();
}

void EdgeServerDaemon::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  impl_->request_stop();
  impl_->join_all();
  running_.store(false, std::memory_order_release);
}

ServerStats EdgeServerDaemon::stats() const { return impl_->stats(); }

}  // namespace lpvs::server

#include "io/uring.hpp"

#if defined(__linux__)

#include <cerrno>
#include <cstring>

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

namespace lpvs::server::iouring {
namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

common::io::IoResult map_cqe(int res, bool is_write) {
  using common::io::IoResult;
  if (res > 0) {
    return IoResult{IoResult::Kind::kOk, static_cast<std::size_t>(res), 0};
  }
  if (res == 0) {
    // recvmsg() == 0 is orderly EOF; a 0-byte sendmsg of a non-empty batch
    // does not happen, but map it like a would-block so a caller never
    // spins on "0 bytes accepted, try again immediately".
    return is_write ? IoResult{IoResult::Kind::kWouldBlock, 0, 0}
                    : IoResult{IoResult::Kind::kEof, 0, 0};
  }
  const int err = -res;
  if (err == EAGAIN || err == EWOULDBLOCK || err == EINTR) {
    // EINTR on a MSG_DONTWAIT op is rare but possible; the fd stays armed
    // in the readiness set, so report would-block and let the next wakeup
    // retry rather than special-casing a resubmit here.
    return IoResult{IoResult::Kind::kWouldBlock, 0, 0};
  }
  return IoResult{IoResult::Kind::kError, 0, err};
}

}  // namespace

std::unique_ptr<Ring> Ring::create(unsigned entries) {
  std::unique_ptr<Ring> ring(new Ring());
  if (!ring->setup(entries)) return nullptr;
  return ring;
}

bool Ring::setup(unsigned entries) {
  io_uring_params params{};
  ring_fd_ = sys_io_uring_setup(entries, &params);
  if (ring_fd_ < 0) return false;
  sq_entries_ = params.sq_entries;
  cq_entries_ = params.cq_entries;
  single_mmap_ = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;

  sq_ring_bytes_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
  cq_ring_bytes_ =
      params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  if (single_mmap_) {
    sq_ring_bytes_ = cq_ring_bytes_ =
        sq_ring_bytes_ > cq_ring_bytes_ ? sq_ring_bytes_ : cq_ring_bytes_;
  }
  sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  if (sq_ring_ == MAP_FAILED) {
    sq_ring_ = nullptr;
    return false;
  }
  if (single_mmap_) {
    cq_ring_ = sq_ring_;
  } else {
    cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
    if (cq_ring_ == MAP_FAILED) {
      cq_ring_ = nullptr;
      return false;
    }
  }
  sqes_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
  sqes_mem_ = ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
  if (sqes_mem_ == MAP_FAILED) {
    sqes_mem_ = nullptr;
    return false;
  }

  auto* sq = static_cast<std::uint8_t*>(sq_ring_);
  sq_head_ = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
  sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
  sq_mask_ = *reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
  auto* cq = static_cast<std::uint8_t*>(cq_ring_);
  cq_head_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
  cq_tail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
  cq_mask_ = *reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
  cqes_ = cq + params.cq_off.cqes;
  return true;
}

Ring::~Ring() {
  if (sqes_mem_ != nullptr) ::munmap(sqes_mem_, sqes_bytes_);
  if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) {
    ::munmap(cq_ring_, cq_ring_bytes_);
  }
  if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_bytes_);
  if (ring_fd_ >= 0) ::close(ring_fd_);
}

int Ring::run_batch(const Op* ops, common::io::IoResult* results,
                    std::size_t count) {
  auto* sqes = static_cast<io_uring_sqe*>(sqes_mem_);
  auto* cqes = static_cast<io_uring_cqe*>(cqes_);
  int enters = 0;
  std::size_t done = 0;
  while (done < count) {
    const std::size_t batch = count - done < static_cast<std::size_t>(
                                                 sq_entries_)
                                  ? count - done
                                  : sq_entries_;
    msgs_.resize(batch);
    read_iovs_.resize(batch);
    const unsigned tail = __atomic_load_n(sq_tail_, __ATOMIC_RELAXED);
    for (std::size_t i = 0; i < batch; ++i) {
      const Op& op = ops[done + i];
      const unsigned idx = (tail + static_cast<unsigned>(i)) & sq_mask_;
      io_uring_sqe* sqe = &sqes[idx];
      std::memset(sqe, 0, sizeof(*sqe));
      struct msghdr& mh = msgs_[i];
      std::memset(&mh, 0, sizeof(mh));
      if (op.is_write) {
        sqe->opcode = IORING_OP_SENDMSG;
        mh.msg_iov = const_cast<struct iovec*>(op.iov);
        mh.msg_iovlen = static_cast<std::size_t>(op.iovcnt);
        sqe->msg_flags = MSG_DONTWAIT | MSG_NOSIGNAL;
      } else {
        sqe->opcode = IORING_OP_RECVMSG;
        read_iovs_[i] = iovec{op.buf, op.len};
        mh.msg_iov = &read_iovs_[i];
        mh.msg_iovlen = 1;
        sqe->msg_flags = MSG_DONTWAIT;
      }
      sqe->fd = op.fd;
      sqe->addr = reinterpret_cast<std::uint64_t>(&mh);
      sqe->len = 1;
      sqe->user_data = done + i;
      sq_array_[idx] = idx;
    }
    __atomic_store_n(sq_tail_, tail + static_cast<unsigned>(batch),
                     __ATOMIC_RELEASE);

    std::size_t harvested = 0;
    while (harvested < batch) {
      // EINTR may land after the kernel consumed some SQEs; the SQ head
      // says how many remain unsubmitted, so recompute instead of blindly
      // resubmitting (which would corrupt the ring accounting).
      const unsigned consumed_head =
          __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
      const unsigned to_submit = (tail + static_cast<unsigned>(batch)) -
                                 consumed_head;
      const int rc = sys_io_uring_enter(
          ring_fd_, to_submit, static_cast<unsigned>(batch - harvested),
          IORING_ENTER_GETEVENTS);
      ++enters;
      if (rc < 0) {
        if (errno == EINTR) continue;
        return -1;
      }
      unsigned chead = __atomic_load_n(cq_head_, __ATOMIC_RELAXED);
      const unsigned ctail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
      while (chead != ctail) {
        const io_uring_cqe& cqe = cqes[chead & cq_mask_];
        const std::size_t gi = static_cast<std::size_t>(cqe.user_data);
        if (gi < count) {
          results[gi] = map_cqe(cqe.res, ops[gi].is_write);
        }
        ++chead;
        ++harvested;
      }
      __atomic_store_n(cq_head_, chead, __ATOMIC_RELEASE);
    }
    done += batch;
  }
  return enters;
}

bool Ring::probe() {
  auto ring = Ring::create(8);
  if (!ring) return false;
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return false;
  bool ok = false;
  {
    static const char kPing[] = "lpvs-uring-probe";
    char echo[sizeof(kPing)] = {};
    struct iovec wv {
      const_cast<char*>(kPing), sizeof(kPing)
    };
    Op send_op;
    send_op.fd = fds[0];
    send_op.is_write = true;
    send_op.iov = &wv;
    send_op.iovcnt = 1;
    Op recv_op;
    recv_op.fd = fds[1];
    recv_op.buf = echo;
    recv_op.len = sizeof(echo);
    common::io::IoResult wr, rr;
    const int we = ring->run_batch(&send_op, &wr, 1);
    const int re = ring->run_batch(&recv_op, &rr, 1);
    ok = we > 0 && re > 0 && wr.ok() && wr.count == sizeof(kPing) &&
         rr.ok() && rr.count == sizeof(kPing) &&
         std::memcmp(echo, kPing, sizeof(kPing)) == 0;
  }
  ::close(fds[0]);
  ::close(fds[1]);
  return ok;
}

}  // namespace lpvs::server::iouring

#else  // !__linux__

namespace lpvs::server::iouring {

std::unique_ptr<Ring> Ring::create(unsigned) { return nullptr; }
bool Ring::probe() { return false; }
Ring::~Ring() = default;
int Ring::run_batch(const Op*, common::io::IoResult*, std::size_t) {
  return -1;
}

}  // namespace lpvs::server::iouring

#endif

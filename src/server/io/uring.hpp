// Minimal raw-syscall io_uring wrapper for the batched submission path.
//
// Deliberately not liburing (the container carries no dev package for it,
// and the serving loop needs only a sliver of the interface): ring setup,
// the two mmap'd rings plus the SQE array, and a synchronous batch engine
// that turns N queued socket ops into one io_uring_enter(2).
//
// Every op is submitted as IORING_OP_SENDMSG / IORING_OP_RECVMSG with
// MSG_DONTWAIT, never plain IORING_OP_WRITEV/READV: on a non-blocking
// socket the kernel would arm its internal fast-poll machinery for a
// would-block writev and complete it *later*, which turns the synchronous
// flush into an async completion problem.  MSG_DONTWAIT guarantees every
// CQE is available by the time enter(GETEVENTS, min_complete = batch)
// returns, so EAGAIN surfaces in the CQE exactly like it does from
// writev(2) and the caller's backpressure logic is backend-independent.
//
// This header is internal to src/server (not installed under include/);
// the public surface is EventLoop's submit_read/submit_writev/flush.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include <sys/socket.h>
#include <sys/uio.h>

#include "lpvs/common/io.hpp"

namespace lpvs::server::iouring {

/// One batched data-path op.  Reads fill (buf, len); writes gather from
/// the caller's iovec array, which must stay valid until run_batch returns.
struct Op {
  int fd = -1;
  bool is_write = false;
  void* buf = nullptr;                // read target
  std::size_t len = 0;                // read capacity
  const struct iovec* iov = nullptr;  // write source
  int iovcnt = 0;
};

class Ring {
 public:
  /// nullptr when the kernel lacks io_uring (ENOSYS), seccomp blocks it
  /// (EPERM), or any mmap of the rings fails.
  static std::unique_ptr<Ring> create(unsigned entries);

  /// One-time probe: builds a small ring and round-trips real bytes over a
  /// socketpair through SENDMSG + RECVMSG SQEs.  A full round trip (not
  /// just a successful setup syscall) is required so partially filtered
  /// sandboxes — setup allowed, enter blocked — still report unsupported.
  static bool probe();

  ~Ring();
  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  /// Submits ops[0..count) and harvests all their completions, chunking by
  /// ring capacity when count exceeds it.  Fills results[i] per op with
  /// the same IoResult mapping the direct-syscall path uses (kOk/short,
  /// kWouldBlock, kEof for a 0-byte read, kError with errno).  Returns the
  /// number of io_uring_enter calls made, or -1 on a fatal ring failure —
  /// after -1 the results are unspecified and the caller must stop using
  /// the ring (EventLoop degrades to direct syscalls).
  int run_batch(const Op* ops, common::io::IoResult* results,
                std::size_t count);

  unsigned entries() const { return sq_entries_; }

 private:
  Ring() = default;
  bool setup(unsigned entries);

  int ring_fd_ = -1;
  unsigned sq_entries_ = 0;
  unsigned cq_entries_ = 0;
  bool single_mmap_ = false;

  void* sq_ring_ = nullptr;
  std::size_t sq_ring_bytes_ = 0;
  void* cq_ring_ = nullptr;
  std::size_t cq_ring_bytes_ = 0;
  void* sqes_mem_ = nullptr;
  std::size_t sqes_bytes_ = 0;

  // Pointers into the mapped rings (kernel-shared; tail/head ordering uses
  // __atomic builtins directly on these).
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  void* cqes_ = nullptr;

  // Per-chunk scratch (capacity retained across batches): msghdrs for every
  // SQE plus one iovec per read op.  Writes point msg_iov at the caller's
  // iovecs directly.
  std::vector<struct msghdr> msgs_;
  std::vector<struct iovec> read_iovs_;
};

}  // namespace lpvs::server::iouring

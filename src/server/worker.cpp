#include "worker.hpp"

#include <algorithm>
#include <cerrno>
#include <utility>

#include <unistd.h>

#include "lpvs/common/io.hpp"

namespace lpvs::server::internal {
namespace {

namespace io = common::io;

/// Handoffs the dispatcher may park at one worker before the ring pushes
/// back (rejecting the session instead of queueing without bound).
constexpr std::size_t kHandoffRingSlots = 1024;

}  // namespace

const std::array<CounterSpec, kNumCounters>& counter_specs() {
  static const std::array<CounterSpec, kNumCounters> specs = {{
      {"lpvs_server_accepted_total", "connections accepted"},
      {"lpvs_server_admission_rejects_total", "sessions rejected at HELLO"},
      {"lpvs_server_decode_errors_total", "malformed frames dropped"},
      {"lpvs_server_protocol_errors_total",
       "sessions failed for a protocol violation"},
      {"lpvs_server_backpressure_closes_total",
       "sessions closed for an over-limit outbound queue"},
      {"lpvs_server_frames_rx_total", "frames received"},
      {"lpvs_server_frames_tx_total", "frames sent"},
      {"lpvs_server_slots_total", "cluster slots scheduled"},
      {"lpvs_server_sessions_completed_total",
       "sessions ended with an orderly BYE"},
      {"lpvs_server_forced_closes_total",
       "sessions cut by stop() or a drain timeout"},
      {"lpvs_server_shed_total",
       "slots forced down the degradation ladder by overload"},
      {"lpvs_server_handoffs_total",
       "connections routed from the dispatcher to a worker"},
      {"lpvs_io_syscalls_total",
       "data-path syscalls (read + writev + io_uring_enter)"},
      {"lpvs_io_read_syscalls_total",
       "data-path syscalls that moved inbound bytes"},
      {"lpvs_io_write_syscalls_total",
       "data-path syscalls that moved outbound bytes"},
      {"lpvs_io_uring_enters_total", "io_uring_enter batch submissions"},
      {"lpvs_io_submissions_total",
       "ops queued through the batched submission API"},
      {"lpvs_io_flushes_total", "non-empty submission batches flushed"},
      {"lpvs_io_backend_fallback_total",
       "event loops degraded from their requested backend"},
  }};
  return specs;
}

Worker::Worker(const ServerConfig& config, const core::Scheduler& scheduler,
               const core::RunContext& context, SharedControl& control,
               obs::Histogram* schedule_ms, obs::Histogram* batch_occupancy)
    : config_(config),
      scheduler_(scheduler),
      context_(context),
      control_(control),
      schedule_ms_(schedule_ms),
      batch_occupancy_(batch_occupancy),
      ring_(kHandoffRingSlots),
      joint_scheduler_(core::scheduler_ilp_defaults(config.slot.lp_engine)) {
  joint_.ladder = abr::LadderModel(config.abr.ladder);
  joint_.receive_budget_mwh = config.abr.receive_budget_mwh;
  joint_.qoe_weight = config.abr.qoe_weight;
  joint_.receive_energy_weight = config.abr.receive_energy_weight;
  joint_.qoe_floor = config.abr.qoe_floor;
  joint_.throughput_safety = config.abr.throughput_safety;
}

Worker::~Worker() {
  join();
  io::close_fd(wake_pipe_[0]);
  io::close_fd(wake_pipe_[1]);
}

common::Status Worker::start() {
  if (::pipe(wake_pipe_) < 0) {
    return common::Status::Internal("pipe: worker wake pipe");
  }
  (void)io::set_nonblocking(wake_pipe_[0]);
  (void)io::set_nonblocking(wake_pipe_[1]);

  loop_ = std::make_unique<EventLoop>(config_.listener.backend);
  if (loop_->fell_back()) counters_.add(kIoBackendFallback);
  const common::Status status =
      loop_->add(wake_pipe_[0], /*want_read=*/true, /*want_write=*/false);
  if (!status.ok()) return status;

  thread_ = std::thread([this] { run(); });
  return common::Status::Ok();
}

void Worker::wake() {
  if (wake_pipe_[1] >= 0) {
    const std::uint8_t byte = 1;
    (void)io::write_retry(wake_pipe_[1], &byte, 1);
  }
}

void Worker::join() {
  if (thread_.joinable()) thread_.join();
}

long Worker::close_abandoned() {
  long cut = 0;
  ConnectionHandoff handoff;
  while (ring_.try_pop(handoff)) {
    io::close_fd(handoff.fd);
    control_.open_connections.fetch_sub(1);
    counters_.add(kForcedCloses);
    ++cut;
  }
  return cut;
}

// ---- Event loop -----------------------------------------------------------

void Worker::run() {
  std::vector<LoopEvent> events;
  for (;;) {
    if (control_.stopping.load(std::memory_order_acquire)) break;
    int timeout_ms = -1;  // idle workers sleep indefinitely: zero wakeups
    if (control_.draining.load(std::memory_order_acquire)) {
      // Acquire dispatcher_done *before* draining the ring: once it reads
      // true, every push the dispatcher ever made is visible, so an empty
      // ring plus an empty shard really is the end.
      const bool dispatcher_done =
          control_.dispatcher_done.load(std::memory_order_acquire);
      adopt_pending();
      if (dispatcher_done && connections_.empty()) break;
      const auto now = std::chrono::steady_clock::now();
      if (now >= control_.drain_deadline) {
        control_.drain_forced.store(true, std::memory_order_release);
        break;
      }
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              control_.drain_deadline - now)
              .count();
      timeout_ms = static_cast<int>(std::max<long long>(1, remaining));
    }

    common::StatusOr<int> waited = loop_->wait(timeout_ms, events);
    if (!waited.ok()) break;  // loop fd gone; nothing recoverable

    // One wakeup = one batch: collect every fd's direction first, then run
    // the writable backlog, the reads, and the ready schedules as three
    // coalesced submission flushes instead of per-fd syscalls.
    read_ready_.clear();
    for (const LoopEvent& event : events) {
      if (event.fd == wake_pipe_[0]) {
        drain_wake_pipe();
        adopt_pending();
        continue;
      }
      auto it = connections_.find(event.fd);
      if (it == connections_.end()) continue;  // closed earlier this batch
      Connection* conn = it->second;
      if (event.broken) {
        close_connection(conn, /*orderly=*/false);
        continue;
      }
      if (event.writable) enlist(conn);
      if (event.readable) read_ready_.push_back(event.fd);
    }
    // Writable backlog drains first: it frees outbound room the frames
    // decoded below may need.
    flush_burst();
    service_reads();
    schedule_ready_clusters();
    sync_io_stats();
  }

  // Loop exit: anything still open is cut short.
  const long leftover = static_cast<long>(connections_.size());
  if (leftover > 0) counters_.add(kForcedCloses, leftover);
  while (!connections_.empty()) {
    close_connection(connections_.begin()->second, /*orderly=*/false);
  }
  sync_io_stats();
}

void Worker::drain_wake_pipe() {
  std::uint8_t sink[64];
  while (io::read_retry(wake_pipe_[0], sink, sizeof(sink)).ok()) {
  }
}

void Worker::adopt_pending() {
  ConnectionHandoff handoff;
  while (ring_.try_pop(handoff)) adopt(std::move(handoff));
}

// ---- Adoption: the worker-side half of HELLO ------------------------------

void Worker::adopt(ConnectionHandoff&& handoff) {
  Connection* conn = pool_.acquire();
  conn->fd = handoff.fd;
  conn->decoder.set_limit(config_.admission.max_frame_bytes);
  if (!handoff.leftover.empty()) {
    conn->decoder.feed(handoff.leftover.data(), handoff.leftover.size());
  }
  if (!loop_->add(handoff.fd, /*want_read=*/true, /*want_write=*/false)
           .ok()) {
    io::close_fd(handoff.fd);
    pool_.release(conn);
    control_.open_connections.fetch_sub(1);
    counters_.add(kForcedCloses);
    return;
  }
  connections_[handoff.fd] = conn;
  conn->hello = handoff.hello;

  // Cluster membership rules live here, with the cluster map (the
  // dispatcher only checked admission and the size range).
  const protocol::Hello& hello = conn->hello;
  Cluster* cluster = nullptr;
  auto it = clusters_.find(hello.cluster_id);
  if (it == clusters_.end()) {
    auto fresh = std::make_unique<Cluster>();
    fresh->id = hello.cluster_id;
    fresh->expected_size = hello.cluster_size;
    cluster = fresh.get();
    clusters_[hello.cluster_id] = std::move(fresh);
  } else {
    cluster = it->second.get();
    if (cluster->expected_size != hello.cluster_size) {
      (void)fail_session(conn, common::StatusCode::kInvalidArgument,
                         "cluster size disagrees with existing members");
      return;
    }
    if (cluster->members.size() >= cluster->expected_size) {
      (void)fail_session(conn, common::StatusCode::kResourceExhausted,
                         "cluster already full");
      return;
    }
    if (cluster->members.count(hello.user_id) != 0) {
      (void)fail_session(conn, common::StatusCode::kInvalidArgument,
                         "duplicate user in cluster");
      return;
    }
  }

  conn->cluster = cluster;
  // The panel spec is server-derived (the provider knows the handset
  // catalog); keyed on the user so it is stable across reconnects.
  common::Rng spec_rng =
      derived_rng(config_.slot.seed, hello.user_id, kDeviceSalt);
  conn->spec = display::DeviceCatalog::standard().sample(spec_rng).spec;
  cluster->members[hello.user_id] = conn;
  if (cluster->members.size() == cluster->expected_size) {
    cluster->ever_complete = true;
  }

  protocol::HelloAck ack;
  ack.user_id = hello.user_id;
  ack.next_slot = cluster->next_slot;
  if (!queue_frame(conn, protocol::make_frame(ack))) return;
  if (!flush(conn)) return;
  mark_ready_if_barrier_met(cluster);

  // A pipelined client may have sent its first REPORT (or more) in the same
  // burst as the HELLO; those bytes rode along in the handoff.
  if (conn->decoder.buffered() > 0 &&
      connections_.find(conn->fd) != connections_.end()) {
    (void)drain_decoder(conn);
  }
}

// ---- Inbound path ---------------------------------------------------------

// Every fd readable this wakeup submits one 4 KiB read into its own
// scratch, the batch flushes as one submission (one io_uring_enter on
// uring), and fds whose read filled the whole buffer go another round
// until each socket is drained to would-block.
void Worker::service_reads() {
  while (!read_ready_.empty()) {
    for (const int fd : read_ready_) {
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed since collection
      Connection* conn = it->second;
      loop_->submit_read(fd, conn->rx_scratch.data(),
                         conn->rx_scratch.size(),
                         static_cast<std::uint64_t>(fd));
    }
    read_ready_.clear();
    read_outcomes_.clear();
    const std::size_t ops = loop_->flush(read_outcomes_);
    if (ops == 0) break;
    observe_occupancy(ops);
    for (const IoOutcome& outcome : read_outcomes_) {
      auto it = connections_.find(outcome.fd);
      if (it == connections_.end()) continue;
      Connection* conn = it->second;
      bool hung_up = false;
      bool more = false;
      switch (outcome.result.kind) {
        case io::IoResult::Kind::kOk:
          conn->decoder.feed(conn->rx_scratch.data(), outcome.result.count);
          more = outcome.result.count == conn->rx_scratch.size();
          break;
        case io::IoResult::Kind::kWouldBlock:
          break;
        case io::IoResult::Kind::kEof:
        case io::IoResult::Kind::kError:
          // A peer may BYE and hang up in one burst, so the buffered
          // frames are decoded below *before* the close — otherwise an
          // orderly goodbye would race its own EOF and count as a cut
          // session.
          hung_up = true;
          break;
      }
      if (!conn->close_after_flush) {
        if (!drain_decoder(conn)) continue;  // connection closed
      }
      if (hung_up) {
        close_connection(conn, /*orderly=*/false);
      } else if (more) {
        read_ready_.push_back(outcome.fd);
      }
    }
  }
}

/// Decodes every buffered frame.  False = the connection was closed
/// (malformed input or a handler that ended the session).
bool Worker::drain_decoder(Connection* conn) {
  for (;;) {
    protocol::FrameDecoder::Result result = conn->decoder.next();
    if (result.kind == protocol::FrameDecoder::Result::Kind::kNeedMore) {
      return true;
    }
    if (result.kind == protocol::FrameDecoder::Result::Kind::kError) {
      // Malformed input is terminal: count it and drop the connection.
      counters_.add(kDecodeErrors);
      close_connection(conn, /*orderly=*/false);
      return false;
    }
    counters_.add(kFramesRx);
    if (!handle_frame(conn, result.frame)) return false;  // closed
  }
}

bool Worker::handle_frame(Connection* conn, const protocol::Frame& frame) {
  switch (frame.type) {
    case protocol::FrameType::kHello:
      // Every worker connection already completed its HELLO at the
      // dispatcher; a second one is a protocol violation.
      return fail_session(conn, common::StatusCode::kInvalidArgument,
                          "duplicate HELLO");
    case protocol::FrameType::kReport:
      return handle_report(conn, frame.as<protocol::Report>());
    case protocol::FrameType::kBye:
      conn->orderly = true;
      close_connection(conn, /*orderly=*/true);
      return false;
    case protocol::FrameType::kHelloAck:
    case protocol::FrameType::kSchedule:
    case protocol::FrameType::kGrant:
    case protocol::FrameType::kError:
      return fail_session(conn, common::StatusCode::kInvalidArgument,
                          "client sent a server-only frame");
  }
  return fail_session(conn, common::StatusCode::kInvalidArgument,
                      "unknown frame type");
}

bool Worker::handle_report(Connection* conn, const protocol::Report& report) {
  if (conn->cluster == nullptr) {
    return fail_session(conn, common::StatusCode::kInvalidArgument,
                        "REPORT before HELLO");
  }
  Cluster* cluster = conn->cluster;
  if (conn->has_report || report.slot != cluster->next_slot) {
    return fail_session(conn, common::StatusCode::kInvalidArgument,
                        "REPORT out of slot order");
  }
  // The Bayes observation of the previous slot's realized saving (§V-D):
  // feed both estimators, as the emulator does.
  if (report.has_delta != 0) {
    conn->gamma.observe(report.observed_delta);
    conn->nig.observe(report.observed_delta);
  }
  if (report.watching == 0) {
    // The user gave up; it leaves the cluster now so remaining members'
    // barrier does not wait on it, and BYE follows.
    cluster->members.erase(conn->hello.user_id);
    conn->cluster = nullptr;
    mark_ready_if_barrier_met(cluster);
    reap_cluster(cluster);
    return true;
  }
  conn->has_report = true;
  conn->report = report;
  mark_ready_if_barrier_met(cluster);
  return true;
}

// ---- Slot cadence ---------------------------------------------------------

void Worker::mark_ready_if_barrier_met(Cluster* cluster) {
  if (cluster->queued || cluster->members.empty()) return;
  // A cluster schedules only once fully assembled — the composition of
  // slot 0 is fixed by the HELLOs, not by which member's bytes arrived
  // first.  After assembly, members may only leave (give-up, BYE).
  if (!cluster->ever_complete) return;
  for (const auto& [user, member] : cluster->members) {
    if (!member->has_report) return;
  }
  cluster->queued = true;
  ready_.push_back(cluster);
}

void Worker::schedule_ready_clusters() {
  if (ready_.empty()) return;
  // Stable processing order (map order is by cluster id already, but the
  // ready list fills in arrival order).
  std::sort(ready_.begin(), ready_.end(),
            [](const Cluster* a, const Cluster* b) { return a->id < b->id; });
  const std::size_t batch = ready_.size();
  for (std::size_t i = 0; i < batch; ++i) {
    Cluster* cluster = ready_[i];
    // `queued` stays set while scheduling: it pins the cluster against
    // reap_cluster when a member's close fires mid-send.
    if (!cluster->members.empty()) {
      schedule_cluster(cluster, overload_rung(batch, i));
    }
    cluster->queued = false;
    reap_cluster(cluster);
  }
  ready_.erase(ready_.begin(),
               ready_.begin() + static_cast<std::ptrdiff_t>(batch));
  // kBurst: every member of every cluster in this ready batch enlisted its
  // SCHEDULE+GRANT bytes above; they leave in one cross-member submission
  // (a no-op in the finer-grained modes, which flushed inline).
  flush_burst();
}

int Worker::overload_rung(std::size_t batch, std::size_t index) const {
  if (config_.shed_ready_depth == 0) return -1;
  if (batch <= config_.shed_ready_depth || index < config_.shed_ready_depth) {
    return -1;
  }
  const bool deep = batch > 2 * config_.shed_ready_depth;
  return static_cast<int>(deep ? core::DegradationRung::kReplayPrevious
                               : core::DegradationRung::kWarmRepair);
}

void Worker::schedule_cluster(Cluster* cluster, int forced_rung) {
  obs::ScopedTimer timer(schedule_ms_);

  problem_.compute_capacity = config_.slot.compute_capacity;
  problem_.storage_capacity = config_.slot.storage_capacity_mb;
  problem_.lambda = config_.slot.lambda;
  if (problem_.devices.size() > cluster->members.size()) {
    problem_.devices.resize(cluster->members.size());
  }
  order_.clear();

  std::size_t index = 0;
  for (auto& [user_id, member] : cluster->members) {
    // Content is a pure function of (seed, user, slot): the same derived
    // streams the emulator and federation use.
    common::Rng content_rng =
        derived_rng(config_.slot.seed, user_id, cluster->next_slot);
    media::ContentGenerator generator(content_rng());
    const auto genre =
        static_cast<media::Genre>(member->hello.genre % media::kGenreCount);
    generator.generate_into(
        video_,
        common::VideoId{
            static_cast<std::uint32_t>(user_id * 100000u + cluster->next_slot)},
        genre, config_.slot.chunks_per_slot, member->hello.bitrate_mbps,
        common::Seconds{config_.slot.chunk_seconds});

    if (index == problem_.devices.size()) problem_.devices.emplace_back();
    core::DeviceSlotInput& input = problem_.devices[index];
    input.id = common::DeviceId{static_cast<std::uint32_t>(user_id)};
    input.power_rates_mw.clear();
    input.chunk_durations_s.clear();
    for (const media::VideoChunk& chunk : video_.chunks) {
      input.power_rates_mw.push_back(
          rate_estimator_.rate(member->spec, chunk).value);
      input.chunk_durations_s.push_back(chunk.duration.value);
    }
    input.battery_capacity_mwh = member->hello.battery_capacity_mwh;
    input.initial_energy_mwh = member->report.battery_fraction *
                               member->hello.battery_capacity_mwh *
                               config_.slot.effective_capacity_scale;
    input.gamma = member->gamma.expected_gamma();
    input.compute_cost = resources_.compute_cost(member->spec, video_);
    input.storage_cost = resources_.storage_cost(video_);
    input.sla_weight = 1.0;

    order_.push_back(member);
    ++index;
  }

  core::RunContext ctx =
      context_.with_slot(static_cast<std::int64_t>(cluster->next_slot));
  if (config_.slot.warm_start) {
    ctx = ctx.with_solve_cache(&cluster->cache, cluster->id);
  }
  core::SlotDeadline deadline = config_.deadline;
  if (forced_rung >= 0 &&
      (deadline.force_rung < 0 || forced_rung > deadline.force_rung)) {
    deadline.force_rung = forced_rung;
    counters_.add(kShed);
  }
  ctx = ctx.with_deadline(deadline);

  core::Schedule schedule;
  bool joint_mode = false;
  if (config_.abr.enabled) {
    // Joint ABR × transform: same device assembly, widened decision.  The
    // joint solve replaces the degradation ladder for this cluster (the
    // SCHEDULE rung byte reports full solve); everything stays a pure
    // function of (cluster composition, reports), so payload bytes remain
    // worker-count-independent.
    std::swap(joint_.base, problem_);
    joint_.streams.resize(order_.size());
    for (std::size_t i = 0; i < order_.size(); ++i) {
      joint_.streams[i].buffer_s = order_[i]->report.buffer_s;
      joint_.streams[i].throughput_mbps = order_[i]->report.throughput_mbps;
    }
    joint_result_ = joint_scheduler_.schedule(joint_, ctx);
    std::swap(joint_.base, problem_);
    schedule = joint_result_.display;
    joint_mode = true;
  } else {
    schedule = scheduler_.schedule(problem_, ctx);
  }
  counters_.add(kSlots);

  const auto selected = static_cast<std::uint32_t>(schedule.selected_count());
  for (std::size_t i = 0; i < order_.size(); ++i) {
    Connection* member = order_[i];
    const bool transformed = schedule.x[i] != 0;

    protocol::Schedule push;
    push.slot = cluster->next_slot;
    push.transform = transformed ? 1 : 0;
    push.rung = static_cast<std::uint8_t>(schedule.rung);
    push.expected_gamma = problem_.devices[i].gamma;
    push.objective = schedule.objective;
    push.selected_count = selected;
    push.cluster_devices = static_cast<std::uint32_t>(order_.size());
    if (joint_mode) {
      push.bitrate_rung = static_cast<std::uint8_t>(joint_result_.rung[i]);
      push.bitrate_mbps = joint_result_.rung_mbps[i];
    }

    protocol::Grant grant;
    grant.slot = cluster->next_slot;
    grant.chunks = static_cast<std::uint32_t>(config_.slot.chunks_per_slot);
    grant.chunk_seconds = config_.slot.chunk_seconds;
    grant.power_scale = transformed ? 1.0 - problem_.devices[i].gamma : 1.0;

    member->has_report = false;
    // SCHEDULE and GRANT accumulate back to back in the outbound buffer,
    // so one gathered write covers both frames; under kBurst the member
    // only enlists here and the whole ready batch flushes as one
    // submission in schedule_ready_clusters.  kPerMember/kPerFrame exist
    // as measurement baselines for the syscall budget (payload bytes are
    // identical in all three modes).
    switch (config_.listener.flush_mode) {
      case FlushMode::kPerFrame:
        if (!queue_frame(member, protocol::make_frame(push))) continue;
        if (!flush(member)) continue;
        if (!queue_frame(member, protocol::make_frame(grant))) continue;
        (void)flush(member);
        break;
      case FlushMode::kPerMember:
        if (!queue_frame(member, protocol::make_frame(push))) continue;
        if (!queue_frame(member, protocol::make_frame(grant))) continue;
        (void)flush(member);
        break;
      case FlushMode::kBurst:
        if (!queue_frame(member, protocol::make_frame(push))) continue;
        if (!queue_frame(member, protocol::make_frame(grant))) continue;
        enlist(member);
        break;
    }
  }
  ++cluster->next_slot;
}

// ---- Outbound path --------------------------------------------------------

bool Worker::queue_frame(Connection* conn, const protocol::Frame& frame) {
  protocol::encode_into(frame, conn->outbound);
  counters_.add(kFramesTx);
  if (conn->outbound.size() - conn->out_offset >
      config_.admission.max_outbound_bytes) {
    // The peer stopped reading; shedding it beats buffering without bound.
    // Nothing useful can be flushed to a non-reading peer.
    counters_.add(kBackpressureCloses);
    close_connection(conn, /*orderly=*/false);
    return false;
  }
  return true;
}

void Worker::enlist(Connection* conn) {
  if (conn->in_burst) return;
  conn->in_burst = true;
  burst_.push_back(conn);
}

// Flushes every enlisted connection's outbound through the submission
// queue.  One round submits one gathered write per connection and flushes
// the batch (one io_uring_enter on uring; one writev per connection on
// epoll/poll); partially accepted connections go another round, so the
// loop ends only when every burst member is drained, parked on
// want-write, or closed.
void Worker::flush_burst() {
  while (!burst_.empty()) {
    burst_round_.clear();
    burst_round_.swap(burst_);  // enlist() during this round goes to burst_
    for (Connection* conn : burst_round_) {
      if (conn->out_offset < conn->outbound.size()) {
        const struct iovec iov{conn->outbound.data() + conn->out_offset,
                               conn->outbound.size() - conn->out_offset};
        loop_->submit_writev(conn->fd, &iov, 1,
                             static_cast<std::uint64_t>(conn->fd));
      } else {
        conn->in_burst = false;
        finalize_drained(conn);  // may close this connection (only this one)
      }
    }
    write_outcomes_.clear();
    const std::size_t ops = loop_->flush(write_outcomes_);
    if (ops == 0) continue;  // everything finalized without bytes owed
    observe_occupancy(ops);
    for (const IoOutcome& outcome : write_outcomes_) {
      auto it = connections_.find(outcome.fd);
      if (it == connections_.end()) continue;
      Connection* conn = it->second;
      conn->in_burst = false;
      switch (outcome.result.kind) {
        case io::IoResult::Kind::kOk:
          if (outcome.result.count > 0) {
            conn->out_offset += outcome.result.count;
            if (conn->out_offset < conn->outbound.size()) {
              enlist(conn);  // partial acceptance: another round
            } else {
              finalize_drained(conn);
            }
            break;
          }
          [[fallthrough]];  // 0-byte acceptance: treat as would-block
        case io::IoResult::Kind::kWouldBlock:
          if (!conn->want_write) {
            conn->want_write = true;
            (void)loop_->modify(conn->fd, true, true);
          }
          break;
        case io::IoResult::Kind::kEof:
        case io::IoResult::Kind::kError:
          close_connection(conn, /*orderly=*/false);
          break;
      }
    }
  }
}

/// Outbound fully written: recycle the buffer, honor a deferred close,
/// drop write interest.
void Worker::finalize_drained(Connection* conn) {
  conn->outbound.clear();
  conn->out_offset = 0;
  if (conn->close_after_flush) {
    close_connection(conn, conn->orderly);
    return;
  }
  if (conn->want_write) {
    conn->want_write = false;
    (void)loop_->modify(conn->fd, true, false);
  }
}

bool Worker::flush(Connection* conn) {
  const int fd = conn->fd;
  enlist(conn);
  flush_burst();
  return connections_.find(fd) != connections_.end();
}

void Worker::observe_occupancy(std::size_t ops) {
  if (batch_occupancy_ != nullptr) {
    batch_occupancy_->observe(static_cast<double>(ops));
  }
}

// Copies the loop's syscall ledger deltas into the thread's counter slab
// (the metrics fold reads the slab; the loop's IoStats are plain fields
// only this thread touches).
void Worker::sync_io_stats() {
  const IoStats& stats = loop_->io_stats();
  const auto bump = [this](CounterId id, long now, long& seen) {
    if (now != seen) {
      counters_.add(id, now - seen);
      seen = now;
    }
  };
  bump(kIoReadSyscalls, stats.read_path_syscalls,
       io_seen_.read_path_syscalls);
  bump(kIoWriteSyscalls, stats.write_path_syscalls,
       io_seen_.write_path_syscalls);
  bump(kIoUringEnters, stats.enter_syscalls, io_seen_.enter_syscalls);
  bump(kIoSubmissions, stats.submissions, io_seen_.submissions);
  bump(kIoFlushes, stats.flushes, io_seen_.flushes);
  bump(kIoSyscalls, stats.total_syscalls(), io_total_seen_);
}

bool Worker::fail_session(Connection* conn, common::StatusCode code,
                          std::string message) {
  counters_.add(kProtocolErrors);
  protocol::Error error;
  error.code = static_cast<std::uint8_t>(code);
  error.message = std::move(message);
  protocol::encode_into(protocol::make_frame(error), conn->outbound);
  conn->close_after_flush = true;
  flush(conn);  // closes on full flush; waits for writability otherwise
  return false;
}

void Worker::close_connection(Connection* conn, bool orderly) {
  if (conn->in_burst) {
    // Enlisted but dying before the flush (e.g. a backpressure close while
    // its cluster batch was still queueing): the burst list would dangle.
    conn->in_burst = false;
    burst_.erase(std::remove(burst_.begin(), burst_.end(), conn),
                 burst_.end());
  }
  if (conn->cluster != nullptr) {
    Cluster* cluster = conn->cluster;
    cluster->members.erase(conn->hello.user_id);
    conn->cluster = nullptr;
    // Remaining members may now satisfy the barrier without the leaver.
    mark_ready_if_barrier_met(cluster);
    reap_cluster(cluster);
  }
  if (orderly) counters_.add(kCompleted);
  (void)loop_->remove(conn->fd);
  io::close_fd(conn->fd);
  connections_.erase(conn->fd);
  pool_.release(conn);
  control_.open_connections.fetch_sub(1);
}

void Worker::reap_cluster(Cluster* cluster) {
  if (cluster->members.empty() && !cluster->queued) {
    clusters_.erase(cluster->id);
  }
}

}  // namespace lpvs::server::internal

#include "lpvs/server/protocol.hpp"

#include <cstring>
#include <utility>

namespace lpvs::server::protocol {
namespace {

using common::wire::Reader;
using common::wire::Writer;

// decode_body takes the frame's claimed version so the two frames v2
// extended can stop early on v1 bodies (appended fields keep their struct
// defaults); every other body ignores it.

void encode_body(Writer& w, const Hello& b) {
  w.u64(b.user_id);
  w.u64(b.cluster_id);
  w.u32(b.cluster_size);
  w.u32(b.slots_total);
  w.f64(b.battery_capacity_mwh);
  w.f64(b.bitrate_mbps);
  w.u8(b.genre);
  w.u8(b.giveup_percent);
}

bool decode_body(Reader& r, Hello& b, std::uint32_t) {
  return r.u64(b.user_id) && r.u64(b.cluster_id) && r.u32(b.cluster_size) &&
         r.u32(b.slots_total) && r.f64(b.battery_capacity_mwh) &&
         r.f64(b.bitrate_mbps) && r.u8(b.genre) && r.u8(b.giveup_percent);
}

void encode_body(Writer& w, const HelloAck& b) {
  w.u64(b.user_id);
  w.u32(b.next_slot);
}

bool decode_body(Reader& r, HelloAck& b, std::uint32_t) {
  return r.u64(b.user_id) && r.u32(b.next_slot);
}

void encode_body(Writer& w, const Report& b) {
  w.u32(b.slot);
  w.f64(b.battery_fraction);
  w.f64(b.observed_delta);
  w.u8(b.has_delta);
  w.u8(b.watching);
  w.f64(b.buffer_s);
  w.f64(b.throughput_mbps);
}

bool decode_body(Reader& r, Report& b, std::uint32_t version) {
  if (!(r.u32(b.slot) && r.f64(b.battery_fraction) &&
        r.f64(b.observed_delta) && r.u8(b.has_delta) && r.u8(b.watching))) {
    return false;
  }
  if (version < 2) return true;  // v1 body ends here; defaults stand
  return r.f64(b.buffer_s) && r.f64(b.throughput_mbps);
}

void encode_body(Writer& w, const Schedule& b) {
  w.u32(b.slot);
  w.u8(b.transform);
  w.u8(b.rung);
  w.f64(b.expected_gamma);
  w.f64(b.objective);
  w.u32(b.selected_count);
  w.u32(b.cluster_devices);
  w.u8(b.bitrate_rung);
  w.f64(b.bitrate_mbps);
}

bool decode_body(Reader& r, Schedule& b, std::uint32_t version) {
  if (!(r.u32(b.slot) && r.u8(b.transform) && r.u8(b.rung) &&
        r.f64(b.expected_gamma) && r.f64(b.objective) &&
        r.u32(b.selected_count) && r.u32(b.cluster_devices))) {
    return false;
  }
  if (version < 2) return true;  // v1 body ends here; defaults stand
  return r.u8(b.bitrate_rung) && r.f64(b.bitrate_mbps);
}

void encode_body(Writer& w, const Grant& b) {
  w.u32(b.slot);
  w.u32(b.chunks);
  w.f64(b.chunk_seconds);
  w.f64(b.power_scale);
}

bool decode_body(Reader& r, Grant& b, std::uint32_t) {
  return r.u32(b.slot) && r.u32(b.chunks) && r.f64(b.chunk_seconds) &&
         r.f64(b.power_scale);
}

void encode_body(Writer& w, const Bye& b) { w.u8(b.reason); }

bool decode_body(Reader& r, Bye& b, std::uint32_t) { return r.u8(b.reason); }

void encode_body(Writer& w, const Error& b) {
  w.u8(b.code);
  w.str(b.message);
}

bool decode_body(Reader& r, Error& b, std::uint32_t) {
  return r.u8(b.code) && r.str(b.message);
}

template <typename Body>
common::StatusOr<Frame> finish_decode(Reader& r, FrameType type,
                                      std::uint32_t version) {
  Body body;
  if (!decode_body(r, body, version)) {
    return common::Status::DataLoss("truncated frame body");
  }
  if (!r.exhausted()) {
    return common::Status::InvalidArgument("trailing bytes after frame body");
  }
  Frame frame;
  frame.type = type;
  frame.body = std::move(body);
  return frame;
}

}  // namespace

const char* frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kHelloAck: return "HELLO_ACK";
    case FrameType::kReport: return "REPORT";
    case FrameType::kSchedule: return "SCHEDULE";
    case FrameType::kGrant: return "GRANT";
    case FrameType::kBye: return "BYE";
    case FrameType::kError: return "ERROR";
  }
  return "UNKNOWN";
}

void encode_into(const Frame& frame, std::vector<std::uint8_t>& out) {
  // Reserve the length prefix, write the payload in place, seal it, then
  // patch the prefix — no per-frame temporary buffers.
  const std::size_t prefix_at = out.size();
  out.insert(out.end(), 4, 0);
  const std::size_t payload_at = out.size();

  Writer w(&out);
  w.u32(kMagic);
  w.u32(kVersion);
  w.u8(static_cast<std::uint8_t>(frame.type));
  std::visit([&w](const auto& body) { encode_body(w, body); }, frame.body);
  common::wire::seal(out, payload_at);

  const auto length = static_cast<std::uint32_t>(out.size() - payload_at);
  for (int i = 0; i < 4; ++i) {
    out[prefix_at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((length >> (8 * i)) & 0xFFu);
  }
}

std::vector<std::uint8_t> encode(const Frame& frame) {
  std::vector<std::uint8_t> out;
  encode_into(frame, out);
  return out;
}

Frame make_frame(Hello body) {
  return Frame{FrameType::kHello, std::move(body)};
}
Frame make_frame(HelloAck body) {
  return Frame{FrameType::kHelloAck, std::move(body)};
}
Frame make_frame(Report body) {
  return Frame{FrameType::kReport, std::move(body)};
}
Frame make_frame(Schedule body) {
  return Frame{FrameType::kSchedule, std::move(body)};
}
Frame make_frame(Grant body) {
  return Frame{FrameType::kGrant, std::move(body)};
}
Frame make_frame(Bye body) { return Frame{FrameType::kBye, std::move(body)}; }
Frame make_frame(Error body) {
  return Frame{FrameType::kError, std::move(body)};
}

common::StatusOr<Frame> decode_payload(std::vector<std::uint8_t> payload) {
  return decode_payload(payload.data(), payload.size());
}

common::StatusOr<Frame> decode_payload(const std::uint8_t* data,
                                       std::size_t size) {
  const common::Status sealed = common::wire::verify_seal(data, size);
  if (!sealed.ok()) return sealed;

  Reader r(data, size - 8);  // the trailer is not part of the body
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint8_t type_raw = 0;
  if (!r.u32(magic) || !r.u32(version) || !r.u8(type_raw)) {
    return common::Status::DataLoss("truncated frame header");
  }
  if (magic != kMagic) {
    return common::Status::InvalidArgument("not an lpvs-wire/session frame");
  }
  if (version < kMinVersion || version > kVersion) {
    return common::Status::InvalidArgument("unsupported session version");
  }
  switch (static_cast<FrameType>(type_raw)) {
    case FrameType::kHello:
      return finish_decode<Hello>(r, FrameType::kHello, version);
    case FrameType::kHelloAck:
      return finish_decode<HelloAck>(r, FrameType::kHelloAck, version);
    case FrameType::kReport:
      return finish_decode<Report>(r, FrameType::kReport, version);
    case FrameType::kSchedule:
      return finish_decode<Schedule>(r, FrameType::kSchedule, version);
    case FrameType::kGrant:
      return finish_decode<Grant>(r, FrameType::kGrant, version);
    case FrameType::kBye:
      return finish_decode<Bye>(r, FrameType::kBye, version);
    case FrameType::kError:
      return finish_decode<Error>(r, FrameType::kError, version);
  }
  return common::Status::InvalidArgument("unknown frame type");
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t count) {
  // Compact lazily: drop the consumed prefix before growing, so a chatty
  // connection does not accumulate an unbounded buffer of decoded frames.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + count);
}

FrameDecoder::Result FrameDecoder::next() {
  Result result;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return result;  // kNeedMore: partial length prefix

  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(buffer_[consumed_ + i]) << (8 * i);
  }
  if (length > max_frame_bytes_) {
    result.kind = Result::Kind::kError;
    result.status = common::Status::InvalidArgument(
        "frame length " + std::to_string(length) + " exceeds limit " +
        std::to_string(max_frame_bytes_));
    return result;
  }
  // A sealed payload is at least header (9) + checksum (8) bytes.
  if (length < 17) {
    result.kind = Result::Kind::kError;
    result.status = common::Status::DataLoss("frame shorter than a header");
    return result;
  }
  if (available < 4 + static_cast<std::size_t>(length)) {
    return result;  // kNeedMore: partial payload
  }

  // Decode straight out of the receive buffer; no per-frame payload copy.
  common::StatusOr<Frame> decoded =
      decode_payload(buffer_.data() + consumed_ + 4, length);
  consumed_ += 4 + length;
  if (!decoded.ok()) {
    result.kind = Result::Kind::kError;
    result.status = decoded.status();
    return result;
  }
  result.kind = Result::Kind::kFrame;
  result.frame = std::move(decoded).value();
  return result;
}

}  // namespace lpvs::server::protocol

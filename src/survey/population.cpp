#include "lpvs/survey/population.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <utility>

namespace lpvs::survey {
namespace {

/// Scales integer category counts to a new total via the largest-remainder
/// method, so small populations keep Table II's marginals up to rounding.
std::vector<int> scale_counts(const std::vector<int>& counts, int target) {
  const double total = static_cast<double>(
      std::accumulate(counts.begin(), counts.end(), 0));
  assert(total > 0.0);
  std::vector<int> scaled(counts.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  int assigned = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double exact = static_cast<double>(counts[i]) / total *
                         static_cast<double>(target);
    scaled[i] = static_cast<int>(exact);
    assigned += scaled[i];
    remainders.emplace_back(exact - std::floor(exact), i);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t k = 0; assigned < target; ++k) {
    ++scaled[remainders[k % remainders.size()].second];
    ++assigned;
  }
  return scaled;
}

/// Builds a value column with exact per-category counts, then shuffles it so
/// attribute columns are independent of each other (only the marginals of
/// Table II are published; the joint distribution is unknown).
template <class Enum>
std::vector<Enum> attribute_column(const std::vector<int>& counts, int n,
                                   common::Rng& rng) {
  const std::vector<int> scaled = scale_counts(counts, n);
  std::vector<Enum> column;
  column.reserve(static_cast<std::size_t>(n));
  for (std::size_t cat = 0; cat < scaled.size(); ++cat) {
    column.insert(column.end(), static_cast<std::size_t>(scaled[cat]),
                  static_cast<Enum>(cat));
  }
  for (std::size_t i = column.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(column[i - 1], column[j]);
  }
  return column;
}

}  // namespace

SyntheticPopulation::SyntheticPopulation(AnswerModel model,
                                         Demographics demographics)
    : model_(model), demographics_(demographics) {}

int SyntheticPopulation::sample_charge_level(common::Rng& rng,
                                             bool suffers) const {
  if (!suffers) {
    // Non-sufferers still answer the charge question: they plug in late and
    // out of routine rather than worry, populating the low-level bins.
    return static_cast<int>(rng.uniform_int(1, 25));
  }
  const double mix = rng.uniform();
  if (mix < model_.warning_atom) {
    return 20;  // the battery-icon-turns-red threshold (Fig. 2 jump)
  }
  if (mix < model_.warning_atom + model_.late_worrier_fraction) {
    return static_cast<int>(rng.uniform_int(5, 19));
  }
  const double bulk = rng.lognormal(model_.bulk_log_mean, model_.bulk_log_sigma);
  return static_cast<int>(std::clamp<long long>(std::llround(bulk), 21, 100));
}

int SyntheticPopulation::sample_giveup_level(common::Rng& rng,
                                             bool suffers) const {
  if (!suffers) return 0;  // watches until the phone dies
  const double suffer_fraction = 1.0 - model_.no_lba_fraction;
  // Rescale the population-wide drop quantiles to the sufferer subset so
  // the overall fractions land on the surveyed values.
  const double q20 = std::clamp(model_.drop_at_20 / suffer_fraction, 0.0, 1.0);
  const double q10 = std::clamp(model_.drop_at_10 / suffer_fraction, q20, 1.0);
  const double mix = rng.uniform();
  if (mix < q20) return static_cast<int>(rng.uniform_int(20, 35));
  if (mix < q10) return static_cast<int>(rng.uniform_int(10, 19));
  return static_cast<int>(rng.uniform_int(1, 9));
}

std::vector<Participant> SyntheticPopulation::generate(
    int n, common::Rng& rng) const {
  assert(n > 0);
  const auto& d = demographics_;
  const auto genders = attribute_column<Gender>({d.male, d.female}, n, rng);
  // Table II's age counts do not sum to 2,032 in the published table (a
  // transcription artifact); we use them as weights, which preserves the
  // printed proportions.
  const auto ages = attribute_column<AgeBand>(
      {d.under18, d.age18to25, d.age25to35, d.age35to45, d.age45to65}, n, rng);
  const auto occupations = attribute_column<Occupation>(
      {d.student, d.government, d.company, d.freelance, d.other_occupation}, n,
      rng);
  const auto brands = attribute_column<PhoneBrand>(
      {d.iphone, d.huawei, d.xiaomi, d.other_brand}, n, rng);

  std::vector<Participant> population(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < population.size(); ++i) {
    Participant& p = population[i];
    p.gender = genders[i];
    p.age = ages[i];
    p.occupation = occupations[i];
    p.brand = brands[i];
    p.suffers_lba = !rng.bernoulli(model_.no_lba_fraction);
    p.charge_level = sample_charge_level(rng, p.suffers_lba);
    p.giveup_level = sample_giveup_level(rng, p.suffers_lba);
  }
  return population;
}

double SyntheticPopulation::lba_fraction(
    const std::vector<Participant>& population) {
  if (population.empty()) return 0.0;
  std::size_t sufferers = 0;
  for (const Participant& p : population) sufferers += p.suffers_lba ? 1 : 0;
  return static_cast<double>(sufferers) /
         static_cast<double>(population.size());
}

double SyntheticPopulation::giveup_fraction_at(
    const std::vector<Participant>& population, int battery_level) {
  if (population.empty()) return 0.0;
  std::size_t gone = 0;
  for (const Participant& p : population) {
    gone += p.giveup_level >= battery_level ? 1 : 0;
  }
  return static_cast<double>(gone) / static_cast<double>(population.size());
}

}  // namespace lpvs::survey

#include "lpvs/survey/analysis.hpp"

#include <algorithm>
#include <utility>

#include "lpvs/common/stats.hpp"

namespace lpvs::survey {

common::PiecewiseLinear extract_curve_where(
    std::span<const Participant> population,
    const std::function<bool(const Participant&)>& predicate) {
  LbaCurveExtractor extractor;
  for (const Participant& p : population) {
    if (predicate(p)) extractor.add_answer(p.charge_level);
  }
  return extractor.extract();
}

SubgroupSummary summarize_subgroup(
    std::span<const Participant> population, std::string name,
    const std::function<bool(const Participant&)>& predicate) {
  SubgroupSummary summary;
  summary.name = std::move(name);
  std::vector<double> onsets;
  std::size_t sufferers = 0;
  for (const Participant& p : population) {
    if (!predicate(p)) continue;
    ++summary.size;
    onsets.push_back(static_cast<double>(p.charge_level));
    sufferers += p.suffers_lba ? 1 : 0;
  }
  if (summary.size == 0) return summary;
  summary.median_onset_level = common::percentile(onsets, 50.0);
  summary.lba_fraction =
      static_cast<double>(sufferers) / static_cast<double>(summary.size);
  const common::PiecewiseLinear curve =
      extract_curve_where(population, predicate);
  summary.mean_anxiety = curve.integrate(1.0, 100.0) / 99.0;
  return summary;
}

std::vector<SubgroupSummary> demographic_breakdown(
    std::span<const Participant> population) {
  std::vector<SubgroupSummary> breakdown;
  const auto add = [&](std::string name, auto predicate) {
    breakdown.push_back(
        summarize_subgroup(population, std::move(name), predicate));
  };
  add("male", [](const Participant& p) { return p.gender == Gender::kMale; });
  add("female",
      [](const Participant& p) { return p.gender == Gender::kFemale; });
  add("age<18",
      [](const Participant& p) { return p.age == AgeBand::kUnder18; });
  add("age 18-25",
      [](const Participant& p) { return p.age == AgeBand::k18To25; });
  add("age 25-35",
      [](const Participant& p) { return p.age == AgeBand::k25To35; });
  add("age 35-45",
      [](const Participant& p) { return p.age == AgeBand::k35To45; });
  add("age 45-65",
      [](const Participant& p) { return p.age == AgeBand::k45To65; });
  add("iPhone",
      [](const Participant& p) { return p.brand == PhoneBrand::kIPhone; });
  add("Huawei",
      [](const Participant& p) { return p.brand == PhoneBrand::kHuawei; });
  add("Xiaomi",
      [](const Participant& p) { return p.brand == PhoneBrand::kXiaomi; });
  add("other brand",
      [](const Participant& p) { return p.brand == PhoneBrand::kOther; });
  return breakdown;
}

}  // namespace lpvs::survey

#include "lpvs/survey/questionnaire.hpp"

#include <algorithm>
#include <cassert>

namespace lpvs::survey {

std::vector<RawResponse> ResponseGenerator::generate(
    int n, common::Rng& rng) const {
  assert(n > 0);
  const SyntheticPopulation population;
  const std::vector<Participant> latent = population.generate(n, rng);
  std::vector<RawResponse> raw;
  raw.reserve(latent.size());
  for (const Participant& p : latent) {
    RawResponse response;
    response.charge_level = p.charge_level;
    response.giveup_level = p.giveup_level;
    response.gender = p.gender;
    response.age = p.age;
    response.occupation = p.occupation;
    response.brand = p.brand;
    response.reports_lba = p.suffers_lba;
    response.completion_seconds =
        static_cast<int>(rng.uniform_int(90, 600));
    // Corruption, in the same shapes real panels produce.
    if (rng.bernoulli(config_.skip_rate)) response.charge_level.reset();
    if (rng.bernoulli(config_.skip_rate)) response.giveup_level.reset();
    if (rng.bernoulli(config_.skip_rate / 2.0)) response.gender.reset();
    if (rng.bernoulli(config_.speeder_rate)) {
      response.completion_seconds = static_cast<int>(rng.uniform_int(5, 40));
    }
    if (rng.bernoulli(config_.attention_fail_rate)) {
      response.attention_check_passed = false;
    }
    if (rng.bernoulli(config_.out_of_range_rate) &&
        response.charge_level.has_value()) {
      response.charge_level = rng.bernoulli(0.5)
                                  ? 0
                                  : static_cast<int>(
                                        rng.uniform_int(101, 999));
    }
    raw.push_back(response);
  }
  return raw;
}

std::pair<std::vector<Participant>, CleansingReport> DataCleanser::cleanse(
    const std::vector<RawResponse>& raw) const {
  std::vector<Participant> effective;
  CleansingReport report;
  report.total = static_cast<int>(raw.size());
  for (const RawResponse& response : raw) {
    if (!response.attention_check_passed) {
      ++report.dropped_attention;
      continue;
    }
    if (response.completion_seconds < rules_.min_completion_seconds) {
      ++report.dropped_speeder;
      continue;
    }
    if (!response.charge_level.has_value() ||
        !response.giveup_level.has_value() ||
        !response.gender.has_value() || !response.age.has_value() ||
        !response.occupation.has_value() || !response.brand.has_value()) {
      ++report.dropped_missing;
      continue;
    }
    const int charge = *response.charge_level;
    const int giveup = *response.giveup_level;
    if (charge < rules_.min_level || charge > rules_.max_level ||
        giveup < 0 || giveup > rules_.max_level) {
      ++report.dropped_out_of_range;
      continue;
    }
    Participant p;
    p.charge_level = charge;
    p.giveup_level = giveup;
    p.gender = *response.gender;
    p.age = *response.age;
    p.occupation = *response.occupation;
    p.brand = *response.brand;
    p.suffers_lba = response.reports_lba;
    effective.push_back(p);
    ++report.kept;
  }
  return {std::move(effective), report};
}

}  // namespace lpvs::survey

#include "lpvs/survey/lba_curve.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace lpvs::survey {

void LbaCurveExtractor::add_answer(int charge_level) {
  charge_level = std::clamp(charge_level, 1, kLevels);
  // Step (2): one increment for every bin in [1, a].  Kept as the literal
  // loop from the paper; extraction runs once per experiment so the O(100)
  // inner loop is irrelevant.
  for (int level = 1; level <= charge_level; ++level) {
    ++bins_[static_cast<std::size_t>(level - 1)];
  }
  ++answers_;
}

void LbaCurveExtractor::add_population(
    std::span<const Participant> population) {
  for (const Participant& p : population) add_answer(p.charge_level);
}

std::vector<double> LbaCurveExtractor::normalized() const {
  std::vector<double> degrees(kLevels, 0.0);
  const long peak = *std::max_element(bins_.begin(), bins_.end());
  if (peak == 0) return degrees;
  for (std::size_t i = 0; i < degrees.size(); ++i) {
    degrees[i] = static_cast<double>(bins_[i]) / static_cast<double>(peak);
  }
  return degrees;
}

common::PiecewiseLinear LbaCurveExtractor::extract() const {
  return common::PiecewiseLinear::from_uniform_samples(normalized(),
                                                       /*x0=*/1.0,
                                                       /*dx=*/1.0);
}

CurveShape analyze_curve(const common::PiecewiseLinear& curve) {
  CurveShape shape;
  shape.non_increasing = curve.non_increasing(1e-9);
  shape.anxiety_at_full = curve(100.0);
  shape.anxiety_at_empty = curve(1.0);
  shape.jump_at_20 = curve(20.0) - curve(21.0);

  constexpr double kTol = 0.02;
  const auto chord = [&](double x0, double x1, double x) {
    const double t = (x - x0) / (x1 - x0);
    return curve(x0) + t * (curve(x1) - curve(x0));
  };

  shape.convex_above_20 = true;
  for (double x = 30.0; x <= 90.0; x += 10.0) {
    if (curve(x) > chord(20.0, 100.0, x) + kTol) {
      shape.convex_above_20 = false;
      break;
    }
  }
  shape.concave_below_20 = true;
  for (double x : {5.0, 10.0, 15.0}) {
    if (curve(x) < chord(1.0, 20.0, x) - kTol) {
      shape.concave_below_20 = false;
      break;
    }
  }
  return shape;
}

AnxietyModel::AnxietyModel(common::PiecewiseLinear curve)
    : curve_(std::move(curve)) {
  assert(!curve_.empty());
}

double AnxietyModel::operator()(double energy_fraction) const {
  return at_percent(energy_fraction * 100.0);
}

double AnxietyModel::at_percent(double percent) const {
  const double anxiety = curve_(std::clamp(percent, 0.0, 100.0));
  return std::clamp(anxiety, 0.0, 1.0);
}

AnxietyModel AnxietyModel::reference() {
  // Hand-calibrated knots matching the published Fig. 2: unit anxiety at an
  // empty battery, concave decline to the 20% warning level, a sharp drop
  // just above 20 (the answer atom), then a convex tail to ~0 at full.
  std::vector<double> xs = {1,  5,    10,   15,   19,   20,   21,  25,
                            30, 40,   50,   60,   70,   80,   90,  100};
  std::vector<double> ys = {1.00, 0.985, 0.95, 0.90, 0.855, 0.84, 0.58, 0.50,
                            0.45, 0.33,  0.24, 0.16, 0.10,  0.055, 0.03, 0.015};
  return AnxietyModel(common::PiecewiseLinear(std::move(xs), std::move(ys)));
}

}  // namespace lpvs::survey
